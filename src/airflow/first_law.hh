/**
 * @file
 * First-law-of-thermodynamics airflow/heat relations.
 *
 * This is the paper's "standardized total cooling requirements
 * formulation of the first law of thermodynamics" [25] used to build
 * Table II and the analytical socket-entry-temperature model of
 * Sec. II-B. For air moving at a volumetric rate V (CFM) absorbing P
 * watts, the steady temperature rise is
 *
 *     dT = P / (rho * cp * V)  =  kCelsiusPerWattPerCfm * P / V_cfm
 *
 * with rho and cp of air near room temperature. The industry constant
 * works out to ~1.76 C*CFM/W, which reproduces Table II exactly
 * (e.g. 208 W/U at dT = 20 C -> 18.30 CFM).
 */

#ifndef DENSIM_AIRFLOW_FIRST_LAW_HH
#define DENSIM_AIRFLOW_FIRST_LAW_HH

namespace densim {

/** One cubic foot per minute in cubic metres per second. */
inline constexpr double kCfmToM3PerS = 4.71947e-4;

/** Density of air, kg/m^3, at ~21 C and 1 atm. */
inline constexpr double kAirDensity = 1.19795;

/** Specific heat of air at constant pressure, J/(kg*K). */
inline constexpr double kAirSpecificHeat = 1005.0;

/**
 * Combined first-law constant: temperature rise in Celsius produced by
 * 1 W carried by 1 CFM of air. Evaluates to ~1.76 C*CFM/W.
 */
inline constexpr double kCelsiusPerWattPerCfm =
    1.0 / (kAirDensity * kAirSpecificHeat * kCfmToM3PerS);

/**
 * Steady air temperature rise (C) when @p cfm of airflow absorbs
 * @p watts of heat. Fails for non-positive airflow.
 */
double airTemperatureRise(double watts, double cfm);

/**
 * Airflow (CFM) required to remove @p watts with at most
 * @p delta_t_celsius inlet-to-outlet rise — the Table II calculation.
 */
double requiredAirflow(double watts, double delta_t_celsius);

/**
 * Heat (W) a flow of @p cfm can absorb within @p delta_t_celsius —
 * the inverse budget question (how much power fits in a duct).
 */
double absorbableHeat(double cfm, double delta_t_celsius);

} // namespace densim

#endif // DENSIM_AIRFLOW_FIRST_LAW_HH
