# Empty dependencies file for fig13_zone_behavior.
# This may be replaced when dependencies are built.
