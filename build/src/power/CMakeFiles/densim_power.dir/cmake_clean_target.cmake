file(REMOVE_RECURSE
  "libdensim_power.a"
)
