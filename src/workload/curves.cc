#include "workload/curves.hh"

#include "power/pstate.hh"
#include "util/logging.hh"

namespace densim {

const FreqCurve &
freqCurveFor(WorkloadSet set)
{
    // Indexed by PStateTable::x2150(): 1100/1300/1500/1700/1900 MHz.
    // Digitized from Fig. 7: power at 90 C (a), performance relative
    // to 1900 MHz (b).
    static const FreqCurve computation{
        {9.8, 11.6, 13.6, 15.7, 18.0},
        {0.650, 0.7375, 0.825, 0.9125, 1.0},
    };
    static const FreqCurve storage{
        {8.2, 8.7, 9.3, 9.9, 10.5},
        {0.900, 0.925, 0.950, 0.975, 1.0},
    };
    static const FreqCurve gp{
        {8.3, 9.6, 11.0, 12.4, 14.0},
        {0.700, 0.775, 0.850, 0.925, 1.0},
    };
    switch (set) {
      case WorkloadSet::Computation:
        return computation;
      case WorkloadSet::Storage:
        return storage;
      case WorkloadSet::GeneralPurpose:
        return gp;
    }
    panic("unknown workload set");
}

double
peakPowerW(WorkloadSet set)
{
    return freqCurveFor(set).totalPowerAt90C.back();
}

double
perfAtFreq(WorkloadSet set, double freq_mhz)
{
    const auto &table = PStateTable::x2150();
    const auto &curve = freqCurveFor(set);
    if (freq_mhz <= table.slowest().freqMhz)
        return curve.perfRel.front();
    if (freq_mhz >= table.fastest().freqMhz)
        return curve.perfRel.back();
    for (std::size_t i = 1; i < table.size(); ++i) {
        const double f0 = table.at(i - 1).freqMhz;
        const double f1 = table.at(i).freqMhz;
        if (freq_mhz <= f1) {
            const double frac = (freq_mhz - f0) / (f1 - f0);
            return curve.perfRel[i - 1] +
                   frac * (curve.perfRel[i] - curve.perfRel[i - 1]);
        }
    }
    panic("unreachable: frequency interpolation fell through");
}

} // namespace densim
