/**
 * @file
 * Scheduler interface and the read-only view of server state that
 * policies are allowed to consult.
 *
 * The paper's centralized job controller (Sec. III-D) keeps a FIFO
 * job queue and, whenever a job and at least one idle socket exist,
 * asks the active scheduling policy to pick the socket. Policies see
 * instantaneous and historical temperatures, socket powers and
 * frequencies, physical location, the coupling map, and the DVFS
 * prediction machinery — everything Sec. IV's schemes require — but
 * can mutate nothing.
 */

#ifndef DENSIM_SCHED_SCHEDULER_HH
#define DENSIM_SCHED_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/effects.hh"
#include "obs/registry.hh"
#include "power/leakage.hh"
#include "power/power_manager.hh"
#include "server/topology.hh"
#include "thermal/coupling_map.hh"
#include "util/rng.hh"
#include "workload/job_generator.hh"

namespace densim {

class Arena;
struct PredictionCache;

/**
 * Snapshot of simulator state offered to a policy for one decision.
 * The per-socket fields are raw pointers into the engine's flat
 * structure-of-arrays state, indexed by socket id over [0, nSockets)
 * — policies score candidates by scanning these arrays directly, with
 * no per-socket accessor calls in the inner loop. Pointers are
 * non-owning and valid only for the duration of the pick() call.
 */
struct SchedContext
{
    const ServerTopology *topo;
    const CouplingMap *coupling;
    /**
     * Generation counter of *coupling's coefficients. The engine
     * bumps it whenever the map is rebuilt in place (a fan fault
     * derating every duct's airflow); policies that cache
     * coupling-derived state must key their cache on (coupling,
     * couplingEpoch) — the rebuilt map reuses the same address, so
     * the pointer alone cannot detect the change.
     */
    std::uint64_t couplingEpoch = 0;
    const PowerManager *pm;
    const LeakageModel *leak;
    double inletC;

    /** Idle sockets, ascending ids; never empty during pick(). */
    const std::vector<std::size_t> *idle;

    std::size_t nSockets = 0;      //!< Length of every array below.
    const double *chipTempC;       //!< Instantaneous chip T (sensed).
    const double *histTempC;       //!< Exponentially averaged.
    const double *ambientC;        //!< Current (slow, 30 s) ambient.
    const double *boostCreditS;    //!< Remaining boost-dwell credit, s.
    const double *powerW;          //!< Current socket power.
    const double *freqMhz;         //!< 0 when idle.
    const WorkloadSet *runningSet; //!< Valid when busy.
    const std::uint8_t *busy;      //!< Nonzero when busy.

    /**
     * Precomputed topo->rowOf(s) per socket, or null in hand-built
     * test contexts (policies fall back to querying the topology).
     * Saves a bounds-checked topology lookup per candidate in the
     * row-local CP fast path.
     */
    const int *socketRow = nullptr;

    Rng *rng; //!< Policy-visible randomness (deterministic per run).

    /**
     * Per-epoch scratch arena for decision-local allocations
     * (candidate lists, row tallies). Policies must bracket use with
     * mark()/release(); may be null in hand-built test contexts, in
     * which case policies fall back to owned buffers.
     */
    Arena *scratch = nullptr;

    /**
     * Engine-maintained memo for predictPlacement /
     * downstreamPenaltyMhz (see sched/prediction.hh). Null when the
     * schedPredictionCache knob is off — the prediction helpers then
     * recompute everything from scratch, which is the reference
     * behaviour the cached path is tested bit-identical against.
     */
    PredictionCache *cache = nullptr;
};

/** Base class for all scheduling policies. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Short policy name as used in the paper ("CF", "CP", ...). */
    virtual const char *name() const = 0;

    /**
     * Choose one socket from ctx.idle for @p job. Must return an
     * element of *ctx.idle.
     */
    DENSIM_HOT virtual std::size_t pick(const Job &job,
                                        const SchedContext &ctx) = 0;

    /** Reset internal state between runs (default: nothing). */
    virtual void reset() {}

    /**
     * Register this policy's instruments into @p registry. The base
     * registers "sched.<name>.picks"; subclasses may override to add
     * their own (and should call the base). The registry must outlive
     * the policy.
     */
    virtual void attachObs(obs::Registry &registry);

    /**
     * pick() plus observability accounting — what the engine calls
     * at every placement and migration decision.
     */
    std::size_t
    pickCounted(const Job &job, const SchedContext &ctx)
    {
        if (picks_ != nullptr)
            picks_->inc();
        return pick(job, ctx);
    }

  private:
    obs::Counter *picks_ = nullptr; //!< Owned by the registry.
};

/**
 * Helpers shared by several policies: pick the extreme-valued idle
 * socket with deterministic (lowest-id) or random tie-breaking.
 * @p key is a flat per-socket array (ctx.nSockets long).
 */
std::size_t pickMinBy(const SchedContext &ctx, const double *key,
                      double tie_eps, bool random_tiebreak);
std::size_t pickMaxBy(const SchedContext &ctx, const double *key,
                      double tie_eps, bool random_tiebreak);

} // namespace densim

#endif // DENSIM_SCHED_SCHEDULER_HH
