
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/coupling_map.cc" "src/thermal/CMakeFiles/densim_thermal.dir/coupling_map.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/coupling_map.cc.o.d"
  "/root/repo/src/thermal/entry_model.cc" "src/thermal/CMakeFiles/densim_thermal.dir/entry_model.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/entry_model.cc.o.d"
  "/root/repo/src/thermal/heatsink.cc" "src/thermal/CMakeFiles/densim_thermal.dir/heatsink.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/heatsink.cc.o.d"
  "/root/repo/src/thermal/hotspot_model.cc" "src/thermal/CMakeFiles/densim_thermal.dir/hotspot_model.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/hotspot_model.cc.o.d"
  "/root/repo/src/thermal/rc_network.cc" "src/thermal/CMakeFiles/densim_thermal.dir/rc_network.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/rc_network.cc.o.d"
  "/root/repo/src/thermal/simple_peak_model.cc" "src/thermal/CMakeFiles/densim_thermal.dir/simple_peak_model.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/simple_peak_model.cc.o.d"
  "/root/repo/src/thermal/transient.cc" "src/thermal/CMakeFiles/densim_thermal.dir/transient.cc.o" "gcc" "src/thermal/CMakeFiles/densim_thermal.dir/transient.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/densim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/airflow/CMakeFiles/densim_airflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
