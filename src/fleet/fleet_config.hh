/**
 * @file
 * Configuration of fleet-scale sharded simulation (DESIGN.md Sec. 15).
 *
 * A fleet run stands up `chassis` independent DenseServerSim shards —
 * each a full density-optimized chassis with its own thermal field,
 * fault timeline and RNG streams — and routes one cluster-level job
 * arrival stream across them through a pluggable dispatcher. Shards
 * advance in lockstep exchange windows of `epochS` simulated seconds
 * and trade headroom/backlog summaries at each barrier, so the fleet
 * result is bit-identical for any worker-thread count.
 *
 * Every knob maps to a "fleet.*" config key (core/config_io.cc). The
 * default `chassis = 0` leaves fleet mode off: a plain run never
 * constructs a FleetSim and is untouched by this subsystem.
 */

#ifndef DENSIM_FLEET_FLEET_CONFIG_HH
#define DENSIM_FLEET_FLEET_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace densim {

/** Full description of one fleet-scale run. */
struct FleetConfig
{
    /** Chassis shards in the fleet; 0 (default) disables fleet mode. */
    std::size_t chassis = 0;

    /**
     * Lockstep exchange window, simulated seconds. Shards advance
     * round(epochS / pmEpochS) power-management epochs between
     * barriers; validate() requires the window to be an integral
     * multiple of the pm epoch so every shard takes the same number
     * of steps per window.
     */
    double epochS = 0.05;

    /** Dispatcher policy name; see knownFleetDispatchers(). */
    std::string dispatcher = "headroom";

    /**
     * Fleet-wide power budget, watts; 0 (default) means unlimited.
     * Only the "power" dispatcher consults it: shards drawing at
     * least their fair share (budget / chassis) are passed over
     * while any shard remains below its share.
     */
    double powerBudgetW = 0.0;

    /**
     * Seed of the fleet RNG domain (per-shard streams, arrival
     * stream). 0 (default) derives it from the run seed; any other
     * value pins the fleet streams independently. Per-shard stream
     * seeds come from domainSeed(effectiveSeed(run), shard, tag) —
     * never from xor-ing constants — so no shard stream can collide
     * with another shard's or with any fault stream.
     */
    std::uint64_t seed = 0;

    /** Is fleet mode on? */
    bool enabled() const { return chassis > 0; }

    /** Fleet RNG domain seed for a run seeded with @p runSeed. */
    std::uint64_t effectiveSeed(std::uint64_t runSeed) const;

    /**
     * Validate ranges; fatal() on nonsense. @p pmEpochS is the
     * engine's power-management epoch, which the exchange window
     * must tile exactly.
     */
    void validate(double pmEpochS) const;
};

/** Dispatcher names accepted by FleetConfig::dispatcher. */
const std::vector<std::string> &knownFleetDispatchers();

} // namespace densim

#endif // DENSIM_FLEET_FLEET_CONFIG_HH
