file(REMOVE_RECURSE
  "CMakeFiles/ext_coupling_degree.dir/ext_coupling_degree.cc.o"
  "CMakeFiles/ext_coupling_degree.dir/ext_coupling_degree.cc.o.d"
  "ext_coupling_degree"
  "ext_coupling_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_coupling_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
