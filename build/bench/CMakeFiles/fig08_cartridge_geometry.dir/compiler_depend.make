# Empty compiler generated dependencies file for fig08_cartridge_geometry.
# This may be replaced when dependencies are built.
