// Known-good fixture for densim-raw-double-boundary: typed quantities
// for unit-carrying values, raw doubles only for dimensionless ones,
// plus one reviewed suppression.
#ifndef DENSIM_TESTS_TIDY_FIXTURES_RAW_DOUBLE_BOUNDARY_GOOD_HH
#define DENSIM_TESTS_TIDY_FIXTURES_RAW_DOUBLE_BOUNDARY_GOOD_HH

#include "core/units.hh"

namespace densim_fixture {

void setAmbient(densim::Celsius ambient);   // Typed quantity.
double scale(double factor, double ratio);  // Dimensionless: fine.

// NOLINTNEXTLINE(densim-raw-double-boundary)
void legacySetAmbient(double ambient_c);    // Reviewed suppression.

} // namespace densim_fixture

#endif // DENSIM_TESTS_TIDY_FIXTURES_RAW_DOUBLE_BOUNDARY_GOOD_HH
