/**
 * @file
 * Extension bench (beyond the paper): inlet-temperature sensitivity.
 *
 * Data centers increasingly run warm aisles (the paper cites Facebook
 * inlets of ~29 C). This bench sweeps the server inlet temperature at
 * a fixed mid-high load and asks whether CP's advantage over CF grows
 * as the whole thermal envelope tightens — the expectation being that
 * coupling-aware placement matters more when there is less headroom
 * everywhere.
 */

#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== Extension: inlet temperature sensitivity "
                 "(Computation, 60% load) ===\n\n";

    const std::vector<double> inlets{18.0, 24.0, 30.0, 36.0};
    const std::vector<std::string> schemes{"CF", "HF", "Predictive",
                                           "CP"};

    TableWriter table({"Inlet (C)", "Scheme", "Perf vs CF", "AvgFreq",
                       "Boost%"});
    for (double inlet : inlets) {
        // Per-seed CF baselines at this inlet.
        std::vector<RunSpec> specs;
        for (std::uint64_t seed : benchSeeds()) {
            for (const std::string &scheme : schemes) {
                RunSpec spec;
                spec.scheduler = scheme;
                spec.config =
                    sutBenchConfig(0.6, WorkloadSet::Computation);
                spec.config.topo.inletC = inlet;
                spec.config.seed = seed;
                specs.push_back(spec);
            }
        }
        const auto results = runAll(specs);
        const std::size_t block = schemes.size();
        for (std::size_t i = 0; i < block; ++i) {
            double perf = 0, freq = 0, boost = 0;
            for (std::size_t k = 0; k < benchSeeds().size(); ++k) {
                const SimMetrics &m = results[k * block + i].metrics;
                const SimMetrics &cf = results[k * block].metrics;
                perf += relativePerformance(m, cf);
                freq += m.avgRelFreq();
                boost += 100 * m.boostFraction();
            }
            const double n =
                static_cast<double>(benchSeeds().size());
            table.newRow()
                .cell(inlet, 0)
                .cell(schemes[i])
                .cell(perf / n, 3)
                .cell(freq / n, 3)
                .cell(boost / n, 1);
        }
    }
    table.print(std::cout);
    std::cout << "\nWarmer inlets shift every socket toward its "
                 "thermal limit; the load level at which coupling-"
                 "aware placement pays off moves down with them.\n";
    return 0;
}
