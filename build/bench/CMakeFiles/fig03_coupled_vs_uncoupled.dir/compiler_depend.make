# Empty compiler generated dependencies file for fig03_coupled_vs_uncoupled.
# This may be replaced when dependencies are built.
