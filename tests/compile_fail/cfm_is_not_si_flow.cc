// Ill-formed: CFM and m^3/s are distinct types so the 4.719e-4
// conversion can never be skipped; use toM3PerS() explicitly.
#include "core/units.hh"

int
main()
{
    const densim::Cfm flow(6.35);
    const densim::CubicMetersPerSec si = flow;
    return si.value() > 0.0 ? 0 : 1;
}
