/**
 * @file
 * Xperf-style job traces.
 *
 * The paper captures PCMark activity with the Windows Xperf tool and
 * replays it through the simulator (Sec. III-A). densim's equivalent
 * is a plain-text trace of job arrivals (microsecond timestamps,
 * benchmark id, nominal duration) that can be captured from a
 * JobGenerator and replayed into the simulator, so experiments can be
 * reproduced from a fixed artifact rather than a seed.
 *
 * Format (one record per line, '#' comments allowed):
 *
 *     densim-xperf 1
 *     set Computation
 *     <arrival_us> <benchmark_index> <duration_us>
 */

#ifndef DENSIM_WORKLOAD_XPERF_TRACE_HH
#define DENSIM_WORKLOAD_XPERF_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job_generator.hh"

namespace densim {

/** A captured job trace. */
class XperfTrace
{
  public:
    /** Empty trace for @p set. */
    explicit XperfTrace(WorkloadSet set);

    /** Capture @p count jobs from a generator. */
    static XperfTrace capture(JobGenerator &gen, std::size_t count);

    /** Parse from a stream; fails on malformed input. */
    static XperfTrace load(std::istream &in);

    /** Parse from a file path. */
    static XperfTrace loadFile(const std::string &path);

    /** Serialize to a stream. */
    void save(std::ostream &out) const;

    /** Serialize to a file path. */
    void saveFile(const std::string &path) const;

    /** Append one job (arrival must not precede the previous one). */
    void append(const Job &job);

    const std::vector<Job> &jobs() const { return jobs_; }
    WorkloadSet set() const { return set_; }

  private:
    WorkloadSet set_;
    std::vector<Job> jobs_;
};

} // namespace densim

#endif // DENSIM_WORKLOAD_XPERF_TRACE_HH
