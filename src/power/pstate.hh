/**
 * @file
 * Processor performance states (P-states).
 *
 * The AMD Opteron X2150 of the SUT runs from 1100 MHz to 1900 MHz in
 * 200 MHz steps (Table III); the top two states (1700, 1900 MHz) are
 * boost states used opportunistically when thermal headroom exists,
 * and 1500 MHz is the highest sustained (non-boost) frequency
 * (Sec. III-D, [36]).
 */

#ifndef DENSIM_POWER_PSTATE_HH
#define DENSIM_POWER_PSTATE_HH

#include <cstddef>
#include <vector>

namespace densim {

/** One frequency step. */
struct PState
{
    double freqMhz; //!< Core frequency.
    bool boost;     //!< Opportunistic boost state?
};

/**
 * Ordered table of P-states, ascending in frequency. Index 0 is the
 * slowest state.
 */
class PStateTable
{
  public:
    /** Build from an ascending list of states. */
    explicit PStateTable(std::vector<PState> states);

    /** X2150 table: 1100/1300/1500 sustained + 1700/1900 boost. */
    static const PStateTable &x2150();

    std::size_t size() const { return states_.size(); }

    const PState &at(std::size_t i) const;

    /** Fastest state (boost included). */
    const PState &fastest() const { return states_.back(); }

    /** Slowest state. */
    const PState &slowest() const { return states_.front(); }

    /** Index of the highest non-boost state. */
    std::size_t highestSustainedIndex() const;

    /** Index of the state with exactly @p freq_mhz; fails if absent. */
    std::size_t indexOf(double freq_mhz) const;

    /** Frequency of state @p i relative to the fastest state. */
    double relativeFreq(std::size_t i) const;

  private:
    std::vector<PState> states_;
};

} // namespace densim

#endif // DENSIM_POWER_PSTATE_HH
