#!/usr/bin/env bash
#
# Local equivalent of the GitHub Actions matrix
# (.github/workflows/ci.yml): runs every tools/check.sh stage in
# sequence on one machine. Use this where Actions is unavailable.
#
#   tools/ci/run_matrix.sh

set -euo pipefail
# No explicit stage list: check.sh with no arguments runs its full
# default matrix, so this wrapper cannot drift when stages are added.
exec "$(dirname "$0")/../check.sh"
