#include "workload/xperf_trace.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/fs.hh"
#include "util/logging.hh"

namespace densim {

namespace {

WorkloadSet
parseSetName(const std::string &name)
{
    for (WorkloadSet set : allWorkloadSets()) {
        if (name == workloadSetName(set))
            return set;
    }
    fatal("xperf trace: unknown workload set '", name, "'");
}

} // namespace

XperfTrace::XperfTrace(WorkloadSet trace_set) : set_(trace_set) {}

XperfTrace
XperfTrace::capture(JobGenerator &gen, std::size_t count)
{
    XperfTrace trace(gen.set());
    for (std::size_t i = 0; i < count; ++i)
        trace.append(gen.next());
    return trace;
}

void
XperfTrace::append(const Job &job)
{
    if (!jobs_.empty() && job.arrivalS < jobs_.back().arrivalS)
        fatal("xperf trace: arrivals must be non-decreasing (",
              job.arrivalS, " after ", jobs_.back().arrivalS, ")");
    if (job.benchmark >= pcmarkCatalog().size())
        fatal("xperf trace: benchmark index ", job.benchmark,
              " out of range");
    jobs_.push_back(job);
}

void
XperfTrace::save(std::ostream &out) const
{
    out << "densim-xperf 1\n";
    out << "set " << workloadSetName(set_) << "\n";
    for (const Job &job : jobs_) {
        out << static_cast<long long>(std::llround(job.arrivalS * 1e6))
            << " " << job.benchmark << " "
            << static_cast<long long>(std::llround(job.nominalS * 1e6))
            << "\n";
    }
}

void
XperfTrace::saveFile(const std::string &path) const
{
    // Atomic replace: a capture killed mid-write must never leave a
    // half-written trace where a complete one (or nothing) stood.
    std::ostringstream out;
    save(out);
    if (!atomicWriteFile(path, out.str()))
        fatal("xperf trace: cannot write '", path, "'");
}

XperfTrace
XperfTrace::load(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != "densim-xperf 1")
        fatal("xperf trace: bad magic line");
    if (!std::getline(in, line))
        fatal("xperf trace: missing set line");
    std::istringstream set_line(line);
    std::string keyword, set_name;
    set_line >> keyword >> set_name;
    if (keyword != "set")
        fatal("xperf trace: expected 'set <name>', got '", line, "'");

    XperfTrace trace(parseSetName(set_name));
    std::uint64_t id = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream record(line);
        long long arrival_us = 0;
        std::size_t bench = 0;
        long long duration_us = 0;
        if (!(record >> arrival_us >> bench >> duration_us))
            fatal("xperf trace: malformed record '", line, "'");
        if (duration_us <= 0)
            fatal("xperf trace: non-positive duration in '", line, "'");
        Job job;
        job.id = id++;
        job.benchmark = bench;
        job.set = trace.set();
        job.arrivalS = static_cast<double>(arrival_us) * 1e-6;
        job.nominalS = static_cast<double>(duration_us) * 1e-6;
        trace.append(job);
    }
    return trace;
}

XperfTrace
XperfTrace::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("xperf trace: cannot open '", path, "'");
    return load(in);
}

} // namespace densim
