# Empty compiler generated dependencies file for densim_airflow.
# This may be replaced when dependencies are built.
