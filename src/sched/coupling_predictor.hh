/**
 * @file
 * CouplingPredictor (CP) — the paper's proposed scheduler
 * (Sec. IV-C).
 *
 * CP extends Predictive with awareness of inter-socket thermal
 * coupling: for each candidate socket it predicts not only the
 * frequency the job itself would sustain there, but also how much the
 * added heat would slow every busy socket downstream, and chooses the
 * placement with the best *net* frequency benefit. Given a socket
 * that runs the job at 1700 MHz but costs two downstream sockets
 * 300 MHz total, and one that runs it at 1600 MHz costing nothing,
 * CP picks the second.
 *
 * Mechanics follow the paper: when jobs are pending the scheduler
 * picks a row of cartridges with idle sockets at random and evaluates
 * only candidates within that row — keeping the scheduler cheap. The
 * prediction chain is the simple linear machinery (coupling-table
 * lookup, Eq. (1), two-pass leakage compensation), never the detailed
 * evaluation models.
 *
 * Two knobs exist for the ablation benches only: a downstream weight
 * (0 reduces CP to row-restricted Predictive) and a global-search
 * flag (evaluate all idle sockets instead of one random row).
 */

#ifndef DENSIM_SCHED_COUPLING_PREDICTOR_HH
#define DENSIM_SCHED_COUPLING_PREDICTOR_HH

#include "sched/scheduler.hh"

namespace densim {

/** The proposed coupling-aware predictive policy. */
class CouplingPredictor : public Scheduler
{
  public:
    /**
     * @param downstream_weight Weight on the predicted downstream
     *        frequency penalty (paper: 1).
     * @param global_search Evaluate all idle sockets instead of a
     *        random row (paper: false).
     */
    explicit CouplingPredictor(double downstream_weight = 1.0,
                               bool global_search = false);

    const char *name() const override { return "CP"; }
    DENSIM_ALLOCATES(
        "arena-miss fallback scratch resized to the idle count; the "
        "arena fast path allocates nothing")
    std::size_t pick(const Job &job, const SchedContext &ctx) override;

    double downstreamWeight() const { return downstreamWeight_; }
    bool globalSearch() const { return globalSearch_; }

  private:
    std::size_t pickWithin(const Job &job, const SchedContext &ctx,
                           const std::size_t *candidates,
                           std::size_t count);

    double downstreamWeight_;
    bool globalSearch_;
    // Decision-local buffer used only when the context carries no
    // arena (hand-built test contexts).
    std::vector<std::size_t> startsFallback_;
};

} // namespace densim

#endif // DENSIM_SCHED_COUPLING_PREDICTOR_HH
