# Empty compiler generated dependencies file for ext_coupling_degree.
# This may be replaced when dependencies are built.
