#include "sched/min_hr.hh"

#include <algorithm>
#include <limits>

namespace densim {

std::size_t
MinHr::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    if (cachedFor_ != ctx.coupling ||
        cachedEpoch_ != ctx.couplingEpoch) {
        // The offline profiling pass: one fixed map per server (per
        // coupling generation — a fan fault rebuilds the map in
        // place, so the epoch is part of the cache key).
        impact_.resize(ctx.coupling->size());
        for (std::size_t s = 0; s < impact_.size(); ++s)
            impact_[s] = ctx.coupling->downstreamImpact(s).value();
        cachedFor_ = ctx.coupling;
        cachedEpoch_ = ctx.couplingEpoch;
    }

    // Least recirculation first; among equal-impact candidates (one
    // zone spans many rows) take the coolest, so the zone's sockets
    // rotate instead of roasting one of them.
    double best_impact = std::numeric_limits<double>::infinity();
    for (std::size_t s : *ctx.idle)
        best_impact = std::min(best_impact, impact_[s]);
    double best_temp = std::numeric_limits<double>::infinity();
    std::size_t best = (*ctx.idle)[0];
    for (std::size_t s : *ctx.idle) {
        if (impact_[s] > best_impact + 1e-12)
            continue;
        if (ctx.chipTempC[s] < best_temp) {
            best_temp = ctx.chipTempC[s];
            best = s;
        }
    }
    return best;
}

} // namespace densim
