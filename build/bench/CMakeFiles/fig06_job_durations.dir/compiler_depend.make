# Empty compiler generated dependencies file for fig06_job_durations.
# This may be replaced when dependencies are built.
