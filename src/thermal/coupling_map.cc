#include "thermal/coupling_map.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "airflow/first_law.hh"
#include "core/invariant.hh"
#include "util/logging.hh"

namespace densim {

CouplingMap::CouplingMap(std::vector<SocketSite> map_sites,
                         CouplingParams map_params)
    : sites_(std::move(map_sites)), params_(map_params)
{
    if (sites_.empty())
        fatal("CouplingMap: no socket sites");
    if (params_.mixFactor < 1.0)
        fatal("CouplingMap: mixFactor must be >= 1 (got ",
              params_.mixFactor, "); heated air cannot un-heat");
    if (params_.wakeFactor <= 0.0)
        fatal("CouplingMap: wakeFactor must be positive, got ",
              params_.wakeFactor);
    if (params_.decayLengthInch <= 0.0)
        fatal("CouplingMap: decay length must be positive");
    if (params_.kappaLocal < 0.0)
        fatal("CouplingMap: kappaLocal must be non-negative");
    if (params_.verticalLeak < 0.0 || params_.verticalLeak > 1.0)
        fatal("CouplingMap: vertical leak ", params_.verticalLeak,
              " outside [0, 1]");
    for (const SocketSite &s : sites_) {
        if (s.ductCfm.value() <= 0.0)
            fatal("CouplingMap: duct airflow must be positive, got ",
                  s.ductCfm.value());
    }

    const std::size_t n = sites_.size();
    airMatrix_.assign(n * n, 0.0);
    ambMatrix_.assign(n * n, 0.0);
    impact_.assign(n, 0.0);
    downstream_.assign(n, {});
    upstream_.assign(n, {});

    // Heat leaking into neighbour ducts comes out of the same-duct
    // share, so the per-source normalization is the sum of leak
    // weights over the rows that actually exist within reach: a
    // single-cartridge system keeps its full same-duct coupling
    // (Fig. 2), interior rows of a tall chassis spread theirs.
    int min_row = sites_[0].duct;
    int max_row = sites_[0].duct;
    for (const SocketSite &site : sites_) {
        min_row = std::min(min_row, site.duct);
        max_row = std::max(max_row, site.duct);
    }
    std::vector<double> row_norm(
        static_cast<std::size_t>(max_row - min_row) + 1, 0.0);
    for (int row = min_row; row <= max_row; ++row) {
        double norm = 0.0;
        for (int r = min_row; r <= max_row; ++r) {
            const int dist = std::abs(r - row);
            double w = 1.0;
            for (int k = 0; k < dist; ++k)
                w *= params_.verticalLeak;
            if (w >= 0.05)
                norm += w;
        }
        row_norm[static_cast<std::size_t>(row - min_row)] = norm;
    }

    for (std::size_t from = 0; from < n; ++from) {
        for (std::size_t to = 0; to < n; ++to) {
            if (from == to)
                continue;
            const double d = sites_[to].streamPosInch -
                             sites_[from].streamPosInch;
            if (d <= 0.0)
                continue; // Only strictly-downstream coupling.
            const int row_dist =
                std::abs(sites_[from].duct - sites_[to].duct);
            double vertical = 1.0;
            for (int k = 0; k < row_dist; ++k)
                vertical *= params_.verticalLeak;
            if (vertical < 0.05)
                continue; // Negligible across distant rows.
            vertical /= row_norm[static_cast<std::size_t>(
                sites_[from].duct - min_row)];
            const double decay = std::exp(
                -(std::max(d, params_.minSpacingInch) -
                  params_.minSpacingInch) /
                params_.decayLengthInch);
            const double gamma =
                params_.mixFactor * decay * vertical;
            const double air = kCelsiusPerWattPerCfm * gamma /
                               sites_[to].ductCfm.value();
            airMatrix_[from * n + to] = air;
            ambMatrix_[from * n + to] = air * params_.wakeFactor;
            impact_[from] += air * params_.wakeFactor;
            downstream_[from].push_back(to);
            upstream_[to].push_back(from);
        }
    }

    // Pack the sparse downstream structure as CSR so the field
    // kernels walk two flat arrays instead of chasing per-source
    // vectors. Row order and in-row order match downstream_, so the
    // packed kernels accumulate in exactly the same order as the
    // vector-based ones (bit-identical fields).
    dsOff_.assign(n + 1, 0);
    for (std::size_t from = 0; from < n; ++from)
        dsOff_[from + 1] = dsOff_[from] + downstream_[from].size();
    dsIdx_.reserve(dsOff_[n]);
    dsAmb_.reserve(dsOff_[n]);
    for (std::size_t from = 0; from < n; ++from) {
        const double *row = &ambMatrix_[from * n];
        for (std::size_t to : downstream_[from]) {
            dsIdx_.push_back(to);
            dsAmb_.push_back(row[to]);
        }
    }

    // Filtered CSR for the incremental delta scatter: drop rows whose
    // coefficient is at or below the drift tolerance the engine's
    // periodic refresh flushes anyway, preserving relative order so
    // an unpruned topology (the SUT calibration prunes nothing)
    // accumulates bit-identically to the full walk.
    dfOff_.assign(n + 1, 0);
    for (std::size_t from = 0; from < n; ++from) {
        std::size_t kept = 0;
        for (std::size_t k = dsOff_[from]; k < dsOff_[from + 1]; ++k) {
            if (dsAmb_[k] > kDeltaCoeffTolerance)
                ++kept;
        }
        dfOff_[from + 1] = dfOff_[from] + kept;
    }
    dfIdx_.reserve(dfOff_[n]);
    dfAmb_.reserve(dfOff_[n]);
    for (std::size_t from = 0; from < n; ++from) {
        for (std::size_t k = dsOff_[from]; k < dsOff_[from + 1]; ++k) {
            if (dsAmb_[k] > kDeltaCoeffTolerance) {
                dfIdx_.push_back(dsIdx_[k]);
                dfAmb_.push_back(dsAmb_[k]);
            }
        }
    }
}

void
CouplingMap::checkIndex(std::size_t i) const
{
    if (i >= sites_.size())
        panic("CouplingMap: socket index ", i, " out of range (",
              sites_.size(), ")");
}

KelvinPerWatt
CouplingMap::coeff(std::size_t from, std::size_t to) const
{
    checkIndex(from);
    checkIndex(to);
    return KelvinPerWatt(ambMatrix_[from * sites_.size() + to]);
}

KelvinPerWatt
CouplingMap::airCoeff(std::size_t from, std::size_t to) const
{
    checkIndex(from);
    checkIndex(to);
    return KelvinPerWatt(airMatrix_[from * sites_.size() + to]);
}

namespace {

double
columnDot(const std::vector<double> &matrix, std::size_t n,
          std::size_t col, const std::vector<double> &powers_w)
{
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j)
        acc += matrix[j * n + col] * powers_w[j];
    return acc;
}

} // namespace

Celsius
CouplingMap::entryTemp(std::size_t i,
                       const std::vector<double> &powers_w,
                       Celsius inlet) const
{
    checkIndex(i);
    if (powers_w.size() != sites_.size())
        panic("CouplingMap::entryTemp: ", powers_w.size(),
              " powers for ", sites_.size(), " sockets");
    return Celsius(inlet.value() +
                   columnDot(airMatrix_, sites_.size(), i, powers_w));
}

Celsius
CouplingMap::ambientEntryTemp(std::size_t i,
                              const std::vector<double> &powers_w,
                              Celsius inlet) const
{
    checkIndex(i);
    if (powers_w.size() != sites_.size())
        panic("CouplingMap::ambientEntryTemp: ", powers_w.size(),
              " powers for ", sites_.size(), " sockets");
    return Celsius(inlet.value() +
                   columnDot(ambMatrix_, sites_.size(), i, powers_w));
}

std::vector<double>
CouplingMap::entryTemps(const std::vector<double> &powers_w,
                        Celsius inlet) const
{
    if (powers_w.size() != sites_.size())
        panic("CouplingMap::entryTemps: ", powers_w.size(),
              " powers for ", sites_.size(), " sockets");
    const std::size_t n = sites_.size();
    std::vector<double> temps(n, inlet.value());
    for (std::size_t j = 0; j < n; ++j) {
        const double p = powers_w[j];
        if (p == 0.0)
            continue;
        const double *row = &airMatrix_[j * n];
        for (std::size_t i : downstream_[j])
            temps[i] += row[i] * p;
    }
    return temps;
}

std::vector<double>
CouplingMap::ambientEntryTemps(const std::vector<double> &powers_w,
                               Celsius inlet) const
{
    if (powers_w.size() != sites_.size())
        panic("CouplingMap::ambientEntryTemps: ", powers_w.size(),
              " powers for ", sites_.size(), " sockets");
    const std::size_t n = sites_.size();
    std::vector<double> temps(n, inlet.value());
    for (std::size_t j = 0; j < n; ++j) {
        const double p = powers_w[j];
        if (p == 0.0)
            continue;
        const double *row = &ambMatrix_[j * n];
        for (std::size_t i : downstream_[j])
            temps[i] += row[i] * p;
    }
    return temps;
}

Celsius
CouplingMap::ambientTemp(std::size_t i,
                         const std::vector<double> &powers_w,
                         Celsius inlet) const
{
    return Celsius(ambientEntryTemp(i, powers_w, inlet).value() +
                   params_.kappaLocal * powers_w[i]);
}

std::vector<double>
CouplingMap::ambientTemps(const std::vector<double> &powers_w,
                          Celsius inlet) const
{
    if (powers_w.size() != sites_.size())
        panic("CouplingMap::ambientTemps: ", powers_w.size(),
              " powers for ", sites_.size(), " sockets");
    const std::size_t n = sites_.size();
    std::vector<double> temps(n);
    ambientTempsInto(temps.data(), n, powers_w.data(), inlet);
    return temps;
}

void
CouplingMap::ambientTempsInto(double *out_c, std::size_t n,
                              const double *powers_w,
                              Celsius inlet) const
{
    if (n != sites_.size())
        panic("CouplingMap::ambientTempsInto: ", n, " temps for ",
              sites_.size(), " sockets");
    const double inlet_c = inlet.value();
    for (std::size_t i = 0; i < n; ++i)
        out_c[i] = inlet_c;
    const std::size_t *idx = dsIdx_.data();
    const double *amb = dsAmb_.data();
    for (std::size_t j = 0; j < n; ++j) {
        const double p = powers_w[j];
        if (p == 0.0)
            continue;
        const std::size_t end = dsOff_[j + 1];
        for (std::size_t k = dsOff_[j]; k < end; ++k)
            out_c[idx[k]] += amb[k] * p;
    }
    const double kappa = params_.kappaLocal;
    for (std::size_t i = 0; i < n; ++i)
        out_c[i] += kappa * powers_w[i];
}

void
CouplingMap::applyPowerDelta(std::vector<double> &temps,
                             std::size_t socket, double old_p,
                             double new_p) const
{
    checkIndex(socket);
    const std::size_t n = sites_.size();
    if (temps.size() != n)
        panic("CouplingMap::applyPowerDelta: ", temps.size(),
              " temps for ", n, " sockets");
    const double dp = new_p - old_p;
    if (dp == 0.0)
        return;
    const std::size_t *idx = dfIdx_.data() + dfOff_[socket];
    const double *amb = dfAmb_.data() + dfOff_[socket];
    const std::size_t count = dfOff_[socket + 1] - dfOff_[socket];
    for (std::size_t k = 0; k < count; ++k)
        temps[idx[k]] += amb[k] * dp;
    temps[socket] += params_.kappaLocal * dp;
}

void
CouplingMap::checkAmbientFieldPhysics(
    const std::vector<double> &powers_w, Celsius inlet,
    const std::vector<double> &field_c) const
{
#if DENSIM_ENABLE_CHECKS
    const double inlet_c = inlet.value();
    const std::size_t n = sites_.size();
    DENSIM_CHECK(powers_w.size() == n && field_c.size() == n,
                 "CouplingMap: field/power size mismatch");
    double total_w = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        DENSIM_CHECK(std::isfinite(powers_w[j]) && powers_w[j] >= 0.0,
                     "CouplingMap: socket ", j,
                     " dissipates unphysical power ", powers_w[j], " W");
        total_w += powers_w[j];
    }
    // Per-source ambient coefficients are bounded by the well-mixed
    // first-law rise times mixFactor (decay <= 1, leak share <= 1)
    // times the wake amplification, so the upstream rise at socket i
    // cannot exceed that envelope applied to the total server power.
    const double amp = params_.mixFactor * params_.wakeFactor;
    const double tol = 1e-9 * std::max(1.0, std::fabs(inlet_c));
    for (std::size_t i = 0; i < n; ++i) {
        const double rise = field_c[i] - inlet_c;
        DENSIM_CHECK(rise >= -tol, "CouplingMap: socket ", i,
                     " ambient ", field_c[i],
                     " C below the inlet — heated air cannot cool");
        const double bound = amp * kCelsiusPerWattPerCfm * total_w /
                                 sites_[i].ductCfm.value() +
                             params_.kappaLocal * powers_w[i];
        DENSIM_CHECK(rise <= bound + tol, "CouplingMap: socket ", i,
                     " ambient rise ", rise,
                     " C exceeds the first-law envelope ", bound, " C");
    }
#else
    (void)powers_w;
    (void)inlet;
    (void)field_c;
#endif
}

KelvinPerWatt
CouplingMap::downstreamImpact(std::size_t from) const
{
    checkIndex(from);
    return KelvinPerWatt(impact_[from]);
}

const std::vector<std::size_t> &
CouplingMap::downstream(std::size_t from) const
{
    checkIndex(from);
    return downstream_[from];
}

const std::vector<std::size_t> &
CouplingMap::upstream(std::size_t to) const
{
    checkIndex(to);
    return upstream_[to];
}

} // namespace densim
