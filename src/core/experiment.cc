#include "core/experiment.hh"

#include "obs/trace.hh"
#include "sched/factory.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace densim {

namespace {

/** Rewrite a spec's obs sinks to per-run file names (run @p i). */
RunSpec
perRunSpec(const RunSpec &spec, std::size_t i)
{
    RunSpec out = spec;
    if (!out.config.obsTracePath.empty())
        out.config.obsTracePath =
            obs::perRunPath(out.config.obsTracePath, i);
    if (!out.config.obsTimelinePath.empty())
        out.config.obsTimelinePath =
            obs::perRunPath(out.config.obsTimelinePath, i);
    return out;
}

} // namespace

RunResult
runOne(const RunSpec &spec)
{
    DenseServerSim sim(spec.config, makeScheduler(spec.scheduler));
    RunResult result;
    result.spec = spec;
    result.metrics = sim.run();
    return result;
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned threads)
{
    if (specs.empty())
        return {};
    std::vector<RunResult> results(specs.size());
    const bool per_run = specs.size() > 1;
    parallelFor(specs.size(), threads, [&](std::size_t i) {
        results[i] =
            runOne(per_run ? perRunSpec(specs[i], i) : specs[i]);
    });
    return results;
}

std::vector<RunSpec>
makeGrid(const std::vector<std::string> &schedulers, WorkloadSet set,
         const std::vector<double> &loads, const SimConfig &base)
{
    std::vector<RunSpec> specs;
    specs.reserve(schedulers.size() * loads.size());
    for (const std::string &scheduler : schedulers) {
        for (double load : loads) {
            RunSpec spec;
            spec.scheduler = scheduler;
            spec.config = base;
            spec.config.workload = set;
            spec.config.load = load;
            specs.push_back(spec);
        }
    }
    return specs;
}

std::map<std::string, std::map<double, SimMetrics>>
indexResults(const std::vector<RunResult> &results)
{
    std::map<std::string, std::map<double, SimMetrics>> index;
    for (const RunResult &r : results)
        index[r.spec.scheduler][r.spec.config.load] = r.metrics;
    return index;
}

} // namespace densim
