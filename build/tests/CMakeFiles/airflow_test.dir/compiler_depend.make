# Empty compiler generated dependencies file for airflow_test.
# This may be replaced when dependencies are built.
