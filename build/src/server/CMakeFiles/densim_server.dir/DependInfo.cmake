
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/catalog.cc" "src/server/CMakeFiles/densim_server.dir/catalog.cc.o" "gcc" "src/server/CMakeFiles/densim_server.dir/catalog.cc.o.d"
  "/root/repo/src/server/sut.cc" "src/server/CMakeFiles/densim_server.dir/sut.cc.o" "gcc" "src/server/CMakeFiles/densim_server.dir/sut.cc.o.d"
  "/root/repo/src/server/topology.cc" "src/server/CMakeFiles/densim_server.dir/topology.cc.o" "gcc" "src/server/CMakeFiles/densim_server.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/densim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/densim_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/airflow/CMakeFiles/densim_airflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
