# Empty compiler generated dependencies file for fig01_density_survey.
# This may be replaced when dependencies are built.
