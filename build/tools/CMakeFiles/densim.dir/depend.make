# Empty dependencies file for densim.
# This may be replaced when dependencies are built.
