file(REMOVE_RECURSE
  "CMakeFiles/densim_airflow.dir/fan.cc.o"
  "CMakeFiles/densim_airflow.dir/fan.cc.o.d"
  "CMakeFiles/densim_airflow.dir/first_law.cc.o"
  "CMakeFiles/densim_airflow.dir/first_law.cc.o.d"
  "CMakeFiles/densim_airflow.dir/flow_budget.cc.o"
  "CMakeFiles/densim_airflow.dir/flow_budget.cc.o.d"
  "libdensim_airflow.a"
  "libdensim_airflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_airflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
