/**
 * @file
 * densim-nondeterministic-iteration: flag range-for loops over
 * std::unordered_{map,set} whose body writes state declared outside
 * the loop. Hash iteration order is unspecified, so any such write
 * breaks the bit-identical determinism contract the golden tests pin
 * (DESIGN.md Sec. 13).
 */

#ifndef DENSIM_TOOLS_TIDY_NONDETERMINISTIC_ITERATION_CHECK_HH
#define DENSIM_TOOLS_TIDY_NONDETERMINISTIC_ITERATION_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace densim::tidy {

class NondeterministicIterationCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder)
        override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult
                   &result) override;
};

} // namespace densim::tidy

#endif // DENSIM_TOOLS_TIDY_NONDETERMINISTIC_ITERATION_CHECK_HH
