/**
 * @file
 * Unit tests for the workload substrate: the 19-application catalog
 * and its Fig. 6 statistics, the Fig. 7 power/performance curves, the
 * Poisson job generator, and Xperf-style trace round-trips.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "util/stats.hh"
#include "workload/benchmark.hh"
#include "workload/curves.hh"
#include "workload/job_generator.hh"
#include "workload/xperf_trace.hh"

namespace densim {
namespace {

TEST(Catalog, NineteenApplications)
{
    EXPECT_EQ(pcmarkCatalog().size(), 19u);
}

TEST(Catalog, EverySetNonEmpty)
{
    for (WorkloadSet set : allWorkloadSets())
        EXPECT_FALSE(benchmarksInSet(set).empty());
}

TEST(Catalog, SetsPartitionTheCatalog)
{
    std::size_t total = 0;
    for (WorkloadSet set : allWorkloadSets())
        total += benchmarksInSet(set).size();
    EXPECT_EQ(total, pcmarkCatalog().size());
}

class CatalogSet : public ::testing::TestWithParam<WorkloadSet>
{
};

TEST_P(CatalogSet, MeanDurationsMillisecondScale)
{
    // Fig. 6(a): average job durations are on the order of a few ms.
    const double mean_s = setMeanDurationS(GetParam());
    EXPECT_GT(mean_s, 1e-3);
    EXPECT_LT(mean_s, 20e-3);
}

TEST_P(CatalogSet, CovAcrossAppsInPaperBand)
{
    // Fig. 6(b): the coefficient of variance across the average
    // durations of a set's applications is between 0.25 and 0.33.
    std::vector<double> means;
    for (std::size_t i : benchmarksInSet(GetParam()))
        means.push_back(pcmarkCatalog()[i].meanDurationMs);
    const double cov = coefficientOfVariation(means);
    EXPECT_GE(cov, 0.25);
    EXPECT_LE(cov, 0.33);
}

TEST_P(CatalogSet, CurveSizesMatchPStates)
{
    const FreqCurve &curve = freqCurveFor(GetParam());
    EXPECT_EQ(curve.totalPowerAt90C.size(), 5u);
    EXPECT_EQ(curve.perfRel.size(), 5u);
}

TEST_P(CatalogSet, PowerAndPerfMonotoneInFrequency)
{
    const FreqCurve &curve = freqCurveFor(GetParam());
    for (std::size_t i = 1; i < curve.perfRel.size(); ++i) {
        EXPECT_GT(curve.totalPowerAt90C[i],
                  curve.totalPowerAt90C[i - 1]);
        EXPECT_GT(curve.perfRel[i], curve.perfRel[i - 1]);
    }
    EXPECT_DOUBLE_EQ(curve.perfRel.back(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSets, CatalogSet,
    ::testing::ValuesIn(allWorkloadSets()),
    [](const ::testing::TestParamInfo<WorkloadSet> &param_info) {
        return workloadSetName(param_info.param);
    });

TEST(Curves, Figure7HeadlineFacts)
{
    // Computation: 18 W at 1900 MHz, ~35% perf loss over 800 MHz.
    const FreqCurve &comp = freqCurveFor(WorkloadSet::Computation);
    EXPECT_NEAR(comp.totalPowerAt90C.back(), 18.0, 1e-9);
    EXPECT_NEAR(comp.perfRel.front(), 0.65, 1e-9);
    // Storage: 10.5 W, least frequency sensitive.
    const FreqCurve &storage = freqCurveFor(WorkloadSet::Storage);
    EXPECT_NEAR(storage.totalPowerAt90C.back(), 10.5, 1e-9);
    EXPECT_GE(storage.perfRel.front(), 0.88);
    // GP sits between on power.
    const FreqCurve &gp = freqCurveFor(WorkloadSet::GeneralPurpose);
    EXPECT_GT(gp.totalPowerAt90C.back(),
              storage.totalPowerAt90C.back());
    EXPECT_LT(gp.totalPowerAt90C.back(),
              comp.totalPowerAt90C.back());
}

TEST(Curves, PerfInterpolationEndpointsAndMidpoint)
{
    EXPECT_DOUBLE_EQ(perfAtFreq(WorkloadSet::Computation, 1900.0), 1.0);
    EXPECT_DOUBLE_EQ(perfAtFreq(WorkloadSet::Computation, 1100.0),
                     0.65);
    EXPECT_NEAR(perfAtFreq(WorkloadSet::Computation, 1200.0),
                (0.65 + 0.7375) / 2.0, 1e-9);
    // Clamped outside the table.
    EXPECT_DOUBLE_EQ(perfAtFreq(WorkloadSet::Storage, 500.0), 0.90);
    EXPECT_DOUBLE_EQ(perfAtFreq(WorkloadSet::Storage, 2500.0), 1.0);
}

TEST(Curves, PeakPowerAccessor)
{
    EXPECT_DOUBLE_EQ(peakPowerW(WorkloadSet::Computation), 18.0);
    EXPECT_DOUBLE_EQ(peakPowerW(WorkloadSet::Storage), 10.5);
}

TEST(JobGenerator, DeterministicGivenSeed)
{
    JobGenerator a(WorkloadSet::Computation, 0.5, 180, 99);
    JobGenerator b(WorkloadSet::Computation, 0.5, 180, 99);
    for (int i = 0; i < 100; ++i) {
        const Job ja = a.next();
        const Job jb = b.next();
        EXPECT_DOUBLE_EQ(ja.arrivalS, jb.arrivalS);
        EXPECT_DOUBLE_EQ(ja.nominalS, jb.nominalS);
        EXPECT_EQ(ja.benchmark, jb.benchmark);
    }
}

TEST(JobGenerator, ArrivalsStrictlyIncrease)
{
    JobGenerator gen(WorkloadSet::Storage, 0.7, 180, 5);
    double last = -1.0;
    for (int i = 0; i < 1000; ++i) {
        const Job job = gen.next();
        EXPECT_GT(job.arrivalS, last);
        last = job.arrivalS;
    }
}

TEST(JobGenerator, RateScalesWithLoad)
{
    JobGenerator half(WorkloadSet::Computation, 0.5, 180, 1);
    JobGenerator full(WorkloadSet::Computation, 1.0, 180, 1);
    EXPECT_NEAR(full.arrivalRate(), 2.0 * half.arrivalRate(), 1e-9);
}

TEST(JobGenerator, EmpiricalRateMatchesNominal)
{
    JobGenerator gen(WorkloadSet::GeneralPurpose, 0.6, 180, 77);
    const auto jobs = gen.generateUntil(5.0);
    EXPECT_NEAR(static_cast<double>(jobs.size()) / 5.0,
                gen.arrivalRate(), 0.05 * gen.arrivalRate());
}

TEST(JobGenerator, DurationsMatchCatalogMeans)
{
    JobGenerator gen(WorkloadSet::Computation, 0.5, 180, 3);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(gen.next().nominalS);
    EXPECT_NEAR(s.mean(), setMeanDurationS(WorkloadSet::Computation),
                0.05 * setMeanDurationS(WorkloadSet::Computation));
}

TEST(JobGenerator, HeavyTailTwoOrdersOfMagnitude)
{
    // Fig. 6(a): maximum job durations run ~2 orders of magnitude
    // above the mean.
    JobGenerator gen(WorkloadSet::Computation, 0.5, 180, 3);
    RunningStats s;
    for (int i = 0; i < 300000; ++i)
        s.add(gen.next().nominalS);
    EXPECT_GT(s.max(), 30.0 * s.mean());
    EXPECT_LT(s.max(), 1000.0 * s.mean());
}

TEST(JobGenerator, DrawsOnlyFromItsSet)
{
    JobGenerator gen(WorkloadSet::Storage, 0.5, 180, 9);
    for (int i = 0; i < 1000; ++i) {
        const Job job = gen.next();
        EXPECT_EQ(pcmarkCatalog()[job.benchmark].set,
                  WorkloadSet::Storage);
    }
}

TEST(JobGenerator, CoversAllAppsOfSet)
{
    JobGenerator gen(WorkloadSet::GeneralPurpose, 0.5, 180, 13);
    std::vector<bool> seen(pcmarkCatalog().size(), false);
    for (int i = 0; i < 5000; ++i)
        seen[gen.next().benchmark] = true;
    for (std::size_t idx : benchmarksInSet(WorkloadSet::GeneralPurpose))
        EXPECT_TRUE(seen[idx]) << pcmarkCatalog()[idx].name;
}

TEST(JobGenerator, InvalidLoadIsFatal)
{
    EXPECT_EXIT(JobGenerator(WorkloadSet::Computation, 0.0, 180, 1),
                ::testing::ExitedWithCode(1), "load");
    EXPECT_EXIT(JobGenerator(WorkloadSet::Computation, 1.5, 180, 1),
                ::testing::ExitedWithCode(1), "load");
}

TEST(XperfTrace, RoundTripPreservesJobs)
{
    JobGenerator gen(WorkloadSet::Computation, 0.5, 180, 21);
    XperfTrace trace = XperfTrace::capture(gen, 500);

    std::stringstream buffer;
    trace.save(buffer);
    const XperfTrace loaded = XperfTrace::load(buffer);

    ASSERT_EQ(loaded.jobs().size(), trace.jobs().size());
    EXPECT_EQ(loaded.set(), trace.set());
    for (std::size_t i = 0; i < trace.jobs().size(); ++i) {
        EXPECT_EQ(loaded.jobs()[i].benchmark, trace.jobs()[i].benchmark);
        EXPECT_NEAR(loaded.jobs()[i].arrivalS, trace.jobs()[i].arrivalS,
                    1e-6);
        EXPECT_NEAR(loaded.jobs()[i].nominalS, trace.jobs()[i].nominalS,
                    1e-6);
    }
}

TEST(XperfTrace, CommentsAndBlankLinesIgnored)
{
    std::stringstream in("densim-xperf 1\nset Storage\n"
                         "# a comment\n\n1000 6 2000\n");
    const XperfTrace trace = XperfTrace::load(in);
    ASSERT_EQ(trace.jobs().size(), 1u);
    EXPECT_EQ(trace.set(), WorkloadSet::Storage);
    EXPECT_NEAR(trace.jobs()[0].arrivalS, 1e-3, 1e-12);
}

TEST(XperfTrace, BadMagicIsFatal)
{
    std::stringstream in("not-a-trace\n");
    EXPECT_EXIT(XperfTrace::load(in), ::testing::ExitedWithCode(1),
                "magic");
}

TEST(XperfTrace, UnknownSetIsFatal)
{
    std::stringstream in("densim-xperf 1\nset Gaming\n");
    EXPECT_EXIT(XperfTrace::load(in), ::testing::ExitedWithCode(1),
                "unknown workload set");
}

TEST(XperfTrace, NonMonotoneArrivalIsFatal)
{
    std::stringstream in(
        "densim-xperf 1\nset Storage\n2000 6 100\n1000 6 100\n");
    EXPECT_EXIT(XperfTrace::load(in), ::testing::ExitedWithCode(1),
                "non-decreasing");
}

TEST(XperfTrace, OutOfRangeBenchmarkIsFatal)
{
    std::stringstream in("densim-xperf 1\nset Storage\n1000 99 100\n");
    EXPECT_EXIT(XperfTrace::load(in), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(WorkloadSetNames, RoundTrip)
{
    EXPECT_STREQ(workloadSetName(WorkloadSet::Computation),
                 "Computation");
    EXPECT_STREQ(workloadSetName(WorkloadSet::Storage), "Storage");
    EXPECT_STREQ(workloadSetName(WorkloadSet::GeneralPurpose), "GP");
}

} // namespace
} // namespace densim
