#include "thermal/entry_model.hh"

#include "airflow/first_law.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace densim {

EntryChainResult
serialChainEntryTemps(int degree_of_coupling, double socket_power_w,
                      double per_socket_cfm, double inlet_c)
{
    if (degree_of_coupling < 1)
        fatal("serialChainEntryTemps: degree of coupling must be >= 1, "
              "got ",
              degree_of_coupling);
    const double step =
        airTemperatureRise(socket_power_w, per_socket_cfm);

    EntryChainResult result;
    result.entryTempsC.reserve(degree_of_coupling);
    RunningStats stats;
    for (int k = 0; k < degree_of_coupling; ++k) {
        const double t = inlet_c + step * k;
        result.entryTempsC.push_back(t);
        stats.add(t);
    }
    result.meanC = stats.mean();
    result.meanRiseC = stats.mean() - inlet_c;
    result.cov = stats.cov();
    return result;
}

} // namespace densim
