file(REMOVE_RECURSE
  "CMakeFiles/ext_inlet_sensitivity.dir/ext_inlet_sensitivity.cc.o"
  "CMakeFiles/ext_inlet_sensitivity.dir/ext_inlet_sensitivity.cc.o.d"
  "ext_inlet_sensitivity"
  "ext_inlet_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_inlet_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
