/**
 * @file
 * Server fan model based on the classic fan affinity laws.
 *
 * The SUT uses ActiveCool-class fans [29] whose published behaviour is
 * summarized by a maximum delivered airflow at maximum electrical
 * power. Between idle and full speed the affinity laws apply:
 * airflow scales linearly with speed and electrical power with the
 * cube of speed. The model also applies a static-pressure derating
 * factor for the dense chassis (a fraction of free-air CFM actually
 * reaches the cartridges).
 */

#ifndef DENSIM_AIRFLOW_FAN_HH
#define DENSIM_AIRFLOW_FAN_HH

#include <string>

#include "core/units.hh"

namespace densim {

/** Static description of one fan model. */
struct FanSpec
{
    std::string name;      //!< Marketing/model name.
    Cfm maxCfm;            //!< Free-air airflow at 100 % speed.
    Watts maxPower;        //!< Electrical power at 100 % speed.
    double minSpeedFrac;   //!< Lowest controllable speed fraction.
    double pressureDerate; //!< Fraction of free-air CFM delivered
                           //!< against chassis back-pressure.
};

/**
 * A fan (or bank of identical fans) controlled by a speed fraction.
 */
class Fan
{
  public:
    /** Construct from a spec and a count of identical units. */
    explicit Fan(FanSpec spec, int count = 1);

    /** ActiveCool-class high-end server fan [29]. */
    static FanSpec activeCoolSpec();

    /** Delivered (derated) airflow at speed fraction @p s in [0,1]. */
    Cfm deliveredCfm(double s) const;

    /** Electrical power at speed fraction @p s (cube law). */
    Watts electricalPower(double s) const;

    /**
     * Lowest speed fraction delivering at least @p flow, clamped to
     * [minSpeedFrac, 1]. Fails if the requirement exceeds capacity.
     */
    double speedForCfm(Cfm flow) const;

    /** Electrical power needed to deliver @p flow. */
    Watts powerForCfm(Cfm flow) const;

    /** Maximum delivered airflow of the whole bank. */
    Cfm maxDeliveredCfm() const;

    const FanSpec &spec() const { return spec_; }
    int count() const { return count_; }

  private:
    FanSpec spec_;
    int count_;
};

} // namespace densim

#endif // DENSIM_AIRFLOW_FAN_HH
