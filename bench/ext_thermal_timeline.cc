/**
 * @file
 * Extension bench — the Fig. 4 idea animated: the per-zone ambient
 * temperature field developing after a cold start at high load. Shows
 * both the 30 s-class socket time constant (here scaled to 3 s) and
 * the front-to-back entry-temperature staircase that drives every
 * scheduling result in the paper.
 */

#include <iostream>

#include "core/dense_server_sim.hh"
#include "core/metrics_io.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Extension: zone ambient timeline, cold start, "
                 "CF @ 80% Computation ===\n\n";

    SimConfig config;
    config.workload = WorkloadSet::Computation;
    config.load = 0.8;
    config.socketTauS = 3.0;
    config.simTimeS = 12.0;
    config.warmupS = 0.1;
    config.warmStart = false; // watch the field develop
    config.timelineSampleS = 1.0;

    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();

    TableWriter table({"t (s)", "Zone 1", "Zone 2", "Zone 3", "Zone 4",
                       "Zone 5", "Zone 6"});
    for (std::size_t i = 0; i < m.timelineS.size(); ++i) {
        table.newRow().cell(m.timelineS[i], 1);
        for (double t : m.zoneAmbientC[i])
            table.cell(t, 1);
    }
    table.print(std::cout);

    if (!m.zoneAmbientC.empty()) {
        const auto &last = m.zoneAmbientC.back();
        std::cout << "\nSettled front-to-back ambient staircase: "
                  << formatFixed(last.back() - last.front(), 1)
                  << " C from zone 1 to zone 6.\n";
    }

    // The same timeline as the machine-readable JSONL stream a run
    // writes when obs.timelinePath is set (one strict-JSON object per
    // sample; pipe into jq / pandas instead of re-parsing the table).
    std::cout << "\nJSONL stream (obs.timelinePath format):\n"
              << timelineToJsonl(m);
    return 0;
}
