/**
 * @file
 * densim — the command-line driver.
 *
 * Subcommands:
 *   run            one simulation; table or --json output
 *   sweep          scheduler x load grid; table or --csv output
 *   trace-capture  generate and persist an Xperf-style job trace
 *   trace-replay   run a persisted trace under a policy
 *   topology       dump the configured server geometry
 *   config-dump    print every configuration key with its value
 *
 * Common flags: --config FILE (key = value, see config-dump for the
 * vocabulary), --set key=value (repeatable, applied after --config),
 * plus the convenience flags listed in usage().
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/run_driver.hh"
#include "core/config_io.hh"
#include "core/dense_server_sim.hh"
#include "core/experiment.hh"
#include "core/metrics_io.hh"
#include "fleet/fleet_metrics.hh"
#include "fleet/fleet_sim.hh"
#include "obs/registry.hh"
#include "sched/factory.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/xperf_trace.hh"

using namespace densim;

namespace {

void
usage()
{
    std::cout <<
        "usage: densim <command> [flags]\n"
        "\n"
        "commands:\n"
        "  run            simulate once and report metrics\n"
        "  sweep          grid of schedulers x loads\n"
        "  trace-capture  write an Xperf-style job trace\n"
        "  trace-replay   simulate a persisted trace\n"
        "  topology       print the configured server geometry\n"
        "  config-dump    print the effective configuration\n"
        "\n"
        "common flags:\n"
        "  --config FILE        load key = value configuration\n"
        "  --set key=value      override one key (repeatable)\n"
        "  --scheduler NAME     policy (default CP); sweep accepts\n"
        "                       --schedulers A,B,C\n"
        "  --workload NAME      Computation | GP | Storage\n"
        "  --load X             target utilization (0,1]\n"
        "  --loads A,B,...      sweep loads\n"
        "  --seed N             RNG seed\n"
        "  --json / --csv       machine-readable output\n"
        "  --counters           report observability counters/gauges\n"
        "  --trace FILE         trace path for trace-* commands\n"
        "  --jobs N             jobs to capture (trace-capture)\n"
        "  --threads N          sweep/fleet worker threads (0 = all\n"
        "                       cores)\n"
        "\n"
        "fleet-scale runs (DESIGN.md Sec. 15):\n"
        "  --fleet N            simulate N chassis shards in lockstep\n"
        "                       (shorthand for --set fleet.chassis=N);\n"
        "                       results are bit-identical for any\n"
        "                       --threads value\n"
        "  --set fleet.dispatcher=P   roundrobin | headroom |\n"
        "                             locality | power\n"
        "  --set fleet.epochS=T       exchange window, simulated s\n"
        "  --set fleet.powerBudgetW=W fleet budget for the power\n"
        "                             dispatcher (0 = unlimited)\n"
        "  --set fleet.seed=N         pin the fleet RNG domain\n"
        "\n"
        "keep-going sweeps (DESIGN.md Sec. 11):\n"
        "  --keep-going         capture per-run failures and finish\n"
        "                       the remaining cells; exit 1 if any\n"
        "                       cell failed\n"
        "  --summary FILE       write the sweep-summary JSON (totals\n"
        "                       plus per-run status and error)\n"
        "  --resume FILE        digest manifest: completed cells are\n"
        "                       skipped, finished cells appended\n"
        "\n"
        "fault injection (DESIGN.md Sec. 11):\n"
        "  --set fault.fanFailS=T        fan derate at T s (speed cap\n"
        "                                fault.fanSpeedFrac)\n"
        "  --set fault.sensorStuckCount=N  freeze N sensors\n"
        "  --set fault.socketFailCount=N   kill N sockets outright\n"
        "  --set fault.logPath=F         applied + response events as\n"
        "                                JSONL\n"
        "\n"
        "crash-safe checkpointing (DESIGN.md Sec. 16):\n"
        "  --checkpoint FILE    write checkpoints to FILE (atomic\n"
        "                       replace); SIGINT/SIGTERM checkpoint,\n"
        "                       flush the obs sinks and exit 3\n"
        "  --ckpt-every S       also checkpoint every S simulated\n"
        "                       seconds (0 = only on signal)\n"
        "  --restore FILE       resume a run from FILE; the resumed\n"
        "                       run is bit-identical to the\n"
        "                       uninterrupted one\n"
        "  --fork ID            with --restore: reseed the RNG\n"
        "                       streams via domainSeed(seed, ID) —\n"
        "                       same state, divergent future\n"
        "  --ckpt-dir DIR       sweep: per-cell checkpoints named by\n"
        "                       run digest in DIR; interrupted cells\n"
        "                       resume mid-run on the next sweep\n"
        "                       (best with --keep-going --resume)\n"
        "\n"
        "observability (DESIGN.md Sec. 10):\n"
        "  --set obs.tracePath=F     write a Chrome trace_event JSON\n"
        "                            (phase events need a DENSIM_OBS\n"
        "                            build; load in chrome://tracing\n"
        "                            or Perfetto)\n"
        "  --set obs.timelinePath=F  write the zone-ambient timeline\n"
        "                            as JSONL; needs --set\n"
        "                            timelineSampleS=X (X > 0)\n";
}

struct Cli
{
    std::string command;
    SimConfig config;
    std::string scheduler = "CP";
    std::vector<std::string> schedulers;
    std::vector<double> loads;
    std::string tracePath;
    std::size_t traceJobs = 100000;
    unsigned threads = 0;
    bool json = false;
    bool csv = false;
    bool counters = false;
    bool keepGoing = false;
    std::string summaryPath;
    std::string resumePath;
    std::string restorePath;
    std::string ckptDir;
    bool fork = false;
    std::uint64_t forkId = 0;
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream stream(s);
    std::string item;
    while (std::getline(stream, item, ','))
        out.push_back(item);
    return out;
}

Cli
parseArgs(int argc, char **argv)
{
    Cli cli;
    if (argc < 2) {
        usage();
        std::exit(1);
    }
    cli.command = argv[1];
    // Bench-friendly defaults: scaled tau, short horizon.
    cli.config.socketTauS = 3.0;
    cli.config.simTimeS = 6.0;
    cli.config.warmupS = 3.0;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            fatal("flag '", argv[i], "' needs a value");
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--config") {
            loadConfigFile(cli.config, need(i));
        } else if (flag == "--set") {
            const std::string kv = need(i);
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                fatal("--set needs key=value, got '", kv, "'");
            applyConfigKey(cli.config, kv.substr(0, eq),
                           kv.substr(eq + 1));
        } else if (flag == "--scheduler") {
            cli.scheduler = need(i);
        } else if (flag == "--schedulers") {
            cli.schedulers = splitCommas(need(i));
        } else if (flag == "--workload") {
            applyConfigKey(cli.config, "workload", need(i));
        } else if (flag == "--load") {
            applyConfigKey(cli.config, "load", need(i));
        } else if (flag == "--loads") {
            for (const std::string &item : splitCommas(need(i)))
                cli.loads.push_back(std::atof(item.c_str()));
        } else if (flag == "--seed") {
            applyConfigKey(cli.config, "seed", need(i));
        } else if (flag == "--trace") {
            cli.tracePath = need(i);
        } else if (flag == "--jobs") {
            cli.traceJobs =
                static_cast<std::size_t>(std::atoll(need(i).c_str()));
        } else if (flag == "--threads") {
            cli.threads = static_cast<unsigned>(
                std::atoi(need(i).c_str()));
        } else if (flag == "--fleet") {
            applyConfigKey(cli.config, "fleet.chassis", need(i));
        } else if (flag == "--checkpoint") {
            applyConfigKey(cli.config, "ckpt.path", need(i));
        } else if (flag == "--ckpt-every") {
            applyConfigKey(cli.config, "ckpt.everyS", need(i));
        } else if (flag == "--restore") {
            cli.restorePath = need(i);
        } else if (flag == "--fork") {
            cli.fork = true;
            cli.forkId = static_cast<std::uint64_t>(
                std::strtoull(need(i).c_str(), nullptr, 10));
        } else if (flag == "--ckpt-dir") {
            cli.ckptDir = need(i);
        } else if (flag == "--keep-going") {
            cli.keepGoing = true;
        } else if (flag == "--summary") {
            cli.summaryPath = need(i);
        } else if (flag == "--resume") {
            cli.resumePath = need(i);
        } else if (flag == "--json") {
            cli.json = true;
        } else if (flag == "--csv") {
            cli.csv = true;
        } else if (flag == "--counters") {
            cli.counters = true;
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            fatal("unknown flag '", flag, "' (try --help)");
        }
    }
    return cli;
}

void
printRunTable(const std::string &scheduler, const SimConfig &config,
              const SimMetrics &m)
{
    TableWriter table({"Metric", "Value"});
    table.newRow().cell("scheduler").cell(scheduler);
    table.newRow().cell("workload").cell(
        workloadSetName(config.workload));
    table.newRow().cell("load").cell(config.load, 2);
    table.newRow().cell("jobs completed").cell(
        static_cast<long long>(m.jobsCompleted));
    table.newRow().cell("runtime expansion").cell(
        m.runtimeExpansion.mean(), 4);
    table.newRow().cell("service expansion").cell(
        m.serviceExpansion.mean(), 4);
    table.newRow().cell("mean queue delay (ms)").cell(
        1e3 * m.queueDelayS.mean(), 3);
    table.newRow().cell("avg relative frequency").cell(m.avgRelFreq(),
                                                       3);
    table.newRow().cell("boost fraction").cell(m.boostFraction(), 3);
    table.newRow().cell("energy (kJ)").cell(m.energyJ / 1e3, 2);
    table.newRow().cell("ED^2 (MJ s^2)").cell(m.ed2() / 1e6, 3);
    table.newRow().cell("work in front half").cell(
        m.workFraction(m.front), 3);
    table.newRow().cell("work on even zones").cell(
        m.workFraction(m.even), 3);
    table.newRow().cell("max chip temp (C)").cell(m.maxChipTempC, 1);
    table.newRow().cell("migrations").cell(
        static_cast<long long>(m.migrations));
    table.print(std::cout);
}

void
printCounterTable(const obs::Registry &registry)
{
    TableWriter table({"Counter", "Value"});
    for (const auto &c : registry.counters())
        table.newRow().cell(c.name).cell(
            static_cast<long long>(c.value));
    table.print(std::cout);
    TableWriter gauges({"Gauge", "Value", "Unit"});
    for (const auto &g : registry.gauges())
        gauges.newRow().cell(g.name).cell(g.value, 3).cell(g.unit);
    gauges.print(std::cout);
}

void
report(const Cli &cli, const SimConfig &config,
       const DenseServerSim &sim, const SimMetrics &m)
{
    // Assemble the full report before emitting a single byte, so a
    // mid-serialization failure can never leave a truncated JSON
    // document (or half a table) on stdout.
    std::ostringstream out;
    if (cli.json) {
        if (cli.counters) {
            out << "{\"metrics\":" << metricsToJson(m) << ",\"obs\":"
                << countersToJson(sim.observability()) << "}\n";
        } else {
            out << metricsToJson(m) << "\n";
        }
        std::cout << out.str();
        return;
    }
    printRunTable(cli.scheduler, config, m);
    if (cli.counters)
        printCounterTable(sim.observability());
}

void
printFleetTable(const Cli &cli, const FleetSim &fleet,
                const FleetMetrics &m)
{
    TableWriter table({"Metric", "Value"});
    table.newRow().cell("chassis").cell(
        static_cast<long long>(m.chassis));
    table.newRow().cell("dispatcher").cell(fleet.dispatcher().name());
    table.newRow().cell("scheduler").cell(cli.scheduler);
    table.newRow().cell("jobs dispatched").cell(
        static_cast<long long>(m.jobsDispatched));
    table.newRow().cell("jobs completed").cell(
        static_cast<long long>(m.jobsCompleted));
    table.newRow().cell("jobs unfinished").cell(
        static_cast<long long>(m.jobsUnfinished));
    table.newRow().cell("runtime expansion").cell(
        m.runtimeExpansion.mean(), 4);
    table.newRow().cell("mean queue delay (ms)").cell(
        1e3 * m.queueDelayS.mean(), 3);
    table.newRow().cell("energy (kJ)").cell(m.energyJ / 1e3, 2);
    table.newRow().cell("makespan (s)").cell(m.makespanS, 3);
    table.newRow().cell("max chip temp (C)").cell(m.maxChipTempC, 1);
    table.print(std::cout);

    TableWriter shards({"Shard", "Dispatched", "Completed",
                        "Energy (kJ)", "Max temp (C)"});
    for (std::size_t s = 0; s < m.perShard.size(); ++s) {
        shards.newRow()
            .cell(static_cast<long long>(s))
            .cell(static_cast<long long>(m.dispatchedPerShard[s]))
            .cell(static_cast<long long>(m.perShard[s].jobsCompleted))
            .cell(m.perShard[s].energyJ / 1e3, 2)
            .cell(m.perShard[s].maxChipTempC, 1);
    }
    shards.print(std::cout);
}

/** Exit code for "checkpointed and stopped by a signal". */
constexpr int kExitCheckpointed = 3;

/** Does this invocation need the checkpoint-aware drive loop? */
bool
wantsCkpt(const Cli &cli)
{
    return !cli.config.ckptPath.empty() || !cli.restorePath.empty();
}

ckpt::RestoreMode
restoreMode(const Cli &cli)
{
    return cli.fork ? ckpt::RestoreMode::Fork
                    : ckpt::RestoreMode::Exact;
}

int
cmdFleetRun(const Cli &cli)
{
    FleetSim fleet(cli.config, cli.scheduler);
    FleetMetrics m;
    if (wantsCkpt(cli)) {
        if (cli.restorePath.empty())
            fleet.beginRun();
        else
            ckpt::restoreFleet(
                fleet, ckpt::readCheckpointFile(cli.restorePath),
                restoreMode(cli), cli.forkId);
        ckpt::installSignalHandlers();
        const ckpt::DriveOutcome out =
            ckpt::driveFleet(fleet, cli.threads);
        if (!out.completed) {
            std::cerr << "densim: stopped at window "
                      << fleet.windowsRun()
                      << (out.checkpointed
                              ? "; checkpoint written to '" +
                                    cli.config.ckptPath + "'"
                              : "")
                      << "\n";
            return kExitCheckpointed;
        }
        m = fleet.finishRun();
    } else {
        m = fleet.run(cli.threads);
    }

    std::ostringstream out;
    if (cli.json) {
        if (cli.counters) {
            out << "{\"fleet\":" << fleetMetricsToJson(m)
                << ",\"obs\":"
                << countersToJson(fleet.observability()) << "}\n";
        } else {
            out << fleetMetricsToJson(m) << "\n";
        }
        std::cout << out.str();
        return 0;
    }
    printFleetTable(cli, fleet, m);
    if (cli.counters)
        printCounterTable(fleet.observability());
    return 0;
}

int
cmdRun(const Cli &cli)
{
    if (cli.config.fleet.enabled())
        return cmdFleetRun(cli);
    DenseServerSim sim(cli.config, makeScheduler(cli.scheduler));
    if (wantsCkpt(cli)) {
        if (cli.restorePath.empty())
            ckpt::beginEngineRun(sim);
        else
            ckpt::restoreEngine(
                sim, ckpt::readCheckpointFile(cli.restorePath),
                restoreMode(cli), cli.forkId);
        ckpt::installSignalHandlers();
        const ckpt::DriveOutcome out = ckpt::driveEngine(sim);
        if (!out.completed) {
            std::cerr << "densim: stopped at t=" << out.nowS << "s"
                      << (out.checkpointed
                              ? "; checkpoint written to '" +
                                    cli.config.ckptPath + "'"
                              : "")
                      << "\n";
            return kExitCheckpointed;
        }
        report(cli, cli.config, sim, sim.finishRun());
        return 0;
    }
    const SimMetrics m = sim.run();
    report(cli, cli.config, sim, m);
    return 0;
}

int
cmdSweep(const Cli &cli)
{
    const std::vector<std::string> schedulers =
        cli.schedulers.empty()
            ? std::vector<std::string>{"CF", "CP"}
            : cli.schedulers;
    const std::vector<double> loads =
        cli.loads.empty() ? std::vector<double>{0.3, 0.5, 0.7, 0.9}
                          : cli.loads;

    std::vector<RunSpec> specs =
        makeGrid(schedulers, cli.config.workload, loads, cli.config);

    if (cli.keepGoing || !cli.summaryPath.empty() ||
        !cli.resumePath.empty() || !cli.ckptDir.empty()) {
        SweepOptions options;
        options.threads = cli.threads;
        options.keepGoing = cli.keepGoing;
        options.summaryPath = cli.summaryPath;
        options.resumePath = cli.resumePath;
        if (!cli.ckptDir.empty()) {
            // Checkpoint-aware cells: a SIGINT/SIGTERM makes every
            // in-flight cell checkpoint itself and report "not
            // done"; the next identical sweep resumes each mid-run.
            const std::string dir = cli.ckptDir;
            options.cellRunner = [dir](const RunSpec &spec) {
                return ckpt::runCellCheckpointed(spec, dir);
            };
            ckpt::installSignalHandlers();
        }
        const std::vector<RunOutcome> outcomes =
            runAllOutcomes(specs, options);
        if (ckpt::stopRequested()) {
            std::size_t unfinished = 0;
            for (const RunOutcome &o : outcomes)
                unfinished += !o.ok;
            std::cerr << "densim: sweep stopped by signal; "
                      << unfinished << " of " << outcomes.size()
                      << " cells checkpointed or pending in '"
                      << cli.ckptDir << "'\n";
            return kExitCheckpointed;
        }

        std::ostringstream out;
        std::size_t failed = 0;
        if (cli.csv) {
            out << metricsCsvHeader() << "\n";
            for (const RunOutcome &o : outcomes) {
                if (o.ok && !o.skipped) {
                    out << metricsToCsvRow(
                               o.spec.scheduler,
                               workloadSetName(o.spec.config.workload),
                               o.spec.config.load, o.metrics)
                        << "\n";
                }
                if (!o.ok)
                    ++failed;
            }
        } else {
            TableWriter table(
                {"Run", "Scheme", "Load", "Status", "Detail"});
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                const RunOutcome &o = outcomes[i];
                const char *status =
                    o.skipped ? "skipped" : (o.ok ? "ok" : "FAILED");
                if (!o.ok)
                    ++failed;
                table.newRow()
                    .cell(static_cast<long long>(i))
                    .cell(o.spec.scheduler)
                    .cell(o.spec.config.load, 2)
                    .cell(status)
                    .cell(o.error);
            }
            table.print(out);
        }
        std::cout << out.str();
        if (failed != 0) {
            std::cerr << "densim: sweep: " << failed << " of "
                      << outcomes.size() << " runs failed\n";
            return 1;
        }
        return 0;
    }

    const auto results = runAll(specs, cli.threads);

    if (cli.csv) {
        // Buffered so an exporter failure cannot truncate the CSV.
        std::ostringstream out;
        out << metricsCsvHeader() << "\n";
        for (const RunResult &r : results) {
            out << metricsToCsvRow(
                       r.spec.scheduler,
                       workloadSetName(r.spec.config.workload),
                       r.spec.config.load, r.metrics)
                << "\n";
        }
        std::cout << out.str();
        return 0;
    }

    auto index = indexResults(results);
    std::vector<std::string> headers{"Scheme"};
    for (double load : loads)
        headers.push_back(formatFixed(100 * load, 0) + "%");
    TableWriter table(std::move(headers));
    for (const std::string &scheduler : schedulers) {
        table.newRow().cell(scheduler);
        for (double load : loads) {
            table.cell(relativePerformance(index[scheduler][load],
                                           index[schedulers[0]][load]),
                       3);
        }
    }
    std::cout << "performance vs " << schedulers[0] << ":\n";
    table.print(std::cout);
    return 0;
}

int
cmdTraceCapture(const Cli &cli)
{
    if (cli.tracePath.empty())
        fatal("trace-capture needs --trace FILE");
    JobGenerator gen(cli.config.workload, cli.config.load,
                     static_cast<int>(
                         ServerTopology(cli.config.topo).numSockets()),
                     cli.config.seed);
    XperfTrace trace = XperfTrace::capture(gen, cli.traceJobs);
    trace.saveFile(cli.tracePath);
    std::cout << "wrote " << trace.jobs().size() << " jobs ("
              << workloadSetName(trace.set()) << ", load "
              << cli.config.load << ") to " << cli.tracePath << "\n";
    return 0;
}

int
cmdTraceReplay(const Cli &cli)
{
    if (cli.tracePath.empty())
        fatal("trace-replay needs --trace FILE");
    const XperfTrace trace = XperfTrace::loadFile(cli.tracePath);
    std::vector<Job> jobs;
    for (const Job &job : trace.jobs()) {
        if (job.arrivalS < cli.config.simTimeS)
            jobs.push_back(job);
    }
    SimConfig config = cli.config;
    config.workload = trace.set();
    DenseServerSim sim(config, makeScheduler(cli.scheduler));
    const SimMetrics m = sim.run(jobs);
    report(cli, config, sim, m);
    return 0;
}

int
cmdTopology(const Cli &cli)
{
    const ServerTopology topo(cli.config.topo);
    std::cout << "sockets: " << topo.numSockets() << " ("
              << topo.numRows() << " rows x " << topo.socketsPerRow()
              << ")\nzones per row: " << topo.zonesPerRow()
              << ", degree of coupling: " << topo.degreeOfCoupling()
              << "\n";
    TableWriter table({"Zone", "Pos (in)", "Sink", "Half"});
    for (int zone = 1; zone <= topo.zonesPerRow(); ++zone) {
        const std::size_t probe = topo.socketsInZone(zone).front();
        table.newRow()
            .cell(static_cast<long long>(zone))
            .cell(topo.streamPosOf(probe), 1)
            .cell(topo.sinkOf(probe).name)
            .cell(topo.inFrontHalf(probe) ? "front" : "back");
    }
    table.print(std::cout);
    return 0;
}

int
densimMain(int argc, char **argv)
{
    const Cli cli = parseArgs(argc, argv);
    if (cli.command == "run")
        return cmdRun(cli);
    if (cli.command == "sweep")
        return cmdSweep(cli);
    if (cli.command == "trace-capture")
        return cmdTraceCapture(cli);
    if (cli.command == "trace-replay")
        return cmdTraceReplay(cli);
    if (cli.command == "topology")
        return cmdTopology(cli);
    if (cli.command == "config-dump") {
        std::cout << saveConfig(cli.config);
        return 0;
    }
    usage();
    fatal("unknown command '", cli.command, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    // Nothing may escape main: an uncaught exception (an injected
    // fault.abortRunS, a filesystem error from a sink) becomes one
    // diagnostic line on stderr and a nonzero exit, never a core dump
    // or a partially-written stdout document.
    try {
        return densimMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "densim: error: " << e.what() << "\n";
        return 1;
    } catch (...) {
        std::cerr << "densim: error: unknown failure\n";
        return 1;
    }
}
