#!/usr/bin/env python3
"""densim custom lint: header self-containment.

Every header in src/ must compile on its own with only its own
#includes — no include-order luck. Checked with `g++ -fsyntax-only`
when a compiler is available.

The raw-double boundary scan that used to live here moved to the
AST-grounded densim-raw-double-boundary check in
tools/tidy/run_densim_tidy.py (DESIGN.md Sec. 13): the regex could
not tell a function parameter from a header-local variable, so its
allowlist carried entries for non-findings. This module still owns
the shared vocabulary — UNIT_NAME_RE, DIMENSIONLESS and the reviewed
allowlist loader — which the tidy driver imports so both gates agree
on what a unit-carrying name is.

Usage:
    tools/lint/densim_lint.py [--repo DIR] [--skip-selfcontain]
    tools/lint/densim_lint.py --self-test

Exits non-zero on any finding. `--self-test` seeds a synthetic
non-self-contained header and verifies the gate flags it (the lint
gate's own lint).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

# Parameter names that denote a dimensioned physical quantity. A raw
# `double` parameter matching one of these in a header is a finding
# (enforced by densim-raw-double-boundary in tools/tidy, which
# imports this table).
UNIT_NAME_RE = re.compile(
    r"""(?x)
    ^(
        .*(_c|_k|_w|_j|_cfm|_m3s|_kpw|_jpk)$   # unit suffixes
      | .*(celsius|kelvin|watt|joule|cfm)$     # spelled-out units
      | (t|temp|temperature)(_.*)?             # t, temp_*, ...
      | .*(ambient|inlet|entry)(_c)?$          # temperature roles
      | .*(power|leak|heat|energy)(_w|_j)?$    # power/energy roles
      | .*(air)?flow$                          # airflow roles
      | .*(rise|delta_t)$                      # temperature deltas
      | (r_int|r_ext|theta|kappa.*|resistance) # thermal resistances
    )$
    """
)

# Parameter names that merely *sound* physical but are dimensionless
# by design; never flagged.
DIMENSIONLESS = {
    "frac",
    "fraction",
    "scale",
    "slope_per_c",
    "gated_frac_tdp",
    "frac_at_ref",
    "hot_fraction",
    "leakage_frac",
    "quant",
    "quant_c",
}

SELFCONTAIN_DIRS = (
    "src/airflow",
    "src/ckpt",
    "src/core",
    "src/fault",
    "src/fleet",
    "src/obs",
    "src/power",
    "src/sched",
    "src/server",
    "src/survey",
    "src/thermal",
    "src/util",
    "src/workload",
)


def load_allowlist(repo):
    allow = set()
    path = os.path.join(repo, "tools", "lint", "raw_double_allowlist.txt")
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.split("#", 1)[0].strip()
            if line:
                allow.add(line)
    return allow


def headers_under(repo, subdir):
    root = os.path.join(repo, subdir)
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".hh"):
                full = os.path.join(dirpath, name)
                yield full, os.path.relpath(full, repo)


def check_self_contained(repo):
    compiler = shutil.which("g++") or shutil.which("c++")
    if compiler is None:
        print("densim_lint: no C++ compiler found — skipping header "
              "self-containment check", file=sys.stderr)
        return 0
    failures = 0
    for subdir in SELFCONTAIN_DIRS:
        for full, rel in headers_under(repo, subdir):
            cmd = [
                compiler,
                "-std=c++20",
                "-fsyntax-only",
                "-x",
                "c++",
                "-I",
                os.path.join(repo, "src"),
                full,
            ]
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=False
            )
            if proc.returncode != 0:
                failures += 1
                print(
                    "densim_lint: {} is not self-contained:\n{}".format(
                        rel, proc.stderr.strip()
                    )
                )
    return failures


SELF_TEST_HEADER = """\
#ifndef DENSIM_LINT_SELF_TEST_HH
#define DENSIM_LINT_SELF_TEST_HH
namespace densim {
// Seeded regression: uses std::size_t without including <cstddef>,
// so the header only compiles by include-order luck.
inline std::size_t seededCount() { return 0; }
}
#endif
"""


def self_test():
    if shutil.which("g++") is None and shutil.which("c++") is None:
        print("densim_lint: SELF-TEST SKIPPED — no C++ compiler on "
              "PATH for the self-containment probe", file=sys.stderr)
        return 0
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "core"))
        seeded = os.path.join(tmp, "src", "core", "seeded.hh")
        with open(seeded, "w", encoding="utf-8") as fh:
            fh.write(SELF_TEST_HEADER)
        if check_self_contained(tmp) == 0:
            print("densim_lint: SELF-TEST FAILED — seeded "
                  "non-self-contained header was not detected")
            return 1
        # And a fixed header must pass.
        with open(seeded, "w", encoding="utf-8") as fh:
            fh.write(SELF_TEST_HEADER.replace(
                "namespace densim {",
                "#include <cstddef>\nnamespace densim {"))
        if check_self_contained(tmp) != 0:
            print("densim_lint: SELF-TEST FAILED — self-contained "
                  "header was still flagged")
            return 1
    print("densim_lint: self-test passed "
          "(seeded include-order regression detected)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo",
        default=os.path.join(os.path.dirname(__file__), "..", ".."),
        help="repository root (default: two levels up)",
    )
    parser.add_argument(
        "--skip-selfcontain",
        action="store_true",
        help="skip the per-header -fsyntax-only compile check",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the scanner catches a seeded regression",
    )
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    repo = os.path.abspath(args.repo)
    failures = 0
    if not args.skip_selfcontain:
        failures += check_self_contained(repo)
    if failures:
        print(
            "densim_lint: {} finding(s)".format(failures),
            file=sys.stderr,
        )
        sys.exit(1)
    print("densim_lint: clean")


if __name__ == "__main__":
    main()
