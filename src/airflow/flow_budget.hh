/**
 * @file
 * Distribution of the server's total airflow across parallel ducts.
 *
 * A density-optimized chassis pushes one total airflow (Table III:
 * 400 CFM for the SUT) through many parallel row ducts; each duct's
 * share then passes over the sockets of that row in series. FlowBudget
 * captures that split and answers "how much air does each socket see"
 * (Table III: 6.35 CFM/socket for the SUT) and "how much duct flow is
 * shared by one zone".
 */

#ifndef DENSIM_AIRFLOW_FLOW_BUDGET_HH
#define DENSIM_AIRFLOW_FLOW_BUDGET_HH

#include "core/units.hh"

namespace densim {

/**
 * Airflow split for a chassis with @c ducts parallel ducts, each
 * containing @c socketsPerZone sockets side by side (sharing the duct
 * cross-section at one streamwise station).
 */
class FlowBudget
{
  public:
    /**
     * @param total_flow Total chassis airflow.
     * @param ducts Number of parallel ducts (rows).
     * @param sockets_per_zone Sockets sharing one streamwise station.
     * @param leakage_frac Fraction of flow bypassing the cartridges
     *     (gaps, cable paths); defaults to the SUT calibration such
     *     that 400 CFM / 15 rows / 2-wide yields 6.35 CFM per socket.
     */
    FlowBudget(Cfm total_flow, int ducts, int sockets_per_zone,
               double leakage_frac = 0.0);

    /** Airflow through one duct after leakage. */
    Cfm ductCfm() const;

    /** Airflow share attributed to a single socket. */
    Cfm perSocketCfm() const;

    /** Flow shared by the sockets of one zone (= ductCfm). */
    Cfm zoneCfm() const { return ductCfm(); }

    Cfm totalCfm() const { return totalCfm_; }
    int ducts() const { return ducts_; }
    int socketsPerZone() const { return socketsPerZone_; }
    double leakageFrac() const { return leakageFrac_; }

    /**
     * SUT budget from Table III: 400 CFM total, 15 row ducts, 2
     * sockets per zone, leakage calibrated to per-socket 6.35 CFM.
     */
    static FlowBudget sutBudget();

  private:
    Cfm totalCfm_;
    int ducts_;
    int socketsPerZone_;
    double leakageFrac_;
};

} // namespace densim

#endif // DENSIM_AIRFLOW_FLOW_BUDGET_HH
