# Empty dependencies file for densim_power.
# This may be replaced when dependencies are built.
