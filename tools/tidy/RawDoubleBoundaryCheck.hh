/**
 * @file
 * densim-raw-double-boundary: a `double` function parameter with a
 * unit-carrying name (ambient_c, power_w, flow_cfm, ...) declared in
 * a header must be a typed quantity from core/units.hh (DESIGN.md
 * Sec. 9), unless the reviewed allowlist carries it. Grounded on real
 * ParmVarDecls, so header locals and members never false-positive —
 * the reason the allowlist shrank when this replaced the regex scan.
 *
 * Options:
 *   densim-raw-double-boundary.Allowlist — path to
 *   tools/lint/raw_double_allowlist.txt (keys `src/...hh:param`).
 */

#ifndef DENSIM_TOOLS_TIDY_RAW_DOUBLE_BOUNDARY_CHECK_HH
#define DENSIM_TOOLS_TIDY_RAW_DOUBLE_BOUNDARY_CHECK_HH

#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace densim::tidy {

class RawDoubleBoundaryCheck : public clang::tidy::ClangTidyCheck
{
  public:
    RawDoubleBoundaryCheck(llvm::StringRef name,
                           clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder)
        override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult
                   &result) override;

  private:
    std::string allowlistPath_;
    std::set<std::string> allow_;
};

} // namespace densim::tidy

#endif // DENSIM_TOOLS_TIDY_RAW_DOUBLE_BOUNDARY_CHECK_HH
