# Empty compiler generated dependencies file for densim_survey.
# This may be replaced when dependencies are built.
