/**
 * @file
 * Recirculation Minimize Heat (MinHR) [63] (Sec. IV-A): assign jobs
 * so as to minimize heat recirculation. The original builds an
 * offline heat-recirculation map by running reference workloads and
 * measuring temperatures across the room; densim's equivalent is the
 * CouplingMap's per-socket total downstream impact (sum of coupling
 * coefficients), which is exactly a fixed heat-transfer map of the
 * dense server. At run time the job goes to the idle socket with the
 * least total downstream coupling, with random tie-breaking across
 * rows (all rows are physically identical).
 */

#ifndef DENSIM_SCHED_MIN_HR_HH
#define DENSIM_SCHED_MIN_HR_HH

#include "sched/scheduler.hh"

namespace densim {

/** Minimize-heat-recirculation policy. */
class MinHr : public Scheduler
{
  public:
    const char *name() const override { return "MinHR"; }
    DENSIM_ALLOCATES(
        "impact cache resized once per coupling generation, not per "
        "decision")
    std::size_t pick(const Job &job, const SchedContext &ctx) override;

  private:
    std::vector<double> impact_; //!< Cached offline map.
    const CouplingMap *cachedFor_ = nullptr;
    std::uint64_t cachedEpoch_ = 0; //!< couplingEpoch of the cache.
};

} // namespace densim

#endif // DENSIM_SCHED_MIN_HR_HH
