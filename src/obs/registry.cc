#include "obs/registry.hh"

#include "util/logging.hh"

namespace densim::obs {

Counter &
Registry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
Registry::gauge(const std::string &name, const std::string &unit)
{
    auto [it, inserted] = gauges_.try_emplace(name);
    if (inserted) {
        it->second.unit = unit;
    } else if (!unit.empty() && it->second.unit != unit) {
        panic("obs: gauge '", name, "' re-registered with unit '",
              unit, "' (was '", it->second.unit, "')");
    }
    return it->second.gauge;
}

void
Registry::resetValues()
{
    for (auto &[name, counter] : counters_)
        counter.reset();
    for (auto &[name, entry] : gauges_)
        entry.gauge.reset();
}

void
Registry::mergePrefixed(const Registry &other, const std::string &prefix)
{
    for (const auto &[name, ctr] : other.counters_)
        counters_[prefix + name].inc(ctr.value());
    for (const auto &[name, entry] : other.gauges_)
        gauge(prefix + name, entry.unit).set(entry.gauge.value());
}

std::vector<CounterSample>
Registry::counters() const
{
    std::vector<CounterSample> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.push_back({name, counter.value()});
    return out;
}

std::vector<GaugeSample>
Registry::gauges() const
{
    std::vector<GaugeSample> out;
    out.reserve(gauges_.size());
    for (const auto &[name, entry] : gauges_)
        out.push_back({name, entry.unit, entry.gauge.value()});
    return out;
}

} // namespace densim::obs
