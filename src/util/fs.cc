#include "util/fs.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace densim {

std::string
parentDir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

bool
dirWritable(const std::string &dir)
{
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0)
        return false;
    if (!S_ISDIR(st.st_mode))
        return false;
    return ::access(dir.c_str(), W_OK) == 0;
}

bool
pathWritable(const std::string &path)
{
    return dirWritable(parentDir(path));
}

bool
atomicWriteFile(const std::string &path, const std::string &contents)
{
    // The temp file must live in the same directory as the target:
    // rename(2) is only atomic within one filesystem.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;

    std::size_t done = 0;
    while (done < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + done, contents.size() - done);
        if (n < 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace densim
