// Known-good fixture for densim-arena-lifo: lexically paired LIFO
// mark/release, including the optional-arena conditional-marker idiom
// used by sched/coupling_predictor.cc.
#include "util/arena.hh"

double conditionalMarker(densim::Arena *arena, int n)
{
    const densim::Arena::Marker marker =
        arena != nullptr ? arena->mark() : densim::Arena::Marker{};
    const double best = static_cast<double>(n);
    if (arena != nullptr)
        arena->release(marker);
    return best;
}

void nestedScopes(densim::Arena &arena)
{
    const densim::Arena::Marker outer = arena.mark();
    {
        const densim::Arena::Marker inner = arena.mark();
        arena.release(inner); // LIFO: inner before outer.
    }
    arena.release(outer);
}

int reviewedEscape(densim::Arena &arena)
{
    // A deliberately held mark, suppressed as a reviewed decision.
    const densim::Arena::Marker m = arena.mark(); // NOLINT(densim-arena-lifo)
    (void)m;
    return 0; // NOLINT(densim-arena-lifo)
}
