file(REMOVE_RECURSE
  "CMakeFiles/airflow_test.dir/airflow_test.cc.o"
  "CMakeFiles/airflow_test.dir/airflow_test.cc.o.d"
  "airflow_test"
  "airflow_test.pdb"
  "airflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
