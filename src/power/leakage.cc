#include "power/leakage.hh"

#include <algorithm>

#include "util/logging.hh"

namespace densim {

LeakageModel::LeakageModel(Watts tdp, double frac_at_ref, Celsius ref,
                           double slope_per_c)
    : tdpW_(tdp.value()), refLeakW_(tdp.value() * frac_at_ref),
      refC_(ref.value()), slopePerC_(slope_per_c)
{
    if (tdpW_ <= 0.0)
        fatal("LeakageModel: TDP must be positive, got ", tdpW_);
    if (frac_at_ref < 0.0 || frac_at_ref >= 1.0)
        fatal("LeakageModel: leakage fraction ", frac_at_ref,
              " outside [0, 1)");
    if (slope_per_c < 0.0)
        fatal("LeakageModel: negative temperature slope ", slope_per_c);
}

const LeakageModel &
LeakageModel::x2150()
{
    static const LeakageModel model(Watts(22.0));
    return model;
}

Watts
LeakageModel::at(Celsius t) const
{
    const double scaled =
        refLeakW_ * (1.0 + slopePerC_ * (t.value() - refC_));
    // Leakage never vanishes entirely; floor at 20 % of the reference
    // value (reached ~65 C below the reference, outside operating
    // range anyway).
    return Watts(std::max(scaled, 0.2 * refLeakW_));
}

} // namespace densim
