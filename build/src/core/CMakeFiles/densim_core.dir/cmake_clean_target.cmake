file(REMOVE_RECURSE
  "libdensim_core.a"
)
