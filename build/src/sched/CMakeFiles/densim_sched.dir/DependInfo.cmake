
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/adaptive_random.cc" "src/sched/CMakeFiles/densim_sched.dir/adaptive_random.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/adaptive_random.cc.o.d"
  "/root/repo/src/sched/balanced.cc" "src/sched/CMakeFiles/densim_sched.dir/balanced.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/balanced.cc.o.d"
  "/root/repo/src/sched/balanced_locations.cc" "src/sched/CMakeFiles/densim_sched.dir/balanced_locations.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/balanced_locations.cc.o.d"
  "/root/repo/src/sched/coolest_first.cc" "src/sched/CMakeFiles/densim_sched.dir/coolest_first.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/coolest_first.cc.o.d"
  "/root/repo/src/sched/coolest_neighbors.cc" "src/sched/CMakeFiles/densim_sched.dir/coolest_neighbors.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/coolest_neighbors.cc.o.d"
  "/root/repo/src/sched/coupling_predictor.cc" "src/sched/CMakeFiles/densim_sched.dir/coupling_predictor.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/coupling_predictor.cc.o.d"
  "/root/repo/src/sched/factory.cc" "src/sched/CMakeFiles/densim_sched.dir/factory.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/factory.cc.o.d"
  "/root/repo/src/sched/hottest_first.cc" "src/sched/CMakeFiles/densim_sched.dir/hottest_first.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/hottest_first.cc.o.d"
  "/root/repo/src/sched/min_hr.cc" "src/sched/CMakeFiles/densim_sched.dir/min_hr.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/min_hr.cc.o.d"
  "/root/repo/src/sched/prediction.cc" "src/sched/CMakeFiles/densim_sched.dir/prediction.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/prediction.cc.o.d"
  "/root/repo/src/sched/predictive.cc" "src/sched/CMakeFiles/densim_sched.dir/predictive.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/predictive.cc.o.d"
  "/root/repo/src/sched/random_sched.cc" "src/sched/CMakeFiles/densim_sched.dir/random_sched.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/random_sched.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/densim_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/densim_sched.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/densim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/densim_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/densim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/densim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/densim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/airflow/CMakeFiles/densim_airflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
