/**
 * @file
 * Balanced scheduling [54][55] (Sec. IV-A): maintain a uniform
 * temperature profile by scheduling work away from hot spots — the
 * job goes to the idle socket physically furthest from the hottest
 * point in the server.
 */

#ifndef DENSIM_SCHED_BALANCED_HH
#define DENSIM_SCHED_BALANCED_HH

#include "sched/scheduler.hh"

namespace densim {

/** Balanced (hot-spot avoiding) policy. */
class Balanced : public Scheduler
{
  public:
    /**
     * @param row_pitch_inch Vertical distance between adjacent row
     *        ducts, used in the distance metric (15 rows in a 4U
     *        chassis: ~0.47 in).
     */
    explicit Balanced(double row_pitch_inch = 0.47);

    const char *name() const override { return "Balanced"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;

  private:
    double rowPitchInch_;
};

} // namespace densim

#endif // DENSIM_SCHED_BALANCED_HH
