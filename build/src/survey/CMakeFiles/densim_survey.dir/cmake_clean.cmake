file(REMOVE_RECURSE
  "CMakeFiles/densim_survey.dir/survey.cc.o"
  "CMakeFiles/densim_survey.dir/survey.cc.o.d"
  "libdensim_survey.a"
  "libdensim_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
