file(REMOVE_RECURSE
  "CMakeFiles/fig11_existing_schemes.dir/fig11_existing_schemes.cc.o"
  "CMakeFiles/fig11_existing_schemes.dir/fig11_existing_schemes.cc.o.d"
  "fig11_existing_schemes"
  "fig11_existing_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_existing_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
