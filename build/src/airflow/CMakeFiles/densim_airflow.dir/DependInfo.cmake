
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/airflow/fan.cc" "src/airflow/CMakeFiles/densim_airflow.dir/fan.cc.o" "gcc" "src/airflow/CMakeFiles/densim_airflow.dir/fan.cc.o.d"
  "/root/repo/src/airflow/first_law.cc" "src/airflow/CMakeFiles/densim_airflow.dir/first_law.cc.o" "gcc" "src/airflow/CMakeFiles/densim_airflow.dir/first_law.cc.o.d"
  "/root/repo/src/airflow/flow_budget.cc" "src/airflow/CMakeFiles/densim_airflow.dir/flow_budget.cc.o" "gcc" "src/airflow/CMakeFiles/densim_airflow.dir/flow_budget.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/densim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
