#!/usr/bin/env python3
"""densim-hot-effects — interprocedural hot-path effect analysis.

Statically proves the per-epoch hot loop's contract (DESIGN.md
Sec. 14): no heap allocation, no throw, no IO, no ambient entropy and
no unordered-iteration-with-escape on ANY path reachable from a
DENSIM_HOT root, not just the paths the test matrix executes. The
dynamic `arena_.stats().growths == 0` assertion remains the runtime
backstop of this proof.

The pass has the classic two-phase shape:

  1. **Per-TU summaries.** Each translation unit is reduced to a map
     `qualified function name -> {direct effects, outgoing calls,
     annotations}`. Summaries are serialized to a cache keyed by a
     content hash of the file (plus frontend + format version), so an
     unchanged file is never re-parsed — the link step is what makes
     the whole-tree gate cheap enough for tier-1 ctest.

  2. **Link step.** Summaries are merged into one call graph and
     effects propagate bottom-up from leaves into the hot roots
     (equivalently: a reachability walk from the roots that reports
     every unsanctioned direct effect it can reach, with the witness
     call path). Virtual calls resolve conservatively to EVERY
     override family member of the called name; calls through
     function pointers / std::function cannot be resolved at all and
     are findings in themselves unless the calling function carries a
     DENSIM_ALLOCATES sanction.

Effect lattice (a fixed product of five booleans, so the merge is a
plain set union and the fixpoint is trivially monotone):

  allocates  new/delete, malloc family, growing std containers,
             local owning-container construction
  throws     throw expressions (std::vector::at and friends are
             resolved as project methods when a project class defines
             the name — see "shadowing" below)
  io         stdio calls, std iostream globals, fstream construction
  entropy    rand/time/chrono-now/random_device/getenv — the same
             ambient sources densim-unseeded-entropy bans
  unordered  range-for over std::unordered_{map,set} whose body
             writes state that escapes the loop

Annotations (src/core/effects.hh):

  DENSIM_HOT                 root: analysis covers everything
                             reachable from here. On a virtual
                             method the whole override family roots.
  DENSIM_ALLOCATES(reason)   sanctions THIS function's direct
                             allocates effects and its indirect
                             calls; a reviewed decision, same policy
                             as the raw-double allowlist.
  DENSIM_COLD                cold endpoint (panic/fatal/diagnostics):
                             propagation stops, effects never reach
                             hot callers.

Builtin-frontend honesty notes (all deliberate, documented choices):
  - Unresolved *named* calls are assumed pure: the std surface is
    carried by curated effect tables, and a closed project namespace
    means unknown names are either std or macros. The clang-tidy
    plugin form re-checks hot bodies type-aware where available.
  - A member call whose name a project class defines ("shadowing",
    e.g. LeakageModel::at) resolves to the project methods only; the
    std container tables apply only to unshadowed names.
  - ALL-CAPS macro invocations are opaque (DENSIM_CHECK bodies are
    compiled out by default and must not contribute effects).
"""

import hashlib
import json
import os
import re
import subprocess

SUMMARY_VERSION = 3

CHECK = "densim-hot-effects"

EFFECT_NAMES = ("allocates", "throws", "io", "entropy", "unordered")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "catch", "throw", "new", "delete", "else", "do", "case", "goto",
    "typeid", "decltype", "noexcept", "assert", "defined",
}

TYPE_KEYWORDS = {
    "auto", "void", "int", "long", "unsigned", "signed", "short",
    "double", "float", "bool", "char", "size_t", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "ptrdiff_t", "uintptr_t", "const", "constexpr", "static", "inline",
    "virtual", "explicit", "friend", "extern", "mutable", "typename",
}

# Member calls that may grow a std container (unless the name is
# shadowed by a project method). pop_*/erase/clear never allocate.
ALLOC_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "insert", "emplace", "emplace_hint", "resize", "reserve", "assign",
    "append", "shrink_to_fit",
}
ALLOC_FUNCS = {
    "malloc", "calloc", "realloc", "free", "aligned_alloc", "strdup",
    "make_unique", "make_shared", "to_string",
}
IO_FUNCS = {
    "printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "puts",
    "fputs", "fputc", "fopen", "fclose", "fwrite", "fread", "fflush",
    "system", "remove", "rename", "perror",
}
IO_STREAMS = {"cout", "cerr", "clog", "ofstream", "ifstream", "fstream"}
ENTROPY_FUNCS = {
    "rand", "srand", "time", "clock", "gettimeofday", "timespec_get",
    "getenv",
}
ENTROPY_TYPES = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "ranlux24", "ranlux48",
    "knuth_b",
}
CLOCK_NAMES = {"steady_clock", "system_clock", "high_resolution_clock"}

# Local construction of one of these (by value) owns heap memory.
OWNING_CONTAINERS = {
    "vector", "deque", "string", "map", "set", "multimap", "multiset",
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "list", "forward_list", "function",
    "stringstream", "ostringstream", "istringstream", "priority_queue",
    "queue", "stack", "basic_string",
}

ANNOT_TOKENS = {
    "DENSIM_HOT": "hot",
    "DENSIM_COLD": "cold",
    "DENSIM_ALLOCATES": "allocates",
}

MACRO_RE = re.compile(r"[A-Z][A-Z0-9_]{2,}\Z")
IDENT_RE = re.compile(r"[A-Za-z_]")

TOKEN_RE = re.compile(r"""
      [A-Za-z_][A-Za-z0-9_]*
    | 0[xX][0-9a-fA-F'.pP+-]+ | \.?\d[\d'.eEpPfFuUlL+-]*
    | <<= | >>= | ->\* | \.\.\. | :: | -> | \+\+ | -- | << | >>
    | <= | >= | == | != | && | \|\| | [+\-*/%&|^!=]=
    | [{}()\[\];:,<>.?~!+\-*/%&|^=]
""", re.X)


class Tok:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return "Tok({!r}@{})".format(self.text, self.line)


def strip_comments_strings_preproc(text):
    """Comments, string/char literals and preprocessor lines removed,
    newlines preserved (so token lines stay true)."""
    out = []
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        two = text[i:i + 2]
        if at_line_start and c in " \t":
            out.append(c)
            i += 1
            continue
        if at_line_start and c == "#":
            # Preprocessor directive incl. backslash continuations.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\" or (text[j - 1] == "\r"
                                           and text[j - 2] == "\\"):
                    out.append("\n")
                    i = j + 1
                    continue
                i = j  # Keep the newline for the normal path below.
                break
            continue
        at_line_start = False
        if c == "\n":
            out.append("\n")
            at_line_start = True
            i += 1
        elif two == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == '"':
            if text[max(0, i - 2):i] == 'R"' or \
                    (i >= 1 and text[i - 1] == "R"):
                m = re.match(r'"([^(]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n if j < 0 else j + len(close)
                    out.append("\n" * text.count("\n", i, j))
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(text):
    clean = strip_comments_strings_preproc(text)
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(clean):
        line += clean.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


def is_ident(tok):
    return tok is not None and bool(IDENT_RE.match(tok.text))


def match_paren(toks, i):
    depth = 0
    while i < len(toks):
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def match_brace(toks, i):
    depth = 0
    while i < len(toks):
        if toks[i].text == "{":
            depth += 1
        elif toks[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def skip_template_args(toks, i):
    """toks[i] == '<': index just past the matching '>' (or i if this
    was not a template argument list after all)."""
    depth = 0
    j = i
    while j < len(toks):
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}"):
            return i
        j += 1
    return i


# --------------------------------------------------------------------
# Per-TU summary extraction — builtin token frontend


def new_entry(rel, line):
    return {
        "file": rel,
        "line": line,
        "effects": {},   # effect -> [[line, detail], ...]
        "calls": [],     # [kind, name, line]
        "indirect": [],  # [line, ...]
        "annot": {},     # hot/cold -> True, allocates -> True
        "virtual": False,
    }


def add_effect(entry, effect, line, detail):
    entry["effects"].setdefault(effect, []).append([line, detail])


def head_annotations(head):
    out = {}
    for t in head:
        if t.text in ANNOT_TOKENS:
            out[ANNOT_TOKENS[t.text]] = True
    return out


def fn_from_head(head):
    """(name, explicit_qualifier, tail_start) of the function this
    head declares, or None if the head is not a function."""
    depth_angle = 0
    depth_round = 0
    depth_square = 0
    for k, t in enumerate(head):
        x = t.text
        if x == "<":
            depth_angle += 1
        elif x in (">", ">>"):
            depth_angle = max(0, depth_angle - (2 if x == ">>" else 1))
        elif x == "[":
            depth_square += 1
        elif x == "]":
            depth_square = max(0, depth_square - 1)
        elif x == ")":
            depth_round = max(0, depth_round - 1)
        elif x == "(":
            if depth_angle == 0 and depth_round == 0 and \
                    depth_square == 0 and k > 0 and \
                    is_ident(head[k - 1]) and \
                    head[k - 1].text not in KEYWORDS and \
                    head[k - 1].text not in TYPE_KEYWORDS and \
                    not MACRO_RE.match(head[k - 1].text):
                name = head[k - 1].text
                qual = None
                if k >= 3 and head[k - 2].text == "::" and \
                        is_ident(head[k - 3]):
                    qual = head[k - 3].text
                close = match_paren(head, k)
                return name, qual, close + 1
            depth_round += 1
    return None


FN_TAIL_OK = {"const", "noexcept", "override", "final", "mutable", "&",
              "&&", "->", "try", "(", ")"}


def head_is_function(head):
    got = fn_from_head(head)
    if got is None:
        return False
    _name, _qual, tail_start = got
    tail = head[tail_start:]
    if not tail:
        return True
    if tail[0].text == ":":  # Constructor initializer list.
        return True
    return tail[0].text in FN_TAIL_OK or is_ident(tail[0])


def fp_names_in_head(head):
    """Function-pointer / std::function parameter names declared in a
    function head: calls through them in the body are indirect."""
    names = set()
    for k in range(len(head)):
        if head[k].text == "(" and k + 4 < len(head) and \
                head[k + 1].text == "*" and is_ident(head[k + 2]) and \
                head[k + 3].text == ")" and head[k + 4].text == "(":
            names.add(head[k + 2].text)
        if head[k].text == "function" and k + 1 < len(head) and \
                head[k + 1].text == "<":
            j = skip_template_args(head, k + 1)
            while j < len(head) and head[j].text in ("&", "&&", "*",
                                                     "const"):
                j += 1
            if j != k + 1 and j < len(head) and is_ident(head[j]):
                names.add(head[j].text)
    return names


def analyze_body(body, rel, entry, fp_seed=()):
    """Scan a function body's tokens for direct effects and calls."""
    fp_names = set(fp_seed)
    n = len(body)
    i = 0
    while i < n:
        t = body[i]
        x = t.text
        nxt = body[i + 1].text if i + 1 < n else ""
        prev = body[i - 1].text if i > 0 else ""

        # ALL-CAPS macro invocation: opaque (DENSIM_CHECK and friends
        # are compiled out by default; their arguments must not
        # contribute effects).
        if MACRO_RE.match(x) and nxt == "(" and x not in ANNOT_TOKENS:
            i = match_paren(body, i + 1) + 1
            continue

        if x == "new":
            if nxt == "(":
                # Placement new targets pre-owned storage (the arena).
                i = match_paren(body, i + 1) + 1
                continue
            add_effect(entry, "allocates", t.line, "new expression")
        elif x == "delete":
            add_effect(entry, "allocates", t.line, "delete expression")
        elif x == "throw":
            add_effect(entry, "throws", t.line, "throw expression")
        elif x in ENTROPY_FUNCS and nxt == "(" and \
                prev not in (".", "->"):
            add_effect(entry, "entropy", t.line,
                       "call to {}()".format(x))
        elif x in ENTROPY_TYPES and prev not in (".", "->"):
            add_effect(entry, "entropy", t.line,
                       "std::{} engine".format(x))
        elif x in CLOCK_NAMES and nxt == "::" and i + 2 < n and \
                body[i + 2].text == "now":
            add_effect(entry, "entropy", t.line,
                       "std::chrono::{}::now()".format(x))
        elif x in IO_FUNCS and nxt == "(" and prev not in (".", "->"):
            add_effect(entry, "io", t.line, "call to {}()".format(x))
        elif x in IO_STREAMS and prev not in (".", "->"):
            add_effect(entry, "io", t.line, "std::{} use".format(x))

        # Local owning-container construction (by value, no & / *).
        if x in OWNING_CONTAINERS and prev not in (".", "->", "::") or \
                (x in OWNING_CONTAINERS and prev == "::" and i >= 2
                 and body[i - 2].text == "std"):
            j = i + 1
            if nxt == "<":
                j2 = skip_template_args(body, j)
                if j2 != j:
                    j = j2
                else:
                    j = None  # `x < y` comparison, not a template.
            elif x not in ("string", "stringstream", "ostringstream",
                           "istringstream"):
                j = None
            if j is not None and j < n:
                byref = False
                while j < n and body[j].text in ("&", "&&", "*",
                                                 "const"):
                    if body[j].text in ("&", "&&", "*"):
                        byref = True
                    j += 1
                if not byref and j < n and is_ident(body[j]) and \
                        j + 1 < n and body[j + 1].text in \
                        (";", "=", "{", "("):
                    add_effect(entry, "allocates", t.line,
                               "local std::{} construction".format(x))
                    if x == "function":
                        fp_names.add(body[j].text)

        # Function-pointer declaration or call: `(*name)(...)`.
        if x == "(" and nxt == "*" and i + 4 < n and \
                is_ident(body[i + 2]) and body[i + 3].text == ")" and \
                body[i + 4].text == "(":
            fp_names.add(body[i + 2].text)
            entry["indirect"].append(body[i + 2].line)
            i += 5
            continue

        # Calls — `name(`, including `name<T...>(` template calls.
        is_call = nxt == "("
        if not is_call and nxt == "<" and is_ident(t):
            j2 = skip_template_args(body, i + 1)
            is_call = j2 != i + 1 and j2 < n and body[j2].text == "("
        if is_ident(t) and is_call and x not in KEYWORDS and \
                x not in TYPE_KEYWORDS and not MACRO_RE.match(x):
            if x in fp_names:
                entry["indirect"].append(t.line)
            elif prev in (".", "->"):
                entry["calls"].append(["member", x, t.line])
            elif prev == "::":
                qual = body[i - 2].text if i >= 2 else ""
                if qual == "std":
                    if x in ALLOC_FUNCS:
                        add_effect(entry, "allocates", t.line,
                                   "call to std::{}()".format(x))
                    elif x in IO_FUNCS:
                        add_effect(entry, "io", t.line,
                                   "call to std::{}()".format(x))
                    elif x in ENTROPY_FUNCS:
                        add_effect(entry, "entropy", t.line,
                                   "call to std::{}()".format(x))
                elif is_ident(body[i - 2]) if i >= 2 else False:
                    entry["calls"].append(
                        ["qualified", qual + "::" + x, t.line])
            else:
                entry["calls"].append(["plain", x, t.line])

        i += 1

    detect_unordered_escape(body, entry)


def detect_unordered_escape(body, entry):
    """Range-for over an unordered container whose body writes state
    declared outside the loop — the 'unordered' lattice effect. Kept
    deliberately close to densim-nondeterministic-iteration."""
    unordered_vars = set()
    for i, t in enumerate(body):
        if t.text in ("unordered_map", "unordered_set") and \
                i + 1 < len(body) and body[i + 1].text == "<":
            j = skip_template_args(body, i + 1)
            while j < len(body) and body[j].text in ("&", "*", "const"):
                j += 1
            if j < len(body) and is_ident(body[j]):
                unordered_vars.add(body[j].text)
    i = 0
    while i < len(body):
        if body[i].text != "for" or i + 1 >= len(body) or \
                body[i + 1].text != "(":
            i += 1
            continue
        close = match_paren(body, i + 1)
        head = body[i + 2:close]
        colon = None
        depth = 0
        for k, t in enumerate(head):
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == ":" and depth == 0:
                colon = k
                break
        if colon is None:
            i = close + 1
            continue
        range_expr = head[colon + 1:]
        over_unordered = any(
            t.text in ("unordered_map", "unordered_set")
            or t.text in unordered_vars for t in range_expr)
        if not over_unordered:
            i = close + 1
            continue
        loop_vars = {t.text for t in head[:colon]
                     if is_ident(t) and t.text not in TYPE_KEYWORDS}
        if close + 1 < len(body) and body[close + 1].text == "{":
            end = match_brace(body, close + 1)
            inner = body[close + 2:end]
        else:
            end = close + 1
            while end < len(body) and body[end].text != ";":
                end += 1
            inner = body[close + 1:end]
        wline = _writes_external(inner, loop_vars)
        if wline is not None:
            add_effect(entry, "unordered", body[i].line,
                       "unordered iteration writes escaping state "
                       "(write at line {})".format(wline))
        i = close + 1


ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}


def _writes_external(body, loop_vars):
    locals_ = set(loop_vars)
    for i, t in enumerate(body):
        if is_ident(t):
            k = i - 1
            while k >= 0 and body[k].text in ("&", "*", "const"):
                k -= 1
            if k >= 0 and (body[k].text in TYPE_KEYWORDS
                           or body[k].text == ">"):
                locals_.add(t.text)
    for i, t in enumerate(body):
        if t.text in ASSIGN_OPS:
            for j in range(i - 1, -1, -1):
                if is_ident(body[j]):
                    if body[j].text not in locals_:
                        return body[j].line
                    break
                if body[j].text not in (".", "->", "]", ")", "::"):
                    break
    return None


def extract_builtin(text, rel):
    """TU summary via the dependency-free token frontend."""
    toks = tokenize(text)
    funcs = {}
    scope = []  # (kind, name) with kind in {"ns", "class"}
    head_start = 0
    i = 0
    n = len(toks)
    while i < n:
        x = toks[i].text
        if x == ";":
            head = toks[head_start:i]
            _record_annotated_decl(head, funcs, scope, rel)
            head_start = i + 1
        elif x == "}":
            if scope:
                scope.pop()
            head_start = i + 1
        elif x == "{":
            head = toks[head_start:i]
            words = {t.text for t in head}
            if "namespace" in words:
                scope.append(("ns", None))
                head_start = i + 1
            elif "enum" in words:
                i = match_brace(toks, i)
                head_start = i + 1
            elif ("class" in words or "struct" in words
                  or "union" in words) and not head_is_function(head):
                scope.append(("class", _class_name(head)))
                head_start = i + 1
            elif head_is_function(head):
                got = fn_from_head(head)
                name, qual, _tail = got
                cls = qual or _innermost_class(scope)
                qname = cls + "::" + name if cls else name
                end = match_brace(toks, i)
                line = head[0].line if head else toks[i].line
                entry = funcs.setdefault(qname, new_entry(rel, line))
                entry["annot"].update(head_annotations(head))
                if "virtual" in words or "override" in words or \
                        "final" in words:
                    entry["virtual"] = True
                analyze_body(toks[i + 1:end], rel, entry,
                             fp_seed=fp_names_in_head(head))
                i = end
                head_start = i + 1
            else:
                # Initializer / braced construct we do not model:
                # consume it but KEEP accumulating the same head, so
                # a constructor's member-init braces do not truncate
                # its head.
                i = match_brace(toks, i)
        i += 1
    return {"version": SUMMARY_VERSION, "functions": funcs}


def _class_name(head):
    for k, t in enumerate(head):
        if t.text in ("class", "struct", "union") and k + 1 < len(head):
            j = k + 1
            while j < len(head) and not is_ident(head[j]):
                j += 1
            if j < len(head):
                return head[j].text
    return None


def _innermost_class(scope):
    for kind, name in reversed(scope):
        if kind == "class":
            return name
    return None


def _record_annotated_decl(head, funcs, scope, rel):
    if not any(t.text in ANNOT_TOKENS for t in head):
        return
    if not head_is_function(head) and fn_from_head(head) is None:
        return
    got = fn_from_head(head)
    if got is None:
        return
    name, qual, _tail = got
    cls = qual or _innermost_class(scope)
    qname = cls + "::" + name if cls else name
    line = head[0].line if head else 0
    entry = funcs.setdefault(qname, new_entry(rel, line))
    entry["annot"].update(head_annotations(head))
    words = {t.text for t in head}
    if "virtual" in words or "override" in words or "final" in words:
        entry["virtual"] = True


# --------------------------------------------------------------------
# Per-TU summary extraction — clang -ast-dump=json frontend
#
# The AST gives exact call targets and types where the token frontend
# guesses; annotations are merged from the token pass (clang's JSON
# dump does not reliably carry the annotate string across versions).
# Any parse trouble falls back to the builtin summary for that file —
# the gate must never silently lose coverage.


def extract_clang(clang, path, rel, repo):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    builtin = extract_builtin(text, rel)
    cmd = [clang, "-std=c++20", "-x", "c++", "-fsyntax-only",
           "-I", os.path.join(repo, "src"),
           "-Xclang", "-ast-dump=json", path]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              check=False)
        if proc.returncode != 0 or not proc.stdout.strip():
            return builtin
        root = json.loads(proc.stdout)
        funcs = {}
        _clang_walk(root, [], funcs, rel, os.path.abspath(path),
                    [None, 0])
        # Annotations and virtual-ness come from the token pass (the
        # macros expand to clang::annotate, whose payload the JSON
        # dump omits on several releases); effects/calls from the AST.
        for qname, bentry in builtin["functions"].items():
            centry = funcs.setdefault(
                qname, new_entry(rel, bentry["line"]))
            centry["annot"].update(bentry["annot"])
            centry["virtual"] = centry["virtual"] or bentry["virtual"]
        return {"version": SUMMARY_VERSION, "functions": funcs}
    except Exception:
        return builtin


def _subtree(node):
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, dict):
            yield cur
            stack.extend(cur.get("inner", []) or [])


def _qual_type(node):
    return (node.get("type") or {}).get("qualType", "")


_STD_CONTAINER_RE = re.compile(
    r"\bstd::(__cxx11::)?({})\b".format("|".join(
        sorted(OWNING_CONTAINERS))))
_UNORDERED_RE = re.compile(r"unordered_(map|set)\b")


def _clang_walk(node, classes, funcs, rel, main_file, loc):
    if not isinstance(node, dict):
        return
    _clang_touch(node, loc)
    kind = node.get("kind")
    in_main = loc[0] is None or os.path.abspath(loc[0]) == main_file
    if kind == "CXXRecordDecl" and node.get("name"):
        classes = classes + [node["name"]]
    if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                "CXXDestructorDecl") and in_main:
        body = None
        for child in node.get("inner", []) or []:
            if isinstance(child, dict) and \
                    child.get("kind") == "CompoundStmt":
                body = child
        if body is not None and node.get("name"):
            cls = classes[-1] if classes else None
            name = node["name"]
            qname = cls + "::" + name if cls else name
            entry = funcs.setdefault(qname, new_entry(rel, loc[1]))
            if node.get("virtual") or kind == "CXXMethodDecl" and \
                    any(isinstance(c, dict)
                        and c.get("kind") == "OverrideAttr"
                        for c in node.get("inner", []) or []):
                entry["virtual"] = True
            _clang_effects(body, entry, loc)
            return  # Children already consumed by _clang_effects.
    for child in node.get("inner", []) or []:
        _clang_walk(child, classes, funcs, rel, main_file, loc)


def _clang_touch(node, loc):
    for key in ("loc", "range"):
        val = node.get(key)
        if key == "range" and isinstance(val, dict):
            val = val.get("begin")
        if isinstance(val, dict):
            for sub in ("spellingLoc", "expansionLoc"):
                if sub in val:
                    val = val[sub]
                    break
            if "file" in val:
                loc[0] = val["file"]
            if "line" in val:
                loc[1] = val["line"]
            return


def _clang_effects(body, entry, loc):
    for n in _subtree(body):
        _clang_touch(n, loc)
        line = loc[1]
        kind = n.get("kind")
        if kind == "CXXNewExpr":
            add_effect(entry, "allocates", line, "new expression")
        elif kind == "CXXDeleteExpr":
            add_effect(entry, "allocates", line, "delete expression")
        elif kind == "CXXThrowExpr":
            add_effect(entry, "throws", line, "throw expression")
        elif kind == "VarDecl":
            qt = _qual_type(n)
            if _STD_CONTAINER_RE.search(qt) and "&" not in qt and \
                    "*" not in qt:
                add_effect(entry, "allocates", line,
                           "local {} construction".format(qt))
            if any(t in qt for t in ENTROPY_TYPES):
                add_effect(entry, "entropy", line,
                           "{} engine".format(qt))
        elif kind == "DeclRefExpr":
            ref = n.get("referencedDecl") or {}
            rname = ref.get("name", "")
            rkind = ref.get("kind")
            if rkind == "FunctionDecl":
                if rname in ENTROPY_FUNCS:
                    add_effect(entry, "entropy", line,
                               "call to {}()".format(rname))
                elif rname in IO_FUNCS:
                    add_effect(entry, "io", line,
                               "call to {}()".format(rname))
                elif rname in ALLOC_FUNCS:
                    add_effect(entry, "allocates", line,
                               "call to {}()".format(rname))
                elif rname == "now":
                    add_effect(entry, "entropy", line,
                               "chrono clock now()")
                else:
                    entry["calls"].append(["plain", rname, line])
            elif rkind == "VarDecl" and rname in IO_STREAMS:
                add_effect(entry, "io", line,
                           "std::{} use".format(rname))
        elif kind == "MemberExpr":
            mname = n.get("name", "")
            if mname:
                entry["calls"].append(["member", mname, line])
        elif kind == "CallExpr":
            inner = n.get("inner") or []
            if inner:
                callee = inner[0]
                refs = [s for s in _subtree(callee)
                        if isinstance(s, dict)
                        and s.get("kind") == "DeclRefExpr"]
                fnref = any(
                    (r.get("referencedDecl") or {}).get("kind")
                    in ("FunctionDecl", "CXXMethodDecl")
                    for r in refs)
                memb = any(s.get("kind") == "MemberExpr"
                           for s in _subtree(callee))
                # A callee that is neither a named function nor a
                # member access is a pointer/std::function call.
                if not fnref and not memb:
                    entry["indirect"].append(line)
        elif kind == "CXXForRangeStmt":
            for sub in _subtree(n):
                if sub.get("kind") == "VarDecl" and \
                        sub.get("name") == "__range1" and \
                        _UNORDERED_RE.search(_qual_type(sub)):
                    add_effect(entry, "unordered", line,
                               "range-for over {}".format(
                                   _qual_type(sub)))
                    break


# --------------------------------------------------------------------
# Summary cache


def cache_key(text, frontend):
    h = hashlib.sha256()
    h.update("densim-hot-effects/v{}/{}\n".format(
        SUMMARY_VERSION, frontend).encode())
    h.update(text.encode("utf-8", "replace"))
    return h.hexdigest()


def load_summary(cache_dir, key):
    if not cache_dir:
        return None
    path = os.path.join(cache_dir, key + ".json")
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("version") == SUMMARY_VERSION:
            return doc
    except (OSError, ValueError):
        pass
    return None


def store_summary(cache_dir, key, summary):
    if not cache_dir:
        return
    try:
        os.makedirs(cache_dir, exist_ok=True)
        path = os.path.join(cache_dir, key + ".json")
        tmp = path + ".tmp.{}".format(os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(summary, fh)
        os.replace(tmp, path)
    except OSError:
        pass  # Cache is an accelerator, never a correctness input.


def summarize_file(path, rel, repo, frontend, clang, cache_dir,
                   override_text=None):
    """Cached per-TU summary of one file."""
    if override_text is None:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = override_text
    key = cache_key(text, frontend if clang else "builtin")
    if override_text is None:
        hit = load_summary(cache_dir, key)
        if hit is not None:
            return hit
    if clang is not None and frontend in ("auto", "clang"):
        summary = extract_clang(clang, path, rel, repo) \
            if override_text is None else extract_builtin(text, rel)
    else:
        summary = extract_builtin(text, rel)
    if override_text is None:
        store_summary(cache_dir, key, summary)
    return summary


# --------------------------------------------------------------------
# Link step: merge summaries, propagate, report


EFFECT_HUMAN = {
    "allocates": "heap allocation",
    "throws": "throw",
    "io": "IO",
    "entropy": "ambient entropy",
    "unordered": "nondeterministic unordered iteration",
}


def link_and_check(summaries):
    """Merge per-TU summaries and walk the call graph from every
    DENSIM_HOT root. Returns [(file, line, message)]."""
    funcs = {}
    for summary in summaries:
        for qname, entry in summary["functions"].items():
            cur = funcs.get(qname)
            if cur is None:
                funcs[qname] = {
                    "file": entry["file"], "line": entry["line"],
                    "effects": {k: list(v) for k, v
                                in entry["effects"].items()},
                    "calls": list(entry["calls"]),
                    "indirect": list(entry["indirect"]),
                    "annot": dict(entry["annot"]),
                    "virtual": entry["virtual"],
                }
            else:
                for k, v in entry["effects"].items():
                    cur["effects"].setdefault(k, []).extend(v)
                cur["calls"].extend(entry["calls"])
                cur["indirect"].extend(entry["indirect"])
                cur["annot"].update(entry["annot"])
                cur["virtual"] = cur["virtual"] or entry["virtual"]
                if entry["effects"] or entry["calls"]:
                    cur["file"] = entry["file"]
                    cur["line"] = entry["line"]

    methods = {}  # bare method name -> [qname]
    frees = {}    # free function name -> qname
    for qname in funcs:
        if "::" in qname:
            methods.setdefault(qname.rsplit("::", 1)[1],
                               []).append(qname)
        else:
            frees[qname] = qname
    virtual_names = {q.rsplit("::", 1)[1] for q, e in funcs.items()
                     if e["virtual"] and "::" in q}
    project_method_names = set(methods)

    roots = [q for q, e in funcs.items() if e["annot"].get("hot")]
    # A hot virtual method roots its whole override family: the call
    # through the base may land in any of them.
    family = set(roots)
    for q in roots:
        if "::" in q:
            bare = q.rsplit("::", 1)[1]
            if bare in virtual_names:
                family.update(methods.get(bare, []))
    roots = sorted(family)

    def resolve(kind, name, caller):
        if kind == "member":
            if name in virtual_names:
                return methods.get(name, [])
            return methods.get(name, [])
        if kind == "qualified":
            if name in funcs:
                return [name]
            bare = name.rsplit("::", 1)[1]
            return methods.get(bare, [])
        # plain
        if "::" in caller:
            self_q = caller.rsplit("::", 1)[0] + "::" + name
            if self_q in funcs:
                return [self_q]
        if name in frees:
            return [frees[name]]
        if name in virtual_names or name in methods:
            return methods.get(name, [])
        return []

    findings = []
    parent = {}
    visited = set()
    queue = []
    for r in roots:
        if r not in visited:
            visited.add(r)
            parent[r] = None
            queue.append(r)

    def witness(qname):
        chain = []
        cur = qname
        while cur is not None:
            chain.append(cur)
            cur = parent[cur]
        chain.reverse()
        if len(chain) == 1:
            return "hot root '{}'".format(chain[0])
        return "hot root '{}' via {}".format(
            chain[0], " -> ".join(chain[1:]))

    while queue:
        q = queue.pop(0)
        e = funcs[q]
        annot = e["annot"]
        if annot.get("cold"):
            if annot.get("hot"):
                findings.append((
                    e["file"], e["line"],
                    "'{}' is marked both DENSIM_HOT and DENSIM_COLD; "
                    "pick one".format(q)))
            continue
        sanction_alloc = annot.get("allocates", False)
        for effect, sites in sorted(e["effects"].items()):
            if effect == "allocates" and sanction_alloc:
                continue
            for line, detail in sites:
                findings.append((
                    e["file"], line,
                    "{} ({}) in '{}' is reachable from {}; sanction "
                    "it with DENSIM_ALLOCATES(reason) on '{}' if "
                    "reviewed, mark the callee DENSIM_COLD if it is "
                    "a deliberate cold path, or restructure".format(
                        EFFECT_HUMAN[effect], detail, q, witness(q),
                        q.rsplit("::", 1)[-1])))
        if not sanction_alloc:
            for line in e["indirect"]:
                findings.append((
                    e["file"], line,
                    "indirect call (function pointer / "
                    "std::function) in '{}' reachable from {} cannot "
                    "be resolved; effects unknown — annotate '{}' "
                    "with DENSIM_ALLOCATES(reason) after review or "
                    "devirtualize".format(
                        q, witness(q), q.rsplit("::", 1)[-1])))
        seen_member_alloc = set()
        for kind, name, line in e["calls"]:
            if kind == "member" and name in ALLOC_METHODS and \
                    name not in project_method_names and \
                    not sanction_alloc and \
                    (name, line) not in seen_member_alloc:
                seen_member_alloc.add((name, line))
                findings.append((
                    e["file"], line,
                    "heap allocation (std container .{}()) in '{}' "
                    "is reachable from {}; sanction it with "
                    "DENSIM_ALLOCATES(reason) on '{}' if the "
                    "container is pre-reserved, or restructure"
                    .format(name, q, witness(q),
                            q.rsplit("::", 1)[-1])))
            targets = resolve(kind, name, q)
            if not targets and kind in ("plain", "qualified"):
                bare = name.rsplit("::", 1)[-1]
                if bare in ALLOC_FUNCS and not sanction_alloc and \
                        (bare, line) not in seen_member_alloc:
                    seen_member_alloc.add((bare, line))
                    findings.append((
                        e["file"], line,
                        "heap allocation (call to {}()) in '{}' is "
                        "reachable from {}; sanction it with "
                        "DENSIM_ALLOCATES(reason) on '{}' if "
                        "reviewed, or restructure".format(
                            bare, q, witness(q),
                            q.rsplit("::", 1)[-1])))
            for target in targets:
                if target not in visited:
                    visited.add(target)
                    parent[target] = q
                    queue.append(target)

    dedup = sorted(set(findings), key=lambda f: (f[0], f[1], f[2]))
    return dedup


def analyze(repo, files, frontend, clang, cache_dir, override=None):
    """files: [(full, rel)]. override: {rel: text} replaces a file's
    content (the negative self-test strips an annotation in memory).
    Returns [(file, line, message)] findings."""
    override = override or {}
    summaries = []
    for full, rel in files:
        summaries.append(summarize_file(
            full, rel, repo, frontend, clang, cache_dir,
            override_text=override.get(rel)))
    return link_and_check(summaries)
