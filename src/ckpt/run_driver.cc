#include "ckpt/run_driver.hh"

#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "ckpt/checkpoint.hh"
#include "core/dense_server_sim.hh"
#include "fleet/fleet_sim.hh"
#include "sched/factory.hh"
#include "util/logging.hh"
#include "workload/job_generator.hh"

namespace densim::ckpt {

namespace {

// The only state a signal handler may touch: a lock-free flag polled
// by the drive loops at epoch/window boundaries.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onStopSignal(int)
{
    g_stop = 1;
}

/**
 * Next index on the fixed cadence grid k * every strictly after
 * @p now_s — floor instead of a running increment, so a resumed run
 * lands on exactly the grid points the uninterrupted run would.
 */
std::uint64_t
nextCadenceIndex(double now_s, double every)
{
    return static_cast<std::uint64_t>(std::floor(now_s / every)) + 1;
}

} // namespace

void
installSignalHandlers()
{
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
}

bool
stopRequested()
{
    return g_stop != 0;
}

void
requestStop()
{
    g_stop = 1;
}

void
clearStopRequest()
{
    g_stop = 0;
}

void
beginEngineRun(DenseServerSim &sim)
{
    const SimConfig &config = sim.config();
    JobGenerator gen(config.workload, config.load,
                     static_cast<int>(sim.topology().numSockets()),
                     config.seed);
    sim.beginRun();
    sim.submitJobs(gen.generateUntil(config.simTimeS));
    sim.closeArrivals();
}

DriveOutcome
driveEngine(DenseServerSim &sim)
{
    const SimConfig &config = sim.config();
    const double every = config.ckptEveryS;
    const bool cadence = !config.ckptPath.empty() && every > 0.0;
    std::uint64_t next_idx =
        cadence ? nextCadenceIndex(sim.nowS(), every) : 0;
    while (sim.epochPending()) {
        if (stopRequested()) {
            DriveOutcome out;
            out.nowS = sim.nowS();
            if (!config.ckptPath.empty()) {
                writeCheckpointFile(config.ckptPath, saveEngine(sim));
                out.checkpointed = true;
            }
            flushSinks(sim);
            return out;
        }
        sim.advanceEpoch();
        if (cadence &&
            sim.nowS() >= static_cast<double>(next_idx) * every) {
            writeCheckpointFile(config.ckptPath, saveEngine(sim));
            next_idx = nextCadenceIndex(sim.nowS(), every);
        }
    }
    DriveOutcome out;
    out.completed = true;
    out.nowS = sim.nowS();
    return out;
}

DriveOutcome
driveFleet(FleetSim &fleet, unsigned threads)
{
    const SimConfig &config = fleet.config();
    const double window_s = config.fleet.epochS;
    const double every = config.ckptEveryS;
    const bool cadence = !config.ckptPath.empty() && every > 0.0;
    // The fleet clock is the window count; between windows every
    // shard sits at window_ * windowS.
    double now_s =
        static_cast<double>(fleet.windowsRun()) * window_s;
    std::uint64_t next_idx =
        cadence ? nextCadenceIndex(now_s, every) : 0;
    for (;;) {
        if (stopRequested()) {
            DriveOutcome out;
            out.nowS = now_s;
            if (!config.ckptPath.empty()) {
                writeCheckpointFile(config.ckptPath, saveFleet(fleet));
                out.checkpointed = true;
            }
            flushSinks(fleet);
            return out;
        }
        if (!fleet.advanceWindow(threads))
            break;
        now_s = static_cast<double>(fleet.windowsRun()) * window_s;
        if (cadence &&
            now_s >= static_cast<double>(next_idx) * every) {
            writeCheckpointFile(config.ckptPath, saveFleet(fleet));
            next_idx = nextCadenceIndex(now_s, every);
        }
    }
    DriveOutcome out;
    out.completed = true;
    out.nowS = now_s;
    return out;
}

SimMetrics
runCellCheckpointed(const RunSpec &spec, const std::string &ckpt_dir)
{
    const std::string path =
        ckpt_dir + "/" + runDigest(spec) + ".ckpt";
    SimConfig config = spec.config;
    config.ckptPath = path;
    DenseServerSim sim(config, makeScheduler(spec.scheduler));
    bool resumed = false;
    if (std::ifstream(path, std::ios::binary).good()) {
        try {
            restoreEngine(sim, readCheckpointFile(path));
            resumed = true;
        } catch (const CkptError &err) {
            // A stale or damaged checkpoint must not sink the cell:
            // warn, restart from scratch, overwrite on next cadence.
            warn("ckpt: ignoring unusable checkpoint '", path,
                 "': ", err.what());
        }
    }
    if (!resumed)
        beginEngineRun(sim);
    const DriveOutcome out = driveEngine(sim);
    if (!out.completed) {
        throw CkptError(
            "checkpointed and stopped at t=" + std::to_string(out.nowS) +
            "s — re-run the sweep to resume this cell");
    }
    SimMetrics metrics = sim.finishRun();
    std::remove(path.c_str());
    return metrics;
}

} // namespace densim::ckpt
