/**
 * @file
 * Inter-socket thermal coupling model — densim's substitute for the
 * paper's Ansys Icepak CFD infrastructure (Sec. III-B).
 *
 * Air flows through each row duct in one direction; a socket's heat
 * raises the temperature of the air arriving at every socket
 * downstream of it in the same duct. Two related quantities are
 * modeled, both linear in upstream power:
 *
 *  - *Air entry temperature* (the Fig. 2/Fig. 4 quantity): duct-mean
 *    air temperature ahead of a socket. The coefficient from socket j
 *    to downstream socket i is the well-mixed first-law rise
 *    (1.76 / ductCfm, C/W) scaled by a mixing factor gamma(d) that
 *    decays with streamwise distance d (heated air leaves a heatsink
 *    as a coherent streamtube; sockets 1.6 in apart inside a
 *    cartridge couple more strongly than across the 3 in cartridge
 *    gaps). gamma at minimum spacing is calibrated so the Fig. 2
 *    cartridge (2 x 15 W upstream) shows its measured 8 C
 *    left-to-right air temperature difference.
 *
 *  - *Socket ambient temperature* (the Icepak quantity Eq. (1)
 *    consumes): the air actually ingested by a socket's heatsink.
 *    It runs hotter than the duct mean because the sink sits in the
 *    upstream sockets' wake — modeled by a wake amplification factor
 *    on the entry coefficients — plus a local recirculation term
 *    kappaLocal * P_self for the socket's own exhaust trapped under
 *    the cartridge lid (Fig. 8).
 *
 * Air transport is fast (tens of ms through a cartridge), so these
 * temperatures respond *instantly* to power changes in the simulator;
 * the slow 30 s socket time constant of Table III lives in the
 * heatsink mass, not here.
 *
 * Calibration of (wakeFactor, kappaLocal) against the paper's stated
 * operating points is recorded in DESIGN.md Sec. 3.1.
 */

#ifndef DENSIM_THERMAL_COUPLING_MAP_HH
#define DENSIM_THERMAL_COUPLING_MAP_HH

#include <cstddef>
#include <vector>

#include "core/units.hh"

namespace densim {

/** Position of one socket within the airflow network. */
struct SocketSite
{
    double streamPosInch; //!< Station along the duct (inlet = 0).
    int duct;             //!< Parallel duct (row) index.
    Cfm ductCfm;          //!< Airflow shared at one duct station.
};

/** Tunable physics of the coupling model. */
struct CouplingParams
{
    /** Streamtube amplification at minimum spacing (>= 1 physical). */
    double mixFactor = 1.9;
    /** e-folding length of the mixing decay, inches. */
    double decayLengthInch = 40.0;
    /**
     * Ratio of ambient coupling to duct-mean entry coupling. Above 1
     * the sink ingests the upstream plume core; below 1 the cartridge
     * geometry and the taller downstream sink partially shield the
     * intake from the plume (the paper notes the two-sink design
     * exists precisely to mitigate coupling).
     */
    double wakeFactor = 1.5;
    /** Local recirculation: C of self ambient rise per W. */
    double kappaLocal = 1.5;
    /** Spacing at which mixFactor applies un-decayed, inches. */
    double minSpacingInch = 1.6;
    /**
     * Cross-row (vertical) leak: rows are stacked with the next
     * cartridge's board as a lid (Fig. 8), so a fraction of an
     * upstream socket's heat reaches the ducts of adjacent rows. The
     * coupling to a socket k rows away is scaled by verticalLeak^k
     * (dropped below 5% of the same-duct value).
     */
    double verticalLeak = 0.45;
};

/**
 * Precomputed socket-to-socket thermal coupling coefficients plus
 * entry/ambient temperature evaluation. Immutable after construction;
 * evaluation is allocation-free for the hot paths.
 */
class CouplingMap
{
  public:
    CouplingMap(std::vector<SocketSite> sites, CouplingParams params);

    /** Number of sockets. */
    std::size_t size() const { return sites_.size(); }

    /**
     * *Ambient* temperature rise at socket @p to per watt dissipated
     * at socket @p from (0 unless @p from is strictly upstream of
     * @p to in the same duct). Wake-amplified; this is the
     * scheduling-relevant coefficient.
     */
    KelvinPerWatt coeff(std::size_t from, std::size_t to) const;

    /** Duct-mean *air entry* rise at @p to per watt at @p from. */
    KelvinPerWatt airCoeff(std::size_t from, std::size_t to) const;

    /** Self-ambient rise per own watt (kappaLocal). */
    KelvinPerWatt kappaLocal() const
    {
        return KelvinPerWatt(params_.kappaLocal);
    }

    /**
     * Duct-mean air entry temperature of every socket (reporting).
     * Bulk power/temperature fields stay raw doubles across this
     * interface — the engine's hot-path boundary (DESIGN.md Sec. 9).
     */
    std::vector<double> entryTemps(const std::vector<double> &powers_w,
                                   Celsius inlet) const;

    /** Duct-mean air entry temperature of one socket. */
    Celsius entryTemp(std::size_t i, const std::vector<double> &powers_w,
                      Celsius inlet) const;

    /**
     * Upstream (wake-amplified) part of the socket ambient — the
     * ambient a socket would see if it drew no power itself. The
     * scheduler's prediction entry point.
     */
    Celsius ambientEntryTemp(std::size_t i,
                             const std::vector<double> &powers_w,
                             Celsius inlet) const;

    /** Vector form of ambientEntryTemp for all sockets. */
    std::vector<double>
    ambientEntryTemps(const std::vector<double> &powers_w,
                      Celsius inlet) const;

    /**
     * Socket ambient temperatures: inlet + wake-amplified upstream
     * rise + kappaLocal * own power. This is what Eq. (1)'s T_amb
     * means for the SUT.
     */
    std::vector<double> ambientTemps(const std::vector<double> &powers_w,
                                     Celsius inlet) const;

    /**
     * Allocation-free form of ambientTemps(): evaluate the whole
     * ambient field in one flat pass over the packed (CSR) coupling
     * coefficients into caller-owned storage. Bit-identical to
     * ambientTemps() — same traversal order, same accumulation order —
     * so the engine's batched refresh path and the legacy vector form
     * are interchangeable.
     */
    void ambientTempsInto(double *out_c, std::size_t n,
                          const double *powers_w, Celsius inlet) const;

    /** Ambient temperature of one socket. */
    Celsius ambientTemp(std::size_t i,
                        const std::vector<double> &powers_w,
                        Celsius inlet) const;

    /**
     * Incrementally update an ambientTemps() field for one socket's
     * power change from @p old_p to @p new_p: adds the delta's
     * wake-amplified rise to every downstream socket and the
     * kappaLocal self term. O(downstream) instead of the O(n *
     * downstream) full evaluation — the hot path when only a few
     * sockets change power per power-management epoch. Agrees with a
     * fresh ambientTemps() to rounding (not bit-) accuracy.
     *
     * Sparse fan-out: the scatter walks a filtered CSR holding only
     * the rows whose coefficient exceeds kDeltaCoeffTolerance — the
     * 1e-6 incremental-drift bound the engine's paranoid invariant
     * already accepts (core/invariant.hh checkFieldsClose). On the
     * paper's SUT calibration every retained coefficient is orders of
     * magnitude above the bound, so the filtered CSR equals the full
     * one and the scatter stays bit-identical to the historical
     * all-rows walk (pinned by the perf-equivalence goldens); on
     * artificial topologies with near-zero coefficients (huge duct
     * CFM, tiny mix factors) the skipped rows contribute less than
     * the drift bound the periodic refresh flushes anyway.
     */
    void applyPowerDelta(std::vector<double> &temps, std::size_t socket,
                         double old_p, double new_p) const;

    /**
     * Coefficient floor of applyPowerDelta's filtered CSR, C/W per W
     * of delta: matches the 1e-6 ambient-field drift tolerance of the
     * paranoid invariant bank.
     */
    static constexpr double kDeltaCoeffTolerance = 1e-6;

    /** Downstream rows applyPowerDelta actually scatters to for
     *  @p from — downstreamCount(from) minus the rows filtered below
     *  kDeltaCoeffTolerance. */
    std::size_t deltaFanoutCount(std::size_t from) const
    {
        return dfOff_[from + 1] - dfOff_[from];
    }

    /**
     * Total downstream impact of socket @p from: sum of ambient
     * coeff(from, i) over all sockets i. This is exactly the offline
     * "heat recirculation factor" map the MinHR policy consumes.
     */
    KelvinPerWatt downstreamImpact(std::size_t from) const;

    /** Indices of sockets strictly downstream of @p from. */
    const std::vector<std::size_t> &
    downstream(std::size_t from) const;

    /**
     * Indices of sockets strictly upstream of @p to — the transpose of
     * downstream(). A power change at any of these moves @p to's
     * ambient; the scheduler prediction cache invalidates along these
     * edges.
     */
    const std::vector<std::size_t> &upstream(std::size_t to) const;

    /** Number of sockets strictly downstream of @p from (CSR row). */
    std::size_t downstreamCount(std::size_t from) const
    {
        return dsOff_[from + 1] - dsOff_[from];
    }

    /** Packed downstream indices of @p from (downstreamCount long). */
    const std::size_t *downstreamIds(std::size_t from) const
    {
        return dsIdx_.data() + dsOff_[from];
    }

    /**
     * Packed ambient coefficients aligned with downstreamIds(from):
     * downstreamAmbCoeffs(from)[k] == coeff(from, downstreamIds(from)[k]).
     */
    const double *downstreamAmbCoeffs(std::size_t from) const
    {
        return dsAmb_.data() + dsOff_[from];
    }

    /**
     * Assert the first-law envelope of an ambient field produced from
     * @p powers_w (DENSIM_CHECK; no-op unless invariant checks are
     * compiled in). Every socket ambient must sit between the inlet
     * and the inlet plus the wake-amplified well-mixed first-law rise
     * of the *entire* server power through that socket's duct plus
     * its own recirculation term — heated air cannot cool below the
     * inlet, and no socket can ingest more enthalpy than the whole
     * server ever put into the air. Catches sign errors and runaway
     * accumulated deltas that the exact drift comparison would only
     * see at its next refresh.
     */
    void checkAmbientFieldPhysics(const std::vector<double> &powers_w,
                                  Celsius inlet,
                                  const std::vector<double> &field_c)
        const;

    const std::vector<SocketSite> &sites() const { return sites_; }
    const CouplingParams &params() const { return params_; }

  private:
    void checkIndex(std::size_t i) const;

    std::vector<SocketSite> sites_;
    CouplingParams params_;
    std::vector<double> airMatrix_; //!< airCoeff[from * n + to].
    std::vector<double> ambMatrix_; //!< coeff[from * n + to].
    std::vector<double> impact_;    //!< downstream impact per socket.
    std::vector<std::vector<std::size_t>> downstream_;
    std::vector<std::vector<std::size_t>> upstream_;
    // CSR packing of the sparse downstream structure for the flat-pass
    // field kernels: row `from` spans [dsOff_[from], dsOff_[from+1]).
    std::vector<std::size_t> dsOff_;
    std::vector<std::size_t> dsIdx_;
    std::vector<double> dsAmb_;
    // Filtered CSR for applyPowerDelta: the subset of the rows above
    // whose coefficient exceeds kDeltaCoeffTolerance, in the same
    // relative order (so an unpruned topology accumulates in exactly
    // the historical order).
    std::vector<std::size_t> dfOff_;
    std::vector<std::size_t> dfIdx_;
    std::vector<double> dfAmb_;
};

} // namespace densim

#endif // DENSIM_THERMAL_COUPLING_MAP_HH
