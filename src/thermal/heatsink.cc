#include "thermal/heatsink.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace densim {

const HeatSink &
HeatSink::fin18()
{
    static const HeatSink sink{"18-fin", 18, KelvinPerWatt(1.578),
                               {CelsiusDelta(4.41),
                                KelvinPerWatt(-0.0896)}};
    return sink;
}

const HeatSink &
HeatSink::fin30()
{
    static const HeatSink sink{"30-fin", 30, KelvinPerWatt(1.056),
                               {CelsiusDelta(4.45),
                                KelvinPerWatt(-0.0916)}};
    return sink;
}

namespace {

/** Thermal conductivity of air, W/(m*K), near 40 C. */
constexpr double kAirConductivity = 0.026;

/** Kinematic viscosity of air, m^2/s, near 40 C. */
constexpr double kAirKinematicViscosity = 1.6e-5;

/** Prandtl number of air. */
constexpr double kAirPrandtl = 0.71;

} // namespace

double
finChannelVelocity(const FinHeatsinkGeometry &geom, Cfm flow)
{
    const double cfm = flow.value();
    if (cfm <= 0.0)
        fatal("finChannelVelocity: airflow must be positive, got ", cfm);
    const double gap =
        (geom.baseWidthM - geom.finCount * geom.finThicknessM) /
        geom.finCount;
    if (gap <= 0.0)
        fatal("fin geometry leaves no air gap: ", geom.finCount,
              " fins of ", geom.finThicknessM, " m across ",
              geom.baseWidthM, " m");
    const double free_area = geom.finCount * gap * geom.finHeightM;
    return cfm * kCfmToM3PerS / free_area;
}

KelvinPerWatt
finHeatsinkResistance(const FinHeatsinkGeometry &geom, Cfm flow)
{
    const double gap =
        (geom.baseWidthM - geom.finCount * geom.finThicknessM) /
        geom.finCount;
    if (gap <= 0.0)
        fatal("fin geometry leaves no air gap");

    const double velocity = finChannelVelocity(geom, flow);

    // Hydraulic diameter of one rectangular channel (gap x fin height).
    const double dh =
        2.0 * gap * geom.finHeightM / (gap + geom.finHeightM);
    const double re = velocity * dh / kAirKinematicViscosity;

    // Hausen correlation: fully developed laminar Nusselt number plus
    // the thermal entrance-length correction for a channel of length
    // baseLength.
    const double gz = (dh / geom.baseLengthM) * re * kAirPrandtl;
    const double nu =
        3.66 + 0.0668 * gz / (1.0 + 0.04 * std::pow(gz, 2.0 / 3.0));
    const double h = nu * kAirConductivity / dh;

    // Fin efficiency for straight rectangular fins.
    const double m =
        std::sqrt(2.0 * h /
                  (geom.conductivityWmK * geom.finThicknessM));
    const double mh = m * geom.finHeightM;
    const double eta = mh > 1e-9 ? std::tanh(mh) / mh : 1.0;

    const double fin_area =
        2.0 * geom.finHeightM * geom.baseLengthM * geom.finCount;
    const double base_exposed =
        geom.finCount * gap * geom.baseLengthM;
    const double ha = h * (eta * fin_area + base_exposed);
    if (ha <= 0.0)
        panic("non-positive convective conductance");
    const double r_convection = 1.0 / ha;

    // Spreading resistance from the die footprint into the base plate
    // (Lee et al. style closed form on equivalent discs).
    const double r_die = std::sqrt(geom.dieAreaM2 / std::numbers::pi);
    const double plate_area = geom.baseWidthM * geom.baseLengthM;
    const double r_plate = std::sqrt(plate_area / std::numbers::pi);
    const double epsilon = r_die / r_plate;
    const double r_spreading =
        std::pow(1.0 - epsilon, 1.5) /
        (geom.conductivityWmK * std::numbers::pi * r_die);

    // One-dimensional conduction through the base plate.
    const double r_base =
        geom.baseThicknessM / (geom.conductivityWmK * plate_area);

    return KelvinPerWatt(geom.timResistance + r_spreading + r_base +
                         r_convection);
}

} // namespace densim
