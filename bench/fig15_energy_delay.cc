/**
 * @file
 * Figure 15 — ED^2 (energy x delay^2) relative to CF across loads and
 * schemes for the three workloads (values < 1 mean better
 * energy-delay behaviour than CF).
 *
 * Paper shapes: CP's ED^2 tracks Predictive at low loads and MinHR at
 * high loads — performance gains come with no energy penalty; for
 * Computation ED^2 drops to ~0.7x around 80% load.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== Figure 15: ED^2 vs CF across loads ===\n";

    std::vector<double> loads;
    if (std::getenv("DENSIM_BENCH_FAST"))
        loads = {0.3, 0.8};
    else
        loads = {0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0};

    const std::vector<std::string> schemes{
        "CF", "HF", "Random", "MinHR", "Predictive", "CP"};

    for (WorkloadSet set : allWorkloadSets()) {
        std::cout << "\n--- " << workloadSetName(set) << " ---\n";
        const auto grid = runAveragedGrid(schemes, set, loads, "CF");

        std::vector<std::string> headers{"Scheme"};
        for (double load : loads)
            headers.push_back(formatFixed(100 * load, 0) + "%");
        TableWriter table(std::move(headers));
        for (const std::string &scheme : schemes) {
            table.newRow().cell(scheme);
            for (double load : loads)
                table.cell(grid.at(scheme).at(load).ed2VsBaseline, 3);
        }
        table.print(std::cout);

        double cp_min = 1e9;
        for (double load : loads)
            cp_min = std::min(cp_min,
                              grid.at("CP").at(load).ed2VsBaseline);
        std::cout << "CP best ED^2 vs CF: " << formatFixed(cp_min, 2)
                  << "x (paper: Computation ~0.7x, GP ~0.8x, Storage "
                     "~0.85x)\n";
    }
    return 0;
}
