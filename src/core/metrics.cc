#include "core/metrics.hh"

#include "util/logging.hh"

namespace densim {

double
SimMetrics::ed2() const
{
    const double d = runtimeExpansion.mean();
    return energyJ * d * d;
}

double
SimMetrics::avgRelFreq() const
{
    return totalBusyTime > 0.0 ? totalFreqTime / totalBusyTime : 0.0;
}

double
SimMetrics::workFraction(const RegionMetrics &region) const
{
    return totalWork > 0.0 ? region.workDone / totalWork : 0.0;
}

double
SimMetrics::boostFraction() const
{
    return totalBusyTime > 0.0 ? boostTimeS / totalBusyTime : 0.0;
}

double
relativePerformance(const SimMetrics &scheme, const SimMetrics &baseline)
{
    const double re = scheme.runtimeExpansion.mean();
    if (re <= 0.0)
        fatal("relativePerformance: scheme completed no jobs");
    return baseline.runtimeExpansion.mean() / re;
}

double
relativeEd2(const SimMetrics &scheme, const SimMetrics &baseline)
{
    const double base = baseline.ed2();
    if (base <= 0.0)
        fatal("relativeEd2: baseline has no energy/delay data");
    return scheme.ed2() / base;
}

} // namespace densim
