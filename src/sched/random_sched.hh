/**
 * @file
 * Random placement [63][76]: uniform choice among idle sockets,
 * approximating uniform power/thermal distribution (Sec. IV-A).
 */

#ifndef DENSIM_SCHED_RANDOM_SCHED_HH
#define DENSIM_SCHED_RANDOM_SCHED_HH

#include "sched/scheduler.hh"

namespace densim {

/** Uniform-random policy. */
class RandomSched : public Scheduler
{
  public:
    const char *name() const override { return "Random"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;
};

} // namespace densim

#endif // DENSIM_SCHED_RANDOM_SCHED_HH
