# Empty compiler generated dependencies file for vdi_daily_load.
# This may be replaced when dependencies are built.
