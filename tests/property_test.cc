/**
 * @file
 * Randomized property tests: invariants that must hold over random
 * networks, random topologies, random scheduler states, and random
 * simulator configurations — the safety net under the hand-written
 * unit suites.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/experiment.hh"
#include "power/leakage.hh"
#include "sched/factory.hh"
#include "server/sut.hh"
#include "thermal/rc_network.hh"
#include "util/rng.hh"
#include "workload/curves.hh"

namespace densim {
namespace {

// ------------------------------------------------------------ RC network

/** Build a random connected RC network with ambient links. */
RCNetwork
randomNetwork(Rng &rng, std::size_t n)
{
    RCNetwork net;
    for (std::size_t i = 0; i < n; ++i) {
        std::string name("n");
        name += std::to_string(i);
        net.addNode(name, JoulePerKelvin(rng.uniform(0.5, 5.0)));
    }
    // Spanning chain keeps it connected.
    for (std::size_t i = 0; i + 1 < n; ++i)
        net.connect(i, i + 1, KelvinPerWatt(rng.uniform(0.2, 3.0)));
    // Random extra edges.
    for (std::size_t e = 0; e < n; ++e) {
        const std::size_t a = rng.nextBounded(n);
        const std::size_t b = rng.nextBounded(n);
        if (a != b)
            net.connect(a, b, KelvinPerWatt(rng.uniform(0.2, 3.0)));
    }
    net.connectAmbient(rng.nextBounded(n),
                       KelvinPerWatt(rng.uniform(0.5, 2.0)));
    net.connectAmbient(rng.nextBounded(n),
                       KelvinPerWatt(rng.uniform(0.5, 2.0)));
    return net;
}

class RandomNetwork : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomNetwork, SteadyStateConservesEnergy)
{
    Rng rng(1000 + GetParam());
    const std::size_t n = 3 + rng.nextBounded(20);
    RCNetwork net = randomNetwork(rng, n);
    std::vector<double> powers(n, 0.0);
    double total = 0.0;
    for (double &p : powers) {
        p = rng.uniform(0.0, 10.0);
        total += p;
    }
    const auto temps = net.steadyState(powers, Celsius(25.0));
    EXPECT_NEAR(net.ambientHeatFlow(temps, Celsius(25.0)).value(), total,
                1e-6 * std::max(total, 1.0));
}

TEST_P(RandomNetwork, AllTemperaturesAboveAmbient)
{
    Rng rng(2000 + GetParam());
    const std::size_t n = 3 + rng.nextBounded(20);
    RCNetwork net = randomNetwork(rng, n);
    std::vector<double> powers(n);
    for (double &p : powers)
        p = rng.uniform(0.0, 10.0);
    const auto temps = net.steadyState(powers, Celsius(30.0));
    for (double t : temps)
        EXPECT_GE(t, 30.0 - 1e-9);
}

TEST_P(RandomNetwork, TransientApproachesSteady)
{
    Rng rng(3000 + GetParam());
    const std::size_t n = 3 + rng.nextBounded(10);
    RCNetwork net = randomNetwork(rng, n);
    std::vector<double> powers(n);
    for (double &p : powers)
        p = rng.uniform(0.0, 5.0);
    const auto steady = net.steadyState(powers, Celsius(20.0));
    std::vector<double> temps(n, 20.0);
    // March many time constants forward: the slowest aggregate mode
    // can reach tau ~ (sum C) / (ambient conductance) ~ 100 s for
    // these random draws.
    for (int i = 0; i < 100; ++i)
        net.transientStep(temps, powers, Celsius(20.0), Seconds(10.0));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(temps[i], steady[i],
                    0.02 * std::max(1.0, steady[i] - 20.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetwork, ::testing::Range(0, 8));

// ----------------------------------------------------------- coupling map

class RandomTopology : public ::testing::TestWithParam<int>
{
  protected:
    TopologySpec
    randomSpec(Rng &rng) const
    {
        TopologySpec spec;
        spec.rows = 1 + static_cast<int>(rng.nextBounded(6));
        spec.cartridgesPerRow =
            1 + static_cast<int>(rng.nextBounded(4));
        spec.zonesPerCartridge =
            1 + static_cast<int>(rng.nextBounded(3));
        spec.socketsPerZone = 1 + static_cast<int>(rng.nextBounded(3));
        return spec;
    }
};

TEST_P(RandomTopology, AmbientNeverBelowEntryNeverBelowInlet)
{
    Rng rng(4000 + GetParam());
    const ServerTopology topo(randomSpec(rng));
    const CouplingMap map(topo.sites(), CouplingParams{});
    std::vector<double> powers(topo.numSockets());
    for (double &p : powers)
        p = rng.uniform(0.0, 22.0);
    const auto entry = map.entryTemps(powers, Celsius(18.0));
    const auto ambient = map.ambientTemps(powers, Celsius(18.0));
    for (std::size_t s = 0; s < powers.size(); ++s) {
        EXPECT_GE(entry[s], 18.0 - 1e-9);
        EXPECT_GE(ambient[s] + 1e-9,
                  18.0 + map.kappaLocal().value() * powers[s]);
    }
}

TEST_P(RandomTopology, AddingPowerNeverCoolsAnyone)
{
    Rng rng(5000 + GetParam());
    const ServerTopology topo(randomSpec(rng));
    const CouplingMap map(topo.sites(), CouplingParams{});
    std::vector<double> powers(topo.numSockets());
    for (double &p : powers)
        p = rng.uniform(0.0, 15.0);
    const auto before = map.ambientTemps(powers, Celsius(18.0));
    const std::size_t bump = rng.nextBounded(powers.size());
    powers[bump] += 5.0;
    const auto after = map.ambientTemps(powers, Celsius(18.0));
    for (std::size_t s = 0; s < powers.size(); ++s)
        EXPECT_GE(after[s], before[s] - 1e-12);
}

TEST_P(RandomTopology, ImpactEqualsCoefficientSum)
{
    Rng rng(6000 + GetParam());
    const ServerTopology topo(randomSpec(rng));
    const CouplingMap map(topo.sites(), CouplingParams{});
    for (std::size_t from = 0; from < map.size(); from += 3) {
        double sum = 0.0;
        for (std::size_t to = 0; to < map.size(); ++to)
            sum += map.coeff(from, to).value();
        EXPECT_NEAR(map.downstreamImpact(from).value(), sum, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology, ::testing::Range(0, 8));

// -------------------------------------------------------------- policies

TEST(PolicyFuzz, AllPoliciesValidOnRandomStates)
{
    const ServerTopology topo = makeSutTopology();
    const CouplingMap coupling =
        makeCouplingMap(topo, defaultCouplingParams());
    const PowerManager pm(PStateTable::x2150(), SimplePeakModel(),
                          Celsius(95.0), 0.10);
    Rng rng(99);
    const std::size_t n = topo.numSockets();

    for (const std::string &name : allSchedulerNames()) {
        auto policy = makeScheduler(name);
        for (int trial = 0; trial < 40; ++trial) {
            std::vector<double> chip(n), hist(n), amb(n), credit(n),
                power(n), freq(n);
            std::vector<WorkloadSet> sets(n,
                                          WorkloadSet::Computation);
            std::vector<std::uint8_t> busy(n);
            std::vector<std::size_t> idle;
            for (std::size_t s = 0; s < n; ++s) {
                busy[s] = rng.bernoulli(0.6);
                chip[s] = rng.uniform(20.0, 95.0);
                hist[s] = rng.uniform(20.0, 95.0);
                amb[s] = rng.uniform(18.0, 80.0);
                credit[s] = rng.uniform(0.0, 2.0);
                power[s] = busy[s] ? rng.uniform(8.0, 18.0) : 2.2;
                freq[s] = busy[s] ? 1100.0 + 200.0 * rng.nextBounded(5)
                                  : 0.0;
                if (!busy[s])
                    idle.push_back(s);
            }
            if (idle.empty()) {
                busy[0] = false;
                idle.push_back(0);
            }
            SchedContext ctx;
            ctx.topo = &topo;
            ctx.coupling = &coupling;
            ctx.pm = &pm;
            ctx.leak = &LeakageModel::x2150();
            ctx.inletC = 18.0;
            ctx.idle = &idle;
            ctx.nSockets = n;
            ctx.chipTempC = chip.data();
            ctx.histTempC = hist.data();
            ctx.ambientC = amb.data();
            ctx.boostCreditS = credit.data();
            ctx.powerW = power.data();
            ctx.freqMhz = freq.data();
            ctx.runningSet = sets.data();
            ctx.busy = busy.data();
            ctx.rng = &rng;

            Job job{0, 0, WorkloadSet::Computation, 0.0,
                    rng.uniform(1e-3, 50e-3)};
            const std::size_t pick = policy->pick(job, ctx);
            ASSERT_LT(pick, n) << name;
            EXPECT_FALSE(busy[pick]) << name;
        }
    }
}

// ---------------------------------------------------------------- engine

class RandomEngine : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomEngine, ConservationAndBounds)
{
    Rng rng(7000 + GetParam());
    SimConfig config;
    config.topo.rows = 2 + static_cast<int>(rng.nextBounded(3));
    config.load = rng.uniform(0.1, 0.9);
    config.workload =
        allWorkloadSets()[rng.nextBounded(allWorkloadSets().size())];
    config.simTimeS = 1.5;
    config.warmupS = 0.3;
    config.socketTauS = 0.5;
    config.seed = 8000 + GetParam();

    const std::string scheme =
        allSchedulerNames()[rng.nextBounded(allSchedulerNames().size())];
    DenseServerSim sim(config, makeScheduler(scheme));
    const SimMetrics m = sim.run();

    // Everything that arrived finished (drain window is generous).
    EXPECT_EQ(m.jobsUnfinished, 0u) << scheme;

    // Work processed equals nominal seconds of completed jobs up to
    // warmup boundary effects.
    if (m.jobsCompleted > 500) {
        const double processed = m.totalWork;
        EXPECT_GT(processed, 0.0);
        // Service expansion bounded by the P-state perf range.
        const auto &curve = freqCurveFor(config.workload);
        const double sustained = curve.perfRel
            [PStateTable::x2150().highestSustainedIndex()];
        EXPECT_GE(m.serviceExpansion.mean(),
                  sustained / curve.perfRel.back() - 1e-9)
            << scheme;
        EXPECT_LE(m.serviceExpansion.mean(),
                  sustained / curve.perfRel.front() + 1e-9)
            << scheme;
    }

    // Energy bounded by gated floor and TDP ceiling.
    const double sockets =
        static_cast<double>(config.topo.rows) * 12.0;
    EXPECT_GE(m.energyJ, 0.99 * 2.2 * sockets * m.measuredS);
    EXPECT_LE(m.energyJ, 22.0 * sockets * m.measuredS);

    // Frequencies within the P-state range.
    EXPECT_GE(m.avgRelFreq(), 1100.0 / 1900.0 - 1e-9);
    EXPECT_LE(m.avgRelFreq(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEngine, ::testing::Range(0, 10));

} // namespace
} // namespace densim
