# Empty dependencies file for densim_core.
# This may be replaced when dependencies are built.
