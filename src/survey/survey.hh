/**
 * @file
 * Server-design survey synthesizer (Fig. 1).
 *
 * The paper analyzed 400 published SPECpower_ssj2008 server designs
 * (2007–2016, towers excluded) plus manufacturer data for 10 density-
 * optimized designs, reporting per-class mean power density and
 * socket density. The raw records are not published, so densim
 * synthesizes a statistically equivalent dataset: per class, power/U
 * and sockets/U are drawn from lognormal distributions whose means
 * equal the paper's figures, with a mild correlation between power
 * and socket density (more sockets per U draw more watts per U).
 */

#ifndef DENSIM_SURVEY_SURVEY_HH
#define DENSIM_SURVEY_SURVEY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace densim {

/** Server form-factor classes of Fig. 1. */
enum class ServerClass { U1, U2, Other, Blade, DensityOpt };

/** Printable class name. */
const char *serverClassName(ServerClass c);

/** All classes in Fig. 1 order. */
const std::vector<ServerClass> &allServerClasses();

/** Statistical model of one class. */
struct ClassModel
{
    ServerClass cls;
    double meanPowerPerU;   //!< W per rack unit.
    double meanSocketsPerU; //!< Sockets per rack unit.
    double cov;             //!< Spread (CoV) of both quantities.
    int count;              //!< Designs of this class in the survey.
};

/** Paper-calibrated class models (Sec. I). */
const std::vector<ClassModel> &fig1ClassModels();

/** One synthesized server design record. */
struct SurveyRecord
{
    ServerClass cls;
    int year;           //!< Release year, 2007–2016.
    double powerPerU;   //!< W per rack unit.
    double socketsPerU; //!< Sockets per rack unit.
};

/** Synthesize the full survey (400 + 10 records), deterministic. */
std::vector<SurveyRecord> synthesizeSurvey(std::uint64_t seed);

/** Mean power/U and sockets/U per class over a record set. */
struct ClassSummary
{
    ServerClass cls;
    int count;
    double meanPowerPerU;
    double meanSocketsPerU;
    /** Table II companion: CFM per U for a 20 C rise. */
    double cfmPerU20C;
};

/** Summarize records per class (Fig. 1 + Table II reproduction). */
std::vector<ClassSummary> summarize(const std::vector<SurveyRecord> &r);

} // namespace densim

#endif // DENSIM_SURVEY_SURVEY_HH
