/**
 * @file
 * Integration tests spanning the full stack: the paper's headline
 * behaviours on the real 180-socket SUT — the Fig. 3 coupled/
 * uncoupled CF-vs-HF inversion, Fig. 13 placement structure, the
 * Fig. 14 workload sensitivity ordering, and end-to-end trace-driven
 * experiments. These are slower than unit tests but still bounded
 * (seconds each).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/experiment.hh"
#include "sched/factory.hh"
#include "server/sut.hh"
#include "workload/xperf_trace.hh"

namespace densim {
namespace {

/** Bench-style SUT configuration: scaled socket tau, warm start. */
SimConfig
sutConfig(double load, WorkloadSet set = WorkloadSet::Computation)
{
    SimConfig config;
    config.workload = set;
    config.load = load;
    config.socketTauS = 3.0;
    config.simTimeS = 8.0;
    config.warmupS = 4.0;
    config.seed = 42;
    return config;
}

/** Fig. 3 two-socket configuration. */
SimConfig
twoSocketConfig(bool coupled)
{
    SimConfig config;
    // Moderate load: on a 2-socket system the heavy-tailed job mix
    // queues brutally at higher loads, drowning scheduler choice (the
    // policies only differ when both sockets are idle).
    config.load = 0.35;
    config.socketTauS = 1.0;
    config.simTimeS = 10.0;
    config.warmupS = 3.0;
    config.seed = 7;
    // The Fig. 3 experiment needs thermal pressure on a 2-socket
    // system; a warm-aisle inlet supplies it (the paper does not
    // state the inlet for this motivational experiment).
    config.topo.inletC = 50.0;
    if (coupled) {
        config.topo.rows = 1;
        config.topo.cartridgesPerRow = 1;
        config.topo.zonesPerCartridge = 2;
        config.topo.socketsPerZone = 1;
    } else {
        config.topo.rows = 2;
        config.topo.cartridgesPerRow = 1;
        config.topo.zonesPerCartridge = 1;
        config.topo.socketsPerZone = 1;
        // Separate ducts with the coupled build's sink mix.
        config.topo.alternateSinksByRow = true;
        config.coupling.verticalLeak = 0.0;
    }
    return config;
}

double
runTwoSocket(bool coupled, const std::string &scheme)
{
    DenseServerSim sim(twoSocketConfig(coupled), makeScheduler(scheme));
    // Fig. 3 compares execution speed; queue wait on a 2-server
    // system is dominated by job-length tails, not placement.
    return sim.run().serviceExpansion.mean();
}

TEST(Integration, Fig3CouplingInvertsCfVsHf)
{
    // Fig. 3(b): CF beats HF on the uncoupled 2-socket system; HF
    // beats CF when the sockets are thermally coupled.
    const double cf_coupled = runTwoSocket(true, "CF");
    const double hf_coupled = runTwoSocket(true, "HF");
    const double cf_uncoupled = runTwoSocket(false, "CF");
    const double hf_uncoupled = runTwoSocket(false, "HF");

    EXPECT_LT(hf_coupled, cf_coupled)
        << "HF must win when sockets are coupled";
    EXPECT_LE(cf_uncoupled, hf_uncoupled + 1e-9)
        << "CF must not lose when sockets are uncoupled";
}

TEST(Integration, Fig13LowLoadPlacementStructure)
{
    // At 30% load, CF and Predictive concentrate work in the front
    // half; HF and MinHR do not (Fig. 13a).
    for (const char *front_scheme : {"CF", "Predictive"}) {
        DenseServerSim sim(sutConfig(0.3),
                           makeScheduler(front_scheme));
        const SimMetrics m = sim.run();
        EXPECT_GT(m.workFraction(m.front), 0.6) << front_scheme;
    }
    for (const char *back_scheme : {"HF", "MinHR"}) {
        DenseServerSim sim(sutConfig(0.3), makeScheduler(back_scheme));
        const SimMetrics m = sim.run();
        EXPECT_LT(m.workFraction(m.front), 0.2) << back_scheme;
    }
}

TEST(Integration, Fig13BackPackersFavorEvenZones)
{
    // HF/MinHR end up doing more work on even (30-fin) zones than
    // front-packing CF (Sec. IV-B).
    DenseServerSim cf(sutConfig(0.3), makeScheduler("CF"));
    DenseServerSim hf(sutConfig(0.3), makeScheduler("MinHR"));
    const SimMetrics mcf = cf.run();
    const SimMetrics mhf = hf.run();
    EXPECT_GT(mhf.workFraction(mhf.even), mcf.workFraction(mcf.even));
}

TEST(Integration, Fig13HighLoadUsesBackHalf)
{
    // At high load every scheme must use the back substantially.
    for (const char *scheme : {"CF", "HF", "CP"}) {
        DenseServerSim sim(sutConfig(0.8), makeScheduler(scheme));
        const SimMetrics m = sim.run();
        EXPECT_GT(m.workFraction(m.back), 0.3) << scheme;
    }
}

TEST(Integration, Fig13BackHalfSlowerUnderLoad)
{
    // The frequency of the back half is more impacted at high load.
    DenseServerSim sim(sutConfig(0.8), makeScheduler("Random"));
    const SimMetrics m = sim.run();
    EXPECT_LT(m.back.avgRelFreq(), m.front.avgRelFreq());
}

TEST(Integration, LowLoadOrderingMatchesFig11)
{
    // 30% Computation: HF and MinHR are the clearly-worst schemes.
    auto results = runAll(makeGrid({"CF", "HF", "MinHR", "CP"},
                                   WorkloadSet::Computation, {0.3},
                                   sutConfig(0.3)));
    auto index = indexResults(results);
    const SimMetrics &cf = index["CF"][0.3];
    EXPECT_LT(relativePerformance(index["HF"][0.3], cf), 0.99);
    EXPECT_LT(relativePerformance(index["MinHR"][0.3], cf), 0.99);
    EXPECT_GT(relativePerformance(index["CP"][0.3], cf), 0.97);
}

TEST(Integration, HighLoadCpBeatsCf)
{
    // The headline: at high load CP outperforms the traditional
    // temperature-aware baseline.
    auto results = runAll(makeGrid({"CF", "CP"},
                                   WorkloadSet::Computation, {0.8},
                                   sutConfig(0.8)));
    auto index = indexResults(results);
    EXPECT_GT(relativePerformance(index["CP"][0.8], index["CF"][0.8]),
              1.02);
}

TEST(Integration, CpTracksHighLoadWinners)
{
    // The paper's robustness claim: at high load CP stays within a
    // few percent of the best back-packing scheme instead of
    // collapsing with the front-packers.
    auto results = runAll(makeGrid({"CF", "HF", "MinHR", "CP",
                                    "Predictive"},
                                   WorkloadSet::Computation, {0.8},
                                   sutConfig(0.8)));
    auto index = indexResults(results);
    const SimMetrics &cf = index["CF"][0.8];
    const double hf = relativePerformance(index["HF"][0.8], cf);
    const double minhr = relativePerformance(index["MinHR"][0.8], cf);
    const double cp = relativePerformance(index["CP"][0.8], cf);
    const double pred =
        relativePerformance(index["Predictive"][0.8], cf);
    const double best = std::max(hf, minhr);
    EXPECT_GT(cp, 1.0);          // beats the CF baseline
    EXPECT_GT(cp, pred);         // beats Predictive at high load
    EXPECT_GT(cp, 0.90 * best);  // tracks the winner
}

TEST(Integration, WorkloadSensitivityOrdering)
{
    // Computation is the most throttled workload, Storage the least
    // (Sec. V: Storage sees muted behaviour).
    const double comp =
        DenseServerSim(sutConfig(0.8, WorkloadSet::Computation),
                       makeScheduler("CF"))
            .run()
            .avgRelFreq();
    const double gp =
        DenseServerSim(sutConfig(0.8, WorkloadSet::GeneralPurpose),
                       makeScheduler("CF"))
            .run()
            .avgRelFreq();
    const double storage =
        DenseServerSim(sutConfig(0.8, WorkloadSet::Storage),
                       makeScheduler("CF"))
            .run()
            .avgRelFreq();
    EXPECT_LT(comp, gp + 0.02);
    EXPECT_LT(gp, storage + 0.02);
    EXPECT_GT(storage, 0.93);
}

TEST(Integration, TraceRoundTripThroughSimulator)
{
    // Capture a trace to a file, reload it, and drive the simulator:
    // byte-identical behaviour with the direct path up to the 1 us
    // timestamp quantization of the trace format.
    SimConfig config = sutConfig(0.4);
    config.simTimeS = 3.0;
    config.warmupS = 1.0;
    JobGenerator gen(config.workload, config.load, 180, config.seed);
    XperfTrace trace = XperfTrace::capture(gen, 20000);

    const std::string path = ::testing::TempDir() + "/densim.trace";
    trace.saveFile(path);
    const XperfTrace loaded = XperfTrace::loadFile(path);

    std::vector<Job> jobs;
    for (const Job &job : loaded.jobs()) {
        if (job.arrivalS < config.simTimeS)
            jobs.push_back(job);
    }
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m = sim.run(jobs);
    EXPECT_EQ(m.jobsUnfinished, 0u);
    EXPECT_GT(m.jobsCompleted, 1000u);
}

TEST(Integration, Ed2TracksEnergyAndDelay)
{
    // Fig. 15 machinery: a faster scheme at equal-ish energy has
    // lower ED^2.
    auto results = runAll(makeGrid({"CF", "CP"},
                                   WorkloadSet::Computation, {0.8},
                                   sutConfig(0.8)));
    auto index = indexResults(results);
    const double rel_perf =
        relativePerformance(index["CP"][0.8], index["CF"][0.8]);
    const double rel_ed2 =
        relativeEd2(index["CP"][0.8], index["CF"][0.8]);
    if (rel_perf > 1.05) {
        EXPECT_LT(rel_ed2, 1.0);
    }
}

TEST(Integration, AllSchemesCompleteAtEveryLoad)
{
    // Robustness sweep: every policy finishes its work at low,
    // medium and high load on the full SUT.
    for (const std::string &name : allSchedulerNames()) {
        for (double load : {0.2, 0.6, 0.9}) {
            SimConfig config = sutConfig(load);
            config.simTimeS = 2.0;
            config.warmupS = 0.5;
            DenseServerSim sim(config, makeScheduler(name));
            const SimMetrics m = sim.run();
            EXPECT_EQ(m.jobsUnfinished, 0u)
                << name << " @ " << load;
            EXPECT_GT(m.jobsCompleted, 100u) << name << " @ " << load;
        }
    }
}

} // namespace
} // namespace densim
