file(REMOVE_RECURSE
  "CMakeFiles/ext_thermal_timeline.dir/ext_thermal_timeline.cc.o"
  "CMakeFiles/ext_thermal_timeline.dir/ext_thermal_timeline.cc.o.d"
  "ext_thermal_timeline"
  "ext_thermal_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_thermal_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
