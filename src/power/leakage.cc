#include "power/leakage.hh"

#include <algorithm>

#include "util/logging.hh"

namespace densim {

LeakageModel::LeakageModel(double tdp_w, double frac_at_ref, double ref_c,
                           double slope_per_c)
    : tdpW_(tdp_w), refLeakW_(tdp_w * frac_at_ref), refC_(ref_c),
      slopePerC_(slope_per_c)
{
    if (tdpW_ <= 0.0)
        fatal("LeakageModel: TDP must be positive, got ", tdpW_);
    if (frac_at_ref < 0.0 || frac_at_ref >= 1.0)
        fatal("LeakageModel: leakage fraction ", frac_at_ref,
              " outside [0, 1)");
    if (slope_per_c < 0.0)
        fatal("LeakageModel: negative temperature slope ", slope_per_c);
}

const LeakageModel &
LeakageModel::x2150()
{
    static const LeakageModel model(22.0);
    return model;
}

double
LeakageModel::at(double t_c) const
{
    const double scaled =
        refLeakW_ * (1.0 + slopePerC_ * (t_c - refC_));
    // Leakage never vanishes entirely; floor at 20 % of the reference
    // value (reached ~65 C below the reference, outside operating
    // range anyway).
    return std::max(scaled, 0.2 * refLeakW_);
}

} // namespace densim
