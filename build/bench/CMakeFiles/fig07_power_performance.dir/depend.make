# Empty dependencies file for fig07_power_performance.
# This may be replaced when dependencies are built.
