/**
 * @file
 * Tests for the typed-quantity layer (core/units.hh): dimensional
 * algebra, affine temperature points, explicit unit conversions, and
 * — most importantly — bit-identity of the typed model-layer APIs
 * against the raw-double formulas they replaced. The EXPECT_EQ (not
 * EXPECT_NEAR) golden checks here are the proof that introducing the
 * types changed zero bits of simulator arithmetic.
 */

#include <type_traits>

#include <gtest/gtest.h>

#include "airflow/first_law.hh"
#include "core/units.hh"
#include "power/leakage.hh"
#include "thermal/heatsink.hh"
#include "thermal/simple_peak_model.hh"

namespace densim {
namespace {

// ----------------------------------------------------------- algebra

TEST(Units, SameDimensionArithmetic)
{
    const Watts a(10.0);
    const Watts b(2.5);
    EXPECT_EQ((a + b).value(), 12.5);
    EXPECT_EQ((a - b).value(), 7.5);
    EXPECT_EQ((a * 2.0).value(), 20.0);
    EXPECT_EQ((2.0 * a).value(), 20.0);
    EXPECT_EQ((a / 2.0).value(), 5.0);
    EXPECT_EQ(a / b, 4.0); // same-dimension ratio is a plain double
    EXPECT_EQ((-b).value(), -2.5);
    EXPECT_LT(b, a);
    EXPECT_NE(a, b);
}

TEST(Units, CompoundAssignment)
{
    Watts p(10.0);
    p += Watts(5.0);
    p -= Watts(1.0);
    p *= 2.0;
    p /= 4.0;
    EXPECT_EQ(p.value(), 7.0);
}

TEST(Units, DimensionCombiningProducts)
{
    // W * K/W = K (the Eq. (1) rise term).
    const CelsiusDelta rise = Watts(13.6) * KelvinPerWatt(1.783);
    EXPECT_EQ(rise.value(), 13.6 * 1.783);
    // W * s = J (the energy accumulator).
    const Joules e = Watts(100.0) * Seconds(30.0);
    EXPECT_EQ(e.value(), 100.0 * 30.0);
    // K / (K/W) = W (inverting Eq. (1) for max power).
    const Watts p = CelsiusDelta(50.0) / KelvinPerWatt(2.0);
    EXPECT_EQ(p.value(), 25.0);
}

TEST(Units, Literals)
{
    EXPECT_EQ((22.0_W).value(), 22.0);
    EXPECT_EQ((95_degC).value(), 95.0);
    EXPECT_EQ((6.35_cfm).value(), 6.35);
    EXPECT_EQ((0.205_KpW).value(), 0.205);
    EXPECT_EQ((20.0_dC).value(), 20.0);
    EXPECT_EQ((1.0_J).value(), 1.0);
    EXPECT_EQ((10_s).value(), 10.0);
    EXPECT_EQ((300.0_K).value(), 300.0);
    EXPECT_EQ((1.5_JpK).value(), 1.5);
    EXPECT_EQ((0.006_m3s).value(), 0.006);
}

TEST(Units, ConstexprUsable)
{
    constexpr CelsiusDelta rise = 10.0_W * 1.578_KpW;
    static_assert(rise.value() == 10.0 * 1.578);
    constexpr Celsius peak = 45.0_degC + rise;
    static_assert(peak.value() == 45.0 + 10.0 * 1.578);
    SUCCEED();
}

// ------------------------------------------------ temperature points

TEST(Units, AffineTemperaturePoints)
{
    const Celsius amb(45.0);
    const Celsius peak = amb + CelsiusDelta(34.89);
    EXPECT_EQ(peak.value(), 45.0 + 34.89);
    EXPECT_EQ((peak - amb).value(), peak.value() - amb.value());
    EXPECT_EQ((peak - CelsiusDelta(34.89)).value(), amb.value());
    EXPECT_GT(peak, amb);

    Celsius t(20.0);
    t += CelsiusDelta(5.0);
    t -= CelsiusDelta(1.0);
    EXPECT_EQ(t.value(), 24.0);
}

TEST(Units, CelsiusKelvinConversionIsExplicitAndExact)
{
    const Celsius c(95.0);
    const Kelvin k = toKelvin(c);
    EXPECT_EQ(k.value(), 95.0 + kCelsiusToKelvinOffset);
    // x + 273.15 - 273.15 == x exactly for these magnitudes.
    EXPECT_EQ(toCelsius(k).value(), c.value());
    // A delta is scale-free: the same magnitude on both scales.
    EXPECT_EQ((toKelvin(Celsius(40.0)) - toKelvin(Celsius(20.0))).value(),
              20.0);
}

// -------------------------------------------------------------- flow

TEST(Units, CfmStoresItsMagnitudeExactly)
{
    // Cfm deliberately stores the CFM number, not SI: Table II/III
    // constants must survive construction bit-for-bit.
    for (double cfm : {6.35, 12.70, 400.0, 18.30, 51.74}) {
        EXPECT_EQ(Cfm(cfm).value(), cfm);
    }
}

TEST(Units, CfmSiRoundTrip)
{
    const Cfm flow(6.35);
    const CubicMetersPerSec si = toM3PerS(flow);
    EXPECT_EQ(si.value(), 6.35 * kCfmToM3PerS);
    EXPECT_NEAR(toCfm(si).value(), 6.35, 1e-12);
}

// ------------------------------------- bit-identical formula goldens

TEST(UnitsGolden, FirstLawMatchesRawFormulaBitForBit)
{
    // Typed requiredAirflow/airTemperatureRise against the raw
    // expressions the pre-units code evaluated. Table II rows.
    const double rows[][2] = {{208.0, 20.0},
                              {147.0, 20.0},
                              {114.0, 20.0},
                              {421.0, 20.0},
                              {588.0, 20.0},
                              {13.6, 7.3}};
    for (const auto &row : rows) {
        const double p = row[0], dt = row[1];
        EXPECT_EQ(requiredAirflow(Watts(p), CelsiusDelta(dt)).value(),
                  kCelsiusPerWattPerCfm * p / dt);
        EXPECT_EQ(airTemperatureRise(Watts(p), Cfm(6.35)).value(),
                  kCelsiusPerWattPerCfm * p / 6.35);
        EXPECT_EQ(absorbableHeat(Cfm(12.7), CelsiusDelta(dt)).value(),
                  12.7 * dt / kCelsiusPerWattPerCfm);
    }
}

TEST(UnitsGolden, FirstLawRoundTripIsExactInTypedForm)
{
    // CFM -> dT -> CFM multiplies and divides by the same factors in
    // the same order, so the round trip is bit-exact, typed or not.
    const Watts p(123.0);
    const CelsiusDelta dt = airTemperatureRise(p, Cfm(7.0));
    EXPECT_EQ(requiredAirflow(p, dt).value(),
              kCelsiusPerWattPerCfm * 123.0 /
                  (kCelsiusPerWattPerCfm * 123.0 / 7.0));
}

TEST(UnitsGolden, Eq1MatchesRawFormulaBitForBit)
{
    // Typed Eq. (1) against the raw Table III arithmetic:
    //   T_peak = T_amb + P * (R_int + R_ext) + (c0 + c1 * P).
    const SimplePeakModel model;
    for (const HeatSink *sink :
         {&HeatSink::fin18(), &HeatSink::fin30()}) {
        const double r_ext = sink->rExt.value();
        const double c0 = sink->theta.c0.value();
        const double c1 = sink->theta.c1.value();
        for (double amb : {20.0, 45.0, 60.0}) {
            for (double p = 0.0; p <= 22.0; p += 1.7) {
                const double raw =
                    amb + p * (0.205 + r_ext) + (c0 + c1 * p);
                EXPECT_EQ(model.peak(Celsius(amb), Watts(p), *sink)
                              .value(),
                          raw);
            }
        }
    }
}

TEST(UnitsGolden, Eq1TableIIIConstantsSurviveTyping)
{
    EXPECT_EQ(HeatSink::fin18().rExt.value(), 1.578);
    EXPECT_EQ(HeatSink::fin30().rExt.value(), 1.056);
    EXPECT_EQ(HeatSink::fin18().theta.c0.value(), 4.41);
    EXPECT_EQ(HeatSink::fin18().theta.c1.value(), -0.0896);
    EXPECT_EQ(HeatSink::fin30().theta.c0.value(), 4.45);
    EXPECT_EQ(HeatSink::fin30().theta.c1.value(), -0.0916);
    EXPECT_EQ(SimplePeakModel().rInt().value(), 0.205);
}

TEST(UnitsGolden, LeakageMatchesRawFormulaBitForBit)
{
    // Linear leakage around the 90 C reference (floor not hit in the
    // operating range probed here), typed API vs raw arithmetic.
    const LeakageModel &leak = LeakageModel::x2150();
    const double ref_c = leak.refTemperature().value();
    const double at_ref = leak.atRef().value();
    for (double t : {60.0, 90.0, 95.0}) {
        EXPECT_EQ(leak.at(Celsius(t)).value(),
                  at_ref * (1.0 + 0.012 * (t - ref_c)));
    }
}

// ---------------------------------------------- layout / ABI checks

TEST(Units, TypedVectorsShareDoubleLayout)
{
    // DESIGN.md Sec. 9: bulk state crosses the hot-path boundary as
    // std::vector<double>; this only works because every unit type is
    // exactly one double.
    static_assert(sizeof(Watts) == sizeof(double));
    static_assert(alignof(Celsius) == alignof(double));
    static_assert(std::is_trivially_copyable_v<Cfm>);
    static_assert(
        std::is_trivially_copyable_v<KelvinPerWatt>);
    SUCCEED();
}

} // namespace
} // namespace densim
