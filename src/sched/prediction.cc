#include "sched/prediction.hh"

#include <algorithm>

#include "power/pstate.hh"
#include "workload/curves.hh"

namespace densim {

DvfsDecision
predictPlacement(const SchedContext &ctx, std::size_t socket,
                 WorkloadSet set)
{
    // The prediction horizon is one (millisecond-scale) job while the
    // ambient field moves with the 30 s socket time constant, so the
    // job's future temperature is Eq. (1) evaluated at the *current*
    // ambient — exactly the paper's "estimate an initial chip
    // temperature using equation 1" step. Leakage compensation is the
    // second pass inside chooseAtAmbient.
    PredictionCache *cache = ctx.cache;
    if (cache != nullptr) {
        const PredictionCache::PlaceEntry &e = cache->place[socket];
        if (e.stamp == cache->epoch && e.set == set)
            return e.decision;
    }
    const auto &table = ctx.pm->pstates();
    const std::size_t cap = ctx.boostCreditS[socket] > 0.0
                                ? table.size() - 1
                                : table.highestSustainedIndex();
    const DvfsDecision decision = ctx.pm->chooseAtAmbientCapped(
        freqCurveFor(set), *ctx.leak, Celsius(ctx.ambientC[socket]),
        ctx.topo->sinkOf(socket), cap);
    if (cache != nullptr)
        cache->place[socket] =
            PredictionCache::PlaceEntry{cache->epoch, set, decision};
    return decision;
}

double
mhzPerCelsius(const SchedContext &ctx, WorkloadSet set,
              const HeatSink &sink)
{
    // Consecutive P-state feasibility edges in ambient space are
    // separated by dP * (R_int + R_ext); crossing one costs 200 MHz.
    const auto &table = ctx.pm->pstates();
    const auto &curve = freqCurveFor(set);
    const double p_span =
        curve.totalPowerAt90C.back() - curve.totalPowerAt90C.front();
    const double f_span =
        table.fastest().freqMhz - table.slowest().freqMhz;
    const double r_total =
        (ctx.pm->peakModel().rInt() + sink.rExt).value();
    return f_span / (p_span * r_total);
}

double
downstreamPenaltyMhz(const SchedContext &ctx, std::size_t socket,
                     Watts job_power)
{
    const double extra = job_power.value() - ctx.powerW[socket];
    if (extra <= 0.0)
        return 0.0;

    // The penalty is fully determined by `extra` plus the downstream
    // sockets' state, so (epoch stamp, extra) is a complete memo key:
    // the engine drops the entry whenever any downstream socket's
    // state changes (see PredictionCache).
    PredictionCache *cache = ctx.cache;
    if (cache != nullptr) {
        const PredictionCache::PenaltyEntry &e =
            cache->penalty[socket];
        if (e.stamp == cache->epoch && e.extra == extra)
            return e.mhz;
    }

    const auto &table = ctx.pm->pstates();
    const std::size_t boost_cap = table.size() - 1;
    const std::size_t sustained_cap = table.highestSustainedIndex();
    const double fastest_mhz = table.fastest().freqMhz;
    const bool prune = cache != nullptr && cache->exactDvfs;

    double penalty = 0.0;
    const std::size_t count = ctx.coupling->downstreamCount(socket);
    const std::size_t *ids = ctx.coupling->downstreamIds(socket);
    const double *coeffs = ctx.coupling->downstreamAmbCoeffs(socket);
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t d = ids[k];
        // Table lookup (Sec. IV-C): the placement's extra heat will
        // raise the downstream socket's ambient by coeff * dP once
        // the field settles.
        const double dt = coeffs[k] * extra;
        const double amb_new = ctx.ambientC[d] + dt;
        if (prune && amb_new <= cache->fastFeasC[d]) {
            // Common case: the perturbed ambient stays inside the
            // socket's known-feasible region, so its P-state (and
            // frequency) provably survive; the charge reduces to
            // the precomputed linear slope. Idle sockets sit at
            // (+inf, 0), passing here with zero charge.
            penalty += dt * cache->fastSlope[d];
            continue;
        }
        if (ctx.busy[d] == 0)
            continue;
        const WorkloadSet set = ctx.runningSet[d];
        const std::size_t cap =
            ctx.boostCreditS[d] > 0.0 ? boost_cap : sustained_cap;
        double decision_mhz;
        if (prune) {
            // The engine guarantees the socket's current P-state was
            // chosen this epoch at an ambient no hotter than amb_new
            // with the same cap, so every faster state is already
            // infeasible and the descending search can start at the
            // current state. Only the decision *frequency* is needed
            // here, and frequency is a pure function of the P-state,
            // so the search reduces to a walk down the cached
            // feasibility ladder: states known infeasible at amb_new
            // are skipped, a state known feasible is chosen, and
            // only probes inside a ladder gap evaluate the thermal
            // model (tightening the gap for every later probe, in
            // this epoch or any other).
            cache->touchLadder(d, set);
            double *lo = cache->ladderLo(d);
            double *hi = cache->ladderHi(d);
            const std::size_t start =
                std::min(cache->pstate[d], cap);
            std::size_t chosen = 0;
            for (std::size_t idx = start + 1; idx-- > 0;) {
                if (idx == 0) {
                    chosen = 0; // Slowest state is chosen regardless.
                    break;
                }
                if (amb_new >= hi[idx])
                    continue;
                if (amb_new <= lo[idx]) {
                    chosen = idx;
                    break;
                }
                if (ctx.pm->feasibleAt(freqCurveFor(set), *ctx.leak,
                                       Celsius(amb_new),
                                       ctx.topo->sinkOf(d), idx)) {
                    lo[idx] = amb_new;
                    chosen = idx;
                    break;
                }
                hi[idx] = amb_new;
            }
            decision_mhz = cache->stateFreqMhz[chosen];
        } else {
            decision_mhz =
                ctx.pm
                    ->chooseAtAmbientCapped(freqCurveFor(set),
                                            *ctx.leak,
                                            Celsius(amb_new),
                                            ctx.topo->sinkOf(d), cap)
                    .freqMhz;
        }
        const double discrete =
            std::max(0.0, ctx.freqMhz[d] - decision_mhz);
        if (discrete > 0.0) {
            penalty += discrete;
        } else if (decision_mhz < fastest_mhz - 1e-9) {
            // No edge crossed right now != no damage: once the
            // downstream socket is off the boost plateau, charge the
            // time-averaged expectation so upstream heat always has
            // a price. Sockets still boosting after the added heat
            // have genuine headroom and cost nothing.
            if (prune) {
                if (cache->feasMhzPerC[d] <= 0.0)
                    cache->feasMhzPerC[d] = mhzPerCelsius(
                        ctx, set, ctx.topo->sinkOf(d));
                penalty += dt * cache->feasMhzPerC[d];
            } else {
                penalty +=
                    dt * mhzPerCelsius(ctx, set, ctx.topo->sinkOf(d));
            }
        }
    }
    if (cache != nullptr)
        cache->penalty[socket] =
            PredictionCache::PenaltyEntry{cache->epoch, extra, penalty};
    return penalty;
}

} // namespace densim
