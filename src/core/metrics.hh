/**
 * @file
 * Metrics collected by a simulation run — everything the paper's
 * result figures are built from.
 *
 * - Runtime expansion (Figs. 11, 14): per completed job,
 *   (completion - arrival) / nominal duration; queue wait included.
 *   A scheme's "performance vs CF" is RE_CF / RE_scheme.
 * - Service expansion: (completion - start) / nominal — the pure
 *   slowdown from running below maximum frequency.
 * - Energy and ED^2 (Fig. 15): socket energy integral over the
 *   measurement window; ED^2 = E * (mean runtime expansion)^2.
 * - Regional behaviour (Fig. 13): busy-time-weighted average relative
 *   frequency and share of work done in the front half, back half and
 *   even (better-sink) zones.
 */

#ifndef DENSIM_CORE_METRICS_HH
#define DENSIM_CORE_METRICS_HH

#include <cstddef>
#include <vector>

#include "core/units.hh"
#include "util/stats.hh"

namespace densim {

/** Per-region accumulators (front half / back half / even zones). */
struct RegionMetrics
{
    double busyTimeS = 0.0;  //!< Socket-seconds busy.
    double freqTime = 0.0;   //!< Integral of relative frequency.
    double workDone = 0.0;   //!< Integral of throughput (nominal s).

    /** Busy-time-weighted mean relative frequency. */
    double avgRelFreq() const
    {
        return busyTimeS > 0.0 ? freqTime / busyTimeS : 0.0;
    }
};

/** Results of one simulation run. */
struct SimMetrics
{
    std::size_t jobsArrived = 0;
    std::size_t jobsCompleted = 0;   //!< Post-warmup completions.
    std::size_t jobsUnfinished = 0;  //!< Still queued/running at end.
    std::size_t migrations = 0;      //!< Jobs moved between sockets.

    RunningStats runtimeExpansion;   //!< Queue wait included.
    RunningStats serviceExpansion;   //!< Execution only.
    RunningStats queueDelayS;        //!< Arrival -> start.

    double energyJ = 0.0;            //!< Socket energy, post-warmup.
    double measuredS = 0.0;          //!< Measurement window length.
    double makespanS = 0.0;          //!< Last completion time.

    RegionMetrics front;             //!< Zones 1..3.
    RegionMetrics back;              //!< Zones 4..6.
    RegionMetrics even;              //!< Zones 2, 4, 6.
    double totalWork = 0.0;          //!< Work integral, all sockets.
    double totalBusyTime = 0.0;      //!< Socket-seconds busy.
    double totalFreqTime = 0.0;      //!< Rel-frequency integral.

    /** Zone-ambient timeline (if SimConfig::timelineSampleS > 0):
     *  one row per sample, one column per zone id. */
    std::vector<double> timelineS;
    std::vector<std::vector<double>> zoneAmbientC;

    RunningStats chipTempC;          //!< Epoch samples, busy sockets.
    double maxChipTempC = 0.0;       //!< Hottest observed junction.
    double boostTimeS = 0.0;         //!< Socket-seconds in boost.

    // Typed views of the raw accumulators above (which stay plain
    // doubles: they are integrated in the engine's hot loop and
    // serialized by the benches — the engine's hot-path boundary,
    // DESIGN.md Sec. 9).
    Joules energy() const { return Joules(energyJ); }
    Seconds measured() const { return Seconds(measuredS); }
    Seconds makespan() const { return Seconds(makespanS); }
    Celsius maxChipTemp() const { return Celsius(maxChipTempC); }

    /** Energy-delay-squared product. */
    double ed2() const;

    /** Mean relative frequency across all busy socket time. */
    double avgRelFreq() const;

    /** Fraction of work done in a region. */
    double workFraction(const RegionMetrics &region) const;

    /** Fraction of busy time spent in boost states. */
    double boostFraction() const;
};

/**
 * Relative performance of @p scheme against @p baseline:
 * RE_baseline / RE_scheme (> 1 means scheme is faster).
 */
double relativePerformance(const SimMetrics &scheme,
                           const SimMetrics &baseline);

/** ED^2 of @p scheme normalized to @p baseline. */
double relativeEd2(const SimMetrics &scheme, const SimMetrics &baseline);

} // namespace densim

#endif // DENSIM_CORE_METRICS_HH
