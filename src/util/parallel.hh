/**
 * @file
 * Minimal parallel-for over an index range with exception
 * propagation — the worker pool behind Experiment::runAll and the
 * fleet shard barrier (fleet/fleet_sim.hh).
 *
 * Work items are claimed from an atomic counter, so any number of
 * items runs on a bounded pool. An exception thrown by a work item
 * used to escape its std::thread and take the whole process down via
 * std::terminate; here every worker's first exception is captured in
 * a per-worker slot, remaining items are abandoned (workers drain the
 * counter without running them), every captured failure is reported
 * on stderr (worker index, item index, what()) once the pool has
 * joined, and the first-captured exception is rethrown on the calling
 * thread — a failed cell surfaces as an ordinary exception instead of
 * a lost process, and a second concurrent failure is reported instead
 * of silently swallowed.
 */

#ifndef DENSIM_UTIL_PARALLEL_HH
#define DENSIM_UTIL_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace densim {

namespace detail {

/** what() of a captured exception, or a placeholder for non-std. */
inline std::string
describeException(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "(non-standard exception)";
    }
}

} // namespace detail

/**
 * Invoke fn(i) for every i in [0, count) on up to @p threads workers
 * (0 = hardware concurrency). Completion order is unspecified; fn
 * must handle its own synchronization for shared state (writing to
 * distinct per-index slots is safe). When work items throw, every
 * captured exception is reported via warn() — worker index, work-item
 * index and what() — and the first-captured one is rethrown here
 * after all workers join, so a secondary concurrent failure (e.g. a
 * second fleet shard dying in the same barrier window) is never
 * silently swallowed.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (count == 0)
        return;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (static_cast<std::size_t>(threads) > count)
        threads = static_cast<unsigned>(count);

    struct WorkerFailure
    {
        std::exception_ptr error; //!< First exception of this worker.
        std::size_t item = 0;     //!< Work item that threw it.
    };

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first; // Written once by the failed.exchange
                              // winner, read after the joins.
    std::vector<WorkerFailure> failures(threads);
    auto worker = [&](unsigned w) {
        for (;;) {
            if (failed.load(std::memory_order_acquire))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                failures[w].error = std::current_exception();
                failures[w].item = i;
                if (!failed.exchange(true, std::memory_order_acq_rel))
                    first = failures[w].error;
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);
    for (std::thread &t : pool)
        t.join();
    if (!first)
        return;
    // Report every captured failure — not just the one about to be
    // rethrown — so a second worker dying in the same window leaves a
    // diagnostic instead of vanishing.
    for (unsigned w = 0; w < threads; ++w) {
        if (failures[w].error) {
            warn("parallelFor: worker ", w, ": item ",
                 failures[w].item, " failed: ",
                 detail::describeException(failures[w].error));
        }
    }
    std::rethrow_exception(first);
}

} // namespace densim

#endif // DENSIM_UTIL_PARALLEL_HH
