#include "sched/adaptive_random.hh"

#include <limits>

#include "util/logging.hh"

namespace densim {

AdaptiveRandom::AdaptiveRandom(CelsiusDelta band)
    : bandC_(band.value())
{
    if (bandC_ < 0.0)
        fatal("AdaptiveRandom: band must be non-negative, got ", bandC_);
}

std::size_t
AdaptiveRandom::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    const double *now = ctx.chipTempC;
    const double *hist = ctx.histTempC;

    double min_now = std::numeric_limits<double>::infinity();
    for (std::size_t s : *ctx.idle)
        min_now = std::min(min_now, now[s]);

    double min_hist = std::numeric_limits<double>::infinity();
    for (std::size_t s : *ctx.idle) {
        if (now[s] <= min_now + bandC_)
            min_hist = std::min(min_hist, hist[s]);
    }

    std::size_t n = 0;
    for (std::size_t s : *ctx.idle) {
        if (now[s] <= min_now + bandC_ && hist[s] <= min_hist + bandC_)
            ++n;
    }
    std::size_t chosen = ctx.rng->nextBounded(n);
    for (std::size_t s : *ctx.idle) {
        if (now[s] <= min_now + bandC_ &&
            hist[s] <= min_hist + bandC_) {
            if (chosen == 0)
                return s;
            --chosen;
        }
    }
    panic("A-Random candidate scan fell through");
}

} // namespace densim
