#include "airflow/first_law.hh"

#include "util/logging.hh"

namespace densim {

CelsiusDelta
airTemperatureRise(Watts heat, Cfm flow)
{
    const double watts = heat.value();
    const double cfm = flow.value();
    if (cfm <= 0.0)
        fatal("airTemperatureRise: airflow must be positive, got ", cfm);
    if (watts < 0.0)
        fatal("airTemperatureRise: negative power ", watts);
    return CelsiusDelta(kCelsiusPerWattPerCfm * watts / cfm);
}

CelsiusDelta
airTemperatureRise(Watts heat, CubicMetersPerSec flow)
{
    return airTemperatureRise(heat, toCfm(flow));
}

Cfm
requiredAirflow(Watts heat, CelsiusDelta rise)
{
    const double watts = heat.value();
    const double delta_t_celsius = rise.value();
    if (delta_t_celsius <= 0.0)
        fatal("requiredAirflow: temperature rise must be positive, got ",
              delta_t_celsius);
    if (watts < 0.0)
        fatal("requiredAirflow: negative power ", watts);
    return Cfm(kCelsiusPerWattPerCfm * watts / delta_t_celsius);
}

Watts
absorbableHeat(Cfm flow, CelsiusDelta rise)
{
    const double cfm = flow.value();
    const double delta_t_celsius = rise.value();
    if (cfm <= 0.0)
        fatal("absorbableHeat: airflow must be positive, got ", cfm);
    if (delta_t_celsius < 0.0)
        fatal("absorbableHeat: negative temperature rise ",
              delta_t_celsius);
    return Watts(cfm * delta_t_celsius / kCelsiusPerWattPerCfm);
}

} // namespace densim
