/**
 * @file
 * Tests for the keep-going experiment harness: per-cell fault
 * containment (one bad cell cannot take the sweep down), the sweep
 * summary JSON, digest-based resume, and the legacy fail-fast
 * behaviour when keep-going is off.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sys/resource.h>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "obs/json.hh"
#include "util/logging.hh"

namespace densim {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

SimConfig
fastConfig()
{
    SimConfig config;
    config.topo.rows = 2;
    config.simTimeS = 0.6;
    config.warmupS = 0.1;
    config.socketTauS = 0.5;
    config.seed = 11;
    return config;
}

/** CF at two loads plus one cell with a nonexistent scheduler. */
std::vector<RunSpec>
mixedSpecs()
{
    std::vector<RunSpec> specs =
        makeGrid({"CF"}, WorkloadSet::Computation, {0.4, 0.7},
                 fastConfig());
    RunSpec bad;
    bad.scheduler = "NoSuchPolicy";
    bad.config = fastConfig();
    specs.push_back(bad);
    return specs;
}

// ------------------------------------------------- digests

TEST(RunDigest, IsStableAndConfigSensitive)
{
    RunSpec a;
    a.scheduler = "CF";
    a.config = fastConfig();
    EXPECT_EQ(runDigest(a), runDigest(a));
    EXPECT_EQ(runDigest(a).size(), 16u);

    RunSpec b = a;
    b.config.load = a.config.load + 0.1;
    EXPECT_NE(runDigest(a), runDigest(b));

    RunSpec c = a;
    c.scheduler = "CP";
    EXPECT_NE(runDigest(a), runDigest(c));

    RunSpec d = a;
    d.config.fault.fanFailS = 1.0;
    EXPECT_NE(runDigest(a), runDigest(d));
}

// ------------------------------------------------- keep-going

TEST(KeepGoing, OneBadCellDoesNotStopTheSweep)
{
    SweepOptions options;
    options.keepGoing = true;
    options.threads = 2;
    const auto outcomes = runAllOutcomes(mixedSpecs(), options);
    ASSERT_EQ(outcomes.size(), 3u);

    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_GT(outcomes[0].metrics.jobsCompleted, 0u);
    EXPECT_GT(outcomes[1].metrics.jobsCompleted, 0u);

    EXPECT_FALSE(outcomes[2].ok);
    EXPECT_FALSE(outcomes[2].skipped);
    EXPECT_NE(outcomes[2].error.find("NoSuchPolicy"),
              std::string::npos);
    // The harness restores the historical fatal() behaviour.
    EXPECT_FALSE(fatalThrows());
}

TEST(KeepGoing, InjectedAbortIsCapturedPerCell)
{
    std::vector<RunSpec> specs = makeGrid(
        {"CF"}, WorkloadSet::Computation, {0.4, 0.7}, fastConfig());
    specs[1].config.fault.abortRunS = 0.2;

    SweepOptions options;
    options.keepGoing = true;
    const auto outcomes = runAllOutcomes(specs, options);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("abortRunS"), std::string::npos);
}

TEST(KeepGoing, WithoutKeepGoingTheFirstFailurePropagates)
{
    std::vector<RunSpec> specs = makeGrid(
        {"CF"}, WorkloadSet::Computation, {0.4}, fastConfig());
    specs[0].config.fault.abortRunS = 0.2;
    SweepOptions options; // keepGoing off.
    EXPECT_THROW((void)runAllOutcomes(specs, options),
                 std::runtime_error);
}

// ------------------------------------------------- summary JSON

TEST(KeepGoing, SummaryJsonIsStrictAndCountsStates)
{
    const std::string path =
        testing::TempDir() + "keepgoing_summary.json";
    SweepOptions options;
    options.keepGoing = true;
    options.summaryPath = path;
    const auto outcomes = runAllOutcomes(mixedSpecs(), options);

    const std::string doc = slurp(path);
    std::string error;
    ASSERT_TRUE(obs::json::validate(doc, &error)) << error;
    EXPECT_EQ(doc, sweepSummaryJson(outcomes));
    EXPECT_NE(doc.find("\"total\":3"), std::string::npos);
    EXPECT_NE(doc.find("\"completed\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"failed\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(doc.find("NoSuchPolicy"), std::string::npos);
    std::remove(path.c_str());
}

// ------------------------------------------------- resume

TEST(KeepGoing, ResumeSkipsCompletedAndReattemptsFailed)
{
    const std::string manifest =
        testing::TempDir() + "keepgoing_manifest.txt";
    std::remove(manifest.c_str());

    SweepOptions options;
    options.keepGoing = true;
    options.resumePath = manifest;
    const auto first = runAllOutcomes(mixedSpecs(), options);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_FALSE(first[0].skipped);
    EXPECT_FALSE(first[1].skipped);

    const auto second = runAllOutcomes(mixedSpecs(), options);
    // Completed cells skip; the failed cell is re-attempted (and
    // fails again) rather than being treated as done.
    EXPECT_TRUE(second[0].skipped);
    EXPECT_TRUE(second[1].skipped);
    EXPECT_FALSE(second[2].skipped);
    EXPECT_FALSE(second[2].ok);
    std::remove(manifest.c_str());
}

TEST(KeepGoing, MissingManifestMeansFreshSweep)
{
    const std::string manifest =
        testing::TempDir() + "keepgoing_missing_manifest.txt";
    std::remove(manifest.c_str());
    SweepOptions options;
    options.keepGoing = true;
    options.resumePath = manifest;
    const std::vector<RunSpec> specs = makeGrid(
        {"CF"}, WorkloadSet::Computation, {0.4}, fastConfig());
    const auto outcomes = runAllOutcomes(specs, options);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[0].skipped);

    // The manifest now records the completed digest.
    const std::string text = slurp(manifest);
    EXPECT_NE(text.find(outcomes[0].digest), std::string::npos);
    std::remove(manifest.c_str());
}

TEST(KeepGoing, EmptyGridYieldsEmptyOutcomes)
{
    SweepOptions options;
    options.keepGoing = true;
    EXPECT_TRUE(runAllOutcomes({}, options).empty());
}

/**
 * Forces every file write to fail with EFBIG for its lifetime by
 * dropping RLIMIT_FSIZE to zero (and ignoring the SIGXFSZ that would
 * otherwise kill the process). The cheapest faithful stand-in for a
 * full disk during a manifest append.
 */
class ScopedZeroFileLimit
{
  public:
    ScopedZeroFileLimit()
    {
        getrlimit(RLIMIT_FSIZE, &prev_);
        prevHandler_ = signal(SIGXFSZ, SIG_IGN);
        struct rlimit zero = prev_;
        zero.rlim_cur = 0;
        setrlimit(RLIMIT_FSIZE, &zero);
    }
    ~ScopedZeroFileLimit()
    {
        setrlimit(RLIMIT_FSIZE, &prev_);
        signal(SIGXFSZ, prevHandler_);
    }
    ScopedZeroFileLimit(const ScopedZeroFileLimit &) = delete;
    ScopedZeroFileLimit &operator=(const ScopedZeroFileLimit &) =
        delete;

  private:
    struct rlimit prev_;
    void (*prevHandler_)(int) = SIG_DFL;
};

TEST(KeepGoing, FailedManifestAppendIsFatalNotSilent)
{
    // Regression: the manifest append used to go unchecked, so a
    // full disk silently dropped the digest and the cell silently
    // re-ran on resume. It must now surface as a FatalError naming
    // the manifest path — escaping the keep-going containment, which
    // is for per-cell simulation failures, not durability failures.
    const std::string manifest =
        testing::TempDir() + "keepgoing_enospc_manifest.txt";
    std::remove(manifest.c_str());
    SweepOptions options;
    options.keepGoing = true;
    options.threads = 1;
    options.resumePath = manifest;
    std::vector<RunSpec> specs =
        makeGrid({"CF"}, WorkloadSet::Computation, {0.4},
                 fastConfig());
    try {
        ScopedZeroFileLimit fullDisk;
        (void)runAllOutcomes(specs, options);
        FAIL() << "manifest append failure was swallowed";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("resume manifest"), std::string::npos)
            << what;
        EXPECT_NE(what.find(manifest), std::string::npos) << what;
        EXPECT_NE(what.find("cannot append digest"),
                  std::string::npos)
            << what;
    }
    std::remove(manifest.c_str());
}

} // namespace
} // namespace densim
