file(REMOVE_RECURSE
  "CMakeFiles/fig02_cartridge_airtemp.dir/fig02_cartridge_airtemp.cc.o"
  "CMakeFiles/fig02_cartridge_airtemp.dir/fig02_cartridge_airtemp.cc.o.d"
  "fig02_cartridge_airtemp"
  "fig02_cartridge_airtemp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cartridge_airtemp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
