#include "sched/hottest_first.hh"

namespace densim {

std::size_t
HottestFirst::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    return pickMaxBy(ctx, ctx.chipTempC, 1e-9, false);
}

} // namespace densim
