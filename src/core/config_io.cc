#include "core/config_io.hh"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "util/fs.hh"
#include "util/logging.hh"

namespace densim {

namespace {

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

double
parseDouble(const std::string &key, const std::string &value)
{
    std::size_t used = 0;
    double out = 0.0;
    try {
        out = std::stod(value, &used);
    } catch (const std::exception &) {
        fatal("config: cannot parse '", value, "' for key '", key,
              "'");
    }
    if (used != value.size())
        fatal("config: trailing junk in '", value, "' for key '", key,
              "'");
    return out;
}

int
parseInt(const std::string &key, const std::string &value)
{
    const double d = parseDouble(key, value);
    const int i = static_cast<int>(d);
    if (static_cast<double>(i) != d)
        fatal("config: key '", key, "' needs an integer, got '", value,
              "'");
    return i;
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    // Not via parseDouble: a 64-bit seed has more digits than a
    // double has mantissa, and a seed that silently rounds is a
    // reproducibility bug.
    std::size_t used = 0;
    std::uint64_t out = 0;
    try {
        out = std::stoull(value, &used);
    } catch (const std::exception &) {
        fatal("config: cannot parse '", value, "' for key '", key,
              "'");
    }
    if (used != value.size())
        fatal("config: trailing junk in '", value, "' for key '", key,
              "'");
    return out;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    fatal("config: key '", key, "' needs a boolean, got '", value,
          "'");
}

WorkloadSet
parseWorkload(const std::string &key, const std::string &value)
{
    for (WorkloadSet set : allWorkloadSets()) {
        if (value == workloadSetName(set))
            return set;
    }
    fatal("config: key '", key, "' needs one of Computation/GP/"
          "Storage, got '",
          value, "'");
}

/** One settable key: apply and serialize. */
struct KeyOps
{
    std::function<void(SimConfig &, const std::string &,
                       const std::string &)>
        apply;
    std::function<std::string(const SimConfig &)> print;
};

const std::map<std::string, KeyOps> &
keyTable()
{
    auto dbl = [](double SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.*field;
                return os.str();
            },
        };
    };
    auto intf = [](int SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) { c.*field = parseInt(k, v); },
            [field](const SimConfig &c) {
                return std::to_string(c.*field);
            },
        };
    };
    auto boolf = [](bool SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.*field = parseBool(k, v);
            },
            [field](const SimConfig &c) {
                return c.*field ? "true" : "false";
            },
        };
    };
    auto topo_int = [](int TopologySpec::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.topo.*field = parseInt(k, v);
            },
            [field](const SimConfig &c) {
                return std::to_string(c.topo.*field);
            },
        };
    };
    auto topo_dbl = [](double TopologySpec::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.topo.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.topo.*field;
                return os.str();
            },
        };
    };
    // Output sinks fail fast at key-apply time: the files are only
    // written at the end of a run, and a typo'd directory should not
    // surface minutes into a sweep.
    auto pathf = [](std::string SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                if (!v.empty() && !pathWritable(v)) {
                    fatal("config: key '", k, "' = '", v,
                          "': directory '", parentDir(v),
                          "' does not exist or is not writable");
                }
                c.*field = v;
            },
            [field](const SimConfig &c) { return c.*field; },
        };
    };
    auto fault_dbl = [](double FaultConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.fault.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.fault.*field;
                return os.str();
            },
        };
    };
    auto fault_int = [](int FaultConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.fault.*field = parseInt(k, v);
            },
            [field](const SimConfig &c) {
                return std::to_string(c.fault.*field);
            },
        };
    };
    auto coup_dbl = [](double CouplingParams::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.coupling.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.coupling.*field;
                return os.str();
            },
        };
    };

    static const std::map<std::string, KeyOps> table{
        {"workload",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.workload = parseWorkload(k, v);
          },
          [](const SimConfig &c) {
              return std::string(workloadSetName(c.workload));
          }}},
        {"load", dbl(&SimConfig::load)},
        {"simTimeS", dbl(&SimConfig::simTimeS)},
        {"warmupS", dbl(&SimConfig::warmupS)},
        {"drainFactor", dbl(&SimConfig::drainFactor)},
        {"pmEpochS", dbl(&SimConfig::pmEpochS)},
        {"chipTauS", dbl(&SimConfig::chipTauS)},
        {"socketTauS", dbl(&SimConfig::socketTauS)},
        {"histTauS", dbl(&SimConfig::histTauS)},
        {"tLimitC", dbl(&SimConfig::tLimitC)},
        {"rIntCW", dbl(&SimConfig::rIntCW)},
        {"gatedFracTdp", dbl(&SimConfig::gatedFracTdp)},
        {"boostRefillRate", dbl(&SimConfig::boostRefillRate)},
        {"boostBurstS", dbl(&SimConfig::boostBurstS)},
        {"migrationEnabled", boolf(&SimConfig::migrationEnabled)},
        {"migrationIntervalS", dbl(&SimConfig::migrationIntervalS)},
        {"migrationCostS", dbl(&SimConfig::migrationCostS)},
        {"migrationMinRemainingS",
         dbl(&SimConfig::migrationMinRemainingS)},
        {"migrationMaxPerPass", intf(&SimConfig::migrationMaxPerPass)},
        {"fanPowerW", dbl(&SimConfig::fanPowerW)},
        {"sensorNoiseC", dbl(&SimConfig::sensorNoiseC)},
        {"sensorQuantC", dbl(&SimConfig::sensorQuantC)},
        {"timelineSampleS", dbl(&SimConfig::timelineSampleS)},
        {"obs.tracePath", pathf(&SimConfig::obsTracePath)},
        {"obs.timelinePath", pathf(&SimConfig::obsTimelinePath)},
        {"incrementalThermal", boolf(&SimConfig::incrementalThermal)},
        {"dvfsMemoQuantC", dbl(&SimConfig::dvfsMemoQuantC)},
        {"schedPredictionCache",
         boolf(&SimConfig::schedPredictionCache)},
        {"ambientBatchFrac", dbl(&SimConfig::ambientBatchFrac)},
        {"busySumSkip", boolf(&SimConfig::busySumSkip)},
        {"pmDecisionPrune", boolf(&SimConfig::pmDecisionPrune)},
        {"warmStart", boolf(&SimConfig::warmStart)},
        {"seed",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.seed = parseU64(k, v);
          },
          [](const SimConfig &c) { return std::to_string(c.seed); }}},
        {"topo.rows", topo_int(&TopologySpec::rows)},
        {"topo.cartridgesPerRow",
         topo_int(&TopologySpec::cartridgesPerRow)},
        {"topo.zonesPerCartridge",
         topo_int(&TopologySpec::zonesPerCartridge)},
        {"topo.socketsPerZone", topo_int(&TopologySpec::socketsPerZone)},
        {"topo.intraZoneSpacingInch",
         topo_dbl(&TopologySpec::intraZoneSpacingInch)},
        {"topo.interCartridgeGapInch",
         topo_dbl(&TopologySpec::interCartridgeGapInch)},
        {"topo.perSocketCfm", topo_dbl(&TopologySpec::perSocketCfm)},
        {"topo.inletC", topo_dbl(&TopologySpec::inletC)},
        {"fault.seed",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.fault.seed = parseU64(k, v);
          },
          [](const SimConfig &c) {
              return std::to_string(c.fault.seed);
          }}},
        {"fault.fanFailS", fault_dbl(&FaultConfig::fanFailS)},
        {"fault.fanRecoverS", fault_dbl(&FaultConfig::fanRecoverS)},
        {"fault.fanSpeedFrac", fault_dbl(&FaultConfig::fanSpeedFrac)},
        {"fault.fanCount", fault_int(&FaultConfig::fanCount)},
        {"fault.sensorStuckCount",
         fault_int(&FaultConfig::sensorStuckCount)},
        {"fault.sensorStuckAtS",
         fault_dbl(&FaultConfig::sensorStuckAtS)},
        {"fault.sensorNoisyCount",
         fault_int(&FaultConfig::sensorNoisyCount)},
        {"fault.sensorNoiseSigmaC",
         fault_dbl(&FaultConfig::sensorNoiseSigmaC)},
        {"fault.sensorNoisyAtS",
         fault_dbl(&FaultConfig::sensorNoisyAtS)},
        {"fault.sensorDropoutCount",
         fault_int(&FaultConfig::sensorDropoutCount)},
        {"fault.sensorDropoutAtS",
         fault_dbl(&FaultConfig::sensorDropoutAtS)},
        {"fault.sensorDropoutDurS",
         fault_dbl(&FaultConfig::sensorDropoutDurS)},
        {"fault.dropoutPolicy",
         {[](SimConfig &c, const std::string &, const std::string &v) {
              c.fault.dropoutPolicy = parseDropoutPolicy(v);
          },
          [](const SimConfig &c) {
              return std::string(
                  dropoutPolicyName(c.fault.dropoutPolicy));
          }}},
        {"fault.fallbackAmbientC",
         fault_dbl(&FaultConfig::fallbackAmbientC)},
        {"fault.socketFailCount",
         fault_int(&FaultConfig::socketFailCount)},
        {"fault.socketFailS", fault_dbl(&FaultConfig::socketFailS)},
        {"fault.socketRecoverS",
         fault_dbl(&FaultConfig::socketRecoverS)},
        {"fault.emergencyMarginC",
         fault_dbl(&FaultConfig::emergencyMarginC)},
        {"fault.emergencySustainS",
         fault_dbl(&FaultConfig::emergencySustainS)},
        {"fault.quarantineSustainS",
         fault_dbl(&FaultConfig::quarantineSustainS)},
        {"fault.quarantineExitC",
         fault_dbl(&FaultConfig::quarantineExitC)},
        {"fault.abortRunS", fault_dbl(&FaultConfig::abortRunS)},
        {"fault.logPath",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              if (!v.empty() && !pathWritable(v)) {
                  fatal("config: key '", k, "' = '", v,
                        "': directory '", parentDir(v),
                        "' does not exist or is not writable");
              }
              c.fault.logPath = v;
          },
          [](const SimConfig &c) { return c.fault.logPath; }}},
        {"fleet.chassis",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              const int n = parseInt(k, v);
              if (n < 0)
                  fatal("config: key '", k, "' must be >= 0, got ",
                        n);
              c.fleet.chassis = static_cast<std::size_t>(n);
          },
          [](const SimConfig &c) {
              return std::to_string(c.fleet.chassis);
          }}},
        {"fleet.epochS",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.fleet.epochS = parseDouble(k, v);
          },
          [](const SimConfig &c) {
              std::ostringstream os;
              os << c.fleet.epochS;
              return os.str();
          }}},
        {"fleet.dispatcher",
         {[](SimConfig &c, const std::string &, const std::string &v) {
              c.fleet.dispatcher = v;
          },
          [](const SimConfig &c) { return c.fleet.dispatcher; }}},
        {"fleet.powerBudgetW",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.fleet.powerBudgetW = parseDouble(k, v);
          },
          [](const SimConfig &c) {
              std::ostringstream os;
              os << c.fleet.powerBudgetW;
              return os.str();
          }}},
        {"fleet.seed",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.fleet.seed = parseU64(k, v);
          },
          [](const SimConfig &c) {
              return std::to_string(c.fleet.seed);
          }}},
        {"ckpt.path", pathf(&SimConfig::ckptPath)},
        {"ckpt.everyS", dbl(&SimConfig::ckptEveryS)},
        {"coupling.mixFactor", coup_dbl(&CouplingParams::mixFactor)},
        {"coupling.decayLengthInch",
         coup_dbl(&CouplingParams::decayLengthInch)},
        {"coupling.wakeFactor", coup_dbl(&CouplingParams::wakeFactor)},
        {"coupling.kappaLocal", coup_dbl(&CouplingParams::kappaLocal)},
        {"coupling.verticalLeak",
         coup_dbl(&CouplingParams::verticalLeak)},
    };
    return table;
}

/** Classic dynamic-programming Levenshtein distance. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/**
 * " (did you mean 'X'?)" for the nearest known key within an edit
 * distance of 3, or "" when nothing plausible is close enough.
 */
std::string
suggestKey(const std::string &unknown)
{
    std::size_t best_dist = 4; // Suggest only within distance 3.
    std::string best;
    for (const auto &[key, ops] : keyTable()) {
        const std::size_t d = editDistance(unknown, key);
        if (d < best_dist) {
            best_dist = d;
            best = key;
        }
    }
    if (best.empty() || best_dist >= unknown.size())
        return "";
    return " (did you mean '" + best + "'?)";
}

} // namespace

void
applyConfigKey(SimConfig &config, const std::string &key,
               const std::string &value)
{
    const std::string k = trim(key);
    const auto it = keyTable().find(k);
    if (it == keyTable().end())
        fatal("config: unknown key '", k, "'", suggestKey(k));
    it->second.apply(config, k, trim(value));
}

void
loadConfig(SimConfig &config, std::istream &in)
{
    std::string line;
    int lineno = 0;
    std::map<std::string, int> first_seen;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string body = trim(line);
        if (body.empty())
            continue;
        const auto eq = body.find('=');
        if (eq == std::string::npos)
            fatal("config: line ", lineno, " is not 'key = value': '",
                  body, "'");
        const std::string k = trim(body.substr(0, eq));
        const auto it = keyTable().find(k);
        if (it == keyTable().end()) {
            fatal("config: line ", lineno, ": unknown key '", k, "'",
                  suggestKey(k));
        }
        const auto [seen, fresh] = first_seen.emplace(k, lineno);
        if (!fresh) {
            fatal("config: line ", lineno, ": duplicate key '", k,
                  "' (first set at line ", seen->second, ")");
        }
        it->second.apply(config, k, trim(body.substr(eq + 1)));
    }
}

void
loadConfigFile(SimConfig &config, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open '", path, "'");
    loadConfig(config, in);
}

std::string
saveConfig(const SimConfig &config)
{
    std::ostringstream os;
    os << "# densim simulation configuration\n";
    for (const auto &[key, ops] : keyTable())
        os << key << " = " << ops.print(config) << "\n";
    return os.str();
}

} // namespace densim
