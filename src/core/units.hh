/**
 * @file
 * Zero-overhead compile-time dimensional analysis for densim.
 *
 * Every physical quantity the simulator passes between layers —
 * temperatures, powers, energies, airflows, thermal resistances and
 * capacitances — used to travel as a bare `double`, so the bug class
 * the paper's models are most sensitive to (a swapped `(power, flow)`
 * argument pair, a Celsius-vs-Kelvin mixup, a CFM fed where m^3/s is
 * expected) compiled cleanly and only surfaced, maybe, as a runtime
 * invariant trip. This header makes those errors ill-formed:
 *
 *  - `Quantity<Dim<L,M,T,K>>` is a strong typedef over `double`
 *    tagged with integer exponents over the (m, kg, s, K) basis.
 *    `+`/`-` require identical dimensions; `*`/`/` combine exponents
 *    (`Watts * KelvinPerWatt` *is* a `CelsiusDelta`); the ratio of two
 *    same-dimension quantities is a plain `double`.
 *  - `Celsius` and `Kelvin` are *affine temperature points*, not
 *    quantities: point - point = `CelsiusDelta`, point +/- delta =
 *    point, and everything else (adding two points, scaling a point,
 *    cross-assigning the two scales) does not compile. Convert
 *    explicitly with toKelvin()/toCelsius().
 *  - `Cfm` is the imperial airflow unit densim's airflow stack (and
 *    Table II/III) works in, kept distinct from the SI
 *    `CubicMetersPerSec` so the 4.719e-4 conversion can never be
 *    silently skipped or applied twice; convert explicitly with
 *    toM3PerS()/toCfm().
 *
 * Policy (DESIGN.md Sec. 9): typed at public API boundaries, raw
 * `double` allowed inside implementations and across I/O / hot-path
 * bulk-vector boundaries via the `.value()` escape hatch. Every type
 * here is a trivially copyable single `double` — same size, same
 * registers, same codegen — enforced by the static_asserts at the
 * bottom, so the PR-1 caches and hot loops are untouched.
 *
 * Adding a new dimension: pick the exponent vector, add a `using`
 * alias (and a literal if it reads well), and extend the
 * tests/compile_fail/ harness with one ill-formed combination.
 */

#ifndef DENSIM_CORE_UNITS_HH
#define DENSIM_CORE_UNITS_HH

#include <type_traits>

namespace densim {

/** One cubic foot per minute in cubic metres per second. */
inline constexpr double kCfmToM3PerS = 4.71947e-4;

/** Celsius-to-Kelvin offset of the two temperature scales. */
inline constexpr double kCelsiusToKelvinOffset = 273.15;

/**
 * Dimension tag: integer exponents over the (length, mass, time,
 * temperature) basis, i.e. Dim<2,1,-3,0> is kg*m^2/s^3 = W.
 */
template <int L, int M, int T, int K>
struct Dim final
{
};

/**
 * A `double` carrying its physical dimension in the type. Construction
 * from a raw double is explicit; `.value()` is the only way back out.
 */
template <class D>
class Quantity final
{
  public:
    constexpr Quantity() = default;
    explicit constexpr Quantity(double raw) : v_(raw) {}

    /** Raw magnitude — the escape hatch for I/O and hot-path code. */
    [[nodiscard]] constexpr double value() const { return v_; }

    constexpr Quantity &operator+=(Quantity other)
    {
        v_ += other.v_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity other)
    {
        v_ -= other.v_;
        return *this;
    }
    constexpr Quantity &operator*=(double scale)
    {
        v_ *= scale;
        return *this;
    }
    constexpr Quantity &operator/=(double scale)
    {
        v_ /= scale;
        return *this;
    }

    friend constexpr Quantity operator+(Quantity a, Quantity b)
    {
        return Quantity(a.v_ + b.v_);
    }
    friend constexpr Quantity operator-(Quantity a, Quantity b)
    {
        return Quantity(a.v_ - b.v_);
    }
    friend constexpr Quantity operator-(Quantity a)
    {
        return Quantity(-a.v_);
    }
    friend constexpr Quantity operator*(Quantity a, double scale)
    {
        return Quantity(a.v_ * scale);
    }
    friend constexpr Quantity operator*(double scale, Quantity a)
    {
        return Quantity(scale * a.v_);
    }
    friend constexpr Quantity operator/(Quantity a, double scale)
    {
        return Quantity(a.v_ / scale);
    }
    /** Ratio of same-dimension quantities is a plain number. */
    friend constexpr double operator/(Quantity a, Quantity b)
    {
        return a.v_ / b.v_;
    }

    friend constexpr bool operator==(Quantity a, Quantity b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(Quantity a, Quantity b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(Quantity a, Quantity b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(Quantity a, Quantity b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(Quantity a, Quantity b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(Quantity a, Quantity b)
    {
        return a.v_ >= b.v_;
    }

  private:
    double v_ = 0.0;
};

/** Product combines dimension exponents: W * K/W = K. */
template <int L1, int M1, int T1, int K1, int L2, int M2, int T2, int K2>
[[nodiscard]] constexpr Quantity<Dim<L1 + L2, M1 + M2, T1 + T2, K1 + K2>>
operator*(Quantity<Dim<L1, M1, T1, K1>> a, Quantity<Dim<L2, M2, T2, K2>> b)
{
    return Quantity<Dim<L1 + L2, M1 + M2, T1 + T2, K1 + K2>>(a.value() *
                                                             b.value());
}

/** Quotient subtracts dimension exponents: K / (K/W) = W. */
template <int L1, int M1, int T1, int K1, int L2, int M2, int T2, int K2>
[[nodiscard]] constexpr Quantity<Dim<L1 - L2, M1 - M2, T1 - T2, K1 - K2>>
operator/(Quantity<Dim<L1, M1, T1, K1>> a, Quantity<Dim<L2, M2, T2, K2>> b)
{
    return Quantity<Dim<L1 - L2, M1 - M2, T1 - T2, K1 - K2>>(a.value() /
                                                             b.value());
}

using Watts = Quantity<Dim<2, 1, -3, 0>>;
using Joules = Quantity<Dim<2, 1, -2, 0>>;
using Seconds = Quantity<Dim<0, 0, 1, 0>>;
using CubicMetersPerSec = Quantity<Dim<3, 0, -1, 0>>;
/** Temperature *difference* (identical magnitude in C and K). */
using CelsiusDelta = Quantity<Dim<0, 0, 0, 1>>;
using KelvinDelta = CelsiusDelta;
/** Thermal resistance (Eq. (1) R_int/R_ext, RC-network edges). */
using KelvinPerWatt = Quantity<Dim<-2, -1, 3, 1>>;
/** Heat capacitance (RC-network nodes). */
using JoulePerKelvin = Quantity<Dim<2, 1, -2, -1>>;

namespace detail {
struct CelsiusScaleTag final
{
};
struct KelvinScaleTag final
{
};
} // namespace detail

/**
 * Affine temperature point on one scale. Only point +/- delta and
 * point - point are defined; scaling or adding two points, or mixing
 * scales, is ill-formed.
 */
template <class Scale>
class TempPoint final
{
  public:
    constexpr TempPoint() = default;
    explicit constexpr TempPoint(double degrees) : v_(degrees) {}

    /** Raw degrees on this scale — the I/O escape hatch. */
    [[nodiscard]] constexpr double value() const { return v_; }

    constexpr TempPoint &operator+=(CelsiusDelta d)
    {
        v_ += d.value();
        return *this;
    }
    constexpr TempPoint &operator-=(CelsiusDelta d)
    {
        v_ -= d.value();
        return *this;
    }

    friend constexpr TempPoint operator+(TempPoint t, CelsiusDelta d)
    {
        return TempPoint(t.v_ + d.value());
    }
    friend constexpr TempPoint operator+(CelsiusDelta d, TempPoint t)
    {
        return TempPoint(d.value() + t.v_);
    }
    friend constexpr TempPoint operator-(TempPoint t, CelsiusDelta d)
    {
        return TempPoint(t.v_ - d.value());
    }
    friend constexpr CelsiusDelta operator-(TempPoint a, TempPoint b)
    {
        return CelsiusDelta(a.v_ - b.v_);
    }

    friend constexpr bool operator==(TempPoint a, TempPoint b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(TempPoint a, TempPoint b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(TempPoint a, TempPoint b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(TempPoint a, TempPoint b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(TempPoint a, TempPoint b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(TempPoint a, TempPoint b)
    {
        return a.v_ >= b.v_;
    }

  private:
    double v_ = 0.0;
};

using Celsius = TempPoint<detail::CelsiusScaleTag>;
using Kelvin = TempPoint<detail::KelvinScaleTag>;

[[nodiscard]] constexpr Kelvin
toKelvin(Celsius c)
{
    return Kelvin(c.value() + kCelsiusToKelvinOffset);
}

[[nodiscard]] constexpr Celsius
toCelsius(Kelvin k)
{
    return Celsius(k.value() - kCelsiusToKelvinOffset);
}

/**
 * Volumetric airflow in cubic feet per minute — the unit the fan
 * curves, flow budgets and Table II/III work in. Deliberately a
 * distinct type from the SI CubicMetersPerSec (same dimension,
 * different unit), so the conversion is always explicit and the
 * stored CFM magnitude is preserved exactly (no round-trip through
 * the 4.719e-4 factor on the Table II/III hot constants).
 */
class Cfm final
{
  public:
    constexpr Cfm() = default;
    explicit constexpr Cfm(double flow_cfm) : v_(flow_cfm) {}

    /** Raw CFM magnitude — the I/O escape hatch. */
    [[nodiscard]] constexpr double value() const { return v_; }

    constexpr Cfm &operator+=(Cfm other)
    {
        v_ += other.v_;
        return *this;
    }
    constexpr Cfm &operator-=(Cfm other)
    {
        v_ -= other.v_;
        return *this;
    }
    constexpr Cfm &operator*=(double scale)
    {
        v_ *= scale;
        return *this;
    }
    constexpr Cfm &operator/=(double scale)
    {
        v_ /= scale;
        return *this;
    }

    friend constexpr Cfm operator+(Cfm a, Cfm b)
    {
        return Cfm(a.v_ + b.v_);
    }
    friend constexpr Cfm operator-(Cfm a, Cfm b)
    {
        return Cfm(a.v_ - b.v_);
    }
    friend constexpr Cfm operator*(Cfm a, double scale)
    {
        return Cfm(a.v_ * scale);
    }
    friend constexpr Cfm operator*(double scale, Cfm a)
    {
        return Cfm(scale * a.v_);
    }
    friend constexpr Cfm operator/(Cfm a, double scale)
    {
        return Cfm(a.v_ / scale);
    }
    friend constexpr double operator/(Cfm a, Cfm b)
    {
        return a.v_ / b.v_;
    }

    friend constexpr bool operator==(Cfm a, Cfm b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(Cfm a, Cfm b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(Cfm a, Cfm b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(Cfm a, Cfm b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(Cfm a, Cfm b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(Cfm a, Cfm b)
    {
        return a.v_ >= b.v_;
    }

  private:
    double v_ = 0.0;
};

[[nodiscard]] constexpr CubicMetersPerSec
toM3PerS(Cfm flow)
{
    return CubicMetersPerSec(flow.value() * kCfmToM3PerS);
}

[[nodiscard]] constexpr Cfm
toCfm(CubicMetersPerSec flow)
{
    return Cfm(flow.value() / kCfmToM3PerS);
}

/**
 * Unit literals: `22.0_W`, `95.0_degC`, `6.35_cfm`, `0.205_KpW`, ...
 * An inline namespace, so `using namespace densim` suffices.
 */
inline namespace unit_literals {

constexpr Watts operator""_W(long double v)
{
    return Watts(static_cast<double>(v));
}
constexpr Watts operator""_W(unsigned long long v)
{
    return Watts(static_cast<double>(v));
}
constexpr Joules operator""_J(long double v)
{
    return Joules(static_cast<double>(v));
}
constexpr Joules operator""_J(unsigned long long v)
{
    return Joules(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v)
{
    return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_s(unsigned long long v)
{
    return Seconds(static_cast<double>(v));
}
constexpr CelsiusDelta operator""_dC(long double v)
{
    return CelsiusDelta(static_cast<double>(v));
}
constexpr CelsiusDelta operator""_dC(unsigned long long v)
{
    return CelsiusDelta(static_cast<double>(v));
}
constexpr Celsius operator""_degC(long double v)
{
    return Celsius(static_cast<double>(v));
}
constexpr Celsius operator""_degC(unsigned long long v)
{
    return Celsius(static_cast<double>(v));
}
constexpr Kelvin operator""_K(long double v)
{
    return Kelvin(static_cast<double>(v));
}
constexpr Kelvin operator""_K(unsigned long long v)
{
    return Kelvin(static_cast<double>(v));
}
constexpr Cfm operator""_cfm(long double v)
{
    return Cfm(static_cast<double>(v));
}
constexpr Cfm operator""_cfm(unsigned long long v)
{
    return Cfm(static_cast<double>(v));
}
constexpr CubicMetersPerSec operator""_m3s(long double v)
{
    return CubicMetersPerSec(static_cast<double>(v));
}
constexpr CubicMetersPerSec operator""_m3s(unsigned long long v)
{
    return CubicMetersPerSec(static_cast<double>(v));
}
constexpr KelvinPerWatt operator""_KpW(long double v)
{
    return KelvinPerWatt(static_cast<double>(v));
}
constexpr KelvinPerWatt operator""_KpW(unsigned long long v)
{
    return KelvinPerWatt(static_cast<double>(v));
}
constexpr JoulePerKelvin operator""_JpK(long double v)
{
    return JoulePerKelvin(static_cast<double>(v));
}
constexpr JoulePerKelvin operator""_JpK(unsigned long long v)
{
    return JoulePerKelvin(static_cast<double>(v));
}

} // namespace unit_literals

// Zero-overhead guarantees: every unit type is one double, trivially
// copyable, so vectors reinterpret cleanly and hot paths see plain
// FP arithmetic. A failure here is an ABI-breaking regression.
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Joules) == sizeof(double));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(CubicMetersPerSec) == sizeof(double));
static_assert(sizeof(CelsiusDelta) == sizeof(double));
static_assert(sizeof(KelvinPerWatt) == sizeof(double));
static_assert(sizeof(JoulePerKelvin) == sizeof(double));
static_assert(sizeof(Celsius) == sizeof(double));
static_assert(sizeof(Kelvin) == sizeof(double));
static_assert(sizeof(Cfm) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Watts>);
static_assert(std::is_trivially_copyable_v<Joules>);
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<CubicMetersPerSec>);
static_assert(std::is_trivially_copyable_v<CelsiusDelta>);
static_assert(std::is_trivially_copyable_v<KelvinPerWatt>);
static_assert(std::is_trivially_copyable_v<JoulePerKelvin>);
static_assert(std::is_trivially_copyable_v<Celsius>);
static_assert(std::is_trivially_copyable_v<Kelvin>);
static_assert(std::is_trivially_copyable_v<Cfm>);

// Dimensional algebra sanity (compile-time, no runtime cost).
static_assert(std::is_same_v<decltype(Watts(1) * Seconds(1)), Joules>);
static_assert(std::is_same_v<decltype(Watts(1) * KelvinPerWatt(1)),
                             CelsiusDelta>);
static_assert(std::is_same_v<decltype(CelsiusDelta(1) / Watts(1)),
                             KelvinPerWatt>);
static_assert(std::is_same_v<decltype(CelsiusDelta(1) / KelvinPerWatt(1)),
                             Watts>);
static_assert(std::is_same_v<decltype(Joules(1) / CelsiusDelta(1)),
                             JoulePerKelvin>);
static_assert(std::is_same_v<decltype(Joules(1) / Seconds(1)), Watts>);
static_assert(std::is_same_v<decltype(Watts(2) / Watts(1)), double>);

} // namespace densim

#endif // DENSIM_CORE_UNITS_HH
