/**
 * @file
 * Extension bench (paper Sec. VI): reuse the scheduling policy for
 * workload migration. The paper notes migration is "useful when job
 * durations are long" — exactly the heavy tail of the PCMark duration
 * model (maxima ~2 orders of magnitude above the ms-scale mean, i.e.
 * comparable to the socket thermal time constant). A long job placed
 * when its socket was cool ends up pinned on a throttled socket; the
 * migration pass moves it to wherever the active policy would place
 * it now, if that destination actually runs faster.
 */

#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== Extension: policy-driven workload migration "
                 "(Computation) ===\n\n";

    const std::vector<double> loads{0.5, 0.7, 0.85};
    const std::vector<std::string> schemes{"CF", "CP"};

    TableWriter table({"Load", "Scheme", "Migration", "RuntimeExp",
                       "Migrations", "AvgFreq"});
    for (double load : loads) {
        for (const std::string &scheme : schemes) {
            for (bool migrate : {false, true}) {
                double expansion = 0, migrations = 0, freq = 0;
                for (std::uint64_t seed : benchSeeds()) {
                    SimConfig config =
                        sutBenchConfig(load, WorkloadSet::Computation);
                    config.seed = seed;
                    config.migrationEnabled = migrate;
                    DenseServerSim sim(config, makeScheduler(scheme));
                    const SimMetrics m = sim.run();
                    expansion += m.runtimeExpansion.mean();
                    migrations += static_cast<double>(m.migrations);
                    freq += m.avgRelFreq();
                }
                const double n =
                    static_cast<double>(benchSeeds().size());
                table.newRow()
                    .cell(load, 2)
                    .cell(scheme)
                    .cell(migrate ? "on" : "off")
                    .cell(expansion / n, 4)
                    .cell(migrations / n, 0)
                    .cell(freq / n, 3);
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nFinding: with ms-scale VDI jobs only the duration "
                 "tail ever qualifies, so migration moves the needle "
                 "very little (and its cost can eat the gain) — "
                 "matching the paper's own caveat that migration is "
                 "useful when job durations are long (Sec. VI).\n";
    return 0;
}
