/**
 * @file
 * Per-epoch bump allocator for hot-path scratch memory.
 *
 * The engine's inner loops (thermalStep's batched chip-rise targets,
 * the CP scheduler's candidate lists, timeline sampling) need small
 * transient arrays every epoch. Allocating them from the heap costs a
 * malloc/free pair per epoch — and, worse, makes steady-state
 * allocation behaviour nondeterministic. Arena replaces those with
 * pointer bumps inside a pre-reserved block.
 *
 * Lifetime rules (DESIGN.md Sec. 12):
 *  - Every user brackets its scratch with mark()/release(); nesting is
 *    allowed as long as releases unwind in LIFO order.
 *  - Pointers obtained from alloc() are invalid after the matching
 *    release() (or reset()); nothing long-lived may point into the
 *    arena.
 *  - The owner pre-reserves capacity once (reserve()); any growth
 *    afterwards increments stats().growths, which the engine asserts
 *    to be zero each epoch under DENSIM_CHECKS — the steady-state
 *    zero-heap-allocation contract.
 *
 * Growth is still correct when it happens (a fresh block is chained;
 * live allocations are never moved or invalidated), so an undersized
 * reserve degrades to a perf bug caught by the stats counter, not a
 * correctness bug.
 */

#ifndef DENSIM_UTIL_ARENA_HH
#define DENSIM_UTIL_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/effects.hh"

namespace densim {

/** Chained-block bump allocator with LIFO mark/release. */
class Arena
{
  public:
    /** Position cookie returned by mark() and consumed by release(). */
    struct Marker
    {
        std::size_t block;
        std::size_t offset;
    };

    /** Allocation statistics — the zero-heap-per-epoch evidence. */
    struct Stats
    {
        std::size_t capacityBytes = 0;  //!< Total reserved capacity.
        std::size_t highWaterBytes = 0; //!< Peak concurrently live.
        std::uint64_t allocCalls = 0;   //!< Total alloc() calls.
        std::uint64_t growths = 0;      //!< Blocks added after reserve.
    };

    Arena() = default;

    explicit Arena(std::size_t capacity_bytes) { reserve(capacity_bytes); }

    /**
     * Ensure at least @p bytes of contiguous capacity and rewind to
     * empty. Called once per run from resetState; does not count as a
     * growth.
     */
    void reserve(std::size_t bytes)
    {
        blocks_.clear();
        cur_ = 0;
        off_ = 0;
        base_ = 0;
        stats_ = Stats{};
        if (bytes > 0)
            addBlock(bytes, /*is_growth=*/false);
    }

    /** Current position; allocations after it die at release(). */
    Marker mark() const { return Marker{cur_, off_}; }

    /** Unwind to @p m, freeing (logically) everything allocated since. */
    void release(Marker m)
    {
        cur_ = m.block;
        off_ = m.offset;
        base_ = 0;
        for (std::size_t b = 0; b < cur_; ++b)
            base_ += blocks_[b].size;
    }

    /** Rewind to empty without touching reserved capacity. */
    void reset()
    {
        cur_ = 0;
        off_ = 0;
        base_ = 0;
    }

    /**
     * Allocate @p count default-constructible T's, 16-byte aligned.
     * The memory is uninitialized.
     */
    template <typename T>
    T *alloc(std::size_t count)
    {
        static_assert(alignof(T) <= kAlign, "over-aligned type");
        const std::size_t bytes = alignUp(count * sizeof(T));
        ++stats_.allocCalls;
        if (blocks_.empty() || off_ + bytes > blocks_[cur_].size)
            grow(bytes);
        T *out = reinterpret_cast<T *>(blocks_[cur_].data.get() + off_);
        off_ += bytes;
        const std::size_t live = base_ + off_;
        if (live > stats_.highWaterBytes)
            stats_.highWaterBytes = live;
        return out;
    }

    const Stats &stats() const { return stats_; }

  private:
    static constexpr std::size_t kAlign = 16;

    static std::size_t alignUp(std::size_t bytes)
    {
        return (bytes + (kAlign - 1)) & ~(kAlign - 1);
    }

    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    DENSIM_ALLOCATES(
        "the arena's own backing store; post-reserve growth is "
        "counted and asserted zero per epoch under DENSIM_CHECKS")
    void addBlock(std::size_t bytes, bool is_growth)
    {
        Block b;
        b.size = alignUp(bytes);
        b.data = std::make_unique<std::byte[]>(b.size);
        blocks_.push_back(std::move(b));
        stats_.capacityBytes += blocks_.back().size;
        if (is_growth)
            ++stats_.growths;
    }

    void grow(std::size_t bytes)
    {
        // Advance into the next existing block with room, if any
        // (release() may have rewound past blocks added earlier).
        while (cur_ + 1 < blocks_.size()) {
            base_ += blocks_[cur_].size;
            ++cur_;
            off_ = 0;
            if (bytes <= blocks_[cur_].size)
                return;
        }
        const std::size_t last =
            blocks_.empty() ? 0 : blocks_.back().size;
        addBlock(std::max(bytes, std::max<std::size_t>(last * 2, 256)),
                 /*is_growth=*/true);
        if (blocks_.size() > 1) {
            base_ += blocks_[cur_].size;
            ++cur_;
        }
        off_ = 0;
    }

    std::vector<Block> blocks_;
    std::size_t cur_ = 0;  //!< Block currently bump-allocated from.
    std::size_t off_ = 0;  //!< Offset within the current block.
    std::size_t base_ = 0; //!< Bytes in blocks before cur_.
    Stats stats_;
};

} // namespace densim

#endif // DENSIM_UTIL_ARENA_HH
