# Empty compiler generated dependencies file for ext_thermal_timeline.
# This may be replaced when dependencies are built.
