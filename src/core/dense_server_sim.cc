#include "core/dense_server_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "airflow/fan.hh"
#include "core/invariant.hh"
#include "fault/fault_log.hh"
#include "power/leakage.hh"
#include "power/pstate.hh"
#include "util/logging.hh"
#include "workload/curves.hh"

namespace densim {

namespace {

/**
 * Epochs between full recomputations of the ambient-target field when
 * the incremental delta path is active. Bounds floating-point drift
 * of the accumulated deltas (each refresh re-derives the field from
 * the power vector, exactly like the reference path) at a cost of one
 * O(n x downstream) evaluation per ~1 simulated second.
 */
constexpr std::size_t kAmbientRefreshEpochs = 1024;

/**
 * Joint delivered-flow and electrical-power fractions of a fan bank
 * whose speed is capped at @p speed_cap (0..1 of full speed). The
 * nominal operating point is the speed that delivers the server's
 * design airflow; a bank too small for the design flow nominally runs
 * flat out. Both fractions follow the affinity laws of airflow/fan.hh:
 * flow is linear in speed, electrical power cubic.
 */
struct FanDerateEffect
{
    double flowFrac;  //!< Delivered / nominal CFM, floored at 2 %.
    double powerFrac; //!< Electrical / nominal power (cube law).
};

FanDerateEffect
fanDerateEffect(double speed_cap, int fan_count, double required_cfm)
{
    const Fan bank(Fan::activeCoolSpec(), fan_count);
    double s_nom = 1.0;
    if (required_cfm < bank.maxDeliveredCfm().value())
        s_nom = bank.speedForCfm(Cfm(required_cfm));
    const double s = std::min(speed_cap, s_nom);
    const double flow =
        bank.deliveredCfm(s).value() / bank.deliveredCfm(s_nom).value();
    const double p_nom = bank.electricalPower(s_nom).value();
    const double power =
        p_nom > 0.0 ? bank.electricalPower(s).value() / p_nom : 1.0;
    // A natural-convection floor: even a dead bank leaks some air
    // through the chassis, and it keeps the 1/CFM coupling
    // coefficients finite.
    return {std::max(flow, 0.02), power};
}

} // namespace

DenseServerSim::DenseServerSim(const SimConfig &sim_config,
                               std::unique_ptr<Scheduler> sim_policy)
    : config_(sim_config), topo_(sim_config.topo),
      coupling_(topo_.sites(), sim_config.coupling),
      peak_(sim_config.rInt()),
      pm_(PStateTable::x2150(), peak_, sim_config.tLimit(),
          sim_config.gatedFracTdp),
      leak_(LeakageModel::x2150()), policy_(std::move(sim_policy)),
      policyRng_(sim_config.seed ^ 0xdeadbeefcafef00dULL),
      sensorRng_(sim_config.seed ^ 0x5ca1ab1e0ddba11ULL)
{
    config_.validate();
    if (!policy_)
        fatal("DenseServerSim: no scheduling policy supplied");

    const std::size_t n = topo_.numSockets();
    isFront_.resize(n);
    isEven_.resize(n);
    sinkCache_.resize(n);
    rowCache_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        isFront_[s] = topo_.inFrontHalf(s);
        isEven_[s] = topo_.inEvenZone(s);
        sinkCache_[s] = &topo_.sinkOf(s);
        rowCache_[s] = topo_.rowOf(s);
    }
    zoneSockets_.resize(topo_.zonesPerRow());
    for (std::size_t s = 0; s < n; ++s)
        zoneSockets_[topo_.zoneIndexOf(s)].push_back(s);

    // Hoist the Eq. (1) per-socket constants once: the batched thermal
    // kernel consumes them as flat arrays.
    rTotCW_.resize(n);
    thetaC0_.resize(n);
    thetaC1_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        const HeatSink &sink = *sinkCache_[s];
        rTotCW_[s] = (peak_.rInt() + sink.rExt).value();
        thetaC0_[s] = sink.theta.c0.value();
        thetaC1_[s] = sink.theta.c1.value();
    }

    const PStateTable &table = PStateTable::x2150();
    sustainedIdx_ = table.highestSustainedIndex();
    boostCap_ = table.size() - 1;
    relFreqByPstate_.resize(table.size());
    for (std::size_t p = 0; p < table.size(); ++p)
        relFreqByPstate_[p] = table.relativeFreq(p);
    freqByPstate_.resize(table.size());
    boostByPstate_.resize(table.size());
    for (std::size_t p = 0; p < table.size(); ++p) {
        freqByPstate_[p] = table.at(p).freqMhz;
        boostByPstate_[p] = table.at(p).boost ? 1 : 0;
    }
    fastestMhz_ = table.fastest().freqMhz;

    faultsEnabled_ = config_.fault.enabled();
    faultState_.configure(config_.fault, config_.tLimit());
    faultTimeline_ = FaultTimeline(config_.fault, n, config_.seed);

    registerObs();
}

void
DenseServerSim::registerObs()
{
    count_.epochs = &obsRegistry_.counter("engine.epochs");
    count_.jobsPlaced = &obsRegistry_.counter("engine.jobsPlaced");
    count_.jobsCompleted =
        &obsRegistry_.counter("engine.jobsCompleted");
    count_.migrations = &obsRegistry_.counter("engine.migrations");
    count_.schedDecisions =
        &obsRegistry_.counter("engine.schedDecisions");
    count_.dvfsMemoHits = &obsRegistry_.counter("dvfs.memoHits");
    count_.dvfsMemoMisses = &obsRegistry_.counter("dvfs.memoMisses");
    count_.dvfsRedecisionsPruned =
        &obsRegistry_.counter("dvfs.redecisionsPruned");
    count_.ambientRefreshes =
        &obsRegistry_.counter("thermal.ambientRefreshes");
    count_.ambientDeltas =
        &obsRegistry_.counter("thermal.ambientDeltaUpdates");
    count_.timelineSamples =
        &obsRegistry_.counter("obs.timelineSamples");
    gaugePowerW_ =
        obsRegistry_.typedGauge<Watts>("engine.endPowerW", "W");
    gaugeMaxChipC_ =
        obsRegistry_.typedGauge<Celsius>("engine.maxChipTempC", "C");
    pm_.attachObs(obsRegistry_);
    policy_->attachObs(obsRegistry_);
    sampler_.configure(config_.timelineSampleS);

    // Fault instruments exist only when faults are armed, so a
    // zero-fault run's counter report is byte-identical to the
    // pre-fault engine's.
    if (faultsEnabled_) {
        fcount_.fanEvents = &obsRegistry_.counter("fault.fanEvents");
        fcount_.sensorFaults =
            &obsRegistry_.counter("fault.sensorFaults");
        fcount_.dropoutFallbacks =
            &obsRegistry_.counter("fault.dropoutFallbacks");
        fcount_.socketFailures =
            &obsRegistry_.counter("fault.socketFailures");
        fcount_.socketRecoveries =
            &obsRegistry_.counter("fault.socketRecoveries");
        fcount_.jobsRequeued =
            &obsRegistry_.counter("fault.jobsRequeued");
        fcount_.emergencyThrottles =
            &obsRegistry_.counter("fault.emergencyThrottles");
        fcount_.throttleReleases =
            &obsRegistry_.counter("fault.throttleReleases");
        fcount_.quarantines =
            &obsRegistry_.counter("fault.quarantines");
        fcount_.quarantineExits =
            &obsRegistry_.counter("fault.quarantineExits");
    }
}

DenseServerSim::~DenseServerSim() = default;

void
DenseServerSim::resetState()
{
    const std::size_t n = topo_.numSockets();
    if (couplingDerated_) {
        // A previous run's fan fault left derated coefficients in
        // place; restore the pristine map before any field is derived
        // from it.
        coupling_ = CouplingMap(topo_.sites(), config_.coupling);
        couplingDerated_ = false;
        ++couplingEpoch_;
    }
    fanPowerW_ = config_.fanPowerW;
    nextFaultEvent_ = 0;
    faultState_.reset(n);
    faultRng_ = Rng(config_.fault.effectiveSeed(config_.seed) ^
                    0x0badcab1efa57f00ULL);
    faultLog_.clear();
    powerW_.assign(n, pm_.gatedPower(leak_).value());
    freqMhz_.assign(n, 0.0);
    chipTempC_.assign(n, config_.topo.inletC);
    sensedTempC_.assign(n, config_.topo.inletC);
    histTempC_.assign(n, config_.topo.inletC);
    runningSet_.assign(n, config_.workload);
    busyFlag_.assign(n, 0);
    jobBenchmark_.assign(n, 0);
    jobArrivalS_.assign(n, 0.0);
    jobStartS_.assign(n, 0.0);
    jobNominalS_.assign(n, 0.0);
    jobRemainingS_.assign(n, 0.0);
    lastSyncS_.assign(n, 0.0);
    completionS_.assign(n, 0.0);
    pstate_.assign(n, 0);
    boostFlag_.assign(n, 0);

    const Watts gated = pm_.gatedPower(leak_);
    const std::vector<double> amb0 =
        coupling_.ambientTemps(powerW_, config_.topo.inlet());
    ambientC_ = amb0;
    chipRiseC_.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
        const HeatSink &sink = *sinkCache_[s];
        chipRiseC_[s] = (gated * (peak_.rInt() + sink.rExt) +
                         sink.theta(gated))
                            .value();
        chipTempC_[s] = ambientC_[s] + chipRiseC_[s];
        histTempC_[s] = chipTempC_[s];
    }

    boostCreditS_.assign(n, config_.boostBurstS);

    completionHeap_.reset(n);
    idleList_.resize(n);
    for (std::size_t s = 0; s < n; ++s)
        idleList_[s] = s;

    ambTargets_ = amb0;
    targetPowerW_ = powerW_;
    powerDirty_.assign(n, 0);
    dirtySockets_.clear();
    epochsSinceAmbientRefresh_ = 0;

    dvfsMemo_.reset(n, &PStateTable::x2150());
    rateCache_.assign(n, 0.0);
    relFreqCache_.assign(n, 0.0);
    inBusySums_.assign(n, 0);
    contribRate_.assign(n, 0.0);
    contribRel_.assign(n, 0.0);
    contribBoost_.assign(n, 0);

    // Pre-reserve the per-epoch scratch arena: one n-double thermal
    // target frame plus CP's decision-local candidate lists, with
    // headroom. checkEpochInvariants asserts it never grows past this
    // reserve — the zero-heap-per-epoch contract.
    arena_.reserve(32 * n + 256);
    predCache_.reset(n, pm_.pstates().size());
    for (std::size_t i = 0; i < pm_.pstates().size(); ++i)
        predCache_.stateFreqMhz[i] = pm_.pstates().at(i).freqMhz;
    predCache_.pstate = pstate_.data();
    predCache_.exactDvfs =
        !faultsEnabled_ && config_.dvfsMemoQuantC == 0.0;
    ambientBatchMin_ =
        config_.ambientBatchFrac <= 0.0
            ? 0
            : std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         std::ceil(config_.ambientBatchFrac *
                                   static_cast<double>(n))));

    queue_.clear();
    metrics_ = SimMetrics{};
    decisions_ = 0;
    tCursor_ = 0.0;
    obsRegistry_.resetValues();
    profiler_.reset();
    trace_.clear();
    sampler_.reset();
    policy_->reset();
    policyRng_ = Rng(config_.seed ^ 0xdeadbeefcafef00dULL);
    sensorRng_ = Rng(config_.seed ^ 0x5ca1ab1e0ddba11ULL);
    rebuildScalars();
}

void
DenseServerSim::warmStart()
{
    // Expected average socket power at the configured load: busy at
    // the highest sustained frequency a fraction `load` of the time,
    // gated otherwise. The slow (30 s) ambient field is set to the
    // coupling-map steady state of that power field so short runs
    // start in a representative thermal regime.
    const auto &curve = freqCurveFor(config_.workload);
    const double busy_power = curve.totalPowerAt90C[sustainedIdx_];
    const double gated = pm_.gatedPower(leak_).value();
    const double expected =
        config_.load * busy_power + (1.0 - config_.load) * gated;

    const std::size_t n = topo_.numSockets();
    const std::vector<double> amb = coupling_.ambientTemps(
        std::vector<double>(n, expected), config_.topo.inlet());
    for (std::size_t s = 0; s < n; ++s) {
        ambientC_[s] = amb[s];
        const double chip = ambientC_[s] + chipRiseC_[s];
        chipTempC_[s] = chip;
        histTempC_[s] = chip;
    }
}

SimMetrics
DenseServerSim::run()
{
    JobGenerator gen(config_.workload, config_.load,
                     static_cast<int>(topo_.numSockets()), config_.seed);
    return runJobs(gen.generateUntil(config_.simTimeS));
}

SimMetrics
DenseServerSim::run(const std::vector<Job> &jobs)
{
    for (std::size_t i = 1; i < jobs.size(); ++i) {
        if (jobs[i].arrivalS < jobs[i - 1].arrivalS)
            fatal("DenseServerSim: job arrivals must be sorted");
    }
    return runJobs(jobs);
}

SimMetrics
DenseServerSim::runJobs(const std::vector<Job> &jobs)
{
    // The one-shot run is the streamed run with the full arrival list
    // submitted up front: same epoch bodies, in the same order, so
    // the pre-streaming hex-float goldens still pin this path.
    beginRun();
    submitJobs(jobs);
    closeArrivals();
    while (epochPending())
        advanceEpoch();
    return finishRun();
}

void
DenseServerSim::beginRun()
{
    resetState();
    if (config_.warmStart)
        warmStart();

    if (!config_.obsTracePath.empty()) {
        trace_.enable(true);
        trace_.setProcessName(std::string("densim:") +
                              policy_->name());
#if DENSIM_ENABLE_OBS
        profiler_.setSink(&trace_);
#else
        warn("obs.tracePath is set but this build has no DENSIM_OBS; "
             "the trace will carry counter tracks only (no phase "
             "events)");
#endif
    }

    streamJobs_.clear();
    streamNext_ = 0;
    streamNowS_ = 0.0;
    streamHardStopS_ = config_.simTimeS * config_.drainFactor;
    streamOpen_ = true;
    arrivalsClosed_ = false;
}

void
DenseServerSim::submitJobs(const std::vector<Job> &jobs)
{
    if (!streamOpen_)
        fatal("DenseServerSim::submitJobs: no open run (beginRun?)");
    if (arrivalsClosed_)
        fatal("DenseServerSim::submitJobs: arrivals already closed");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const double prev =
            i > 0 ? jobs[i - 1].arrivalS
                  : (streamJobs_.empty() ? -std::numeric_limits<
                                               double>::infinity()
                                         : streamJobs_.back().arrivalS);
        if (jobs[i].arrivalS < prev)
            fatal("DenseServerSim: job arrivals must be sorted");
    }
    // Compact the consumed backlog prefix before it dominates: a
    // fleet shard streaming millions of arrivals holds only the
    // outstanding tail.
    if (streamNext_ > 4096 && streamNext_ * 2 > streamJobs_.size()) {
        streamJobs_.erase(streamJobs_.begin(),
                          streamJobs_.begin() +
                              static_cast<std::ptrdiff_t>(streamNext_));
        streamNext_ = 0;
    }
    streamJobs_.insert(streamJobs_.end(), jobs.begin(), jobs.end());
}

void
DenseServerSim::closeArrivals()
{
    if (!streamOpen_)
        fatal("DenseServerSim::closeArrivals: no open run");
    arrivalsClosed_ = true;
}

bool
DenseServerSim::epochPending() const
{
    if (!streamOpen_ || streamNowS_ >= streamHardStopS_)
        return false;
    // With arrivals still open the shard must keep integrating: a
    // lockstep peer may dispatch work to it at the next barrier.
    if (!arrivalsClosed_)
        return true;
    return streamNext_ < streamJobs_.size() || !queue_.empty() ||
           busyTotal_ != 0;
}

double
DenseServerSim::thermalHeadroomC() const
{
    double hottest = -std::numeric_limits<double>::infinity();
    const std::size_t n = topo_.numSockets();
    for (std::size_t s = 0; s < n; ++s) {
        if (faultsEnabled_ && faultState_.offline(s))
            continue;
        hottest = std::max(hottest, chipTempC_[s]);
    }
    if (hottest == -std::numeric_limits<double>::infinity())
        return 0.0; // Every socket offline: no headroom to offer.
    return config_.tLimitC - hottest;
}

void
DenseServerSim::advanceEpoch()
{
    if (!streamOpen_)
        fatal("DenseServerSim::advanceEpoch: no open run (beginRun?)");
    const double epoch = config_.pmEpochS;
    const double t0 = streamNowS_;

    count_.epochs->inc();
    if (faultsEnabled_)
        applyFaultEvents(t0);
    thermalStep(epoch);
    sampleTimeline(t0);
    if (faultsEnabled_)
        emergencyResponse(t0);
    powerManage(t0);
    if (config_.migrationEnabled) {
        const auto stride = static_cast<std::size_t>(
            config_.migrationIntervalS / epoch);
        const auto tick = static_cast<std::size_t>(t0 / epoch + 0.5);
        if (stride <= 1 || tick % stride == 0)
            attemptMigrations(t0);
    }
    processWindow(streamJobs_, streamNext_, t0, t0 + epoch);
    checkEpochInvariants();
    streamNowS_ = t0 + epoch;
}

SimMetrics
DenseServerSim::finishRun()
{
    if (!streamOpen_)
        fatal("DenseServerSim::finishRun: no open run (beginRun?)");
    accumulate(streamNowS_);

    metrics_.measuredS = std::max(streamNowS_ - config_.warmupS, 0.0);
    metrics_.jobsUnfinished = queue_.size() + busyTotal_;
    writeObsOutputs();
    streamOpen_ = false;
    return metrics_;
}

void
DenseServerSim::sampleTimeline(double epoch_end_s)
{
    // The fixed-grid replacement for the historical drifting sampler
    // (obs/timeline.hh documents the grid and skip semantics; the obs
    // regression tests pin the emitted timestamps).
    double grid_s = 0.0;
    if (!sampler_.due(epoch_end_s, &grid_s))
        return;
    metrics_.timelineS.push_back(grid_s);
    std::vector<double> zones;
    zones.reserve(zoneSockets_.size());
    for (const auto &members : zoneSockets_) {
        double acc = 0.0;
        for (std::size_t s : members)
            acc += ambientC_[s];
        zones.push_back(acc / static_cast<double>(members.size()));
    }
    metrics_.zoneAmbientC.push_back(std::move(zones));
    count_.timelineSamples->inc();
}

void
DenseServerSim::writeObsOutputs()
{
    gaugePowerW_.set(Watts(totalPowerW_));
    gaugeMaxChipC_.set(Celsius(metrics_.maxChipTempC));

    if (!config_.obsTracePath.empty()) {
        // End-of-run counter tracks: one sample per counter so the
        // viewer shows final tallies alongside the phase events.
        for (const auto &c : obsRegistry_.counters()) {
            trace_.addCounter(c.name, 0.0,
                              static_cast<double>(c.value));
        }
        trace_.writeFile(config_.obsTracePath);
        trace_.enable(false);
        profiler_.setSink(nullptr);
    }
    if (!config_.obsTimelinePath.empty()) {
        obs::writeTimelineJsonlFile(config_.obsTimelinePath,
                                    metrics_.timelineS,
                                    metrics_.zoneAmbientC);
    }
    if (!config_.fault.logPath.empty())
        writeFaultLogFile(config_.fault.logPath, faultLog_);
}

void
DenseServerSim::markPowerDirty(std::size_t socket)
{
    if (!powerDirty_[socket]) {
        powerDirty_[socket] = 1;
        dirtySockets_.push_back(socket);
    }
}

void
DenseServerSim::refreshAmbientTargets()
{
    count_.ambientRefreshes->inc();
    coupling_.ambientTempsInto(ambTargets_.data(), ambTargets_.size(),
                               powerW_.data(), config_.topo.inlet());
    targetPowerW_ = powerW_;
    for (std::size_t s : dirtySockets_)
        powerDirty_[s] = 0;
    dirtySockets_.clear();
    epochsSinceAmbientRefresh_ = 0;
}

void
DenseServerSim::thermalStep(double dt)
{
    DENSIM_OBS_PHASE(profiler_, obs::Phase::ThermalStep);
    // The ambient field lags the power field with the 30 s socket
    // time constant; the chip's own Eq. (1) rise follows with the
    // 5 ms chip time constant. The target field is the coupling-map
    // steady state of the current powers, maintained by per-socket
    // deltas (or recomputed in full in the reference mode).
    if (!config_.incrementalThermal ||
        ++epochsSinceAmbientRefresh_ >= kAmbientRefreshEpochs) {
        refreshAmbientTargets();
    } else if (!dirtySockets_.empty()) {
        if (ambientBatchMin_ != 0 &&
            dirtySockets_.size() >= ambientBatchMin_) {
            // Crossover heuristic: enough sockets changed power this
            // epoch that one flat batched pass beats the per-socket
            // delta scatter. The refresh re-derives the field exactly,
            // but it changes *when* accumulated rounding is flushed —
            // tolerance mode, off by default (ambientBatchFrac = 0).
            refreshAmbientTargets();
        } else {
            count_.ambientDeltas->inc(dirtySockets_.size());
            for (std::size_t s : dirtySockets_) {
                coupling_.applyPowerDelta(ambTargets_, s,
                                          targetPowerW_[s],
                                          powerW_[s]);
                targetPowerW_[s] = powerW_[s];
                powerDirty_[s] = 0;
            }
            dirtySockets_.clear();
        }
    }
    const std::size_t n = topo_.numSockets();
    const bool measure = tCursor_ >= config_.warmupS;

    // Boost-dwell accounting: drain while boosting, refill otherwise
    // (busy-sustained or idle).
    const double refill = config_.boostRefillRate * dt;
    for (std::size_t s = 0; s < n; ++s) {
        if (busyFlag_[s] && boostFlag_[s]) {
            boostCreditS_[s] = std::max(0.0, boostCreditS_[s] - dt);
        } else {
            boostCreditS_[s] = std::min(config_.boostBurstS,
                                        boostCreditS_[s] + refill);
        }
    }

    // Bank 1: socket ambient toward the coupling-map field (tau 30 s,
    // Table III). One shared response fraction per bank — every
    // tracker in a bank has the same tau, so this is bit-identical to
    // the retired per-socket FirstOrderTracker::step and drops the
    // per-socket exp() calls.
    const double amb_alpha = responseFraction(dt, config_.socketTauS);
    firstOrderStepBatch(ambientC_.data(), ambTargets_.data(), n,
                        amb_alpha);

    // Bank 2: Eq. (1) chip rise (tau 5 ms). The target field lives in
    // the per-epoch arena — zero heap in steady state. The expression
    // mirrors the typed-quantity evaluation order exactly:
    // P * (R_int + R_ext) + (theta.c0 + theta.c1 * P).
    const Arena::Marker marker = arena_.mark();
    double *rise_target = arena_.alloc<double>(n);
    for (std::size_t s = 0; s < n; ++s) {
        const double p = powerW_[s];
        rise_target[s] =
            p * rTotCW_[s] + (thetaC0_[s] + thetaC1_[s] * p);
    }
    const double rise_alpha = responseFraction(dt, config_.chipTauS);
    firstOrderStepBatch(chipRiseC_.data(), rise_target, n, rise_alpha);
    arena_.release(marker);

    for (std::size_t s = 0; s < n; ++s)
        chipTempC_[s] = ambientC_[s] + chipRiseC_[s];

    // What the scheduler's sensor reports: noisy, quantized. The
    // pristine configuration is a straight copy.
    if (config_.sensorNoiseC <= 0.0 && config_.sensorQuantC <= 0.0 &&
        !faultsEnabled_) {
        std::copy(chipTempC_.begin(), chipTempC_.end(),
                  sensedTempC_.begin());
    } else {
        for (std::size_t s = 0; s < n; ++s) {
            double sensed = chipTempC_[s];
            if (config_.sensorNoiseC > 0.0)
                sensed += sensorRng_.normal(0.0, config_.sensorNoiseC);
            if (config_.sensorQuantC > 0.0) {
                sensed =
                    config_.sensorQuantC *
                    std::floor(sensed / config_.sensorQuantC + 0.5);
            }
            if (faultsEnabled_) {
                sensed = faultState_.schedSensedC(
                    s, Celsius(sensed), Celsius(sensedTempC_[s]),
                    faultRng_);
            }
            sensedTempC_[s] = sensed;
        }
    }

    // Bank 3: the scheduler's slow history of the sensed temperature.
    const double hist_alpha = responseFraction(dt, config_.histTauS);
    firstOrderStepBatch(histTempC_.data(), sensedTempC_.data(), n,
                        hist_alpha);

    if (measure) {
        for (std::size_t s = 0; s < n; ++s) {
            if (!busyFlag_[s])
                continue;
            metrics_.chipTempC.add(chipTempC_[s]);
            metrics_.maxChipTempC =
                std::max(metrics_.maxChipTempC, chipTempC_[s]);
        }
    }
    // Ambient, chip and history fields all moved: every cached
    // scheduler prediction is stale.
    predCache_.invalidate();
}

DvfsDecision
DenseServerSim::chooseDvfs(std::size_t socket, WorkloadSet set,
                           std::size_t cap)
{
    double ambient_c = ambientC_[socket];
    if (faultsEnabled_) {
        if (faultState_.sensorMode(socket) == SensorMode::Dropout)
            fcount_.dropoutFallbacks->inc();
        ambient_c = faultState_.dvfsAmbientC(socket, Celsius(ambient_c),
                                             faultRng_);
    }
    const Celsius ambient{ambient_c};
    if (const DvfsDecision *hit = dvfsMemo_.lookup(
            socket, set, cap, ambient, config_.dvfsMemoQuantC)) {
        count_.dvfsMemoHits->inc();
        return *hit;
    }
    count_.dvfsMemoMisses->inc();
    // The learned feasibility ladder lets the descending search skip
    // states already known infeasible at this ambient. Valid even
    // under faults or memo quantization: fan derates and sensor
    // faults perturb the ambient *input*, never the sink/curve/leak
    // feasibility function the bounds describe, and the chosen
    // state's decision fields are always computed exactly.
    predCache_.touchLadder(socket, set);
    const DvfsDecision d = pm_.chooseAtAmbientBounded(
        freqCurveFor(set), leak_, ambient, *sinkCache_[socket], cap,
        predCache_.ladderLo(socket), predCache_.ladderHi(socket));
    dvfsMemo_.store(socket, set, cap, ambient, d);
    return d;
}

void
DenseServerSim::powerManage(double now)
{
    DENSIM_OBS_PHASE(profiler_, obs::Phase::PowerManage);
    const std::size_t n = topo_.numSockets();
    // With faults armed chooseDvfs consumes fault RNG draws (sensor
    // perturbation), so the decision must be re-run even when every
    // clean input matches — the prune would desynchronize the stream.
    const bool prune = config_.pmDecisionPrune && !faultsEnabled_;
    for (std::size_t s = 0; s < n; ++s) {
        if (!busyFlag_[s])
            continue;
        syncProgress(s, now);
        if (prune) {
            const DvfsDecision *hit = dvfsMemo_.lookup(
                s, runningSet_[s], dvfsCap(s),
                Celsius(ambientC_[s]), config_.dvfsMemoQuantC);
            if (hit != nullptr && hit->pstate == pstate_[s] &&
                hit->power.value() == powerW_[s]) {
                // The memo would hand back this exact decision and
                // every field setSocketRate derives from it (rate,
                // relative frequency, boost flag, frequency) is a
                // pure function of the unchanged P-state and
                // workload set — already applied bitwise. Only the
                // completion time depends on `now`; recompute it
                // exactly as setSocketRate would. The prediction
                // fast-path snapshot is left stale, which is
                // conservative, never wrong (sched/prediction.hh).
                count_.dvfsRedecisionsPruned->inc();
                completionS_[s] =
                    now + jobRemainingS_[s] / rateCache_[s];
                completionHeap_.upsert(s, completionS_[s]);
                continue;
            }
        }
        const DvfsDecision d =
            chooseDvfs(s, runningSet_[s], dvfsCap(s));
        setSocketRate(s, d.pstate, d.power.value(), now);
    }
    // Re-derive the piecewise sums once per epoch: cheap with the
    // cached rates, and it pins any incremental floating-point drift
    // to at most one epoch's worth of delta updates.
    rebuildScalars();
    // Frequencies and powers were refreshed wholesale.
    predCache_.invalidate();
}

void
DenseServerSim::processWindow(const std::vector<Job> &jobs,
                              std::size_t &next_job, double t0, double t1)
{
    DENSIM_OBS_PHASE(profiler_, obs::Phase::ProcessWindow);
    (void)t0;
    const double inf = std::numeric_limits<double>::infinity();
    for (;;) {
        const double next_arrival =
            next_job < jobs.size() ? jobs[next_job].arrivalS : inf;
        const double next_completion = completionHeap_.topKey();

        const double t_event = std::min(next_arrival, next_completion);
        if (t_event >= t1) {
            accumulate(t1);
            return;
        }
        accumulate(std::max(t_event, tCursor_));

        if (next_completion <= next_arrival) {
            completeJob(completionHeap_.top(), next_completion);
        } else {
            ++metrics_.jobsArrived;
            queue_.push_back(jobs[next_job]);
            ++next_job;
            tryScheduleQueue(next_arrival);
        }
    }
}

void
DenseServerSim::syncProgress(std::size_t socket, double now)
{
    if (!busyFlag_[socket])
        return;
    const double dt = now - lastSyncS_[socket];
    if (dt > 0.0) {
        jobRemainingS_[socket] = std::max(
            0.0, jobRemainingS_[socket] - dt * rateCache_[socket]);
        lastSyncS_[socket] = now;
    }
}

void
DenseServerSim::clearJobState(std::size_t socket)
{
    jobBenchmark_[socket] = 0;
    jobArrivalS_[socket] = 0.0;
    jobStartS_[socket] = 0.0;
    jobNominalS_[socket] = 0.0;
    jobRemainingS_[socket] = 0.0;
    lastSyncS_[socket] = 0.0;
    completionS_[socket] = 0.0;
    pstate_[socket] = 0;
    boostFlag_[socket] = 0;
    // Idle sockets contribute nothing downstream: the penalty fast
    // path accepts any probe with zero slope.
    predCache_.fastFeasC[socket] =
        std::numeric_limits<double>::infinity();
    predCache_.fastSlope[socket] = 0.0;
}

void
DenseServerSim::setSocketRate(std::size_t socket, std::size_t new_pstate,
                              double power_w, double now)
{
    // Progress is measured in nominal (highest-sustained-frequency)
    // seconds: boost states advance a job faster than 1x. This is the
    // design point of the SUT — 100% load is exactly sustainable at
    // 1500 MHz (Sec. III-D).
    const auto &curve = freqCurveFor(runningSet_[socket]);
    const double rate =
        curve.perfRel[new_pstate] / curve.perfRel[sustainedIdx_];
    if (rate <= 0.0)
        panic("socket ", socket, " has non-positive progress rate");
    const double rel = relFreqByPstate_[new_pstate];
    const char boost = boostByPstate_[new_pstate] ? 1 : 0;
    // Skip the busy-sum remove/add round-trip when the socket is
    // already summed with bitwise-identical contributions — the
    // common case of powerManage confirming last epoch's decision.
    // Exact because the skip can only trigger inside powerManage
    // (every other caller places onto a socket that is not yet in the
    // sums), and powerManage rebuilds the sums from scratch before
    // they are next read (rebuildScalars).
    const bool resum = !(config_.busySumSkip && inBusySums_[socket] &&
                         contribRate_[socket] == rate &&
                         contribRel_[socket] == rel &&
                         contribBoost_[socket] == boost);
    if (resum)
        busySumsRemove(socket);
    pstate_[socket] = new_pstate;
    boostFlag_[socket] = boostByPstate_[new_pstate];
    freqMhz_[socket] = freqByPstate_[new_pstate];
    if (powerW_[socket] != power_w) {
        totalPowerW_ -= powerW_[socket];
        powerW_[socket] = power_w;
        totalPowerW_ += power_w;
        markPowerDirty(socket);
    }
    rateCache_[socket] = rate;
    relFreqCache_[socket] = rel;
    completionS_[socket] = now + jobRemainingS_[socket] / rate;
    if (resum)
        busySumsAdd(socket);
    if (busyFlag_[socket])
        completionHeap_.upsert(socket, completionS_[socket]);
    // Refresh the downstream-penalty fast path (prediction.hh): the
    // socket's rate just changed, so recompute the known-feasible
    // ambient for its (possibly new) P-state and its penalty slope.
    // Only meaningful when pruned predictions are exact.
    if (predCache_.exactDvfs) {
        predCache_.touchLadder(socket, runningSet_[socket]);
        const double mpc = predCache_.feasMhzPerC[socket];
        const bool sub_fastest =
            freqMhz_[socket] < fastestMhz_ - 1e-9;
        if (sub_fastest && mpc <= 0.0) {
            // Penalty slope not learned yet: force the slow path
            // until a probe computes mhzPerCelsius for this socket.
            predCache_.fastFeasC[socket] =
                -std::numeric_limits<double>::infinity();
        } else {
            predCache_.fastFeasC[socket] =
                predCache_.ladderLo(socket)[new_pstate];
            predCache_.fastSlope[socket] = sub_fastest ? mpc : 0.0;
        }
    }
}

void
DenseServerSim::setIdlePower(std::size_t socket)
{
    const double gated = pm_.gatedPower(leak_).value();
    if (powerW_[socket] != gated) {
        totalPowerW_ -= powerW_[socket];
        powerW_[socket] = gated;
        totalPowerW_ += gated;
        markPowerDirty(socket);
    }
    freqMhz_[socket] = 0.0;
    rateCache_[socket] = 0.0;
    relFreqCache_[socket] = 0.0;
    // An idle socket contributes nothing to downstream penalties:
    // park the fast-path snapshot at (+inf, 0) so any probe passes
    // with zero charge (subsuming the busy check).
    predCache_.fastFeasC[socket] =
        std::numeric_limits<double>::infinity();
    predCache_.fastSlope[socket] = 0.0;
}

SchedContext
DenseServerSim::makeSchedContext() const
{
    SchedContext ctx;
    ctx.topo = &topo_;
    ctx.coupling = &coupling_;
    ctx.couplingEpoch = couplingEpoch_;
    ctx.pm = &pm_;
    ctx.leak = &leak_;
    ctx.inletC = config_.topo.inletC;
    ctx.idle = &idleList_;
    ctx.nSockets = topo_.numSockets();
    ctx.chipTempC = sensedTempC_.data();
    ctx.histTempC = histTempC_.data();
    ctx.ambientC = ambientC_.data();
    ctx.boostCreditS = boostCreditS_.data();
    ctx.powerW = powerW_.data();
    ctx.freqMhz = freqMhz_.data();
    ctx.runningSet = runningSet_.data();
    ctx.busy = busyFlag_.data();
    ctx.socketRow = rowCache_.data();
    ctx.rng = const_cast<Rng *>(&policyRng_);
    ctx.scratch = const_cast<Arena *>(&arena_);
    ctx.cache = config_.schedPredictionCache
                    ? const_cast<PredictionCache *>(&predCache_)
                    : nullptr;
    return ctx;
}

void
DenseServerSim::invalidatePenaltyAround(std::size_t socket)
{
    // Drop the cached downstream penalties of every socket whose
    // prediction window contains this one: its busy / power /
    // frequency state just changed. The placement entries need no
    // surgical treatment — their inputs only move at thermalStep,
    // which bumps the epoch wholesale.
    for (std::size_t u : coupling_.upstream(socket))
        predCache_.invalidatePenalty(u);
}

void
DenseServerSim::idleInsert(std::size_t socket)
{
    const auto it =
        std::lower_bound(idleList_.begin(), idleList_.end(), socket);
    idleList_.insert(it, socket);
}

void
DenseServerSim::idleRemove(std::size_t socket)
{
    const auto it =
        std::lower_bound(idleList_.begin(), idleList_.end(), socket);
    if (it == idleList_.end() || *it != socket)
        panic("socket ", socket, " missing from the idle list");
    idleList_.erase(it);
}

void
DenseServerSim::tryScheduleQueue(double now)
{
    if (queue_.empty() || idleList_.empty())
        return;
    const SchedContext ctx = makeSchedContext();
    while (!queue_.empty() && !idleList_.empty()) {
        const Job &job = queue_.front();
        const std::size_t pick = policy_->pickCounted(job, ctx);
        ++decisions_;
        count_.schedDecisions->inc();
        if (pick >= topo_.numSockets() || busyFlag_[pick])
            panic("policy '", policy_->name(),
                  "' picked an invalid socket ", pick);
        placeJob(pick, job, now);
        queue_.pop_front();
    }
}

void
DenseServerSim::placeJob(std::size_t socket, const Job &job, double now)
{
    busyFlag_[socket] = 1;
    runningSet_[socket] = job.set;
    jobBenchmark_[socket] = job.benchmark;
    jobArrivalS_[socket] = job.arrivalS;
    jobStartS_[socket] = now;
    jobNominalS_[socket] = job.nominalS;
    jobRemainingS_[socket] = job.nominalS;
    lastSyncS_[socket] = now;
    idleRemove(socket);

    // A freshly placed job gets its frequency immediately (the power
    // manager would confirm it within at most one epoch anyway).
    const DvfsDecision d = chooseDvfs(socket, job.set, dvfsCap(socket));
    setSocketRate(socket, d.pstate, d.power.value(), now);
    invalidatePenaltyAround(socket);

    if (job.arrivalS >= config_.warmupS)
        metrics_.queueDelayS.add(now - job.arrivalS);
    count_.jobsPlaced->inc();
}

void
DenseServerSim::completeJob(std::size_t socket, double now)
{
    DENSIM_CHECK(!faultsEnabled_ || !faultState_.offline(socket),
                 "job completion on offline socket ", socket);
    syncProgress(socket, now);
    if (jobArrivalS_[socket] >= config_.warmupS) {
        ++metrics_.jobsCompleted;
        metrics_.runtimeExpansion.add((now - jobArrivalS_[socket]) /
                                      jobNominalS_[socket]);
        metrics_.serviceExpansion.add((now - jobStartS_[socket]) /
                                      jobNominalS_[socket]);
    }
    metrics_.makespanS = now;

    busySumsRemove(socket);
    busyFlag_[socket] = 0;
    completionHeap_.erase(socket);
    setIdlePower(socket);
    idleInsert(socket);
    invalidatePenaltyAround(socket);
    count_.jobsCompleted->inc();
    tryScheduleQueue(now);
}

void
DenseServerSim::migrateJob(std::size_t from, std::size_t to, double now)
{
    busySumsRemove(from);
    jobBenchmark_[to] = jobBenchmark_[from];
    jobArrivalS_[to] = jobArrivalS_[from];
    jobStartS_[to] = jobStartS_[from];
    jobNominalS_[to] = jobNominalS_[from];
    // The move costs work: checkpoint/transfer/warm-up, expressed in
    // nominal seconds.
    jobRemainingS_[to] = jobRemainingS_[from] + config_.migrationCostS;
    lastSyncS_[to] = now;
    completionS_[to] = completionS_[from];
    pstate_[to] = pstate_[from];
    boostFlag_[to] = boostFlag_[from];
    busyFlag_[to] = 1;
    runningSet_[to] = runningSet_[from];
    idleRemove(to);

    clearJobState(from);
    busyFlag_[from] = 0;
    completionHeap_.erase(from);
    setIdlePower(from);
    idleInsert(from);

    const DvfsDecision d = chooseDvfs(to, runningSet_[to], dvfsCap(to));
    setSocketRate(to, d.pstate, d.power.value(), now);
    invalidatePenaltyAround(from);
    invalidatePenaltyAround(to);
    ++metrics_.migrations;
    count_.migrations->inc();
}

void
DenseServerSim::attemptMigrations(double now)
{
    DENSIM_OBS_PHASE(profiler_, obs::Phase::Migration);
    // Move long-running, throttled jobs to sockets where the active
    // policy would place them now — if that destination actually runs
    // faster. This is the paper's Sec. VI suggestion of reusing the
    // placement policy for migration decisions.
    int moved = 0;
    const SchedContext ctx = makeSchedContext();
    for (std::size_t s = 0;
         s < topo_.numSockets() && moved < config_.migrationMaxPerPass;
         ++s) {
        if (!busyFlag_[s] || pstate_[s] >= sustainedIdx_)
            continue;
        syncProgress(s, now);
        if (jobRemainingS_[s] < config_.migrationMinRemainingS)
            continue;
        if (idleList_.empty())
            break;

        Job remainder;
        remainder.id = 0;
        remainder.benchmark = jobBenchmark_[s];
        remainder.set = runningSet_[s];
        remainder.arrivalS = jobArrivalS_[s];
        remainder.nominalS = jobRemainingS_[s];
        const std::size_t dest = policy_->pickCounted(remainder, ctx);
        if (dest >= topo_.numSockets() || busyFlag_[dest])
            panic("policy '", policy_->name(),
                  "' picked an invalid migration target ", dest);

        const DvfsDecision d =
            chooseDvfs(dest, runningSet_[s], dvfsCap(dest));
        if (d.pstate <= pstate_[s])
            continue; // Not actually faster there.

        migrateJob(s, dest, now);
        ++moved;
    }
}

void
DenseServerSim::busySumsRemove(std::size_t s)
{
    if (!inBusySums_[s])
        return;
    inBusySums_[s] = 0;
    const double rate = contribRate_[s];
    const double rel = contribRel_[s];
    --busyTotal_;
    workRateTotal_ -= rate;
    relFreqSumTotal_ -= rel;
    if (contribBoost_[s])
        --busyBoost_;
    if (isFront_[s]) {
        --busyFront_;
        workRateFront_ -= rate;
        relFreqSumFront_ -= rel;
    } else {
        --busyBack_;
        workRateBack_ -= rate;
        relFreqSumBack_ -= rel;
    }
    if (isEven_[s]) {
        --busyEven_;
        workRateEven_ -= rate;
        relFreqSumEven_ -= rel;
    }
}

void
DenseServerSim::busySumsAdd(std::size_t s)
{
    if (!busyFlag_[s] || inBusySums_[s])
        return;
    inBusySums_[s] = 1;
    const double rate = rateCache_[s];
    const double rel = relFreqCache_[s];
    contribRate_[s] = rate;
    contribRel_[s] = rel;
    contribBoost_[s] = boostFlag_[s] ? 1 : 0;
    ++busyTotal_;
    workRateTotal_ += rate;
    relFreqSumTotal_ += rel;
    if (contribBoost_[s])
        ++busyBoost_;
    if (isFront_[s]) {
        ++busyFront_;
        workRateFront_ += rate;
        relFreqSumFront_ += rel;
    } else {
        ++busyBack_;
        workRateBack_ += rate;
        relFreqSumBack_ += rel;
    }
    if (isEven_[s]) {
        ++busyEven_;
        workRateEven_ += rate;
        relFreqSumEven_ += rel;
    }
}

void
DenseServerSim::rebuildScalars()
{
    totalPowerW_ = 0.0;
    workRateTotal_ = workRateFront_ = workRateBack_ = workRateEven_ =
        0.0;
    relFreqSumTotal_ = relFreqSumFront_ = relFreqSumBack_ =
        relFreqSumEven_ = 0.0;
    busyTotal_ = busyFront_ = busyBack_ = busyEven_ = busyBoost_ = 0;

    for (std::size_t s = 0; s < topo_.numSockets(); ++s) {
        totalPowerW_ += powerW_[s];
        inBusySums_[s] = 0;
        busySumsAdd(s);
    }
}

void
DenseServerSim::checkEpochInvariants() const
{
#if DENSIM_ENABLE_CHECKS
    const std::size_t n = topo_.numSockets();

    // Physical sanity of every temperature field the engine maintains.
    invariant::checkTemperatureField("ambientC", ambientC_);
    invariant::checkTemperatureField("chipTempC", chipTempC_);
    invariant::checkTemperatureField("ambTargets", ambTargets_);
    for (std::size_t s = 0; s < n; ++s) {
        DENSIM_CHECK(std::isfinite(powerW_[s]) && powerW_[s] >= 0.0,
                     "socket ", s, " draws unphysical power ",
                     powerW_[s], " W");
    }

    // Structural consistency of the incremental event engine: every
    // busy socket has exactly one pending completion, the idle list
    // holds the rest, and no completion lies in the simulated past.
    DENSIM_CHECK(completionHeap_.size() ==
                     static_cast<std::size_t>(busyTotal_),
                 completionHeap_.size(), " pending completions for ",
                 busyTotal_, " busy sockets");
    const std::size_t offline = faultState_.offlineCount();
    DENSIM_CHECK(idleList_.size() + static_cast<std::size_t>(busyTotal_)
                     + offline == n,
                 idleList_.size(), " idle + ", busyTotal_, " busy + ",
                 offline, " offline sockets on a ", n,
                 "-socket server");
    if (faultsEnabled_) {
        for (std::size_t s = 0; s < n; ++s) {
            DENSIM_CHECK(!(busyFlag_[s] && faultState_.offline(s)),
                         "offline socket ", s, " is running a job");
        }
    }
    DENSIM_CHECK(completionHeap_.topKey() >= tCursor_,
                 "next completion ", completionHeap_.topKey(),
                 " s lies before the integration cursor ", tCursor_,
                 " s");

    // The zero-heap-per-epoch contract: the scratch arena must never
    // outgrow its resetState reserve in steady state.
    DENSIM_CHECK(arena_.stats().growths == 0,
                 "per-epoch arena grew ", arena_.stats().growths,
                 " times past its resetState reserve of ",
                 arena_.stats().capacityBytes,
                 " bytes — heap allocation on the hot path");

#if DENSIM_ENABLE_PARANOID
    completionHeap_.checkInvariants();

    // Re-derive the piecewise-integration scalars from scratch; the
    // incremental adds/removes must agree within rounding.
    double power = 0.0;
    double work_rate = 0.0;
    double rel_sum = 0.0;
    int busy = 0;
    for (std::size_t s = 0; s < n; ++s) {
        power += powerW_[s];
        if (!busyFlag_[s])
            continue;
        ++busy;
        work_rate += rateCache_[s];
        rel_sum += relFreqCache_[s];
    }
    DENSIM_PARANOID(busy == busyTotal_, "incremental busy count ",
                    busyTotal_, " vs rebuilt ", busy);
    DENSIM_PARANOID(std::fabs(power - totalPowerW_) <=
                        1e-6 * std::max(1.0, power),
                    "incremental total power ", totalPowerW_,
                    " W vs rebuilt ", power, " W");
    DENSIM_PARANOID(std::fabs(work_rate - workRateTotal_) <=
                        1e-6 * std::max(1.0, work_rate),
                    "incremental work rate ", workRateTotal_,
                    " vs rebuilt ", work_rate);
    DENSIM_PARANOID(std::fabs(rel_sum - relFreqSumTotal_) <=
                        1e-6 * std::max(1.0, rel_sum),
                    "incremental rel-freq sum ", relFreqSumTotal_,
                    " vs rebuilt ", rel_sum);

    // The delta-maintained ambient-target field must match a fresh
    // batched evaluation of the powers it claims to represent —
    // the batched-vs-incremental drift bound (the refresh cadence
    // keeps accumulated delta rounding under 1e-6) — and must sit
    // inside the coupling map's first-law envelope.
    const std::vector<double> reference =
        coupling_.ambientTemps(targetPowerW_, config_.topo.inlet());
    invariant::checkFieldsClose("ambient-target field", ambTargets_,
                                reference, 1e-6);
    coupling_.checkAmbientFieldPhysics(
        targetPowerW_, config_.topo.inlet(), ambTargets_);
#endif
#endif
}

void
DenseServerSim::applyFaultEvents(double now)
{
    const std::vector<FaultEvent> &events = faultTimeline_.events();
    while (nextFaultEvent_ < events.size() &&
           events[nextFaultEvent_].timeS <= now) {
        // Advance the cursor first: AbortRun throws, and a hypothetical
        // retry must not re-apply the same event.
        const FaultEvent &event = events[nextFaultEvent_++];
        applyFaultEvent(event, now);
    }
}

void
DenseServerSim::applyFaultEvent(const FaultEvent &event, double now)
{
    const auto s = static_cast<std::size_t>(event.socket);
    switch (event.kind) {
    case FaultKind::FanDerate: {
        const FanDerateEffect effect = fanDerateEffect(
            event.value, config_.fault.fanCount,
            config_.topo.perSocketCfm *
                static_cast<double>(topo_.numSockets()));
        applyFanFlowFraction(effect.flowFrac);
        fanPowerW_ = config_.fanPowerW * effect.powerFrac;
        fcount_.fanEvents->inc();
        recordFault(FaultKind::FanDerate, kFaultNoSocket, now,
                    effect.flowFrac);
        break;
    }
    case FaultKind::FanRestore:
        applyFanFlowFraction(1.0);
        fanPowerW_ = config_.fanPowerW;
        fcount_.fanEvents->inc();
        recordFault(FaultKind::FanRestore, kFaultNoSocket, now, 1.0);
        break;
    case FaultKind::SensorStuck:
        faultState_.stickSensor(s, Celsius(ambientC_[s]),
                                Celsius(sensedTempC_[s]));
        fcount_.sensorFaults->inc();
        recordFault(FaultKind::SensorStuck, s, now, sensedTempC_[s]);
        break;
    case FaultKind::SensorNoisy:
        faultState_.noisySensor(s, CelsiusDelta(event.value));
        fcount_.sensorFaults->inc();
        recordFault(FaultKind::SensorNoisy, s, now, event.value);
        break;
    case FaultKind::SensorDropout:
        faultState_.dropSensor(s, Celsius(ambientC_[s]));
        fcount_.sensorFaults->inc();
        recordFault(FaultKind::SensorDropout, s, now, ambientC_[s]);
        break;
    case FaultKind::SensorRestore:
        faultState_.restoreSensor(s);
        recordFault(FaultKind::SensorRestore, s, now, 0.0);
        break;
    case FaultKind::SocketFail:
        failSocket(s, now);
        break;
    case FaultKind::SocketRecover:
        recoverSocket(s, now);
        break;
    case FaultKind::AbortRun:
        abortRun(now);
        break;
    default:
        // Response kinds never appear in a timeline.
        break;
    }
}

void
DenseServerSim::abortRun(double now)
{
    recordFault(FaultKind::AbortRun, kFaultNoSocket, now, 0.0);
    throw std::runtime_error(
        "fault.abortRunS: injected harness fault at t=" +
        std::to_string(now) + " s");
}

void
DenseServerSim::applyFanFlowFraction(double flow_frac)
{
    std::vector<SocketSite> sites = topo_.sites();
    for (SocketSite &site : sites)
        site.ductCfm = Cfm(site.ductCfm.value() * flow_frac);
    CouplingParams params = config_.coupling;
    // The first-law rise per watt scales as 1/CFM; the local
    // recirculation term grows by the same factor.
    params.kappaLocal /= flow_frac;
    coupling_ = CouplingMap(std::move(sites), params);
    couplingDerated_ = flow_frac != 1.0;
    ++couplingEpoch_;
    // The coupling coefficients every cached prediction was derived
    // from just changed.
    predCache_.invalidate();
    faultState_.setFlowFrac(flow_frac);
    // Retarget the slow ambient field; the trackers then converge to
    // the hotter (or restored) steady state with the 30 s tau.
    refreshAmbientTargets();
}

double
DenseServerSim::fanFlowFraction(double speed_cap) const
{
    return fanDerateEffect(speed_cap, config_.fault.fanCount,
                           config_.topo.perSocketCfm *
                               static_cast<double>(topo_.numSockets()))
        .flowFrac;
}

std::size_t
DenseServerSim::dvfsCap(std::size_t socket) const
{
    if (faultsEnabled_ && faultState_.throttled(socket))
        return 0; // Emergency: pin to the lowest P-state.
    return boostCreditS_[socket] > 0.0 ? boostCap_ : sustainedIdx_;
}

void
DenseServerSim::failSocket(std::size_t socket, double now)
{
    if (faultState_.failed(socket))
        return;
    if (faultState_.quarantined(socket)) {
        // Already out of every pool; only the label escalates.
        faultState_.markFailed(socket);
    } else {
        if (busyFlag_[socket])
            requeueJob(socket, now);
        else
            idleRemove(socket);
        faultState_.markFailed(socket);
    }
    // Electrically dead: not even the gated draw.
    if (powerW_[socket] != 0.0) {
        totalPowerW_ -= powerW_[socket];
        powerW_[socket] = 0.0;
        markPowerDirty(socket);
    }
    freqMhz_[socket] = 0.0;
    rateCache_[socket] = 0.0;
    relFreqCache_[socket] = 0.0;
    invalidatePenaltyAround(socket);
    fcount_.socketFailures->inc();
    recordFault(FaultKind::SocketFail, socket, now, 0.0);
    // The displaced job may fit on another idle socket right away.
    tryScheduleQueue(now);
}

void
DenseServerSim::recoverSocket(std::size_t socket, double now)
{
    if (!faultState_.failed(socket))
        return;
    faultState_.markOnline(socket);
    setIdlePower(socket);
    idleInsert(socket);
    invalidatePenaltyAround(socket);
    fcount_.socketRecoveries->inc();
    recordFault(FaultKind::SocketRecover, socket, now, 0.0);
    tryScheduleQueue(now);
}

void
DenseServerSim::quarantineSocket(std::size_t socket, double now)
{
    if (faultState_.offline(socket))
        return;
    if (busyFlag_[socket])
        requeueJob(socket, now);
    else
        idleRemove(socket);
    faultState_.markQuarantined(socket);
    // Quarantined silicon keeps its gated draw while it cools.
    setIdlePower(socket);
    invalidatePenaltyAround(socket);
    fcount_.quarantines->inc();
    recordFault(FaultKind::Quarantine, socket, now,
                chipTempC_[socket]);
    tryScheduleQueue(now);
}

void
DenseServerSim::requeueJob(std::size_t socket, double now)
{
    syncProgress(socket, now);
    Job job;
    job.id = 0;
    job.benchmark = jobBenchmark_[socket];
    job.set = runningSet_[socket];
    job.arrivalS = jobArrivalS_[socket];
    // The remaining work plus the checkpoint/restore cost of the
    // forced move, floored so a job caught at the instant of its
    // completion still re-runs for a representable duration.
    job.nominalS =
        std::max(jobRemainingS_[socket] + config_.migrationCostS, 1e-9);
    busySumsRemove(socket);
    clearJobState(socket);
    busyFlag_[socket] = 0;
    completionHeap_.erase(socket);
    queue_.push_front(job);
    invalidatePenaltyAround(socket);
    fcount_.jobsRequeued->inc();
    recordFault(FaultKind::JobRequeue, socket, now, job.nominalS);
}

void
DenseServerSim::emergencyResponse(double now)
{
    const std::size_t n = topo_.numSockets();
    for (std::size_t s = 0; s < n; ++s) {
        if (faultState_.failed(s))
            continue;
        if (faultState_.quarantined(s)) {
            if (faultState_.readmit(s, Celsius(chipTempC_[s]))) {
                faultState_.markOnline(s);
                idleInsert(s);
                fcount_.quarantineExits->inc();
                recordFault(FaultKind::QuarantineExit, s, now,
                            chipTempC_[s]);
                tryScheduleQueue(now);
            }
            continue;
        }
        switch (faultState_.escalate(s, Celsius(chipTempC_[s]),
                                     Seconds(now))) {
        case EscalationAction::Throttle:
            fcount_.emergencyThrottles->inc();
            recordFault(FaultKind::EmergencyThrottle, s, now,
                        chipTempC_[s]);
            break;
        case EscalationAction::Quarantine:
            quarantineSocket(s, now);
            break;
        case EscalationAction::Release:
            fcount_.throttleReleases->inc();
            recordFault(FaultKind::ThrottleRelease, s, now,
                        chipTempC_[s]);
            break;
        case EscalationAction::None:
            break;
        }
    }
}

void
DenseServerSim::recordFault(FaultKind kind, std::size_t socket,
                            double now, double value)
{
    // Cap the in-memory log so a pathological throttle/release
    // oscillation cannot grow it without bound.
    constexpr std::size_t kFaultLogCap = 100000;
    if (faultLog_.size() < kFaultLogCap) {
        FaultEvent e;
        e.timeS = now;
        e.kind = kind;
        e.socket = socket >= static_cast<std::size_t>(kFaultNoSocket)
                       ? kFaultNoSocket
                       : static_cast<std::uint32_t>(socket);
        e.value = value;
        faultLog_.push_back(e);
    }
    if (trace_.enabled()) {
        trace_.addComplete(faultKindName(kind), "fault", now * 1e6,
                           0.0,
                           socket >= static_cast<std::size_t>(
                                         kFaultNoSocket)
                               ? -1
                               : static_cast<int>(socket));
    }
}

void
DenseServerSim::accumulate(double to)
{
    // Split any interval straddling the warmup boundary so only the
    // post-warmup part is measured.
    if (tCursor_ < config_.warmupS)
        tCursor_ = std::min(to, config_.warmupS);
    const double dt = to - tCursor_;
    if (dt <= 0.0)
        return;
    {
        metrics_.energyJ += (totalPowerW_ + fanPowerW_) * dt;
        metrics_.totalBusyTime += busyTotal_ * dt;
        metrics_.totalFreqTime += relFreqSumTotal_ * dt;
        metrics_.totalWork += workRateTotal_ * dt;
        metrics_.boostTimeS += busyBoost_ * dt;

        metrics_.front.busyTimeS += busyFront_ * dt;
        metrics_.front.freqTime += relFreqSumFront_ * dt;
        metrics_.front.workDone += workRateFront_ * dt;

        metrics_.back.busyTimeS += busyBack_ * dt;
        metrics_.back.freqTime += relFreqSumBack_ * dt;
        metrics_.back.workDone += workRateBack_ * dt;

        metrics_.even.busyTimeS += busyEven_ * dt;
        metrics_.even.freqTime += relFreqSumEven_ * dt;
        metrics_.even.workDone += workRateEven_ * dt;
    }
    tCursor_ = to;
}

} // namespace densim
