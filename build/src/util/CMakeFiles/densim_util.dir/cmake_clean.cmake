file(REMOVE_RECURSE
  "CMakeFiles/densim_util.dir/logging.cc.o"
  "CMakeFiles/densim_util.dir/logging.cc.o.d"
  "CMakeFiles/densim_util.dir/rng.cc.o"
  "CMakeFiles/densim_util.dir/rng.cc.o.d"
  "CMakeFiles/densim_util.dir/stats.cc.o"
  "CMakeFiles/densim_util.dir/stats.cc.o.d"
  "CMakeFiles/densim_util.dir/table.cc.o"
  "CMakeFiles/densim_util.dir/table.cc.o.d"
  "libdensim_util.a"
  "libdensim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
