/**
 * @file
 * Table III — the overall simulation model parameters, printed from
 * the live configuration objects so the table can never drift from
 * the code.
 */

#include <iostream>

#include "core/sim_config.hh"
#include "power/leakage.hh"
#include "power/pstate.hh"
#include "thermal/heatsink.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Table III: simulation model parameters ===\n\n";

    const SimConfig config;
    const auto &pstates = PStateTable::x2150();

    TableWriter table({"Parameter", "Value", "Source"});
    table.newRow()
        .cell("Frequency range")
        .cell(formatFixed(pstates.slowest().freqMhz, 0) + " - " +
              formatFixed(pstates.fastest().freqMhz, 0) + " MHz")
        .cell("Product data sheet [2]");
    table.newRow()
        .cell("Boost states")
        .cell("1700, 1900 MHz (dwell-limited)")
        .cell("BKDG Family 16h [36]");
    table.newRow()
        .cell("Temperature limit")
        .cell(formatFixed(config.tLimitC, 0) + " C")
        .cell("Typical");
    table.newRow()
        .cell("Frequency change interval")
        .cell(formatFixed(config.pmEpochS * 1e3, 0) + " ms")
        .cell("[64]");
    table.newRow()
        .cell("On-chip thermal time constant")
        .cell(formatFixed(config.chipTauS * 1e3, 0) + " ms")
        .cell("Typical");
    table.newRow()
        .cell("Socket thermal time constant")
        .cell(formatFixed(config.socketTauS, 0) + " s")
        .cell("[67]");
    table.newRow()
        .cell("Server inlet temperature")
        .cell(formatFixed(config.topo.inletC, 0) + " C")
        .cell("Typical");
    table.newRow()
        .cell("Airflow at sockets")
        .cell(formatFixed(config.topo.perSocketCfm, 2) + " CFM")
        .cell("Icepak substitute (DESIGN.md)");
    table.newRow()
        .cell("R_Int")
        .cell(formatFixed(config.rIntCW, 3) + " C/W")
        .cell("Hotspot [75]");
    table.newRow()
        .cell("R_Ext 18-fin")
        .cell(formatFixed(HeatSink::fin18().rExt.value(), 3) + " C/W")
        .cell("Hotspot [75]");
    table.newRow()
        .cell("R_Ext 30-fin")
        .cell(formatFixed(HeatSink::fin30().rExt.value(), 3) + " C/W")
        .cell("Hotspot [75]");
    table.newRow()
        .cell("theta(P, 18-fin)")
        .cell(formatFixed(HeatSink::fin18().theta.c0.value(), 2) + " " +
              formatFixed(HeatSink::fin18().theta.c1.value(), 4) + " * P")
        .cell("Modeled");
    table.newRow()
        .cell("theta(P, 30-fin)")
        .cell(formatFixed(HeatSink::fin30().theta.c0.value(), 2) + " " +
              formatFixed(HeatSink::fin30().theta.c1.value(), 4) + " * P")
        .cell("Modeled");
    table.newRow()
        .cell("Gated socket power")
        .cell(formatFixed(100 * config.gatedFracTdp, 0) + "% of TDP")
        .cell("Assumed (paper Sec. III-D)");
    table.newRow()
        .cell("Leakage at 90 C")
        .cell(formatFixed(LeakageModel::x2150().atRef().value(), 2) + " W (30% TDP)")
        .cell("Estimated (Sec. III-A)");
    table.newRow()
        .cell("Coupling: kappaLocal")
        .cell(formatFixed(config.coupling.kappaLocal, 2) + " C/W")
        .cell("Calibrated (DESIGN.md 3.1)");
    table.newRow()
        .cell("Coupling: wakeFactor")
        .cell(formatFixed(config.coupling.wakeFactor, 2))
        .cell("Calibrated (DESIGN.md 3.1)");
    table.newRow()
        .cell("Coupling: mixFactor")
        .cell(formatFixed(config.coupling.mixFactor, 2))
        .cell("Fig. 2 calibration");
    table.newRow()
        .cell("Boost refill / burst")
        .cell(formatFixed(config.boostRefillRate, 2) + " /s, " +
              formatFixed(config.boostBurstS, 1) + " s")
        .cell("Calibrated ([36])");
    table.print(std::cout);
    return 0;
}
