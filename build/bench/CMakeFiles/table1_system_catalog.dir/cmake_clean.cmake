file(REMOVE_RECURSE
  "CMakeFiles/table1_system_catalog.dir/table1_system_catalog.cc.o"
  "CMakeFiles/table1_system_catalog.dir/table1_system_catalog.cc.o.d"
  "table1_system_catalog"
  "table1_system_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_system_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
