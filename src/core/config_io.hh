/**
 * @file
 * Plain-text configuration I/O for SimConfig.
 *
 * Experiments should be reproducible from an artifact, not a command
 * line lost to shell history. The format is line-oriented
 * `key = value` with `#` comments; keys mirror the SimConfig field
 * names (dotted for nested structs, e.g. `topo.rows`,
 * `coupling.wakeFactor`). Unknown keys are fatal — a typo must not
 * silently run the default experiment.
 */

#ifndef DENSIM_CORE_CONFIG_IO_HH
#define DENSIM_CORE_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "core/sim_config.hh"

namespace densim {

/**
 * Apply one `key = value` assignment to @p config. Fatal on unknown
 * keys or unparsable values. Returns the (trimmed) key applied.
 */
void applyConfigKey(SimConfig &config, const std::string &key,
                    const std::string &value);

/** Parse a config stream into @p config (on top of its defaults). */
void loadConfig(SimConfig &config, std::istream &in);

/** Parse a config file; fatal if it cannot be opened. */
void loadConfigFile(SimConfig &config, const std::string &path);

/** Serialize every supported key of @p config. */
std::string saveConfig(const SimConfig &config);

} // namespace densim

#endif // DENSIM_CORE_CONFIG_IO_HH
