/**
 * @file
 * Machine-readable export of simulation results: a JSON object per
 * run and CSV rows for sweeps — what a downstream user pipes into
 * their plotting stack.
 */

#ifndef DENSIM_CORE_METRICS_IO_HH
#define DENSIM_CORE_METRICS_IO_HH

#include <string>

#include "core/metrics.hh"

namespace densim {

/** Serialize @p metrics as a single JSON object (no trailing \n). */
std::string metricsToJson(const SimMetrics &metrics);

/** Header row matching metricsToCsvRow(). */
std::string metricsCsvHeader();

/**
 * One CSV row of the headline metrics, prefixed by the given
 * scheduler/workload/load identification columns.
 */
std::string metricsToCsvRow(const std::string &scheduler,
                            const std::string &workload, double load,
                            const SimMetrics &metrics);

} // namespace densim

#endif // DENSIM_CORE_METRICS_IO_HH
