/**
 * @file
 * Figure 5 — (a) mean socket entry temperature and (b) coefficient of
 * variance of entry temperatures, versus degree of coupling for
 * combinations of socket power and per-socket airflow.
 *
 * Paper shapes: mean entry temperature and its CoV both grow with the
 * degree of coupling; even a low-power part (15 W at 6 CFM) sees
 * ~10 C higher mean entry temperature at coupling degree 5 than at 1.
 */

#include <iostream>

#include "thermal/entry_model.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figure 5: analytical socket entry temperature "
                 "(inlet 18 C) ===\n\n";

    const std::vector<int> couplings{1, 2, 3, 5, 11};
    const std::vector<std::pair<double, double>> cases{
        {5.0, 3.0},   // low-power dense part, little airflow
        {15.0, 6.0},  // the paper's example point
        {22.0, 6.35}, // X2150 at Table III airflow
        {50.0, 12.0}, // mid-power part
        {140.0, 25.0} // high-power socket
    };

    TableWriter mean_table({"Power(W)", "CFM/socket", "DoC=1", "DoC=2",
                            "DoC=3", "DoC=5", "DoC=11"});
    TableWriter cov_table({"Power(W)", "CFM/socket", "DoC=1", "DoC=2",
                           "DoC=3", "DoC=5", "DoC=11"});
    for (const auto &[power, cfm] : cases) {
        mean_table.newRow().cell(power, 0).cell(cfm, 2);
        cov_table.newRow().cell(power, 0).cell(cfm, 2);
        for (int doc : couplings) {
            const auto r = serialChainEntryTemps(
                doc, Watts(power), Cfm(cfm), Celsius(18.0));
            mean_table.cell(r.mean.value(), 1);
            cov_table.cell(r.cov, 3);
        }
    }

    std::cout << "(a) Mean socket entry temperature (C):\n";
    mean_table.print(std::cout);
    std::cout << "\n(b) Coefficient of variance of entry "
                 "temperatures:\n";
    cov_table.print(std::cout);

    const auto doc5 =
        serialChainEntryTemps(5, Watts(15.0), Cfm(6.0), Celsius(18.0));
    const auto doc1 =
        serialChainEntryTemps(1, Watts(15.0), Cfm(6.0), Celsius(18.0));
    std::cout << "\n15 W @ 6 CFM, DoC 5 vs 1: +"
              << formatFixed(doc5.mean.value() - doc1.mean.value(), 1)
              << " C mean entry (paper: ~10 C)\n";
    return 0;
}
