/**
 * @file
 * Coolest First (CF) — the classic data-center temperature-aware
 * policy [63][76][80]: place the job on the idle socket with the
 * lowest instantaneous chip temperature, adding heat to cool areas.
 * The baseline all the paper's results are normalized against.
 */

#ifndef DENSIM_SCHED_COOLEST_FIRST_HH
#define DENSIM_SCHED_COOLEST_FIRST_HH

#include "sched/scheduler.hh"

namespace densim {

/** Coolest First policy. */
class CoolestFirst : public Scheduler
{
  public:
    const char *name() const override { return "CF"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;
};

} // namespace densim

#endif // DENSIM_SCHED_COOLEST_FIRST_HH
