#!/usr/bin/env bash
#
# Correctness gate for densim — the standing matrix every perf PR
# must pass (see DESIGN.md "Correctness tooling").
#
#   tools/check.sh [stage ...]
#
# Stages (default: every stage the local toolchain supports):
#   plain     RelWithDebInfo build + full ctest, warnings-as-errors
#   asan      ASan+UBSan build + full ctest (DENSIM_CHECKS on)
#   tsan      ThreadSanitizer build + the experiment-runner and
#             differential tests (the only multithreaded paths)
#   paranoid  DENSIM_PARANOID build + the reduced-workload invariant
#             and differential tests (every epoch cross-validated)
#   lint      densim_lint.py (header self-containment, tools/lint/)
#             then clang-tidy over every compiled file
#             (DENSIM_LINT=ON); the clang-tidy half is skipped with a
#             notice when the tool is absent
#   tidy      the densim static-analysis gate (DESIGN.md Sec. 13):
#             tools/tidy/run_densim_tidy.py fixture self-test + a
#             clean whole-tree scan on the builtin frontend (gating,
#             needs only python3), the same on the clang AST frontend
#             when clang is on PATH (also gating), then an attempt to
#             build and run the clang-tidy plugin module — which
#             SKIPs loudly (never silently passes) where the
#             clang-tidy dev headers are unavailable, i.e. on every
#             stock Debian/Ubuntu toolchain
#   obs       DENSIM_OBS=ON build + the obs/equivalence tests, then a
#             CLI smoke run with tracing and the timeline stream on;
#             the emitted trace JSON and JSONL are parsed with
#             python3 -m json.tool / json.loads (DESIGN.md Sec. 10)
#   fault     ASan+UBSan+DENSIM_CHECKS build + the fault-injection and
#             keep-going tests, then two CLI smokes: a fan-failure run
#             whose JSON output and JSONL fault log must parse
#             strictly, and a keep-going sweep with a deliberately bad
#             cell that must finish the rest, exit nonzero, and emit a
#             strict summary JSON (DESIGN.md Sec. 11)
#   fleet     ASan+UBSan+DENSIM_CHECKS build + the fleet/streaming
#             determinism tests, then a CLI smoke: a multi-shard
#             --fleet run whose JSON summary must parse strictly and
#             whose metrics must be bit-identical across worker-thread
#             counts (DESIGN.md Sec. 15)
#   ckpt      ASan+UBSan+DENSIM_CHECKS build + the checkpoint/restore
#             bank (bit-identical resume, hostile-input rejection,
#             misuse guards), then a CLI smoke: SIGTERM a checkpointed
#             run mid-flight, resume it, and byte-compare the final
#             JSON against the uninterrupted run (DESIGN.md Sec. 16)
#   bench     opt-in (never in the default matrix): Release build,
#             one short pass of micro_kernels with JSON output, and a
#             strict parse of that JSON — rot protection for the
#             benches, with no perf gating (compare runs locally with
#             tools/bench_diff.py)
#
# The units negative-compile harness (tests/compile_fail/) runs at
# configure time of every stage, so each build below also proves the
# dimensional-analysis rules still reject ill-formed code.
#
# Each stage configures its own build tree (build-<stage>) so stages
# never contaminate each other. Any failure aborts the whole run.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CTEST_PARALLEL="${CTEST_PARALLEL:-$JOBS}"

# Test selection for the TSan stage: the thread pool and everything
# that runs under it, plus the differential suite it feeds.
TSAN_FILTER='Parallel|Experiment|PerfEquivalence|Fleet|Streamed'
# Paranoid stage: the reduced workloads of the differential suite and
# the invariant tests themselves (full integration workloads would
# re-derive the reference field every epoch for 180 sockets).
PARANOID_FILTER='Invariant|PerfEquivalence|EventHeap|DvfsMemo|Experiment|Parallel'

configure() { # dir, extra cmake args...
    local dir="$1"
    shift
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DDENSIM_WERROR=ON "$@"
}

build() { cmake --build "$1" -j "$JOBS"; }

run_ctest() { # dir [extra ctest args...]
    local dir="$1"
    shift
    (cd "$dir" && ctest --output-on-failure -j "$CTEST_PARALLEL" "$@")
}

stage_plain() {
    configure build-check
    build build-check
    run_ctest build-check
}

stage_asan() {
    configure build-asan "-DDENSIM_SANITIZE=address;undefined" \
              -DDENSIM_CHECKS=ON
    build build-asan
    run_ctest build-asan
}

stage_tsan() {
    configure build-tsan -DDENSIM_SANITIZE=thread
    build build-tsan
    run_ctest build-tsan -R "$TSAN_FILTER"
}

stage_paranoid() {
    configure build-paranoid -DDENSIM_PARANOID=ON
    build build-paranoid
    run_ctest build-paranoid -R "$PARANOID_FILTER"
}

stage_obs() {
    configure build-obs -DDENSIM_OBS=ON
    build build-obs
    run_ctest build-obs -R 'Obs|PerfEquivalence'
    # End-to-end: a small sim with every sink on must emit JSON that
    # strict parsers accept and a timeline on the exact sample grid.
    local out="build-obs/obs-smoke"
    mkdir -p "$out"
    ./build-obs/tools/densim run --scheduler CP --load 0.6 \
        --set simTimeS=2 --set warmupS=0.5 --set timelineSampleS=0.25 \
        --set obs.tracePath="$out/trace.json" \
        --set obs.timelinePath="$out/timeline.jsonl" \
        --json --counters > "$out/run.json"
    python3 -m json.tool "$out/trace.json" > /dev/null
    python3 -m json.tool "$out/run.json" > /dev/null
    python3 - "$out/timeline.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "timeline stream is empty"
for i, line in enumerate(lines):
    row = json.loads(line)
    assert row["tS"] == 0.25 * i, f"line {i}: {row['tS']} off-grid"
print(f"obs smoke: {len(lines)} timeline samples on the exact grid")
EOF
}

stage_fault() {
    # The fault paths mutate coupling maps, requeue jobs, and unwind
    # through exceptions — exactly the code that deserves sanitizers
    # and the runtime invariant bank.
    configure build-fault "-DDENSIM_SANITIZE=address;undefined" \
              -DDENSIM_CHECKS=ON
    build build-fault
    run_ctest build-fault -R 'Fault|KeepGoing'
    local out="build-fault/fault-smoke"
    mkdir -p "$out"
    # A fan-bank failure at t=1s capped to 20% speed: the run must
    # survive to completion and every sink must be strict JSON.
    ./build-fault/tools/densim run --scheduler CF --load 0.7 \
        --set topo.rows=2 --set simTimeS=3 --set warmupS=0.5 \
        --set fault.fanFailS=1 --set fault.fanSpeedFrac=0.2 \
        --set fault.logPath="$out/faults.jsonl" \
        --json --counters > "$out/run.json"
    python3 -m json.tool "$out/run.json" > /dev/null
    python3 - "$out/faults.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "fault log is empty"
kinds = {json.loads(l)["kind"] for l in lines}
assert "fanDerate" in kinds, f"no fanDerate event in {kinds}"
print(f"fault smoke: {len(lines)} fault events, kinds={sorted(kinds)}")
EOF
    # Keep-going sweep with one unresolvable cell: the good cells
    # must complete, the exit code must be nonzero, and the summary
    # must be strict JSON that admits the failure.
    if ./build-fault/tools/densim sweep --schedulers CF,Bogus \
        --loads 0.4,0.6 --set topo.rows=2 --set simTimeS=1 \
        --set warmupS=0.2 --keep-going \
        --summary "$out/summary.json" > "$out/sweep.csv"; then
        echo "check.sh: keep-going sweep with a bad cell exited 0" >&2
        exit 1
    fi
    python3 - "$out/summary.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["total"] == 4, doc
assert doc["completed"] == 2, doc
assert doc["failed"] == 2, doc
assert any(r["status"] == "failed" for r in doc["runs"])
print(f"fault smoke: sweep summary {doc['completed']}/{doc['total']} "
      "completed, failures reported")
EOF
}

stage_fleet() {
    # The fleet layer fans work out across a worker pool and promises
    # bit-identical metrics at any thread count — run it under ASan
    # with the invariant bank on, then pin the promise end to end
    # through the CLI.
    configure build-fleet "-DDENSIM_SANITIZE=address;undefined" \
              -DDENSIM_CHECKS=ON
    build build-fleet
    run_ctest build-fleet -R 'Fleet|Streamed|DomainSeed|Parallel'
    local out="build-fleet/fleet-smoke"
    mkdir -p "$out"
    # A 4-chassis fleet at two worker counts: both summaries must be
    # strict JSON, account for every dispatched job, and match byte
    # for byte.
    for t in 1 3; do
        ./build-fleet/tools/densim run --fleet 4 --threads "$t" \
            --scheduler CF --load 0.7 \
            --set topo.rows=2 --set simTimeS=1 --set warmupS=0.2 \
            --json > "$out/fleet-t$t.json"
    done
    cmp "$out/fleet-t1.json" "$out/fleet-t3.json"
    python3 - "$out/fleet-t1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["chassis"] == 4, doc
assert doc["jobsArrived"] > 0, doc
assert doc["jobsDispatched"] == doc["jobsArrived"], doc
assert len(doc["dispatchedPerShard"]) == 4, doc
assert sum(doc["dispatchedPerShard"]) == doc["jobsDispatched"], doc
print(f"fleet smoke: {doc['jobsDispatched']} jobs across "
      f"{doc['chassis']} chassis, bit-identical at 1 and 3 workers")
EOF
}

stage_ckpt() {
    # Crash-safe checkpoint/restore (DESIGN.md Sec. 16): the unit
    # bank under ASan, then the end-to-end promise through the CLI —
    # SIGTERM a run mid-flight, resume from its checkpoint, and the
    # final JSON must match the uninterrupted run byte for byte.
    configure build-ckpt "-DDENSIM_SANITIZE=address;undefined" \
              -DDENSIM_CHECKS=ON
    build build-ckpt
    run_ctest build-ckpt -R 'Ckpt|BitIdentity|HostileInput|Misuse|Driver|Fork'
    local out="build-ckpt/ckpt-smoke"
    mkdir -p "$out"
    local args=(run --scheduler CP --load 0.7 --set simTimeS=12
                --set warmupS=1 --set fault.sensorNoisyAtS=2 --json)
    ./build-ckpt/tools/densim "${args[@]}" > "$out/straight.json"
    # Kill mid-flight. ASan builds are slow enough that the signal
    # lands mid-run; if the run wins the race anyway, fall back to
    # resuming the cadence checkpoint it left behind.
    set +e
    ./build-ckpt/tools/densim "${args[@]}" \
        --checkpoint "$out/run.ckpt" --ckpt-every 1 \
        > "$out/killed.json" &
    local pid=$!
    sleep 1
    kill -TERM "$pid" 2> /dev/null
    wait "$pid"
    local rc=$?
    set -e
    if [ "$rc" -ne 3 ] && [ "$rc" -ne 0 ]; then
        echo "check.sh: ckpt: killed run exited $rc (want 3 or 0)" >&2
        exit 1
    fi
    if [ ! -f "$out/run.ckpt" ]; then
        echo "check.sh: ckpt: no checkpoint file written" >&2
        exit 1
    fi
    ./build-ckpt/tools/densim "${args[@]}" \
        --restore "$out/run.ckpt" > "$out/resumed.json"
    cmp "$out/straight.json" "$out/resumed.json"
    echo "ckpt smoke: SIGTERM at exit $rc, resume byte-identical"
}

stage_bench() {
    # Opt-in rot protection for the microbenchmarks (not in the
    # default matrix): Release build, one short pass of every bench,
    # and a strict parse of the JSON output. No timing is gated —
    # CI machines are too noisy for that; use tools/bench_diff.py
    # locally to compare two runs.
    configure build-bench -DCMAKE_BUILD_TYPE=Release
    build build-bench
    local out="build-bench/bench-smoke"
    mkdir -p "$out"
    ./build-bench/bench/micro_kernels --benchmark_format=json \
        --benchmark_min_time=0.01 > "$out/micro_kernels.json"
    python3 - "$out/micro_kernels.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc.get("benchmarks", [])
assert rows, "micro_kernels emitted no benchmark rows"
names = {r["name"] for r in rows}
for required in ("BM_SimulatedServerSecond",
                 "BM_SchedulerDecisionBatch/2"):
    assert required in names, f"{required} missing from {sorted(names)}"
print(f"bench smoke: {len(rows)} benchmarks ran and parsed")
EOF
    # The diff tool itself must keep working: identical inputs never
    # regress, so this exercises parse + compare + exit-code logic.
    python3 tools/bench_diff.py "$out/micro_kernels.json" \
        "$out/micro_kernels.json" > /dev/null
}

stage_lint() {
    # The custom densim lint bank needs only python3 + a compiler;
    # it runs (and gates) even where clang-tidy is unavailable.
    python3 tools/lint/densim_lint.py --self-test
    python3 tools/lint/densim_lint.py
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "check.sh: clang-tidy not on PATH — skipping clang-tidy half" >&2
        return 0
    fi
    configure build-lint -DDENSIM_LINT=ON
    build build-lint
}

stage_tidy() {
    # Portable driver: fixture self-test, then a clean tree scan.
    # The builtin frontend gates everywhere python3 runs. The tree
    # scan also emits SARIF so the 2.1.0 structure is validated on
    # every run, not just when CI uploads it.
    python3 tools/tidy/run_densim_tidy.py --frontend builtin --self-test
    mkdir -p build-checks
    python3 tools/tidy/run_densim_tidy.py --frontend builtin \
        --sarif build-checks/densim-tidy.sarif
    # The clang AST-JSON frontend gates wherever a clang binary
    # exists — same rules over the real AST.
    if command -v clang++ >/dev/null 2>&1 || \
       command -v clang >/dev/null 2>&1; then
        python3 tools/tidy/run_densim_tidy.py --frontend clang --self-test
        python3 tools/tidy/run_densim_tidy.py --frontend clang
    else
        echo "check.sh: tidy: no clang on PATH — AST-JSON frontend SKIPPED" \
             "(builtin frontend gated above)" >&2
    fi
    # The clang-tidy plugin module: build it if the dev headers
    # exist; otherwise the stand-in target prints a loud SKIP.
    configure build-tidy -DDENSIM_TIDY_PLUGIN=ON
    cmake --build build-tidy --target densim_tidy_module -j "$JOBS"
    local module="build-tidy/tools/tidy/libdensim_tidy_module.so"
    if [ -f "$module" ] && command -v clang-tidy >/dev/null 2>&1; then
        clang-tidy -load "$module" \
            --checks='-*,densim-*' \
            --config="{CheckOptions: [{key: densim-raw-double-boundary.Allowlist, value: tools/lint/raw_double_allowlist.txt}]}" \
            --list-checks | grep -q densim-arena-lifo
        clang-tidy -load "$module" \
            --checks='-*,densim-*' \
            --config="{CheckOptions: [{key: densim-raw-double-boundary.Allowlist, value: tools/lint/raw_double_allowlist.txt}]}" \
            src/core/dense_server_sim.cc src/fault/fault_state.cc \
            src/sched/coupling_predictor.cc -- -std=c++20 -Isrc
    else
        echo "check.sh: tidy: plugin module not built or clang-tidy absent —" \
             "plugin half SKIPPED (driver gated above)" >&2
    fi
}

if [ "$#" -gt 0 ]; then
    stages=("$@")
else
    stages=(plain asan tsan paranoid obs fault fleet ckpt lint tidy)
fi

for stage in "${stages[@]}"; do
    case "$stage" in
        plain|asan|tsan|paranoid|obs|fault|fleet|ckpt|lint|tidy|bench) ;;
        *)
            echo "check.sh: unknown stage '$stage'" >&2
            exit 2
            ;;
    esac
    echo "==== check.sh stage: $stage ===="
    "stage_$stage"
done
echo "==== check.sh: all stages passed ===="
