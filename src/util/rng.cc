#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace densim {

namespace {

/** SplitMix64 step, used only to expand seeds. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("Rng::exponential requires mean > 0, got ", mean);
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return u * factor;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

bool
Rng::bernoulli(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

Rng::Snapshot
Rng::snapshot() const
{
    Snapshot snap{};
    for (int i = 0; i < 4; ++i)
        snap.state[i] = state_[i];
    snap.hasSpare = hasSpare_;
    snap.spare = spare_;
    return snap;
}

void
Rng::restore(const Snapshot &snap)
{
    for (int i = 0; i < 4; ++i)
        state_[i] = snap.state[i];
    hasSpare_ = snap.hasSpare;
    spare_ = snap.spare;
}

std::uint64_t
domainSeed(std::uint64_t run_seed, std::uint64_t shard_id,
           std::uint64_t stream_tag)
{
    // Chain of SplitMix64 avalanche steps, folding one coordinate in
    // per step. The intermediate state is fully mixed before the next
    // coordinate lands, so no xor/add of the inputs alone can
    // reproduce another triple's output.
    std::uint64_t x = run_seed;
    x = splitmix64(x); // Avalanche the run seed itself.
    x ^= shard_id;
    x = splitmix64(x);
    x ^= stream_tag;
    return splitmix64(x);
}

} // namespace densim
