file(REMOVE_RECURSE
  "libdensim_util.a"
)
