/**
 * @file
 * Differential tests for the incremental engine hot paths: the
 * event-heap completion queue, the delta-maintained ambient-target
 * field, and the DVFS memo must leave simulation results equivalent
 * to the recompute-from-scratch reference paths.
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/event_heap.hh"
#include "sched/factory.hh"

namespace densim {
namespace {

/** A small, fast configuration exercising all engine paths. */
SimConfig
diffConfig()
{
    SimConfig config;
    config.topo.rows = 3; // 36 sockets
    config.simTimeS = 2.0;
    config.warmupS = 0.5;
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 42;
    return config;
}

void
expectNearRel(double a, double b, const char *what)
{
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    EXPECT_NEAR(a, b, 1e-9 * scale) << what;
}

void
expectEquivalent(const SimMetrics &a, const SimMetrics &b)
{
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.jobsUnfinished, b.jobsUnfinished);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.runtimeExpansion.count(), b.runtimeExpansion.count());
    expectNearRel(a.runtimeExpansion.mean(), b.runtimeExpansion.mean(),
                  "runtime expansion");
    expectNearRel(a.serviceExpansion.mean(), b.serviceExpansion.mean(),
                  "service expansion");
    expectNearRel(a.queueDelayS.mean(), b.queueDelayS.mean(),
                  "queue delay");
    expectNearRel(a.energyJ, b.energyJ, "energy");
    expectNearRel(a.makespanS, b.makespanS, "makespan");
    expectNearRel(a.totalWork, b.totalWork, "total work");
    expectNearRel(a.totalBusyTime, b.totalBusyTime, "busy time");
    expectNearRel(a.totalFreqTime, b.totalFreqTime, "freq time");
    expectNearRel(a.boostTimeS, b.boostTimeS, "boost time");
    expectNearRel(a.maxChipTempC, b.maxChipTempC, "max chip temp");
    expectNearRel(a.front.workDone, b.front.workDone, "front work");
    expectNearRel(a.back.workDone, b.back.workDone, "back work");
    expectNearRel(a.even.workDone, b.even.workDone, "even work");
}

TEST(PerfEquivalence, IncrementalThermalMatchesReference)
{
    for (const char *name : {"CF", "CP", "Predictive"}) {
        SimConfig fast = diffConfig();
        fast.incrementalThermal = true;
        SimConfig ref = diffConfig();
        ref.incrementalThermal = false;

        DenseServerSim a(fast, makeScheduler(name));
        DenseServerSim b(ref, makeScheduler(name));
        const SimMetrics ma = a.run();
        const SimMetrics mb = b.run();
        SCOPED_TRACE(name);
        expectEquivalent(ma, mb);
    }
}

TEST(PerfEquivalence, IncrementalThermalMatchesWithMigration)
{
    SimConfig fast = diffConfig();
    fast.migrationEnabled = true;
    SimConfig ref = fast;
    ref.incrementalThermal = false;

    DenseServerSim a(fast, makeScheduler("CP"));
    DenseServerSim b(ref, makeScheduler("CP"));
    expectEquivalent(a.run(), b.run());
}

TEST(PerfEquivalence, QuantizedDvfsMemoStaysClose)
{
    // The quantized memo is a documented approximation: results may
    // differ from the exact path, but only within the bound set by
    // the quantization step's effect on the P-state search.
    SimConfig exact = diffConfig();
    SimConfig quant = diffConfig();
    quant.dvfsMemoQuantC = 0.25;

    DenseServerSim a(exact, makeScheduler("CP"));
    DenseServerSim b(quant, makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    EXPECT_NEAR(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean(),
                0.05 * ma.runtimeExpansion.mean());
    EXPECT_NEAR(ma.energyJ, mb.energyJ, 0.05 * ma.energyJ);
}

TEST(PerfEquivalence, ObservabilityIsBitIdentical)
{
    // The disabled-overhead contract (DESIGN.md Sec. 10) is stronger
    // than "equivalent": turning on every runtime observability
    // feature — timeline sampling, trace and JSONL sinks — must leave
    // SimMetrics *bit-identical*, because counters and sinks only
    // read model state, never feed back into it. EXPECT_EQ on
    // doubles, not NEAR.
    SimConfig plain = diffConfig();
    SimConfig observed = diffConfig();
    observed.timelineSampleS = 0.25;
    observed.obsTracePath =
        testing::TempDir() + "perf_equiv_trace.json";
    observed.obsTimelinePath =
        testing::TempDir() + "perf_equiv_timeline.jsonl";

    DenseServerSim a(plain, makeScheduler("CP"));
    DenseServerSim b(observed, makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();

    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted);
    EXPECT_EQ(ma.jobsUnfinished, mb.jobsUnfinished);
    EXPECT_EQ(ma.energyJ, mb.energyJ);
    EXPECT_EQ(ma.makespanS, mb.makespanS);
    EXPECT_EQ(ma.totalWork, mb.totalWork);
    EXPECT_EQ(ma.totalBusyTime, mb.totalBusyTime);
    EXPECT_EQ(ma.totalFreqTime, mb.totalFreqTime);
    EXPECT_EQ(ma.boostTimeS, mb.boostTimeS);
    EXPECT_EQ(ma.maxChipTempC, mb.maxChipTempC);
    EXPECT_EQ(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean());
    EXPECT_EQ(ma.serviceExpansion.mean(), mb.serviceExpansion.mean());
    EXPECT_EQ(ma.queueDelayS.mean(), mb.queueDelayS.mean());
    EXPECT_EQ(ma.chipTempC.mean(), mb.chipTempC.mean());
    EXPECT_EQ(ma.front.workDone, mb.front.workDone);
    EXPECT_EQ(ma.back.workDone, mb.back.workDone);
    EXPECT_EQ(ma.even.workDone, mb.even.workDone);
}

// ----------------------------------------------------- golden seeds

/**
 * Pre-SoA-refactor SimMetrics captured from the seed engine (hex
 * float literals, so the expected values round-trip exactly). The
 * SoA hot paths — flat state arrays, the feasibility ladder, the
 * fused scoring context, the epoch arena — are all claimed to be
 * *exact* rewrites, so the refactored engine must reproduce these
 * numbers for every scheduler, with faults armed, and with
 * migration on.
 */
struct GoldenRow
{
    const char *name;
    std::size_t jobsArrived, jobsCompleted, jobsUnfinished, migrations;
    double energyJ, makespanS, totalWork, totalBusyTime, totalFreqTime,
        boostTimeS, maxChipTempC, runtimeExpansion, serviceExpansion,
        queueDelayS, chipTempC;
};

constexpr GoldenRow kGoldens[] = {
    {"CF", 9647, 7241, 0, 0,
     0x1.5542ba6fa8c35p+9, 0x1.11e9161e38482p+1,
     0x1.7064ff552a54dp+5, 0x1.51945ef131924p+5,
     0x1.2917ec1050151p+5, 0x1.dc24800af28e5p+4,
     0x1.80365f643ae5dp+6, 0x1.01e3e9624cfb8p+0,
     0x1.d2131ef92788ep-1, 0x1.8dbc5a193e07ap-14,
     0x1.50b2678f70475p+6},
    {"HF", 9647, 7241, 0, 0,
     0x1.4f8e6a7f8c2bep+9, 0x1.0dfeb3f563588p+1,
     0x1.71093a010d1c7p+5, 0x1.5d68d26bd1759p+5,
     0x1.27541e3fd8ddp+5, 0x1.a1207ed6e2b52p+4,
     0x1.8a3b47fa03eb9p+6, 0x1.05eceee97d77p+0,
     0x1.de49f48d9d6e9p-1, 0x1.2a20246a56abcp-14,
     0x1.5205e2c98bb88p+6},
    {"Random", 9647, 7241, 0, 0,
     0x1.517ad3414c87ep+9, 0x1.0df6634acec3bp+1,
     0x1.707e015d19d21p+5, 0x1.56603a02ab7d1p+5,
     0x1.28377a638ee4p+5, 0x1.b99e1cfa3e665p+4,
     0x1.8627510d61c4fp+6, 0x1.023c08ef6505cp+0,
     0x1.d8859499a6314p-1, 0x1.41d8628865a42p-14,
     0x1.4c873e1b2dda6p+6},
    {"MinHR", 9647, 7241, 0, 0,
     0x1.4f460606b2fbep+9, 0x1.0dfb92749bdeep+1,
     0x1.7106b95c5cd72p+5, 0x1.5d75b216f93c5p+5,
     0x1.274f0560a0e35p+5, 0x1.a07a082d12131p+4,
     0x1.8854998e8f1c8p+6, 0x1.09e3030b96a59p+0,
     0x1.dcfe95e88faefp-1, 0x1.59ff1ab31092ap-14,
     0x1.506690d2212e4p+6},
    {"CN", 9647, 7241, 0, 0,
     0x1.546a02966547fp+9, 0x1.0eb46cbf9ea2p+1,
     0x1.703897815cc25p+5, 0x1.508c33f5cf649p+5,
     0x1.29217a7e9bd1fp+5, 0x1.de89eac573f1ap+4,
     0x1.83d362e9bddccp+6, 0x1.039dc72cb539ep+0,
     0x1.d3524d8497251p-1, 0x1.65c8e359bcbc9p-14,
     0x1.5118b1ced9f51p+6},
    {"Balanced", 9647, 7241, 0, 0,
     0x1.546a5c8499da9p+9, 0x1.110817335dcdfp+1,
     0x1.707a2714c4284p+5, 0x1.526785e2f61b8p+5,
     0x1.29020d88382ebp+5, 0x1.dae853bb09f6cp+4,
     0x1.815c8f75993c7p+6, 0x1.007739256d118p+0,
     0x1.d63ed66f9b6a2p-1, 0x1.233bf7960c76bp-14,
     0x1.50ee5ac29db56p+6},
    {"Balanced-L", 9647, 7241, 0, 0,
     0x1.53dfdfce483b1p+9, 0x1.0dfeb3f563588p+1,
     0x1.70c5d725c6c98p+5, 0x1.524540fdc78ffp+5,
     0x1.295420e0a6669p+5, 0x1.d7a564aa6c784p+4,
     0x1.833b125ba29cep+6, 0x1.09a6eba0b6e71p+0,
     0x1.d507f8fa156f6p-1, 0x1.c2f859774ab9fp-14,
     0x1.53014b714f283p+6},
    {"A-Random", 9647, 7241, 0, 0,
     0x1.543d7c825ef51p+9, 0x1.0dfe9dcdd6b36p+1,
     0x1.705f82776859p+5, 0x1.511e3642a0ad1p+5,
     0x1.292a767861e77p+5, 0x1.deb4a2d12d0f2p+4,
     0x1.7e626d96f2a07p+6, 0x1.021d75735289cp+0,
     0x1.d27969a3bd036p-1, 0x1.6aebf88a9383p-14,
     0x1.50c2cd314692ep+6},
    {"Predictive", 9647, 7241, 0, 0,
     0x1.54a6c66734595p+9, 0x1.0ed68a6e131c4p+1,
     0x1.707fd78d3b77ap+5, 0x1.5013a55b51c2p+5,
     0x1.2980aabd00183p+5, 0x1.e5bf5915c9324p+4,
     0x1.7c0ec74fa52f3p+6, 0x1.04207565ffc2bp+0,
     0x1.d09e520d7914bp-1, 0x1.9d7600aaac7c7p-14,
     0x1.528311c1e03cp+6},
    {"CP", 9647, 7241, 0, 0,
     0x1.5150671913124p+9, 0x1.0df6634acec3bp+1,
     0x1.707a1869b6192p+5, 0x1.5841e57c54868p+5,
     0x1.27d1d09e98075p+5, 0x1.a9b800e2e93bp+4,
     0x1.88443b2ec411cp+6, 0x1.03bc2f278daap+0,
     0x1.df78eff921406p-1, 0x1.14d237b07ee33p-14,
     0x1.4f60b54c466f5p+6},
    {"CP+faults", 9647, 7241, 0, 0,
     0x1.6d83f20f75ab6p+9, 0x1.4fd04652ef671p+1,
     0x1.70dc663ca7c5ap+5, 0x1.522961dbb0d73p+5,
     0x1.29702d07e6b31p+5, 0x1.b2ba505cb5e5p+4,
     0x1.c7a3b17d13dafp+6, 0x1.1a46712a096ddp+8,
     0x1.d6425ff66ea98p-1, 0x1.dccb69f262778p-3,
     0x1.61a70ec568e16p+6},
    {"CP+migration", 9647, 7241, 0, 7,
     0x1.50ff3d8c0a83p+9, 0x1.0dfe9dcdd6b36p+1,
     0x1.7096c471e73fdp+5, 0x1.5895daf80bbbcp+5,
     0x1.27dd3a1fe50fep+5, 0x1.a8a524282d1d7p+4,
     0x1.88610aa666b29p+6, 0x1.0957820ea96abp+0,
     0x1.df215b77feab5p-1, 0x1.75716686c338dp-14,
     0x1.4eb75639a664bp+6},
};

/** Build the scenario config for a golden row from its name. */
SimConfig
goldenConfig(const char *name)
{
    SimConfig config = diffConfig();
    if (std::string(name) == "CP+faults") {
        config.fault.fanFailS = 0.8;
        config.fault.fanSpeedFrac = 0.3;
        config.fault.fanRecoverS = 1.5;
        config.fault.sensorStuckAtS = 0.9;
        config.fault.socketFailS = 1.0;
        config.fault.socketRecoverS = 1.6;
    } else if (std::string(name) == "CP+migration") {
        config.migrationEnabled = true;
    }
    return config;
}

const char *
goldenScheduler(const char *name)
{
    return std::string(name).rfind("CP", 0) == 0 ? "CP" : name;
}

TEST(PerfEquivalence, GoldenMetricsMatchPreRefactorSeed)
{
    for (const GoldenRow &g : kGoldens) {
        SCOPED_TRACE(g.name);
        DenseServerSim sim(goldenConfig(g.name),
                           makeScheduler(goldenScheduler(g.name)));
        const SimMetrics m = sim.run();
        EXPECT_EQ(m.jobsArrived, g.jobsArrived);
        EXPECT_EQ(m.jobsCompleted, g.jobsCompleted);
        EXPECT_EQ(m.jobsUnfinished, g.jobsUnfinished);
        EXPECT_EQ(m.migrations, g.migrations);
        expectNearRel(m.energyJ, g.energyJ, "energy");
        expectNearRel(m.makespanS, g.makespanS, "makespan");
        expectNearRel(m.totalWork, g.totalWork, "total work");
        expectNearRel(m.totalBusyTime, g.totalBusyTime, "busy time");
        expectNearRel(m.totalFreqTime, g.totalFreqTime, "freq time");
        expectNearRel(m.boostTimeS, g.boostTimeS, "boost time");
        expectNearRel(m.maxChipTempC, g.maxChipTempC, "max chip temp");
        expectNearRel(m.runtimeExpansion.mean(), g.runtimeExpansion,
                      "runtime expansion");
        expectNearRel(m.serviceExpansion.mean(), g.serviceExpansion,
                      "service expansion");
        expectNearRel(m.queueDelayS.mean(), g.queueDelayS,
                      "queue delay");
        expectNearRel(m.chipTempC.mean(), g.chipTempC, "chip temp");
    }
}

TEST(PerfEquivalence, SparsePowerDeltaPrunesNothingOnSutCalibration)
{
    // The sparse applyPowerDelta fan-out drops rows whose coupling
    // coefficient is below kDeltaCoeffTolerance. On the SUT
    // calibration every coefficient is orders of magnitude above
    // that floor, so the filtered CSR must equal the full one row
    // for row — which is exactly why the goldens above (and every
    // default-topology run) stay bit-identical to the dense
    // implementation.
    DenseServerSim sim(SimConfig{}, makeScheduler("CP"));
    const CouplingMap &map = sim.coupling();
    const std::size_t n = sim.topology().numSockets();
    ASSERT_EQ(n, 180u);
    for (std::size_t s = 0; s < n; ++s)
        EXPECT_EQ(map.deltaFanoutCount(s), map.downstreamCount(s))
            << "socket " << s;
}

TEST(PerfEquivalence, PredictionCacheIsBitIdentical)
{
    // The prediction cache (placement/penalty memos, the feasibility
    // ladder, and the fast-path snapshot) returns cached values
    // verbatim, so disabling it must change nothing at all —
    // EXPECT_EQ on doubles, including with faults armed (where the
    // exact-DVFS prune turns itself off) and with migration on.
    for (const GoldenRow &g : kGoldens) {
        if (std::string(g.name).rfind("CP", 0) != 0)
            continue; // Only CP exercises the penalty paths.
        SCOPED_TRACE(g.name);
        SimConfig cached = goldenConfig(g.name);
        SimConfig uncached = cached;
        uncached.schedPredictionCache = false;

        DenseServerSim a(cached, makeScheduler("CP"));
        DenseServerSim b(uncached, makeScheduler("CP"));
        const SimMetrics ma = a.run();
        const SimMetrics mb = b.run();
        EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
        EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted);
        EXPECT_EQ(ma.migrations, mb.migrations);
        EXPECT_EQ(ma.energyJ, mb.energyJ);
        EXPECT_EQ(ma.makespanS, mb.makespanS);
        EXPECT_EQ(ma.totalWork, mb.totalWork);
        EXPECT_EQ(ma.totalBusyTime, mb.totalBusyTime);
        EXPECT_EQ(ma.totalFreqTime, mb.totalFreqTime);
        EXPECT_EQ(ma.boostTimeS, mb.boostTimeS);
        EXPECT_EQ(ma.maxChipTempC, mb.maxChipTempC);
        EXPECT_EQ(ma.runtimeExpansion.mean(),
                  mb.runtimeExpansion.mean());
        EXPECT_EQ(ma.serviceExpansion.mean(),
                  mb.serviceExpansion.mean());
        EXPECT_EQ(ma.queueDelayS.mean(), mb.queueDelayS.mean());
        EXPECT_EQ(ma.chipTempC.mean(), mb.chipTempC.mean());
    }
}

TEST(PerfEquivalence, BusySumSkipIsBitIdentical)
{
    // setSocketRate elides the busy-sum remove/add round-trip when a
    // powerManage epoch confirms the previous DVFS decision (the
    // contributions are bitwise unchanged). The skip must be *exact*,
    // not merely close: it can only trigger on sockets already in the
    // sums — which happens only inside powerManage, whose sums are
    // rebuilt from scratch (rebuildScalars) before the next read — so
    // every metric must match EXPECT_EQ on doubles across every
    // golden scenario, faults and migration included.
    for (const GoldenRow &g : kGoldens) {
        SCOPED_TRACE(g.name);
        SimConfig skip = goldenConfig(g.name);
        SimConfig resum = goldenConfig(g.name);
        resum.busySumSkip = false;

        DenseServerSim a(skip, makeScheduler(goldenScheduler(g.name)));
        DenseServerSim b(resum, makeScheduler(goldenScheduler(g.name)));
        const SimMetrics ma = a.run();
        const SimMetrics mb = b.run();
        EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
        EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted);
        EXPECT_EQ(ma.jobsUnfinished, mb.jobsUnfinished);
        EXPECT_EQ(ma.migrations, mb.migrations);
        EXPECT_EQ(ma.energyJ, mb.energyJ);
        EXPECT_EQ(ma.makespanS, mb.makespanS);
        EXPECT_EQ(ma.totalWork, mb.totalWork);
        EXPECT_EQ(ma.totalBusyTime, mb.totalBusyTime);
        EXPECT_EQ(ma.totalFreqTime, mb.totalFreqTime);
        EXPECT_EQ(ma.boostTimeS, mb.boostTimeS);
        EXPECT_EQ(ma.maxChipTempC, mb.maxChipTempC);
        EXPECT_EQ(ma.runtimeExpansion.mean(),
                  mb.runtimeExpansion.mean());
        EXPECT_EQ(ma.serviceExpansion.mean(),
                  mb.serviceExpansion.mean());
        EXPECT_EQ(ma.queueDelayS.mean(), mb.queueDelayS.mean());
        EXPECT_EQ(ma.chipTempC.mean(), mb.chipTempC.mean());
        EXPECT_EQ(ma.front.workDone, mb.front.workDone);
        EXPECT_EQ(ma.back.workDone, mb.back.workDone);
        EXPECT_EQ(ma.even.workDone, mb.even.workDone);
    }
}

TEST(PerfEquivalence, PmDecisionPruneIsBitIdentical)
{
    // powerManage skips chooseDvfs + setSocketRate for a socket whose
    // memoized decision matches the memo-predicate inputs AND is
    // already applied bitwise. The skip must be *exact* relative to
    // the same memo setting: everything setSocketRate would write is
    // a pure function of inputs that did not move, the completion
    // time is recomputed with the same expression, and the busy sums
    // are rebuilt from scratch at the end of the epoch. The quantized
    // pass is the one where the prune actually fires (at quant 0 a
    // bitwise-equal ambient across thermal steps is vanishingly
    // rare); the exact pass pins that it stays inert there. With
    // faults armed the prune turns itself off (chooseDvfs consumes
    // fault RNG draws), so those goldens pin the auto-disable path.
    // Every metric must match EXPECT_EQ on doubles.
    for (const GoldenRow &g : kGoldens) {
    for (const double quant : {0.0, 0.25}) {
        SCOPED_TRACE(std::string(g.name) + " quant=" +
                     std::to_string(quant));
        SimConfig pruned = goldenConfig(g.name);
        pruned.dvfsMemoQuantC = quant;
        SimConfig redecide = goldenConfig(g.name);
        redecide.dvfsMemoQuantC = quant;
        redecide.pmDecisionPrune = false;

        DenseServerSim a(pruned,
                         makeScheduler(goldenScheduler(g.name)));
        DenseServerSim b(redecide,
                         makeScheduler(goldenScheduler(g.name)));
        const SimMetrics ma = a.run();
        const SimMetrics mb = b.run();
        EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
        EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted);
        EXPECT_EQ(ma.jobsUnfinished, mb.jobsUnfinished);
        EXPECT_EQ(ma.migrations, mb.migrations);
        EXPECT_EQ(ma.energyJ, mb.energyJ);
        EXPECT_EQ(ma.makespanS, mb.makespanS);
        EXPECT_EQ(ma.totalWork, mb.totalWork);
        EXPECT_EQ(ma.totalBusyTime, mb.totalBusyTime);
        EXPECT_EQ(ma.totalFreqTime, mb.totalFreqTime);
        EXPECT_EQ(ma.boostTimeS, mb.boostTimeS);
        EXPECT_EQ(ma.maxChipTempC, mb.maxChipTempC);
        EXPECT_EQ(ma.runtimeExpansion.mean(),
                  mb.runtimeExpansion.mean());
        EXPECT_EQ(ma.serviceExpansion.mean(),
                  mb.serviceExpansion.mean());
        EXPECT_EQ(ma.queueDelayS.mean(), mb.queueDelayS.mean());
        EXPECT_EQ(ma.chipTempC.mean(), mb.chipTempC.mean());
        EXPECT_EQ(ma.front.workDone, mb.front.workDone);
        EXPECT_EQ(ma.back.workDone, mb.back.workDone);
        EXPECT_EQ(ma.even.workDone, mb.even.workDone);
    }
    }
}

TEST(PerfEquivalence, AmbientBatchCrossoverStaysClose)
{
    // The batched ambient-target refresh is a documented tolerance
    // mode (like the quantized DVFS memo): when enough sockets are
    // dirty it recomputes the whole field from busy sums instead of
    // applying per-socket deltas, reordering float accumulation.
    // Results must stay close, not identical.
    SimConfig exact = diffConfig();
    SimConfig batched = diffConfig();
    batched.ambientBatchFrac = 0.05; // Batch aggressively.

    DenseServerSim a(exact, makeScheduler("CP"));
    DenseServerSim b(batched, makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    EXPECT_NEAR(ma.jobsCompleted, mb.jobsCompleted,
                0.05 * ma.jobsCompleted);
    EXPECT_NEAR(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean(),
                0.05 * ma.runtimeExpansion.mean());
    EXPECT_NEAR(ma.energyJ, mb.energyJ, 0.05 * ma.energyJ);
    EXPECT_NEAR(ma.maxChipTempC, mb.maxChipTempC,
                0.05 * ma.maxChipTempC);
}

// ------------------------------------------------------- event heap

TEST(EventHeap, OrdersByKeyThenId)
{
    EventHeap heap;
    heap.reset(8);
    heap.upsert(5, 3.0);
    heap.upsert(2, 1.0);
    heap.upsert(7, 2.0);
    heap.upsert(3, 1.0); // Ties broken by lowest id.
    EXPECT_EQ(heap.top(), 2u);
    EXPECT_DOUBLE_EQ(heap.topKey(), 1.0);
    heap.erase(2);
    EXPECT_EQ(heap.top(), 3u);
    heap.erase(3);
    EXPECT_EQ(heap.top(), 7u);
}

TEST(EventHeap, UpsertReplacesKey)
{
    EventHeap heap;
    heap.reset(4);
    heap.upsert(0, 5.0);
    heap.upsert(1, 6.0);
    EXPECT_EQ(heap.top(), 0u);
    heap.upsert(0, 7.0); // Decrease priority of the current top.
    EXPECT_EQ(heap.top(), 1u);
    heap.upsert(1, 9.0);
    EXPECT_EQ(heap.top(), 0u);
    EXPECT_EQ(heap.size(), 2u);
}

TEST(EventHeap, EmptyTopKeyIsInfinite)
{
    EventHeap heap;
    heap.reset(3);
    EXPECT_TRUE(heap.empty());
    EXPECT_TRUE(std::isinf(heap.topKey()));
    heap.upsert(1, 2.0);
    heap.erase(1);
    EXPECT_TRUE(heap.empty());
    EXPECT_TRUE(std::isinf(heap.topKey()));
    heap.erase(1); // Erasing an absent id is a no-op.
    EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, RandomizedAgainstLinearScan)
{
    // The heap must always report the same minimum as a brute-force
    // scan over a mirrored key array.
    const std::size_t n = 32;
    EventHeap heap;
    heap.reset(n);
    std::vector<double> keys(n, -1.0); // -1 = absent.

    std::uint64_t lcg = 99;
    auto next_u = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    for (int step = 0; step < 2000; ++step) {
        const auto id = static_cast<std::size_t>(next_u() % n);
        if (next_u() % 3 == 0 && keys[id] >= 0.0) {
            heap.erase(id);
            keys[id] = -1.0;
        } else {
            const double key =
                static_cast<double>(next_u() % 1000) * 0.125;
            heap.upsert(id, key);
            keys[id] = key;
        }

        double best = -1.0;
        std::size_t best_id = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (keys[i] < 0.0)
                continue;
            if (best < 0.0 || keys[i] < best ||
                (keys[i] == best && i < best_id)) {
                best = keys[i];
                best_id = i;
            }
        }
        if (best_id == n) {
            EXPECT_TRUE(heap.empty());
        } else {
            ASSERT_FALSE(heap.empty());
            EXPECT_EQ(heap.top(), best_id);
            EXPECT_DOUBLE_EQ(heap.topKey(), best);
        }
    }
}

} // namespace
} // namespace densim
