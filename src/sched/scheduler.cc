#include "sched/scheduler.hh"

#include <limits>

#include "util/logging.hh"

namespace densim {

namespace {

std::size_t
pickExtremeBy(const SchedContext &ctx, const double *key,
              double tie_eps, bool random_tiebreak, bool want_max)
{
    const auto &idle = *ctx.idle;
    if (idle.empty())
        panic("scheduler invoked with no idle sockets");

    double best = want_max ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
    for (std::size_t s : idle) {
        const double v = key[s];
        if (want_max ? v > best : v < best)
            best = v;
    }
    if (!random_tiebreak) {
        for (std::size_t s : idle) {
            const double v = key[s];
            if (want_max ? v >= best - tie_eps : v <= best + tie_eps)
                return s;
        }
        panic("tie scan found no candidate");
    }
    std::size_t n_ties = 0;
    for (std::size_t s : idle) {
        const double v = key[s];
        if (want_max ? v >= best - tie_eps : v <= best + tie_eps)
            ++n_ties;
    }
    std::size_t chosen = ctx.rng->nextBounded(n_ties);
    for (std::size_t s : idle) {
        const double v = key[s];
        if (want_max ? v >= best - tie_eps : v <= best + tie_eps) {
            if (chosen == 0)
                return s;
            --chosen;
        }
    }
    panic("random tie-break fell through");
}

} // namespace

void
Scheduler::attachObs(obs::Registry &registry)
{
    picks_ = &registry.counter(std::string("sched.") + name() +
                               ".picks");
}

std::size_t
pickMinBy(const SchedContext &ctx, const double *key, double tie_eps,
          bool random_tiebreak)
{
    return pickExtremeBy(ctx, key, tie_eps, random_tiebreak, false);
}

std::size_t
pickMaxBy(const SchedContext &ctx, const double *key, double tie_eps,
          bool random_tiebreak)
{
    return pickExtremeBy(ctx, key, tie_eps, random_tiebreak, true);
}

} // namespace densim
