#include "thermal/simple_peak_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace densim {

SimplePeakModel::SimplePeakModel(KelvinPerWatt r_int) : rInt_(r_int)
{
    if (rInt_.value() <= 0.0)
        fatal("SimplePeakModel: R_int must be positive, got ",
              rInt_.value());
}

Celsius
SimplePeakModel::peak(Celsius t_amb, Watts power,
                      const HeatSink &sink) const
{
    if (power.value() < 0.0)
        fatal("SimplePeakModel::peak: negative power ", power.value());
    return t_amb + power * (rInt_ + sink.rExt) + sink.theta(power);
}

Watts
SimplePeakModel::maxPower(Celsius t_limit, Celsius t_amb,
                          const HeatSink &sink) const
{
    // T_limit = T_amb + P (R_int + R_ext) + c0 + c1 P
    const KelvinPerWatt slope = rInt_ + sink.rExt + sink.theta.c1;
    if (slope.value() <= 0.0)
        panic("Eq. (1) slope non-positive for sink ", sink.name);
    const Watts p = (t_limit - t_amb - sink.theta.c0) / slope;
    return std::max(p, Watts(0.0));
}

Celsius
SimplePeakModel::maxAmbient(Celsius t_limit, Watts power,
                            const HeatSink &sink) const
{
    return t_limit - power * (rInt_ + sink.rExt) - sink.theta(power);
}

} // namespace densim
