#include "core/config_io.hh"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace densim {

namespace {

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

double
parseDouble(const std::string &key, const std::string &value)
{
    std::size_t used = 0;
    double out = 0.0;
    try {
        out = std::stod(value, &used);
    } catch (const std::exception &) {
        fatal("config: cannot parse '", value, "' for key '", key,
              "'");
    }
    if (used != value.size())
        fatal("config: trailing junk in '", value, "' for key '", key,
              "'");
    return out;
}

int
parseInt(const std::string &key, const std::string &value)
{
    const double d = parseDouble(key, value);
    const int i = static_cast<int>(d);
    if (static_cast<double>(i) != d)
        fatal("config: key '", key, "' needs an integer, got '", value,
              "'");
    return i;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    fatal("config: key '", key, "' needs a boolean, got '", value,
          "'");
}

WorkloadSet
parseWorkload(const std::string &key, const std::string &value)
{
    for (WorkloadSet set : allWorkloadSets()) {
        if (value == workloadSetName(set))
            return set;
    }
    fatal("config: key '", key, "' needs one of Computation/GP/"
          "Storage, got '",
          value, "'");
}

/** One settable key: apply and serialize. */
struct KeyOps
{
    std::function<void(SimConfig &, const std::string &,
                       const std::string &)>
        apply;
    std::function<std::string(const SimConfig &)> print;
};

const std::map<std::string, KeyOps> &
keyTable()
{
    auto dbl = [](double SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.*field;
                return os.str();
            },
        };
    };
    auto intf = [](int SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) { c.*field = parseInt(k, v); },
            [field](const SimConfig &c) {
                return std::to_string(c.*field);
            },
        };
    };
    auto boolf = [](bool SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.*field = parseBool(k, v);
            },
            [field](const SimConfig &c) {
                return c.*field ? "true" : "false";
            },
        };
    };
    auto topo_int = [](int TopologySpec::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.topo.*field = parseInt(k, v);
            },
            [field](const SimConfig &c) {
                return std::to_string(c.topo.*field);
            },
        };
    };
    auto topo_dbl = [](double TopologySpec::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.topo.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.topo.*field;
                return os.str();
            },
        };
    };
    auto strf = [](std::string SimConfig::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &,
                    const std::string &v) { c.*field = v; },
            [field](const SimConfig &c) { return c.*field; },
        };
    };
    auto coup_dbl = [](double CouplingParams::*field) {
        return KeyOps{
            [field](SimConfig &c, const std::string &k,
                    const std::string &v) {
                c.coupling.*field = parseDouble(k, v);
            },
            [field](const SimConfig &c) {
                std::ostringstream os;
                os << c.coupling.*field;
                return os.str();
            },
        };
    };

    static const std::map<std::string, KeyOps> table{
        {"workload",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.workload = parseWorkload(k, v);
          },
          [](const SimConfig &c) {
              return std::string(workloadSetName(c.workload));
          }}},
        {"load", dbl(&SimConfig::load)},
        {"simTimeS", dbl(&SimConfig::simTimeS)},
        {"warmupS", dbl(&SimConfig::warmupS)},
        {"drainFactor", dbl(&SimConfig::drainFactor)},
        {"pmEpochS", dbl(&SimConfig::pmEpochS)},
        {"chipTauS", dbl(&SimConfig::chipTauS)},
        {"socketTauS", dbl(&SimConfig::socketTauS)},
        {"histTauS", dbl(&SimConfig::histTauS)},
        {"tLimitC", dbl(&SimConfig::tLimitC)},
        {"rIntCW", dbl(&SimConfig::rIntCW)},
        {"gatedFracTdp", dbl(&SimConfig::gatedFracTdp)},
        {"boostRefillRate", dbl(&SimConfig::boostRefillRate)},
        {"boostBurstS", dbl(&SimConfig::boostBurstS)},
        {"migrationEnabled", boolf(&SimConfig::migrationEnabled)},
        {"migrationIntervalS", dbl(&SimConfig::migrationIntervalS)},
        {"migrationCostS", dbl(&SimConfig::migrationCostS)},
        {"migrationMinRemainingS",
         dbl(&SimConfig::migrationMinRemainingS)},
        {"migrationMaxPerPass", intf(&SimConfig::migrationMaxPerPass)},
        {"fanPowerW", dbl(&SimConfig::fanPowerW)},
        {"sensorNoiseC", dbl(&SimConfig::sensorNoiseC)},
        {"sensorQuantC", dbl(&SimConfig::sensorQuantC)},
        {"timelineSampleS", dbl(&SimConfig::timelineSampleS)},
        {"obs.tracePath", strf(&SimConfig::obsTracePath)},
        {"obs.timelinePath", strf(&SimConfig::obsTimelinePath)},
        {"incrementalThermal", boolf(&SimConfig::incrementalThermal)},
        {"dvfsMemoQuantC", dbl(&SimConfig::dvfsMemoQuantC)},
        {"warmStart", boolf(&SimConfig::warmStart)},
        {"seed",
         {[](SimConfig &c, const std::string &k, const std::string &v) {
              c.seed = static_cast<std::uint64_t>(parseDouble(k, v));
          },
          [](const SimConfig &c) { return std::to_string(c.seed); }}},
        {"topo.rows", topo_int(&TopologySpec::rows)},
        {"topo.cartridgesPerRow",
         topo_int(&TopologySpec::cartridgesPerRow)},
        {"topo.zonesPerCartridge",
         topo_int(&TopologySpec::zonesPerCartridge)},
        {"topo.socketsPerZone", topo_int(&TopologySpec::socketsPerZone)},
        {"topo.intraZoneSpacingInch",
         topo_dbl(&TopologySpec::intraZoneSpacingInch)},
        {"topo.interCartridgeGapInch",
         topo_dbl(&TopologySpec::interCartridgeGapInch)},
        {"topo.perSocketCfm", topo_dbl(&TopologySpec::perSocketCfm)},
        {"topo.inletC", topo_dbl(&TopologySpec::inletC)},
        {"coupling.mixFactor", coup_dbl(&CouplingParams::mixFactor)},
        {"coupling.decayLengthInch",
         coup_dbl(&CouplingParams::decayLengthInch)},
        {"coupling.wakeFactor", coup_dbl(&CouplingParams::wakeFactor)},
        {"coupling.kappaLocal", coup_dbl(&CouplingParams::kappaLocal)},
        {"coupling.verticalLeak",
         coup_dbl(&CouplingParams::verticalLeak)},
    };
    return table;
}

} // namespace

void
applyConfigKey(SimConfig &config, const std::string &key,
               const std::string &value)
{
    const std::string k = trim(key);
    const auto it = keyTable().find(k);
    if (it == keyTable().end())
        fatal("config: unknown key '", k, "'");
    it->second.apply(config, k, trim(value));
}

void
loadConfig(SimConfig &config, std::istream &in)
{
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string body = trim(line);
        if (body.empty())
            continue;
        const auto eq = body.find('=');
        if (eq == std::string::npos)
            fatal("config: line ", lineno, " is not 'key = value': '",
                  body, "'");
        applyConfigKey(config, body.substr(0, eq), body.substr(eq + 1));
    }
}

void
loadConfigFile(SimConfig &config, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open '", path, "'");
    loadConfig(config, in);
}

std::string
saveConfig(const SimConfig &config)
{
    std::ostringstream os;
    os << "# densim simulation configuration\n";
    for (const auto &[key, ops] : keyTable())
        os << key << " = " << ops.print(config) << "\n";
    return os.str();
}

} // namespace densim
