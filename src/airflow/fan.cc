#include "airflow/fan.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace densim {

Fan::Fan(FanSpec spec, int count) : spec_(std::move(spec)), count_(count)
{
    if (count_ < 1)
        fatal("Fan bank needs at least one unit, got ", count_);
    if (spec_.maxCfm <= 0.0 || spec_.maxPowerW <= 0.0)
        fatal("Fan spec '", spec_.name, "' has non-positive capacity");
    if (spec_.pressureDerate <= 0.0 || spec_.pressureDerate > 1.0)
        fatal("Fan spec '", spec_.name, "' pressure derate ",
              spec_.pressureDerate, " outside (0, 1]");
    if (spec_.minSpeedFrac < 0.0 || spec_.minSpeedFrac > 1.0)
        fatal("Fan spec '", spec_.name, "' min speed fraction ",
              spec_.minSpeedFrac, " outside [0, 1]");
}

FanSpec
Fan::activeCoolSpec()
{
    // The HP BladeSystem Active Cool story [29] describes ~100 CFM
    // class fans; a 4U Moonshot-class chassis uses a bank of five to
    // deliver the 400 CFM server total of Table III against dense
    // cartridge back-pressure.
    return FanSpec{"ActiveCool", 100.0, 35.0, 0.15, 0.80};
}

double
Fan::deliveredCfm(double s) const
{
    s = std::clamp(s, 0.0, 1.0);
    return spec_.maxCfm * spec_.pressureDerate * s * count_;
}

double
Fan::electricalPowerW(double s) const
{
    s = std::clamp(s, 0.0, 1.0);
    return spec_.maxPowerW * s * s * s * count_;
}

double
Fan::speedForCfm(double cfm) const
{
    if (cfm < 0.0)
        fatal("Fan::speedForCfm: negative airflow ", cfm);
    const double cap = maxDeliveredCfm();
    if (cfm > cap)
        fatal("Fan bank '", spec_.name, "' cannot deliver ", cfm,
              " CFM (capacity ", cap, ")");
    const double s = cfm / cap;
    return std::max(s, spec_.minSpeedFrac);
}

double
Fan::powerForCfm(double cfm) const
{
    return electricalPowerW(speedForCfm(cfm));
}

double
Fan::maxDeliveredCfm() const
{
    return spec_.maxCfm * spec_.pressureDerate * count_;
}

} // namespace densim
