/**
 * @file
 * Summary statistics used throughout densim: running (Welford)
 * accumulators, coefficient of variation, percentiles, and fixed-bin
 * histograms. The paper reports means, coefficients of variation
 * (Figs. 5b, 6b) and distribution tails (Fig. 6a), so these are core
 * reporting primitives rather than test-only helpers.
 */

#ifndef DENSIM_UTIL_STATS_HH
#define DENSIM_UTIL_STATS_HH

#include <cstddef>
#include <optional>
#include <vector>

namespace densim {

/**
 * Single-pass mean/variance/min/max accumulator (Welford's method).
 * Numerically stable for long simulations accumulating millions of
 * per-job samples.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    /** Number of samples seen. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Coefficient of variation: stddev / mean (0 when mean is 0). */
    double cov() const;

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Smallest sample (+inf when empty). */
    double min() const;

    /** Largest sample (-inf when empty). */
    double max() const;

    /**
     * Raw accumulator words for checkpoint/restore. Welford state is
     * order-sensitive (mean_/m2_ carry the exact FP history of every
     * add()), so resume must reload these bits verbatim rather than
     * replay samples.
     */
    struct Snapshot
    {
        std::size_t count; //!< Samples seen.
        double mean;       //!< Running mean (raw, 0.0 when empty).
        double m2;         //!< Sum of squared deviations.
        double min;        //!< Raw min word (0.0 when empty).
        double max;        //!< Raw max word (0.0 when empty).
    };

    /** Capture the raw accumulator state. */
    Snapshot snapshot() const
    {
        return Snapshot{count_, mean_, m2_, min_, max_};
    }

    /** Reload a previously captured accumulator state verbatim. */
    void restore(const Snapshot &snap)
    {
        count_ = snap.count;
        mean_ = snap.mean;
        m2_ = snap.m2;
        min_ = snap.min;
        max_ = snap.max;
    }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Mean of a sample vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a sample vector. */
double stddev(const std::vector<double> &xs);

/**
 * Coefficient of variation of a sample vector, the paper's measure of
 * spread in Fig. 5(b) and Fig. 6(b): stddev / mean.
 */
double coefficientOfVariation(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100]. The input need not be
 * sorted; a sorted copy is made. An empty sample panic()s — use this
 * where emptiness is a programmer error; reporting paths that may
 * legitimately see zero samples (e.g. a run that completed no jobs)
 * should call tryPercentile() instead.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Total variant of percentile(): std::nullopt on an empty sample
 * instead of a panic (p outside [0, 100] still panics — that is
 * always a programmer error).
 */
std::optional<double> tryPercentile(std::vector<double> xs, double p);

/**
 * Fixed-width-bin histogram over [lo, hi); samples outside the range
 * are clamped into the edge bins.
 */
class Histogram
{
  public:
    /** Create a histogram with @p bins bins spanning [lo, hi). */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const;

    /** Inclusive lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total number of samples added. */
    std::size_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace densim

#endif // DENSIM_UTIL_STATS_HH
