#include "sched/random_sched.hh"

namespace densim {

std::size_t
RandomSched::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    const auto &idle = *ctx.idle;
    return idle[ctx.rng->nextBounded(idle.size())];
}

} // namespace densim
