// Ill-formed: adding a dimensionless double to a power silently drops
// the unit check; wrap the raw value or use .value() deliberately.
#include "core/units.hh"

int
main()
{
    const densim::Watts p(10.0);
    return (p + 2.2).value() > 0.0 ? 0 : 1;
}
