/**
 * @file
 * Tests for fleet-scale sharded simulation (DESIGN.md Sec. 15): the
 * engine's streamed run is bit-identical to its one-shot run, a
 * 16-chassis fleet is bit-identical across worker-thread counts,
 * dispatchers are invariant to summary permutation, degenerate fleet
 * configs behave, and the RNG domain separation holds.
 */

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "fleet/fleet_dispatcher.hh"
#include "fleet/fleet_metrics.hh"
#include "fleet/fleet_sim.hh"
#include "sched/factory.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace densim {
namespace {

SimConfig
fastConfig()
{
    SimConfig config;
    config.topo.rows = 2;
    config.simTimeS = 0.6;
    config.warmupS = 0.1;
    config.socketTauS = 0.5;
    config.seed = 11;
    return config;
}

SimConfig
fleetConfig(std::size_t chassis)
{
    SimConfig config = fastConfig();
    config.fleet.chassis = chassis;
    return config;
}

// ------------------------------------------------- streamed engine

TEST(StreamedRun, MatchesOneShotRunBitExactly)
{
    SimConfig config = fastConfig();
    JobGenerator gen(config.workload, config.load, 24, config.seed);
    const std::vector<Job> jobs = gen.generateUntil(config.simTimeS);
    ASSERT_FALSE(jobs.empty());

    DenseServerSim oneShot(config, makeScheduler("CP"));
    const SimMetrics expected = oneShot.run(jobs);

    // Same arrivals streamed in several batches, epochs advanced by
    // hand — every accumulator must land on the same bits.
    DenseServerSim streamed(config, makeScheduler("CP"));
    streamed.beginRun();
    const std::size_t third = jobs.size() / 3;
    streamed.submitJobs(
        {jobs.begin(), jobs.begin() + static_cast<long>(third)});
    streamed.submitJobs({jobs.begin() + static_cast<long>(third),
                         jobs.begin() + static_cast<long>(2 * third)});
    streamed.submitJobs(
        {jobs.begin() + static_cast<long>(2 * third), jobs.end()});
    streamed.closeArrivals();
    while (streamed.epochPending())
        streamed.advanceEpoch();
    const SimMetrics actual = streamed.finishRun();

    EXPECT_EQ(expected.jobsArrived, actual.jobsArrived);
    EXPECT_EQ(expected.jobsCompleted, actual.jobsCompleted);
    EXPECT_EQ(expected.jobsUnfinished, actual.jobsUnfinished);
    EXPECT_EQ(expected.energyJ, actual.energyJ);
    EXPECT_EQ(expected.makespanS, actual.makespanS);
    EXPECT_EQ(expected.measuredS, actual.measuredS);
    EXPECT_EQ(expected.maxChipTempC, actual.maxChipTempC);
    EXPECT_EQ(expected.totalWork, actual.totalWork);
    EXPECT_EQ(expected.totalBusyTime, actual.totalBusyTime);
    EXPECT_EQ(expected.runtimeExpansion.mean(),
              actual.runtimeExpansion.mean());
    EXPECT_EQ(expected.runtimeExpansion.count(),
              actual.runtimeExpansion.count());
    EXPECT_EQ(expected.queueDelayS.mean(), actual.queueDelayS.mean());
    EXPECT_EQ(expected.chipTempC.mean(), actual.chipTempC.mean());
}

TEST(StreamedRun, SubmitAfterCloseIsFatal)
{
    DenseServerSim sim(fastConfig(), makeScheduler("CP"));
    sim.beginRun();
    sim.closeArrivals();
    ScopedFatalThrows guard;
    EXPECT_THROW(sim.submitJobs({}), FatalError);
}

TEST(StreamedRun, OutOfOrderArrivalsAreFatal)
{
    DenseServerSim sim(fastConfig(), makeScheduler("CP"));
    sim.beginRun();
    Job early{};
    early.arrivalS = 0.1;
    early.nominalS = 0.01;
    Job late = early;
    late.arrivalS = 0.2;
    sim.submitJobs({late});
    ScopedFatalThrows guard;
    EXPECT_THROW(sim.submitJobs({early}), FatalError);
}

// ------------------------------------------------- fleet determinism

TEST(FleetSim, SixteenChassisBitIdenticalAcrossWorkerCounts)
{
    const SimConfig config = fleetConfig(16);

    FleetSim serial(config, "CP");
    const std::string oneWorker =
        serializeFleetMetrics(serial.run(1));

    FleetSim parallel4(config, "CP");
    const std::string fourWorkers =
        serializeFleetMetrics(parallel4.run(4));

    EXPECT_EQ(oneWorker, fourWorkers);
}

TEST(FleetSim, RoundRobinDispatcherAlsoBitIdentical)
{
    SimConfig config = fleetConfig(5);
    config.fleet.dispatcher = "roundrobin";

    FleetSim serial(config, "CP");
    const std::string oneWorker =
        serializeFleetMetrics(serial.run(1));

    FleetSim parallel3(config, "CP");
    const std::string threeWorkers =
        serializeFleetMetrics(parallel3.run(3));

    EXPECT_EQ(oneWorker, threeWorkers);
}

TEST(FleetSim, EveryArrivalIsDispatchedAndAccounted)
{
    FleetSim fleet(fleetConfig(4), "CP");
    const FleetMetrics m = fleet.run(2);

    EXPECT_EQ(m.chassis, 4u);
    EXPECT_GT(m.jobsArrived, 0u);
    EXPECT_EQ(m.jobsArrived, m.jobsDispatched);
    std::uint64_t dispatched = 0;
    std::size_t arrived = 0;
    for (std::size_t s = 0; s < 4; ++s) {
        dispatched += m.dispatchedPerShard[s];
        arrived += m.perShard[s].jobsArrived;
    }
    EXPECT_EQ(dispatched, m.jobsDispatched);
    EXPECT_EQ(arrived, m.jobsDispatched);
    // The fleet drains: everything dispatched either completed
    // (possibly during warmup, uncounted) or is reported unfinished.
    EXPECT_EQ(m.jobsUnfinished, 0u);
}

// ------------------------------------------------- degenerate configs

TEST(FleetSim, ZeroChassisConfigIsRejected)
{
    ScopedFatalThrows guard;
    EXPECT_THROW(FleetSim(fleetConfig(0), "CP"), FatalError);
}

TEST(FleetSim, SingleChassisFleetRoutesEverythingToShardZero)
{
    FleetSim fleet(fleetConfig(1), "CP");
    const FleetMetrics m = fleet.run(2);
    EXPECT_EQ(m.chassis, 1u);
    EXPECT_GT(m.jobsDispatched, 0u);
    EXPECT_EQ(m.dispatchedPerShard[0], m.jobsDispatched);
    EXPECT_EQ(m.jobsCompleted, m.perShard[0].jobsCompleted);
}

TEST(FleetSim, NonIntegralExchangeWindowIsRejected)
{
    SimConfig config = fleetConfig(2);
    config.fleet.epochS = 0.0015; // 1.5 pm epochs — not integral.
    ScopedFatalThrows guard;
    EXPECT_THROW(config.validate(), FatalError);
}

TEST(FleetSim, UnknownDispatcherIsRejected)
{
    SimConfig config = fleetConfig(2);
    config.fleet.dispatcher = "warmest";
    ScopedFatalThrows guard;
    EXPECT_THROW(config.validate(), FatalError);
}

// ------------------------------------------------- dispatchers

std::vector<ShardSummary>
exampleSummaries()
{
    // Shard 1: idle + most headroom; shard 0: idle, less headroom;
    // shard 2: busy but cold; shard 3: busy and hot.
    ShardSummary s0{0, 20.0, 900.0, 3, 2, 10};
    ShardSummary s1{1, 35.0, 400.0, 1, 5, 12};
    ShardSummary s2{2, 50.0, 200.0, 24, 0, 7};
    ShardSummary s3{3, 5.0, 1200.0, 30, 0, 9};
    return {s0, s1, s2, s3};
}

TEST(FleetDispatcher, PicksAreInvariantToSummaryPermutation)
{
    Job job{};
    FleetConfig config;
    config.chassis = 4;
    config.powerBudgetW = 2000.0;
    for (const std::string &name : knownFleetDispatchers()) {
        config.dispatcher = name;
        auto reference = makeFleetDispatcher(config);
        auto shuffled = makeFleetDispatcher(config);
        std::vector<ShardSummary> summaries = exampleSummaries();
        std::vector<ShardSummary> reversed(summaries.rbegin(),
                                           summaries.rend());
        // Drive both instances through the same pick sequence (the
        // roundrobin/locality policies are stateful) — every step
        // must agree regardless of summary order.
        for (int step = 0; step < 12; ++step) {
            EXPECT_EQ(reference->pick(job, summaries),
                      shuffled->pick(job, reversed))
                << "dispatcher " << name << " step " << step;
        }
    }
}

TEST(FleetDispatcher, HeadroomPrefersIdleShardWithMostHeadroom)
{
    FleetConfig config;
    config.chassis = 4;
    auto dispatcher = makeFleetDispatcher(config);
    Job job{};
    // Shard 1 idles with 35 C headroom; shard 2 has 50 C but no
    // idle socket.
    EXPECT_EQ(dispatcher->pick(job, exampleSummaries()), 1u);
}

TEST(FleetDispatcher, PowerRespectsBudgetFairShare)
{
    FleetConfig config;
    config.chassis = 4;
    config.dispatcher = "power";
    config.powerBudgetW = 2000.0; // Fair share: 500 W.
    auto dispatcher = makeFleetDispatcher(config);
    Job job{};
    // Shard 2 draws least (200 W) and is under its share.
    EXPECT_EQ(dispatcher->pick(job, exampleSummaries()), 2u);

    // With every shard over its share the least-loaded one still
    // absorbs the job — the budget shapes routing, never drops work.
    FleetConfig tight = config;
    tight.powerBudgetW = 100.0;
    auto strict = makeFleetDispatcher(tight);
    EXPECT_EQ(strict->pick(job, exampleSummaries()), 2u);
}

TEST(FleetDispatcher, RoundRobinCyclesByShardId)
{
    FleetConfig config;
    config.chassis = 4;
    config.dispatcher = "roundrobin";
    auto dispatcher = makeFleetDispatcher(config);
    Job job{};
    const auto summaries = exampleSummaries();
    for (std::size_t k = 0; k < 8; ++k)
        EXPECT_EQ(dispatcher->pick(job, summaries), k % 4);
}

// ------------------------------------------------- RNG domain separation

TEST(DomainSeed, CoordinatesAreSeparated)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t seed = 0; seed < 4; ++seed)
        for (std::uint64_t shard = 0; shard < 8; ++shard)
            for (std::uint64_t tag = 0; tag < 4; ++tag)
                seen.insert(domainSeed(seed, shard, tag));
    EXPECT_EQ(seen.size(), 4u * 8u * 4u);

    // Unlike xor-stream derivation, folding the same value into a
    // different coordinate yields an unrelated seed.
    EXPECT_NE(domainSeed(7, 3, 0), domainSeed(7, 0, 3));
    EXPECT_NE(domainSeed(7, 3, 0), domainSeed(3, 7, 0));
}

TEST(DomainSeed, ShardStreamsCannotAliasFaultStreams)
{
    // The per-shard engine seed and the engine's xor-derived fault
    // stream seed for every shard must be pairwise distinct.
    const SimConfig config = fleetConfig(16);
    const std::uint64_t fleetSeed =
        config.fleet.effectiveSeed(config.seed);
    std::set<std::uint64_t> seeds;
    for (std::uint64_t shard = 0; shard < 16; ++shard) {
        const std::uint64_t engine = domainSeed(
            fleetSeed, shard, fleet_stream::kShardEngine);
        const std::uint64_t fault =
            config.fault.effectiveSeed(engine) ^
            0x0badcab1efa57f00ULL;
        EXPECT_TRUE(seeds.insert(engine).second);
        EXPECT_TRUE(seeds.insert(fault).second);
    }
    EXPECT_EQ(seeds.size(), 32u);
}

} // namespace
} // namespace densim
