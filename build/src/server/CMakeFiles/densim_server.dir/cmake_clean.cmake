file(REMOVE_RECURSE
  "CMakeFiles/densim_server.dir/catalog.cc.o"
  "CMakeFiles/densim_server.dir/catalog.cc.o.d"
  "CMakeFiles/densim_server.dir/sut.cc.o"
  "CMakeFiles/densim_server.dir/sut.cc.o.d"
  "CMakeFiles/densim_server.dir/topology.cc.o"
  "CMakeFiles/densim_server.dir/topology.cc.o.d"
  "libdensim_server.a"
  "libdensim_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
