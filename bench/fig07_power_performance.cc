/**
 * @file
 * Figure 7 — (a) workload power at 90 C versus frequency, and
 * (b) relative performance versus frequency, per benchmark set.
 *
 * Paper shapes: Computation draws the most power (18 W at 1900 MHz)
 * and is the most frequency sensitive (-35% at -800 MHz); Storage the
 * least on both axes (10.5 W, nearly flat); GP intermediate.
 */

#include <iostream>

#include "power/pstate.hh"
#include "util/table.hh"
#include "workload/benchmark.hh"
#include "workload/curves.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figure 7: power and performance vs frequency "
                 "===\n\n";

    const auto &table = PStateTable::x2150();

    TableWriter power({"Freq (MHz)", "Computation (W)", "GP (W)",
                       "Storage (W)"});
    TableWriter perf({"Freq (MHz)", "Computation", "GP", "Storage"});
    for (std::size_t i = 0; i < table.size(); ++i) {
        const double f = table.at(i).freqMhz;
        power.newRow()
            .cell(f, 0)
            .cell(freqCurveFor(WorkloadSet::Computation)
                      .totalPowerAt90C[i],
                  1)
            .cell(freqCurveFor(WorkloadSet::GeneralPurpose)
                      .totalPowerAt90C[i],
                  1)
            .cell(freqCurveFor(WorkloadSet::Storage).totalPowerAt90C[i],
                  1);
        perf.newRow()
            .cell(f, 0)
            .cell(perfAtFreq(WorkloadSet::Computation, f), 3)
            .cell(perfAtFreq(WorkloadSet::GeneralPurpose, f), 3)
            .cell(perfAtFreq(WorkloadSet::Storage, f), 3);
    }

    std::cout << "(a) Total socket power at 90 C:\n";
    power.print(std::cout);
    std::cout << "\n(b) Performance relative to 1900 MHz:\n";
    perf.print(std::cout);
    std::cout << "\nComputation loses "
              << formatFixed(
                     100 * (1 - perfAtFreq(WorkloadSet::Computation,
                                           1100.0)),
                     0)
              << "% over an 800 MHz drop (paper: ~35%)\n";
    return 0;
}
