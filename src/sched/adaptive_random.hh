/**
 * @file
 * Adaptive-Random (A-Random) [54] (Sec. IV-A): a CF variant with
 * memory. Among the idle sockets whose instantaneous temperature is
 * within a small band of the minimum, restrict further to those whose
 * *historical* (exponentially averaged) temperature is near-minimal —
 * weeding out locations that are consistently hot — and pick randomly
 * within that set.
 */

#ifndef DENSIM_SCHED_ADAPTIVE_RANDOM_HH
#define DENSIM_SCHED_ADAPTIVE_RANDOM_HH

#include "sched/scheduler.hh"

namespace densim {

/** Adaptive-random policy. */
class AdaptiveRandom : public Scheduler
{
  public:
    /**
     * @param band Temperature band counted as a tie for both the
     *        instantaneous and historical filters.
     */
    explicit AdaptiveRandom(CelsiusDelta band = CelsiusDelta(1.0));

    const char *name() const override { return "A-Random"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;

  private:
    double bandC_;
};

} // namespace densim

#endif // DENSIM_SCHED_ADAPTIVE_RANDOM_HH
