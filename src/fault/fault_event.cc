#include "fault/fault_event.hh"

namespace densim {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::FanDerate:
        return "fanDerate";
    case FaultKind::FanRestore:
        return "fanRestore";
    case FaultKind::SensorStuck:
        return "sensorStuck";
    case FaultKind::SensorNoisy:
        return "sensorNoisy";
    case FaultKind::SensorDropout:
        return "sensorDropout";
    case FaultKind::SensorRestore:
        return "sensorRestore";
    case FaultKind::SocketFail:
        return "socketFail";
    case FaultKind::SocketRecover:
        return "socketRecover";
    case FaultKind::AbortRun:
        return "abortRun";
    case FaultKind::EmergencyThrottle:
        return "emergencyThrottle";
    case FaultKind::ThrottleRelease:
        return "throttleRelease";
    case FaultKind::Quarantine:
        return "quarantine";
    case FaultKind::QuarantineExit:
        return "quarantineExit";
    case FaultKind::JobRequeue:
        return "jobRequeue";
    }
    return "unknown";
}

} // namespace densim
