/**
 * @file
 * Catalog of recently released density-optimized server systems —
 * the data of Table I, used by the Table I bench and by the design-
 * space helpers (socket density, degree of coupling).
 */

#ifndef DENSIM_SERVER_CATALOG_HH
#define DENSIM_SERVER_CATALOG_HH

#include <string>
#include <vector>

namespace densim {

/** One row of Table I. */
struct SystemRecord
{
    std::string organization; //!< Vendor.
    std::string system;       //!< Family name.
    std::string details;      //!< Specific product.
    std::string domain;       //!< Application domain.
    int dimensionsU;          //!< Chassis height in rack units.
    std::string organization2; //!< Physical organization string.
    int totalSockets;         //!< Sockets in the chassis.
    double socketTdpW;        //!< Per-socket TDP.
    std::string cpu;          //!< Processor used.
    int degreeOfCoupling;     //!< Sockets sharing one airflow path.

    /** Sockets per rack unit. */
    double socketsPerU() const
    {
        return static_cast<double>(totalSockets) / dimensionsU;
    }
};

/** The eleven systems of Table I, in the paper's order. */
const std::vector<SystemRecord> &densityOptimizedSystems();

/** Largest degree of coupling across the catalog (Redstone: 11). */
int maxCatalogCoupling();

} // namespace densim

#endif // DENSIM_SERVER_CATALOG_HH
