
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_kernels.cc" "bench/CMakeFiles/micro_kernels.dir/micro_kernels.cc.o" "gcc" "bench/CMakeFiles/micro_kernels.dir/micro_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/densim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/densim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/densim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/densim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/densim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/densim_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/airflow/CMakeFiles/densim_airflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/densim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
