#include "sched/coupling_predictor.hh"

#include <limits>

#include "sched/prediction.hh"
#include "util/logging.hh"

namespace densim {

CouplingPredictor::CouplingPredictor(double downstream_weight,
                                     bool global_search)
    : downstreamWeight_(downstream_weight), globalSearch_(global_search)
{
    if (downstreamWeight_ < 0.0)
        fatal("CouplingPredictor: downstream weight must be "
              "non-negative, got ",
              downstreamWeight_);
}

std::size_t
CouplingPredictor::pickWithin(const Job &job, const SchedContext &ctx,
                              const std::vector<std::size_t> &candidates)
{
    double best_score = -std::numeric_limits<double>::infinity();
    double best_peak = std::numeric_limits<double>::infinity();
    std::size_t best = candidates[0];
    std::size_t n_best = 0;
    for (std::size_t s : candidates) {
        const DvfsDecision d = predictPlacement(ctx, s, job.set);
        const double penalty =
            downstreamWeight_ == 0.0
                ? 0.0
                : downstreamWeight_ *
                      downstreamPenaltyMhz(ctx, s, d.power);
        const double score = d.freqMhz - penalty;
        // Primary: net frequency benefit. Secondary: most thermal
        // headroom (the placement keeps its frequency longest).
        // Remaining ties: uniform random.
        const double peak_c = d.predictedPeak.value();
        if (score > best_score + 1e-9 ||
            (score > best_score - 1e-9 &&
             peak_c < best_peak - 1e-9)) {
            best_score = score;
            best_peak = peak_c;
            best = s;
            n_best = 1;
        } else if (score > best_score - 1e-9 &&
                   peak_c < best_peak + 1e-9) {
            ++n_best;
            if (ctx.rng->nextBounded(n_best) == 0)
                best = s;
        }
    }
    return best;
}

std::size_t
CouplingPredictor::pick(const Job &job, const SchedContext &ctx)
{
    if (globalSearch_)
        return pickWithin(job, ctx, *ctx.idle);

    // Paper mechanics: choose a row with idle sockets at random, then
    // evaluate only that row's idle sockets.
    const auto &idle = *ctx.idle;
    std::vector<int> rows;
    rows.reserve(8);
    int last_row = -1;
    for (std::size_t s : idle) {
        const int row = ctx.topo->rowOf(s);
        if (row != last_row) {
            // Idle ids ascend, so sockets of one row are contiguous.
            rows.push_back(row);
            last_row = row;
        }
    }
    const int row = rows[ctx.rng->nextBounded(rows.size())];

    std::vector<std::size_t> candidates;
    candidates.reserve(ctx.topo->socketsPerRow());
    for (std::size_t s : idle) {
        if (ctx.topo->rowOf(s) == row)
            candidates.push_back(s);
    }
    if (candidates.empty())
        panic("CP: selected row has no idle sockets");
    return pickWithin(job, ctx, candidates);
}

} // namespace densim
