file(REMOVE_RECURSE
  "libdensim_sched.a"
)
