/**
 * @file
 * Tests for configuration and metrics I/O: key application, file
 * round-trips, error handling, JSON/CSV export.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "core/config_io.hh"
#include "core/dense_server_sim.hh"
#include "core/metrics_io.hh"
#include "sched/factory.hh"

namespace densim {
namespace {

TEST(ConfigIo, AppliesScalarKeys)
{
    SimConfig config;
    applyConfigKey(config, "load", "0.75");
    applyConfigKey(config, "seed", "99");
    applyConfigKey(config, "tLimitC", "90");
    EXPECT_DOUBLE_EQ(config.load, 0.75);
    EXPECT_EQ(config.seed, 99u);
    EXPECT_DOUBLE_EQ(config.tLimitC, 90.0);
}

TEST(ConfigIo, AppliesNestedKeys)
{
    SimConfig config;
    applyConfigKey(config, "topo.rows", "5");
    applyConfigKey(config, "topo.inletC", "25.5");
    applyConfigKey(config, "coupling.wakeFactor", "2.0");
    EXPECT_EQ(config.topo.rows, 5);
    EXPECT_DOUBLE_EQ(config.topo.inletC, 25.5);
    EXPECT_DOUBLE_EQ(config.coupling.wakeFactor, 2.0);
}

TEST(ConfigIo, AppliesEnumAndBool)
{
    SimConfig config;
    applyConfigKey(config, "workload", "Storage");
    applyConfigKey(config, "migrationEnabled", "true");
    applyConfigKey(config, "warmStart", "no");
    EXPECT_EQ(config.workload, WorkloadSet::Storage);
    EXPECT_TRUE(config.migrationEnabled);
    EXPECT_FALSE(config.warmStart);
}

TEST(ConfigIo, UnknownKeyIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(applyConfigKey(config, "loda", "0.5"),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(ConfigIo, BadValueIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(applyConfigKey(config, "load", "fast"),
                ::testing::ExitedWithCode(1), "cannot parse");
    EXPECT_EXIT(applyConfigKey(config, "topo.rows", "2.5"),
                ::testing::ExitedWithCode(1), "integer");
    EXPECT_EXIT(applyConfigKey(config, "warmStart", "maybe"),
                ::testing::ExitedWithCode(1), "boolean");
}

TEST(ConfigIo, ParsesStreamWithCommentsAndBlanks)
{
    SimConfig config;
    std::stringstream in("# experiment\n\nload = 0.6  # mid\n"
                         "topo.rows = 4\nworkload = GP\n");
    loadConfig(config, in);
    EXPECT_DOUBLE_EQ(config.load, 0.6);
    EXPECT_EQ(config.topo.rows, 4);
    EXPECT_EQ(config.workload, WorkloadSet::GeneralPurpose);
}

TEST(ConfigIo, MalformedLineIsFatal)
{
    SimConfig config;
    std::stringstream in("load 0.6\n");
    EXPECT_EXIT(loadConfig(config, in), ::testing::ExitedWithCode(1),
                "key = value");
}

TEST(ConfigIo, SaveLoadRoundTrip)
{
    SimConfig config;
    config.load = 0.42;
    config.workload = WorkloadSet::Storage;
    config.topo.rows = 7;
    config.coupling.kappaLocal = 2.25;
    config.migrationEnabled = true;

    const std::string text = saveConfig(config);
    SimConfig loaded;
    std::stringstream in(text);
    loadConfig(loaded, in);
    EXPECT_DOUBLE_EQ(loaded.load, 0.42);
    EXPECT_EQ(loaded.workload, WorkloadSet::Storage);
    EXPECT_EQ(loaded.topo.rows, 7);
    EXPECT_DOUBLE_EQ(loaded.coupling.kappaLocal, 2.25);
    EXPECT_TRUE(loaded.migrationEnabled);
}

TEST(ConfigIo, SaveCoversEveryAppliedDefault)
{
    // Every key printed by saveConfig must be re-loadable.
    SimConfig config;
    const std::string text = saveConfig(config);
    SimConfig loaded;
    std::stringstream in(text);
    loadConfig(loaded, in); // would be fatal on any bad key
    EXPECT_DOUBLE_EQ(loaded.load, config.load);
    EXPECT_DOUBLE_EQ(loaded.socketTauS, config.socketTauS);
}

TEST(ConfigIo, UnknownKeySuggestsTheNearestKey)
{
    SimConfig config;
    EXPECT_EXIT(applyConfigKey(config, "socketTauX", "3"),
                ::testing::ExitedWithCode(1),
                "did you mean 'socketTauS'");
    EXPECT_EXIT(applyConfigKey(config, "fault.fanFails", "1"),
                ::testing::ExitedWithCode(1),
                "did you mean 'fault.fanFailS'");
}

TEST(ConfigIo, StreamErrorsCarryLineNumbers)
{
    {
        SimConfig config;
        std::stringstream in("load = 0.5\n\n# comment\nloda = 0.6\n");
        EXPECT_EXIT(loadConfig(config, in),
                    ::testing::ExitedWithCode(1),
                    "line 4: unknown key 'loda'");
    }
    {
        SimConfig config;
        std::stringstream in("load = 0.5\nseed = 1\nload = 0.6\n");
        EXPECT_EXIT(loadConfig(config, in),
                    ::testing::ExitedWithCode(1),
                    "line 3: duplicate key 'load' \\(first set at "
                    "line 1\\)");
    }
}

TEST(ConfigIo, FaultKeysRoundTrip)
{
    SimConfig config;
    applyConfigKey(config, "fault.fanFailS", "2.5");
    applyConfigKey(config, "fault.fanSpeedFrac", "0.25");
    applyConfigKey(config, "fault.sensorStuckCount", "3");
    applyConfigKey(config, "fault.dropoutPolicy", "conservative");
    applyConfigKey(config, "fault.seed", "12345678901234567");
    EXPECT_DOUBLE_EQ(config.fault.fanFailS, 2.5);
    EXPECT_EQ(config.fault.sensorStuckCount, 3);
    EXPECT_EQ(config.fault.dropoutPolicy,
              DropoutPolicy::Conservative);
    EXPECT_EQ(config.fault.seed, 12345678901234567ULL);
    EXPECT_TRUE(config.fault.enabled());

    const std::string text = saveConfig(config);
    SimConfig loaded;
    std::stringstream in(text);
    loadConfig(loaded, in);
    EXPECT_DOUBLE_EQ(loaded.fault.fanFailS, 2.5);
    EXPECT_DOUBLE_EQ(loaded.fault.fanSpeedFrac, 0.25);
    EXPECT_EQ(loaded.fault.sensorStuckCount, 3);
    EXPECT_EQ(loaded.fault.dropoutPolicy,
              DropoutPolicy::Conservative);
    EXPECT_EQ(loaded.fault.seed, 12345678901234567ULL);

    EXPECT_EXIT(
        applyConfigKey(config, "fault.dropoutPolicy", "optimistic"),
        ::testing::ExitedWithCode(1),
        "'lastGood' or 'conservative'");
}

TEST(ConfigIo, UnwritableSinkDirectoryIsFatalAtApplyTime)
{
    SimConfig config;
    EXPECT_EXIT(applyConfigKey(config, "obs.tracePath",
                               "/no/such/dir/trace.json"),
                ::testing::ExitedWithCode(1),
                "does not exist or is not writable");
    EXPECT_EXIT(applyConfigKey(config, "fault.logPath",
                               "/no/such/dir/faults.jsonl"),
                ::testing::ExitedWithCode(1),
                "does not exist or is not writable");
    // A writable directory is accepted.
    applyConfigKey(config, "obs.timelinePath",
                   testing::TempDir() + "timeline.jsonl");
}

TEST(MetricsIo, JsonContainsHeadlineFields)
{
    SimConfig config;
    config.topo.rows = 2;
    config.simTimeS = 0.5;
    config.warmupS = 0.1;
    config.socketTauS = 0.3;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    const std::string json = metricsToJson(m);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    for (const char *key :
         {"jobsCompleted", "runtimeExpansionMean", "energyJ", "ed2",
          "avgRelFreq", "workFront", "maxChipTempC", "migrations"}) {
        EXPECT_NE(json.find(std::string("\"") + key + "\":"),
                  std::string::npos)
            << key;
    }
}

TEST(MetricsIo, CsvRowMatchesHeaderArity)
{
    SimMetrics m;
    m.runtimeExpansion.add(1.0);
    const std::string header = metricsCsvHeader();
    const std::string row =
        metricsToCsvRow("CP", "Computation", 0.5, m);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(row.rfind("CP,Computation,0.5,", 0), 0u);
}

} // namespace
} // namespace densim
