/**
 * @file
 * densim-unseeded-entropy: flag wall-clock and ambient entropy in
 * engine code — rand/srand/time/clock/gettimeofday, std::
 * random_device, unseeded std random engines, std::chrono
 * *_clock::now(), and pointer keys in ordered containers (address
 * order is ASLR entropy). All randomness must flow through
 * explicitly seeded densim::Rng streams (DESIGN.md Sec. 13).
 */

#ifndef DENSIM_TOOLS_TIDY_UNSEEDED_ENTROPY_CHECK_HH
#define DENSIM_TOOLS_TIDY_UNSEEDED_ENTROPY_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace densim::tidy {

class UnseededEntropyCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder)
        override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult
                   &result) override;
};

} // namespace densim::tidy

#endif // DENSIM_TOOLS_TIDY_UNSEEDED_ENTROPY_CHECK_HH
