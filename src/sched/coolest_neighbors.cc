#include "sched/coolest_neighbors.hh"

#include <limits>

#include "util/logging.hh"

namespace densim {

std::size_t
CoolestNeighbors::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    const auto &topo = *ctx.topo;
    const double *temp = ctx.chipTempC;

    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = (*ctx.idle)[0];
    for (std::size_t s : *ctx.idle) {
        const int row = topo.rowOf(s);
        const int zone = topo.zoneIndexOf(s);
        double acc = 0.0;
        int count = 0;
        // A row's sockets are the contiguous range [base, base+per):
        // iterating indices directly avoids materializing the
        // socketsInRow() vector on every pick (densim-hot-effects).
        const std::size_t per =
            static_cast<std::size_t>(topo.socketsPerRow());
        const std::size_t base = static_cast<std::size_t>(row) * per;
        for (std::size_t other = base; other < base + per; ++other) {
            if (other == s)
                continue;
            const int dz = topo.zoneIndexOf(other) - zone;
            // Same-zone partner or directly adjacent zone.
            if (dz >= -1 && dz <= 1) {
                acc += temp[other];
                ++count;
            }
        }
        const double score =
            temp[s] + (count ? acc / count : 0.0);
        if (score < best_score) {
            best_score = score;
            best = s;
        }
    }
    return best;
}

} // namespace densim
