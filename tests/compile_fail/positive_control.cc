// Positive control: well-formed typed arithmetic must compile, or the
// harness cannot be trusted to mean anything when a case fails.
#include "core/units.hh"

int
main()
{
    using namespace densim;
    const Celsius amb(45.0);
    const Watts p(13.6);
    const KelvinPerWatt r(0.205 + 1.578);
    const Celsius peak = amb + p * r + CelsiusDelta(4.41);
    const CubicMetersPerSec si = toM3PerS(Cfm(6.35));
    const Joules e = p * Seconds(30.0);
    return (peak > amb && si.value() > 0.0 && e.value() > 0.0) ? 0 : 1;
}
