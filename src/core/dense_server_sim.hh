/**
 * @file
 * The dense-server simulator — the paper's overall model
 * (Sec. III-D) as an event-driven engine.
 *
 * Jobs arrive from a probabilistic model (or a captured trace) into a
 * FIFO queue served by a centralized controller. Whenever a job and
 * an idle socket coexist, the active scheduling policy picks the
 * socket (the paper's 1 µs polling is realized exactly: between job
 * arrivals and completions nothing observable changes, so polling at
 * event boundaries is equivalent — a test verifies this). Every 1 ms
 * the power manager sets each socket to the highest frequency whose
 * instantaneous Eq. (1) peak stays under 95 C and gates idle sockets
 * at 10 % TDP.
 *
 * Thermal state is split per Table III's two time constants:
 *  - the socket ambient field tracks the coupling-map steady state of
 *    the current power field with the 30 s socket time constant —
 *    this is what makes boost transiently available while a region
 *    of the server is still cool;
 *  - the chip's own Eq. (1) rise P * (R_int + R_ext) + theta tracks
 *    with the 5 ms chip time constant, i.e. effectively instantly at
 *    the 1 ms power-management epoch.
 * Peak chip temperature is ambient + chip rise, equal to Eq. (1) at
 * steady state.
 *
 * Within an epoch frequencies are constant, so job completions are
 * computed exactly (no time-step quantization of job lengths), and
 * energy/work integrals are accumulated piecewise between events.
 *
 * Engine hot paths are incremental rather than recompute-from-scratch
 * (see DESIGN.md "Performance architecture"): job completions come
 * from an indexed min-heap instead of a per-event socket scan, the
 * idle-socket list and the piecewise-integration sums are maintained
 * by delta updates, the ambient-target field is updated through
 * CouplingMap::applyPowerDelta for the sockets whose power actually
 * changed, and per-socket DVFS decisions are memoized on (workload
 * set, boost cap, ambient).
 */

#ifndef DENSIM_CORE_DENSE_SERVER_SIM_HH
#define DENSIM_CORE_DENSE_SERVER_SIM_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/dvfs_memo.hh"
#include "core/effects.hh"
#include "core/event_heap.hh"
#include "core/metrics.hh"
#include "core/sim_config.hh"
#include "fault/fault_state.hh"
#include "fault/fault_timeline.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "power/power_manager.hh"
#include "sched/prediction.hh"
#include "sched/scheduler.hh"
#include "server/topology.hh"
#include "thermal/coupling_map.hh"
#include "thermal/simple_peak_model.hh"
#include "thermal/transient.hh"
#include "util/arena.hh"
#include "util/rng.hh"
#include "workload/job_generator.hh"

namespace densim {

class CkptAccess; // Checkpoint serializer (src/ckpt), friend below.

/** One full simulation of a dense server under one policy. */
class DenseServerSim
{
  public:
    /** Build the server described by @p config under @p policy. */
    DenseServerSim(const SimConfig &config,
                   std::unique_ptr<Scheduler> policy);

    ~DenseServerSim();
    DenseServerSim(const DenseServerSim &) = delete;
    DenseServerSim &operator=(const DenseServerSim &) = delete;

    /** Generate the configured workload and run it. */
    SimMetrics run();

    /** Run a fixed job list (trace replay); arrivals must ascend. */
    SimMetrics run(const std::vector<Job> &jobs);

    // --- streaming (epoch-stepped) interface -------------------------
    // The one-shot run() entry points are implemented on top of these,
    // in the exact operation order of the historical monolithic loop,
    // so a streamed run is bit-identical to a one-shot run of the
    // same arrival sequence (pinned by the fleet suite). FleetSim
    // drives shards through this interface: submit the dispatcher's
    // arrivals for the next exchange window, advance epochs to the
    // barrier, exchange summaries, repeat.

    /** Reset and (optionally warm-)start a new streamed run. */
    void beginRun();

    /**
     * Append arrivals to the open run. Must ascend within the batch
     * and from batch to batch; may be called any time between
     * beginRun() and closeArrivals(). The consumed prefix of the
     * backlog is compacted periodically, so a long-running fleet
     * shard holds O(outstanding), not O(history), jobs.
     */
    void submitJobs(const std::vector<Job> &jobs);

    /**
     * Declare that no further submitJobs() calls will follow. Until
     * arrivals are closed, epochPending() stays true even when the
     * shard is idle — lockstep shards must keep integrating their
     * thermal state while peers still produce work.
     */
    void closeArrivals();

    /** True while advanceEpoch() still has work (or open arrivals). */
    bool epochPending() const;

    /** Simulated time of the next epoch to run, seconds. */
    double nowS() const { return streamNowS_; }

    /** Jobs queued + running right now (dispatcher headroom input). */
    std::size_t backlog() const { return queue_.size() + busyTotal_; }

    /** Idle (placeable) sockets right now. */
    std::size_t idleSockets() const { return idleList_.size(); }

    /** Instantaneous total socket power, W. */
    double totalPowerW() const { return totalPowerW_; }

    /**
     * Minimum instantaneous thermal headroom over online sockets:
     * tLimitC minus the hottest chip temperature, C. Negative when a
     * socket is over the limit; the cluster dispatcher's primary
     * routing signal.
     */
    double thermalHeadroomC() const;

    /** Post-warmup completions so far (streaming progress signal). */
    std::size_t jobsCompletedSoFar() const
    {
        return metrics_.jobsCompleted;
    }

    /** Run one power-management epoch (arrivals, thermal, DVFS). */
    void advanceEpoch();

    /** Finalize the streamed run and return its metrics. */
    SimMetrics finishRun();

    const ServerTopology &topology() const { return topo_; }
    const CouplingMap &coupling() const { return coupling_; }
    const Scheduler &policy() const { return *policy_; }
    const SimConfig &config() const { return config_; }

    /** Scheduling decisions made during the last run. */
    std::size_t decisions() const { return decisions_; }

    /**
     * Counters and gauges of the last run (reset at the start of each
     * run). The engine, power manager and the active policy register
     * into this registry at construction.
     */
    const obs::Registry &observability() const { return obsRegistry_; }

    /**
     * Wall-clock phase totals of the last run. Only populated in
     * DENSIM_OBS builds — the default build compiles the hot-loop
     * timer scopes out entirely.
     */
    const obs::PhaseProfiler &phaseProfile() const { return profiler_; }

  private:
    /**
     * Checkpoint serializer (src/ckpt, DESIGN.md Sec. 16). It reads
     * and writes the engine's mutable state directly at an epoch
     * boundary; everything construction-derived (topology, coupling
     * LU cache, P-state tables, fault timeline) is rebuilt from
     * SimConfig on restore rather than serialized. Keeping access
     * here — instead of a wide public state API — means the streaming
     * interface stays the engine's only behavioral surface.
     */
    friend class CkptAccess;

    // --- run phases -------------------------------------------------
    void resetState();
    void warmStart();
    SimMetrics runJobs(const std::vector<Job> &jobs);
    DENSIM_HOT void thermalStep(double dt);
    DENSIM_HOT void powerManage(double now);
    DENSIM_HOT DENSIM_ALLOCATES(
        "job admission pushes onto the deque backlog; freed blocks "
        "are reused, so steady state adds no heap traffic")
    void processWindow(const std::vector<Job> &jobs,
                       std::size_t &next_job, double t0, double t1);

    // --- event handlers ----------------------------------------------
    void tryScheduleQueue(double now);
    void placeJob(std::size_t socket, const Job &job, double now);
    void completeJob(std::size_t socket, double now);
    void attemptMigrations(double now);
    void migrateJob(std::size_t from, std::size_t to, double now);

    // --- fault injection & graceful degradation (DESIGN.md Sec. 11) --
    /** Apply every timeline event due at or before @p now. */
    DENSIM_HOT void applyFaultEvents(double now);
    void applyFaultEvent(const FaultEvent &event, double now);
    /** Advance the escalation ladder and act on its verdicts. */
    DENSIM_HOT void emergencyResponse(double now);
    /** Take @p socket offline; its running job goes back in queue. */
    void failSocket(std::size_t socket, double now);
    /** Readmit a failed socket to the idle pool. */
    void recoverSocket(std::size_t socket, double now);
    /** Quarantine an over-temperature socket (escalation stage 2). */
    void quarantineSocket(std::size_t socket, double now);
    /** Push the running job of @p socket back onto the queue front. */
    DENSIM_ALLOCATES(
        "requeue is a rare fault-transition edge; the deque reuses "
        "blocks freed by normal dispatch")
    void requeueJob(std::size_t socket, double now);
    /** Rebuild coupling_ for the fan bank capped at @p flow_frac.
     *  Cold by design: a fan fault rebuilds the whole coupling
     *  operator, deliberately outside the epoch heap contract. */
    DENSIM_COLD void applyFanFlowFraction(double flow_frac);
    /** Delivered-flow fraction for a bank speed cap (affinity laws). */
    double fanFlowFraction(double speed_cap) const;
    /** Boost cap for powerManage/placeJob, honoring the throttle. */
    std::size_t dvfsCap(std::size_t socket) const;
    /** Record (log + trace + counter hook) one fault event.
     *  Cold diagnostic endpoint: the capped log and trace sink never
     *  feed back into the model. */
    DENSIM_COLD void recordFault(FaultKind kind, std::size_t socket,
                                 double now, double value);
    /** Deliberate harness escape for fault.abortRunS (cold: the one
     *  sanctioned throw on a hot-reachable path). */
    [[noreturn]] DENSIM_COLD void abortRun(double now);

    // --- bookkeeping -------------------------------------------------
    void syncProgress(std::size_t socket, double now);
    /** Zero the running-job arrays of a socket going idle. */
    void clearJobState(std::size_t socket);
    void setSocketRate(std::size_t socket, std::size_t pstate,
                       double power_w, double now);
    void setIdlePower(std::size_t socket);
    void accumulate(double to);
    void rebuildScalars();

    /** Read-only policy view over the current idle list. */
    SchedContext makeSchedContext() const;

    /** Memoizing wrapper around PowerManager::chooseAtAmbientCapped. */
    DvfsDecision chooseDvfs(std::size_t socket, WorkloadSet set,
                            std::size_t cap);

    /** Record that powerW_[socket] diverged from the target field. */
    DENSIM_ALLOCATES(
        "dirty list reaches socket-count capacity in the first "
        "epochs and is clear()ed, never shrunk")
    void markPowerDirty(std::size_t socket);

    /** Recompute the ambient-target field from scratch. */
    void refreshAmbientTargets();

    /** Remove/add socket @p s from/to the busy piecewise sums. */
    void busySumsRemove(std::size_t s);
    void busySumsAdd(std::size_t s);

    /**
     * Assert the engine's structural and physical invariants at an
     * epoch boundary (DENSIM_CHECK / DENSIM_PARANOID; compiled out by
     * default — see core/invariant.hh).
     */
    void checkEpochInvariants() const;

    /** Keep idleList_ sorted ascending under O(log n) lookup. */
    DENSIM_ALLOCATES(
        "idle list capacity reaches socket count during warmup; the "
        "sorted insert then shifts within capacity")
    void idleInsert(std::size_t s);
    void idleRemove(std::size_t s);

    SimConfig config_;
    ServerTopology topo_;
    CouplingMap coupling_;
    SimplePeakModel peak_;
    PowerManager pm_;
    const LeakageModel &leak_;
    std::unique_ptr<Scheduler> policy_;
    Rng policyRng_;
    Rng sensorRng_;

    // Per-socket state — pure structure-of-arrays. Every field the
    // hot loops touch is a contiguous flat array indexed by socket id;
    // the batched thermal kernels and the scheduler scoring loops scan
    // them directly.
    std::vector<double> powerW_;
    std::vector<double> freqMhz_;
    std::vector<double> chipTempC_;
    std::vector<double> sensedTempC_; //!< What schedulers see.
    std::vector<double> histTempC_;   //!< First-order bank, histTauS.
    std::vector<WorkloadSet> runningSet_;
    std::vector<std::uint8_t> busyFlag_;
    std::vector<double> ambientC_; //!< First-order bank toward the
        //!< coupling-map field, tau 30 s (Table III).
    std::vector<double> chipRiseC_; //!< Eq. (1) chip-rise bank toward
        //!< P*(R_int+R_ext) + theta, tau 5 ms (Table III).
    std::vector<double> boostCreditS_; //!< Boost-dwell credit, seconds.

    // Running-job bookkeeping (valid while busyFlag_ is set).
    std::vector<std::size_t> jobBenchmark_;
    std::vector<double> jobArrivalS_;   //!< Arrival of the running job.
    std::vector<double> jobStartS_;     //!< Placement time.
    std::vector<double> jobNominalS_;   //!< Job's nominal duration.
    std::vector<double> jobRemainingS_; //!< Nominal seconds left.
    std::vector<double> lastSyncS_;   //!< jobRemainingS valid at this.
    std::vector<double> completionS_; //!< Predicted completion.
    std::vector<std::size_t> pstate_;
    std::vector<std::uint8_t> boostFlag_;

    std::vector<std::uint8_t> isFront_;
    std::vector<std::uint8_t> isEven_;
    std::vector<std::vector<std::size_t>> zoneSockets_;

    // Per-socket Eq. (1) constants hoisted out of the thermal loop:
    // chip-rise target = P * rTotCW_ + (thetaC0_ + thetaC1_ * P),
    // evaluated in exactly the typed-quantity order so the batched
    // kernel is bit-identical to the per-socket unit math.
    std::vector<double> rTotCW_;  //!< (R_int + R_ext).value().
    std::vector<double> thetaC0_; //!< sink.theta.c0.value().
    std::vector<double> thetaC1_; //!< sink.theta.c1.value().

    std::deque<Job> queue_;

    // --- observability (src/obs, DESIGN.md Sec. 10) ------------------
    obs::Registry obsRegistry_;
    obs::PhaseProfiler profiler_;
    obs::TraceSink trace_;
    obs::TimelineSampler sampler_; //!< Fixed k*timelineSampleS grid.

    /** Cached registry instruments (stable addresses, registered at
     *  construction; incremented from the hot paths). */
    struct EngineCounters
    {
        obs::Counter *epochs = nullptr;
        obs::Counter *jobsPlaced = nullptr;
        obs::Counter *jobsCompleted = nullptr;
        obs::Counter *migrations = nullptr;
        obs::Counter *schedDecisions = nullptr;
        obs::Counter *dvfsMemoHits = nullptr;
        obs::Counter *dvfsMemoMisses = nullptr;
        obs::Counter *dvfsRedecisionsPruned = nullptr;
        obs::Counter *ambientRefreshes = nullptr;
        obs::Counter *ambientDeltas = nullptr;
        obs::Counter *timelineSamples = nullptr;
    };
    EngineCounters count_;
    obs::TypedGauge<Watts> gaugePowerW_;   //!< Server power at run end.
    obs::TypedGauge<Celsius> gaugeMaxChipC_;

    /** Take a timeline sample at grid time @p grid_s if one is due. */
    void sampleTimeline(double epoch_end_s);

    /** Register every engine instrument (constructor helper). */
    void registerObs();

    /** Flush trace/timeline sinks configured in SimConfig. */
    void writeObsOutputs();

    // --- incremental engine state ------------------------------------
    EventHeap completionHeap_; //!< Busy sockets keyed on completionS.
    std::vector<std::size_t> idleList_; //!< Idle sockets, ascending.

    std::vector<double> ambTargets_; //!< Coupling-map ambient targets.
    std::vector<double> targetPowerW_; //!< Powers ambTargets_ is for.
    std::vector<char> powerDirty_;
    std::vector<std::size_t> dirtySockets_;
    std::size_t epochsSinceAmbientRefresh_ = 0;

    /** Last DVFS decision per socket and the inputs it was made for. */
    DvfsMemoTable dvfsMemo_;

    /**
     * Per-epoch scratch arena (thermal kernel targets, CP candidate
     * lists). Pre-reserved in resetState; checkEpochInvariants asserts
     * it never grows in steady state — the zero-heap-per-epoch
     * contract of DESIGN.md Sec. 12.
     */
    Arena arena_;

    /**
     * Scheduler prediction memo (sched/prediction.hh). Epoch-bumped
     * after every thermal and power-management step, surgically
     * invalidated along coupling_.upstream() edges on job placement /
     * completion / migration / fault transitions. Handed to policies
     * only when config_.schedPredictionCache is on.
     */
    PredictionCache predCache_;

    /** Drop cached penalties of sockets upstream of @p socket. */
    void invalidatePenaltyAround(std::size_t socket);

    /**
     * Crossover threshold of the batched coupling-field refresh: when
     * at least this many sockets are power-dirty in one epoch, the
     * incremental delta path switches to one flat ambientTempsInto
     * pass. 0 = disabled (exact default); derived from
     * config_.ambientBatchFrac in resetState.
     */
    std::size_t ambientBatchMin_ = 0;

    // Construction-time lookups for the per-epoch loops.
    std::vector<const HeatSink *> sinkCache_; //!< topo_.sinkOf(s).
    std::vector<int> rowCache_;               //!< topo_.rowOf(s).
    std::vector<double> relFreqByPstate_;
    std::vector<double> freqByPstate_;       //!< table.at(p).freqMhz.
    std::vector<std::uint8_t> boostByPstate_; //!< table.at(p).boost.
    double fastestMhz_ = 0.0; //!< table.fastest().freqMhz.
    std::size_t sustainedIdx_ = 0;
    std::size_t boostCap_ = 0; //!< Highest P-state index.

    // Per-socket progress rate / relative frequency of the current
    // P-state, refreshed by setSocketRate; valid while busy.
    std::vector<double> rateCache_;
    std::vector<double> relFreqCache_;

    // What each socket currently contributes to the busy sums (so
    // removal subtracts exactly what was added).
    std::vector<char> inBusySums_;
    std::vector<double> contribRate_;
    std::vector<double> contribRel_;
    std::vector<char> contribBoost_;

    // Piecewise integration scalars.
    double tCursor_ = 0.0;
    double totalPowerW_ = 0.0;
    double workRateTotal_ = 0.0;
    double workRateFront_ = 0.0;
    double workRateBack_ = 0.0;
    double workRateEven_ = 0.0;
    double relFreqSumTotal_ = 0.0;
    double relFreqSumFront_ = 0.0;
    double relFreqSumBack_ = 0.0;
    double relFreqSumEven_ = 0.0;
    int busyTotal_ = 0;
    int busyFront_ = 0;
    int busyBack_ = 0;
    int busyEven_ = 0;
    int busyBoost_ = 0;

    // --- fault subsystem state (src/fault, DESIGN.md Sec. 11) --------
    // Everything below is inert unless faultsEnabled_: the zero-fault
    // hot path takes no fault branch, draws nothing from faultRng_,
    // and SimMetrics stay bit-identical to the pre-fault engine.
    bool faultsEnabled_ = false;
    FaultTimeline faultTimeline_; //!< Built once at construction.
    std::size_t nextFaultEvent_ = 0; //!< Timeline cursor.
    FaultState faultState_;
    Rng faultRng_; //!< Separate stream: sensor-noise draws.
    std::vector<FaultEvent> faultLog_; //!< Applied + response events.
    double fanPowerW_ = 0.0; //!< Effective fan power (cube-law derate).
    bool couplingDerated_ = false; //!< coupling_ differs from pristine.
    std::uint64_t couplingEpoch_ = 0; //!< Bumped on each rebuild.

    struct FaultCounters
    {
        obs::Counter *fanEvents = nullptr;
        obs::Counter *sensorFaults = nullptr;
        obs::Counter *dropoutFallbacks = nullptr;
        obs::Counter *socketFailures = nullptr;
        obs::Counter *socketRecoveries = nullptr;
        obs::Counter *jobsRequeued = nullptr;
        obs::Counter *emergencyThrottles = nullptr;
        obs::Counter *throttleReleases = nullptr;
        obs::Counter *quarantines = nullptr;
        obs::Counter *quarantineExits = nullptr;
    };
    FaultCounters fcount_; //!< Registered only when faults are armed.

    SimMetrics metrics_;
    std::size_t decisions_ = 0;

    // --- streaming-run state (beginRun .. finishRun) ------------------
    std::vector<Job> streamJobs_; //!< Arrival backlog, ascending.
    std::size_t streamNext_ = 0;  //!< First unconsumed backlog entry.
    double streamNowS_ = 0.0;     //!< Start time of the next epoch.
    double streamHardStopS_ = 0.0; //!< simTimeS * drainFactor.
    bool streamOpen_ = false;      //!< beginRun .. finishRun.
    bool arrivalsClosed_ = false;  //!< closeArrivals() seen.
};

} // namespace densim

#endif // DENSIM_CORE_DENSE_SERVER_SIM_HH
