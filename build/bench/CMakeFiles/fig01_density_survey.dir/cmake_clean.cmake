file(REMOVE_RECURSE
  "CMakeFiles/fig01_density_survey.dir/fig01_density_survey.cc.o"
  "CMakeFiles/fig01_density_survey.dir/fig01_density_survey.cc.o.d"
  "fig01_density_survey"
  "fig01_density_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_density_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
