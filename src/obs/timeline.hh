/**
 * @file
 * Fixed-grid timeline sampler and the JSONL time-series writer.
 *
 * Replaces the engine's historical ad-hoc sampler, which had two
 * bugs: (1) it advanced its next-sample mark by exactly one period
 * per power-management epoch, so whenever the sample period was
 * shorter than the epoch the mark fell permanently behind simulated
 * time and *every* epoch emitted a sample regardless of the
 * configured cadence, and (2) it stamped samples with the epoch
 * boundary time (an accumulated `t += epoch` value with float drift)
 * rather than the grid point, so timestamps drifted off the
 * configured cadence over long runs.
 *
 * Semantics of the fixed grid (pinned by the obs regression tests):
 *
 *  - Sample timestamps are *exactly* `k * periodS` for integer k >= 0,
 *    computed as `double(k) * periodS` — never by accumulation.
 *  - The field is only defined at epoch boundaries, so a grid point
 *    is emitted at the first epoch boundary at or after it, stamped
 *    with the grid time.
 *  - Catch-up/skip: when an epoch straddles several grid points
 *    (periodS < epoch length, or a long drain epoch), the sampler
 *    emits ONE sample stamped with the *latest* straddled grid point
 *    and skips the earlier ones — the field carries no information
 *    between epoch boundaries, so replaying identical values onto
 *    intermediate grid points would only pad the stream. Consequence:
 *    at most one sample per epoch; when periodS >= epoch length every
 *    grid point in the run is emitted.
 */

#ifndef DENSIM_OBS_TIMELINE_HH
#define DENSIM_OBS_TIMELINE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace densim::obs {

/** The fixed-cadence sampling grid (see file comment). */
class TimelineSampler
{
  public:
    /** Set the cadence; @p period_s <= 0 disables sampling. */
    void configure(double period_s)
    {
        periodS_ = period_s;
        next_ = 0;
    }

    /** Rewind to grid point 0 (between runs). */
    void reset() { next_ = 0; }

    double periodS() const { return periodS_; }

    /** Index of the next pending grid point (checkpointed). */
    std::uint64_t nextGridIndex() const { return next_; }

    /** Resume the grid cursor from a checkpoint. */
    void resumeAt(std::uint64_t next) { next_ = next; }

    /**
     * Called once per epoch boundary at simulated time @p now_s
     * (non-decreasing across calls). Returns true when a sample is
     * due and stores its exact grid timestamp in @p grid_s.
     */
    bool
    due(double now_s, double *grid_s)
    {
        if (periodS_ <= 0.0)
            return false;
        // Absorb accumulated epoch-sum float error: a boundary that
        // is a rounding whisker short of its grid point still counts.
        const double slack = now_s + 1e-9 * periodS_;
        if (slack < static_cast<double>(next_) * periodS_)
            return false;
        const auto k = static_cast<std::uint64_t>(slack / periodS_);
        *grid_s = static_cast<double>(k) * periodS_;
        next_ = k + 1;
        return true;
    }

  private:
    double periodS_ = 0.0;
    std::uint64_t next_ = 0; //!< Index of the next pending grid point.
};

/**
 * Write a zone-ambient timeline as a JSONL stream: one strict-JSON
 * object per sample, `{"tS":<grid time>,"zoneAmbientC":[...]}`.
 * @p times and @p zone_rows must be the same length (they are the
 * SimMetrics::timelineS / zoneAmbientC pair).
 */
void writeTimelineJsonl(std::ostream &os,
                        const std::vector<double> &times,
                        const std::vector<std::vector<double>> &zone_rows);

/** writeTimelineJsonl() to @p path; fatal() on I/O failure. */
void writeTimelineJsonlFile(const std::string &path,
                            const std::vector<double> &times,
                            const std::vector<std::vector<double>> &zone_rows);

} // namespace densim::obs

#endif // DENSIM_OBS_TIMELINE_HH
