/**
 * @file
 * Experiment harness: run (scheduler x workload x load) grids, in
 * parallel, and normalize against the CF baseline — the machinery
 * behind the Fig. 11/13/14/15 benches.
 */

#ifndef DENSIM_CORE_EXPERIMENT_HH
#define DENSIM_CORE_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "core/dense_server_sim.hh"
#include "core/metrics.hh"
#include "core/sim_config.hh"

namespace densim {

/** One cell of an experiment grid. */
struct RunSpec
{
    std::string scheduler;   //!< Policy name (factory.hh).
    SimConfig config;        //!< Full configuration (load, set, ...).
};

/** Result of one cell. */
struct RunResult
{
    RunSpec spec;
    SimMetrics metrics;
};

/** Run one cell synchronously. */
RunResult runOne(const RunSpec &spec);

/**
 * Run all cells, using up to @p threads worker threads (0 = hardware
 * concurrency). Results are returned in input order; execution order
 * is unspecified but each run is independently seeded and
 * deterministic, so the results are identical for every thread
 * count. An empty @p specs yields an empty result, and the first
 * exception thrown by a worker is rethrown here after the pool
 * drains (util/parallel.hh).
 *
 * Observability sinks are merge-safe: when more than one cell is run
 * and a spec sets obs.tracePath / obs.timelinePath, the path is
 * rewritten to a per-run name ("trace.json" -> "trace-run3.json",
 * obs::perRunPath) so concurrent cells never write the same file.
 */
std::vector<RunResult> runAll(const std::vector<RunSpec> &specs,
                              unsigned threads = 0);

/**
 * Build the full grid of @p schedulers x @p loads for one workload
 * set on a base configuration.
 */
std::vector<RunSpec> makeGrid(const std::vector<std::string> &schedulers,
                              WorkloadSet set,
                              const std::vector<double> &loads,
                              const SimConfig &base);

/**
 * Index results as map[scheduler][load] for normalization against a
 * baseline scheme.
 */
std::map<std::string, std::map<double, SimMetrics>>
indexResults(const std::vector<RunResult> &results);

} // namespace densim

#endif // DENSIM_CORE_EXPERIMENT_HH
