/**
 * @file
 * Tests for crash-safe checkpoint/restore (DESIGN.md Sec. 16).
 *
 * The load-bearing property is *bit-identical resume*: a run
 * interrupted at any epoch (or fleet-window) boundary and restored
 * from its checkpoint must produce hex-float-equal metrics and
 * byte-identical JSONL sinks versus the uninterrupted run — under
 * faults, under migration, and under every fleet dispatcher. The
 * robustness half: a truncated, bit-flipped or hostile checkpoint
 * file must yield one CkptError and an engine that is still fully
 * usable, and API misuse around restore must hit testable fatal()
 * guards.
 */

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hh"
#include "ckpt/run_driver.hh"
#include "core/dense_server_sim.hh"
#include "core/experiment.hh"
#include "fleet/fleet_metrics.hh"
#include "fleet/fleet_sim.hh"
#include "sched/factory.hh"
#include "util/logging.hh"
#include "workload/job_generator.hh"

namespace densim {
namespace {

/** Small config exercising thermals, queueing and DVFS quickly. */
SimConfig
fastConfig()
{
    SimConfig config;
    config.topo.rows = 2; // 24 sockets
    config.simTimeS = 0.6;
    config.warmupS = 0.1;
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 11;
    return config;
}

/** Hexfloat rendering: equal strings iff bit-identical doubles. */
void
hex(std::ostringstream &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a ", v);
    out << buf;
}

void
hex(std::ostringstream &out, const RunningStats &s)
{
    const RunningStats::Snapshot snap = s.snapshot();
    out << snap.count << ' ';
    hex(out, snap.mean);
    hex(out, snap.m2);
    hex(out, snap.min);
    hex(out, snap.max);
}

/** Every SimMetrics field, hexfloat — EXPECT_EQ means bit-identical. */
std::string
serializeSimMetrics(const SimMetrics &m)
{
    std::ostringstream out;
    out << m.jobsArrived << ' ' << m.jobsCompleted << ' '
        << m.jobsUnfinished << ' ' << m.migrations << ' ';
    hex(out, m.runtimeExpansion);
    hex(out, m.serviceExpansion);
    hex(out, m.queueDelayS);
    hex(out, m.energyJ);
    hex(out, m.measuredS);
    hex(out, m.makespanS);
    for (const RegionMetrics *r : {&m.front, &m.back, &m.even}) {
        hex(out, r->busyTimeS);
        hex(out, r->freqTime);
        hex(out, r->workDone);
    }
    hex(out, m.totalWork);
    hex(out, m.totalBusyTime);
    hex(out, m.totalFreqTime);
    out << m.timelineS.size() << ' ';
    for (const double t : m.timelineS)
        hex(out, t);
    for (const std::vector<double> &row : m.zoneAmbientC)
        for (const double c : row)
            hex(out, c);
    hex(out, m.chipTempC);
    hex(out, m.maxChipTempC);
    hex(out, m.boostTimeS);
    return out.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "densim_ckpt_" + name;
}

/** The uninterrupted reference run. */
SimMetrics
runStraight(const SimConfig &config, const std::string &policy)
{
    DenseServerSim sim(config, makeScheduler(policy));
    return sim.run();
}

/**
 * The same run interrupted at the epoch boundary where nowS first
 * reaches @p stop_at_s: checkpoint to memory, destroy the engine,
 * restore into a *fresh* engine and drive to completion.
 */
SimMetrics
runInterrupted(const SimConfig &config, const std::string &policy,
               double stop_at_s)
{
    std::string image;
    {
        DenseServerSim sim(config, makeScheduler(policy));
        ckpt::beginEngineRun(sim);
        while (sim.epochPending() && sim.nowS() < stop_at_s)
            sim.advanceEpoch();
        image = ckpt::saveEngine(sim);
        // The first engine dies here, mid-run, like a killed process.
    }
    DenseServerSim sim(config, makeScheduler(policy));
    ckpt::restoreEngine(sim, image);
    while (sim.epochPending())
        sim.advanceEpoch();
    return sim.finishRun();
}

// ------------------------------------------------ bit-identity

TEST(BitIdentity, PlainRunResumesExactly)
{
    SimConfig config = fastConfig();
    config.timelineSampleS = 0.01;
    const SimMetrics straight = runStraight(config, "CP");
    const SimMetrics resumed = runInterrupted(config, "CP", 0.3);
    EXPECT_EQ(serializeSimMetrics(straight),
              serializeSimMetrics(resumed));
}

TEST(BitIdentity, EveryInterruptPointResumesExactly)
{
    // The boundary chosen must not matter: interrupt early (warmup),
    // mid-arrivals, and deep in the drain tail.
    SimConfig config = fastConfig();
    const std::string expected =
        serializeSimMetrics(runStraight(config, "CP"));
    for (const double stop_at : {0.05, 0.45, 1.2}) {
        EXPECT_EQ(expected, serializeSimMetrics(runInterrupted(
                                config, "CP", stop_at)))
            << "interrupted at t=" << stop_at;
    }
}

TEST(BitIdentity, NoisySensorsAndRandomPolicyResumeExactly)
{
    // Consumes both the policy and the sensor RNG streams every
    // epoch — the streams' saved positions must be exact.
    SimConfig config = fastConfig();
    config.sensorNoiseC = 0.8;
    config.sensorQuantC = 1.0;
    const SimMetrics straight = runStraight(config, "A-Random");
    const SimMetrics resumed = runInterrupted(config, "A-Random", 0.3);
    EXPECT_EQ(serializeSimMetrics(straight),
              serializeSimMetrics(resumed));
}

TEST(BitIdentity, FaultedRunResumesExactly)
{
    // Fan derate + noisy sensor faults: the fault timeline cursor,
    // per-socket fault ladders, derated coupling and the fault RNG
    // must all restore to the exact epoch state.
    SimConfig config = fastConfig();
    config.fault.fanFailS = 0.15;
    config.fault.fanSpeedFrac = 0.55;
    config.fault.fanRecoverS = 0.45;
    config.fault.sensorNoisyAtS = 0.2;
    const SimMetrics straight = runStraight(config, "CP");
    for (const double stop_at : {0.1, 0.3, 0.6}) {
        EXPECT_EQ(serializeSimMetrics(straight),
                  serializeSimMetrics(
                      runInterrupted(config, "CP", stop_at)))
            << "interrupted at t=" << stop_at;
    }
}

TEST(BitIdentity, MigrationRunResumesExactly)
{
    SimConfig config = fastConfig();
    config.migrationEnabled = true;
    config.migrationIntervalS = 0.05;
    config.migrationMinRemainingS = 0.01;
    const SimMetrics straight = runStraight(config, "CP");
    const SimMetrics resumed = runInterrupted(config, "CP", 0.3);
    EXPECT_EQ(straight.migrations, resumed.migrations);
    EXPECT_EQ(serializeSimMetrics(straight),
              serializeSimMetrics(resumed));
}

TEST(BitIdentity, JsonlSinksAreByteIdentical)
{
    // The restored run must append exactly the rows the uninterrupted
    // run would have written — the timeline grid cursor and the trace
    // event buffer ride in the checkpoint.
    SimConfig config = fastConfig();
    config.timelineSampleS = 0.01;
    config.obsTimelinePath = tempPath("straight.jsonl");
    config.obsTracePath = tempPath("straight_trace.json");
    (void)runStraight(config, "CP");

    SimConfig resumedConfig = config;
    resumedConfig.obsTimelinePath = tempPath("resumed.jsonl");
    resumedConfig.obsTracePath = tempPath("resumed_trace.json");
    (void)runInterrupted(resumedConfig, "CP", 0.3);

    EXPECT_EQ(slurp(config.obsTimelinePath),
              slurp(resumedConfig.obsTimelinePath));
    EXPECT_EQ(slurp(config.obsTracePath),
              slurp(resumedConfig.obsTracePath));
    for (const SimConfig *c : {&config, &resumedConfig}) {
        std::remove(c->obsTimelinePath.c_str());
        std::remove(c->obsTracePath.c_str());
    }
}

TEST(BitIdentity, SaveRestoreSaveRoundTripsBytes)
{
    // restore(save(x)) then save again must reproduce the image byte
    // for byte — the serializer covers every field the applier reads.
    SimConfig config = fastConfig();
    config.fault.sensorNoisyAtS = 0.2;
    DenseServerSim a(config, makeScheduler("CP"));
    ckpt::beginEngineRun(a);
    while (a.epochPending() && a.nowS() < 0.3)
        a.advanceEpoch();
    const std::string image = ckpt::saveEngine(a);

    DenseServerSim b(config, makeScheduler("CP"));
    ckpt::restoreEngine(b, image);
    EXPECT_EQ(image, ckpt::saveEngine(b));
}

TEST(BitIdentity, FleetResumesExactlyUnderEveryDispatcher)
{
    for (const char *dispatcher :
         {"roundrobin", "headroom", "locality", "power"}) {
        SimConfig config = fastConfig();
        config.fleet.chassis = 3;
        config.fleet.dispatcher = dispatcher;

        FleetSim straight(config, "CP");
        const std::string expected =
            serializeFleetMetrics(straight.run(2));

        std::string image;
        {
            FleetSim fleet(config, "CP");
            fleet.beginRun();
            for (int w = 0; w < 5; ++w)
                ASSERT_TRUE(fleet.advanceWindow(2));
            image = ckpt::saveFleet(fleet);
        }
        FleetSim resumed(config, "CP");
        ckpt::restoreFleet(resumed, image);
        while (resumed.advanceWindow(2)) {
        }
        EXPECT_EQ(expected, serializeFleetMetrics(resumed.finishRun()))
            << "dispatcher " << dispatcher;
    }
}

// ------------------------------------------------ fork mode

TEST(Fork, ReseedsFutureButKeepsState)
{
    SimConfig config = fastConfig();
    config.sensorNoiseC = 0.8; // make the RNG streams consequential
    std::string image;
    {
        DenseServerSim sim(config, makeScheduler("A-Random"));
        ckpt::beginEngineRun(sim);
        while (sim.epochPending() && sim.nowS() < 0.3)
            sim.advanceEpoch();
        image = ckpt::saveEngine(sim);
    }
    const auto finish = [&](ckpt::RestoreMode mode,
                            std::uint64_t fork_id) {
        DenseServerSim sim(config, makeScheduler("A-Random"));
        ckpt::restoreEngine(sim, image, mode, fork_id);
        while (sim.epochPending())
            sim.advanceEpoch();
        return serializeSimMetrics(sim.finishRun());
    };
    const std::string exact = finish(ckpt::RestoreMode::Exact, 0);
    const std::string fork1 = finish(ckpt::RestoreMode::Fork, 1);
    const std::string fork1Again = finish(ckpt::RestoreMode::Fork, 1);
    const std::string fork2 = finish(ckpt::RestoreMode::Fork, 2);
    EXPECT_EQ(fork1, fork1Again); // forks are deterministic...
    EXPECT_NE(exact, fork1);      // ...but diverge from the original
    EXPECT_NE(fork1, fork2);      // ...and from each other.
}

// ------------------------------------------------ hostile input

/** A valid mid-run engine image to corrupt. */
std::string
goldenImage(const SimConfig &config)
{
    DenseServerSim sim(config, makeScheduler("CP"));
    ckpt::beginEngineRun(sim);
    while (sim.epochPending() && sim.nowS() < 0.2)
        sim.advanceEpoch();
    return ckpt::saveEngine(sim);
}

/**
 * Every corrupted image must throw CkptError with a non-empty
 * message, leave the engine closed and un-mutated, and leave it
 * fully usable: a subsequent restore of the intact image succeeds.
 */
void
expectRejected(const SimConfig &config, const std::string &good,
               const std::string &bad, const std::string &what)
{
    DenseServerSim sim(config, makeScheduler("CP"));
    try {
        ckpt::restoreEngine(sim, bad);
        FAIL() << "corrupted image accepted: " << what;
    } catch (const ckpt::CkptError &err) {
        EXPECT_FALSE(std::string(err.what()).empty()) << what;
    }
    // No partial mutation: the engine still restores cleanly.
    ckpt::restoreEngine(sim, good);
    while (sim.epochPending())
        sim.advanceEpoch();
    EXPECT_GT(sim.finishRun().jobsCompleted, 0u) << what;
}

TEST(HostileInput, TruncationsAtEveryRegionAreRejected)
{
    const SimConfig config = fastConfig();
    const std::string good = goldenImage(config);
    ASSERT_GT(good.size(), 64u);
    // Truncate inside the header, each section header, and payloads.
    std::vector<std::size_t> cuts = {0,  1,  7,  8,  11, 12,
                                     15, 16, 23, 24, 31, 32};
    for (std::size_t frac = 1; frac < 16; ++frac)
        cuts.push_back(good.size() * frac / 16);
    cuts.push_back(good.size() - 1);
    for (const std::size_t cut : cuts) {
        expectRejected(config, good, good.substr(0, cut),
                       "truncated to " + std::to_string(cut));
    }
}

TEST(HostileInput, FlippedBytesAreRejected)
{
    // A flip anywhere in a section payload breaks that section's
    // CRC; a flip in the header breaks magic/version/kind/digest or
    // the section framing. Either way: CkptError, never UB. (A flip
    // confined to a stored CRC word itself also lands here — the CRC
    // no longer matches the payload.)
    const SimConfig config = fastConfig();
    const std::string good = goldenImage(config);
    for (std::size_t pos = 0; pos < good.size();
         pos += 1 + good.size() / 97) {
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
        expectRejected(config, good, bad,
                       "byte flipped at " + std::to_string(pos));
    }
}

TEST(HostileInput, OversizedSectionLengthIsRejected)
{
    const SimConfig config = fastConfig();
    const std::string good = goldenImage(config);
    // First section header sits at offset 32; its u64 length at +4.
    std::string bad = good;
    for (int i = 0; i < 8; ++i)
        bad[36 + i] = static_cast<char>(0xff);
    expectRejected(config, good, bad, "section length 2^64-1");
}

TEST(HostileInput, WrongMagicVersionKindDigestAreRejected)
{
    const SimConfig config = fastConfig();
    const std::string good = goldenImage(config);

    std::string bad = good;
    bad[0] = 'X';
    expectRejected(config, good, bad, "bad magic");

    bad = good;
    bad[8] = static_cast<char>(ckpt::kVersion + 1); // version skew
    expectRejected(config, good, bad, "newer version");

    bad = good;
    bad[12] = 2; // engine image claiming to be a fleet snapshot
    expectRejected(config, good, bad, "kind mismatch");

    bad = good;
    bad[16] = static_cast<char>(bad[16] ^ 0xff); // digest word
    expectRejected(config, good, bad, "digest mismatch");

    // A differently-configured engine must refuse the snapshot...
    SimConfig other = fastConfig();
    other.load = 0.71;
    DenseServerSim sim(other, makeScheduler("CP"));
    EXPECT_THROW(ckpt::restoreEngine(sim, good), ckpt::CkptError);
    // ...as must the same config under a different policy.
    DenseServerSim wrongPolicy(config, makeScheduler("A-Random"));
    EXPECT_THROW(ckpt::restoreEngine(wrongPolicy, good),
                 ckpt::CkptError);
    // But moving/re-cadencing the checkpoint itself must not: the
    // ckpt.* knobs are excluded from the digest.
    SimConfig recadenced = fastConfig();
    recadenced.ckptPath = tempPath("elsewhere.ckpt");
    recadenced.ckptEveryS = 0.125;
    DenseServerSim moved(recadenced, makeScheduler("CP"));
    ckpt::restoreEngine(moved, good);
    while (moved.epochPending())
        moved.advanceEpoch();
    EXPECT_GT(moved.finishRun().jobsCompleted, 0u);
}

TEST(HostileInput, EmptyAndGarbageFilesAreRejected)
{
    const SimConfig config = fastConfig();
    const std::string good = goldenImage(config);
    expectRejected(config, good, "", "empty file");
    expectRejected(config, good, std::string(4096, '\0'),
                   "zero-filled file");
    expectRejected(config, good, "DSIMCKPT", "header-only file");
}

// ------------------------------------------------ API misuse

TEST(Misuse, RestoreIntoOpenRunIsFatal)
{
    const SimConfig config = fastConfig();
    const std::string image = goldenImage(config);
    DenseServerSim sim(config, makeScheduler("CP"));
    ckpt::beginEngineRun(sim);
    const ScopedFatalThrows guard;
    EXPECT_THROW(ckpt::restoreEngine(sim, image), FatalError);
}

TEST(Misuse, DoubleRestoreIsFatal)
{
    const SimConfig config = fastConfig();
    const std::string image = goldenImage(config);
    DenseServerSim sim(config, makeScheduler("CP"));
    ckpt::restoreEngine(sim, image);
    const ScopedFatalThrows guard;
    EXPECT_THROW(ckpt::restoreEngine(sim, image), FatalError);
}

TEST(Misuse, SaveOfClosedRunIsFatal)
{
    const SimConfig config = fastConfig();
    DenseServerSim sim(config, makeScheduler("CP"));
    const ScopedFatalThrows guard;
    EXPECT_THROW((void)ckpt::saveEngine(sim), FatalError);
}

TEST(Misuse, AdvanceAfterFailedRestoreIsFatal)
{
    // A failed restore leaves the engine *closed*: stepping it
    // without beginRun() is the same misuse as never opening it.
    const SimConfig config = fastConfig();
    const std::string image = goldenImage(config);
    DenseServerSim sim(config, makeScheduler("CP"));
    EXPECT_THROW(ckpt::restoreEngine(sim, image.substr(0, 40)),
                 ckpt::CkptError);
    const ScopedFatalThrows guard;
    EXPECT_THROW(sim.advanceEpoch(), FatalError);
    EXPECT_THROW((void)sim.finishRun(), FatalError);
}

TEST(Misuse, FleetGuardsMatchEngineGuards)
{
    SimConfig config = fastConfig();
    config.fleet.chassis = 2;
    std::string image;
    {
        FleetSim fleet(config, "CP");
        fleet.beginRun();
        ASSERT_TRUE(fleet.advanceWindow(1));
        image = ckpt::saveFleet(fleet);
    }
    FleetSim fleet(config, "CP");
    ckpt::restoreFleet(fleet, image);
    const ScopedFatalThrows guard;
    EXPECT_THROW(ckpt::restoreFleet(fleet, image), FatalError);

    FleetSim closed(config, "CP");
    EXPECT_THROW((void)ckpt::saveFleet(closed), FatalError);
}

// ------------------------------------------------ drivers & files

TEST(Driver, CadenceCheckpointIsReadOnlyAndResumable)
{
    // A run with cadence checkpointing enabled must be bit-identical
    // to the same run without, and the last cadence file must itself
    // resume to the same result.
    SimConfig plain = fastConfig();
    const std::string expected =
        serializeSimMetrics(runStraight(plain, "CP"));

    SimConfig config = plain;
    config.ckptPath = tempPath("cadence.ckpt");
    config.ckptEveryS = 0.25;
    DenseServerSim sim(config, makeScheduler("CP"));
    ckpt::beginEngineRun(sim);
    ckpt::clearStopRequest();
    const ckpt::DriveOutcome out = ckpt::driveEngine(sim);
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(expected, serializeSimMetrics(sim.finishRun()));

    // The cadence left a loadable snapshot behind.
    DenseServerSim resumed(config, makeScheduler("CP"));
    ckpt::restoreEngine(resumed,
                        ckpt::readCheckpointFile(config.ckptPath));
    while (resumed.epochPending())
        resumed.advanceEpoch();
    EXPECT_EQ(expected, serializeSimMetrics(resumed.finishRun()));
    std::remove(config.ckptPath.c_str());
}

TEST(Driver, StopRequestCheckpointsAndReturns)
{
    SimConfig config = fastConfig();
    config.ckptPath = tempPath("stop.ckpt");
    DenseServerSim sim(config, makeScheduler("CP"));
    ckpt::beginEngineRun(sim);
    ckpt::requestStop();
    const ckpt::DriveOutcome out = ckpt::driveEngine(sim);
    ckpt::clearStopRequest();
    EXPECT_FALSE(out.completed);
    EXPECT_TRUE(out.checkpointed);

    // The stop-path snapshot resumes to the uninterrupted result.
    DenseServerSim resumed(config, makeScheduler("CP"));
    ckpt::restoreEngine(resumed,
                        ckpt::readCheckpointFile(config.ckptPath));
    const ckpt::DriveOutcome rest = ckpt::driveEngine(resumed);
    ASSERT_TRUE(rest.completed);
    EXPECT_EQ(serializeSimMetrics(runStraight(fastConfig(), "CP")),
              serializeSimMetrics(resumed.finishRun()));
    std::remove(config.ckptPath.c_str());
}

TEST(Driver, CheckpointFileRoundTripsAtomically)
{
    const SimConfig config = fastConfig();
    const std::string image = goldenImage(config);
    const std::string path = tempPath("roundtrip.ckpt");
    ckpt::writeCheckpointFile(path, image);
    EXPECT_EQ(image, ckpt::readCheckpointFile(path));
    // Overwrite is atomic-replace, not append.
    ckpt::writeCheckpointFile(path, image);
    EXPECT_EQ(image, ckpt::readCheckpointFile(path));
    std::remove(path.c_str());
    EXPECT_THROW((void)ckpt::readCheckpointFile(path),
                 ckpt::CkptError);
}

TEST(Driver, SweepCellResumesFromItsCheckpoint)
{
    RunSpec spec;
    spec.scheduler = "CP";
    spec.config = fastConfig();
    const std::string dir =
        testing::TempDir() + "densim_ckpt_cells";
    (void)::mkdir(dir.c_str(), 0755); // ok if it already exists
    const std::string cell_path =
        dir + "/" + runDigest(spec) + ".ckpt";

    // An interrupted invocation: stop pending before the first
    // epoch, so the cell checkpoints immediately and reports itself
    // unfinished (the keep-going harness then keeps its digest out
    // of the resume manifest).
    ckpt::requestStop();
    EXPECT_THROW((void)ckpt::runCellCheckpointed(spec, dir),
                 ckpt::CkptError);
    ckpt::clearStopRequest();
    EXPECT_TRUE(std::ifstream(cell_path, std::ios::binary).good());

    // The re-invocation resumes from the file, matches the straight
    // run bit for bit, and cleans up after itself.
    const SimMetrics resumed = ckpt::runCellCheckpointed(spec, dir);
    EXPECT_EQ(serializeSimMetrics(runStraight(spec.config, "CP")),
              serializeSimMetrics(resumed));
    EXPECT_FALSE(std::ifstream(cell_path, std::ios::binary).good());

    // Wired through SweepOptions::cellRunner, the whole keep-going
    // sweep takes the checkpointed path.
    SweepOptions options;
    options.threads = 1;
    options.keepGoing = true;
    options.cellRunner = [&](const RunSpec &s) {
        return ckpt::runCellCheckpointed(s, dir);
    };
    const std::vector<RunOutcome> outcomes =
        runAllOutcomes({spec}, options);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(serializeSimMetrics(resumed),
              serializeSimMetrics(outcomes[0].metrics));
    (void)::rmdir(dir.c_str());
}

} // namespace
} // namespace densim
