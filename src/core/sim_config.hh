/**
 * @file
 * Simulation configuration — Table III of the paper as a struct.
 *
 * Defaults reproduce the paper's SUT: 180-socket M700-class topology,
 * 95 C limit, 1 ms power-management epoch, 5 ms chip and 30 s socket
 * thermal time constants, 18 C inlet, 6.35 CFM per socket, X2150
 * P-states with the top two as boost.
 *
 * Two knobs have no Table III counterpart:
 *  - warmStart initializes the slow (30 s) ambient trackers at the
 *    analytic steady state for the configured load so short runs
 *    measure steady behaviour rather than a cold ramp;
 *  - simTimeS defaults to seconds rather than the paper's 30 minutes
 *    (the engine is happy to run paper-length simulations; benches
 *    use shorter horizons, which the warm start makes representative).
 */

#ifndef DENSIM_CORE_SIM_CONFIG_HH
#define DENSIM_CORE_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/units.hh"
#include "fault/fault_config.hh"
#include "fleet/fleet_config.hh"
#include "server/topology.hh"
#include "thermal/coupling_map.hh"
#include "workload/benchmark.hh"

namespace densim {

/** Full configuration of one simulation run. */
struct SimConfig
{
    // Workload.
    WorkloadSet workload = WorkloadSet::Computation;
    double load = 0.5;          //!< Target utilization (0, 1].

    // Horizon.
    double simTimeS = 15.0;     //!< Arrival window, seconds.
    double warmupS = 3.0;       //!< Excluded from metrics.
    double drainFactor = 3.0;   //!< Run up to drainFactor * simTimeS
                                //!< to let queued jobs finish.

    // Table III timing.
    double pmEpochS = 1e-3;     //!< Power manager interval.
    double chipTauS = 5e-3;     //!< On-chip thermal time constant.
    double socketTauS = 30.0;   //!< Socket thermal time constant.
    double histTauS = 10.0;     //!< History filter for A-Random.

    // Table III thermals/power.
    double tLimitC = 95.0;      //!< Junction temperature limit.
    double rIntCW = 0.205;      //!< Chip internal resistance.
    double gatedFracTdp = 0.10; //!< Gated socket power / TDP.

    // Boost-dwell governor ([36], BKDG Family 16h): boost states are
    // used opportunistically but cannot be sustained — a socket
    // accumulates boost-residency credit while not boosting and
    // spends it while boosting, so a fully loaded socket settles at
    // the highest non-boost frequency while a lightly loaded one can
    // boost for essentially all of its (short) jobs.
    double boostRefillRate = 1.25; //!< Credit gained per non-boost s.
    double boostBurstS = 2.0;     //!< Credit capacity, seconds.

    // Physical build.
    TopologySpec topo{};            //!< Defaults to the SUT.
    CouplingParams coupling{};      //!< Calibrated cartridge physics.

    // Workload migration (Sec. VI: the scheduling strategy can just
    // as easily choose sockets for migration; useful when jobs are
    // long). Disabled by default to match the paper's evaluation.
    bool migrationEnabled = false;
    double migrationIntervalS = 0.1;   //!< Between migration passes.
    double migrationCostS = 2e-3;      //!< Nominal seconds lost/move.
    double migrationMinRemainingS = 0.05; //!< Only move long jobs.
    int migrationMaxPerPass = 8;       //!< Bound per-pass disruption.

    // Temperature sensing. The schedulers act on *sensor* readings,
    // not oracle temperatures; real thermal sensors are noisy and
    // quantized (X2150-class parts report in ~1 C steps). Defaults
    // keep sensing ideal so the paper's experiments are unaffected.
    double sensorNoiseC = 0.0;  //!< Gaussian sigma per reading.
    double sensorQuantC = 0.0;  //!< Reading quantization step; 0=off.

    /**
     * Zone-ambient timeline sampling period, seconds; 0 disables.
     * When enabled, SimMetrics carries the mean ambient temperature
     * of each zone at this cadence — the Fig. 4-style view of the
     * thermal field developing. Samples lie on the exact fixed grid
     * k * timelineSampleS (obs/timeline.hh documents the catch-up/
     * skip semantics when the period is shorter than pmEpochS).
     */
    double timelineSampleS = 0.0;

    // Observability sinks (src/obs, DESIGN.md Sec. 10). Set by the
    // CLI/config keys "obs.tracePath" / "obs.timelinePath"; each run
    // writes its file when the run finishes. Experiment::runAll
    // rewrites both to per-run names so parallel grid cells never
    // collide (obs::perRunPath).
    /**
     * Chrome trace_event JSON output path; "" disables. Phase-timer
     * events require a DENSIM_OBS build — without it the engine
     * warns and writes a trace containing only counter tracks.
     */
    std::string obsTracePath;
    /**
     * Zone-ambient timeline as JSONL (one strict-JSON object per
     * sample); "" disables. Needs timelineSampleS > 0 to produce
     * rows; works in every build.
     */
    std::string obsTimelinePath;

    /**
     * Constant electrical fan power (W) added to the energy integral;
     * 0 excludes cooling energy (the paper's figures are socket-only).
     * A realistic value for the SUT is
     * `Fan(Fan::activeCoolSpec(), 5).powerForCfm(400.0)`.
     */
    double fanPowerW = 0.0;

    // Engine performance knobs. The event-heap completion queue and
    // the incremental idle list are exact and always on; these two
    // control the remaining hot-path strategies.
    /**
     * Maintain the socket ambient-target field by applying per-socket
     * power deltas through the coupling map (O(changed x downstream)
     * per epoch) instead of re-evaluating the full field (O(n x
     * downstream)). Results agree with the full evaluation to
     * rounding accuracy (~1e-12 C; the field is refreshed
     * periodically to bound drift). Disable to force the historical
     * recompute-from-scratch path — the reference for the
     * differential tests.
     */
    bool incrementalThermal = true;
    /**
     * Ambient quantization step (C) for the per-socket DVFS memo.
     * At 0 (default) the memo only reuses a decision when (workload
     * set, boost cap, ambient) match exactly — bit-exact. A positive
     * step coarsens the ambient key so near-steady sockets skip the
     * P-state search entirely, introducing a bounded approximation
     * (power error <= step x leakage slope per socket); useful for
     * large design-space sweeps.
     */
    double dvfsMemoQuantC = 0.0;
    /**
     * Hand schedulers the per-socket prediction memo
     * (sched/prediction.hh): placement and downstream-penalty results
     * are reused within an epoch and dropped the moment any input
     * moves. Decisions are bit-identical either way (pinned by the
     * perf-equivalence bank); the knob exists so the differential
     * tests can run the pristine uncached arithmetic.
     */
    bool schedPredictionCache = true;
    /**
     * Crossover fraction for the batched ambient-target refresh: when
     * more than this fraction of sockets changed power in one epoch,
     * the incremental delta scatter is replaced by one flat
     * coupling-field pass. 0 (default) disables the heuristic — the
     * exact mode; a positive fraction only changes when accumulated
     * delta rounding (~1e-12 C) is flushed, so metrics may differ in
     * the last bits (tolerance mode, bounded by the perf-equivalence
     * crossover test).
     */
    double ambientBatchFrac = 0.0;
    /**
     * Skip the busy-sum remove/add round-trip in setSocketRate when a
     * socket's contributions (progress rate, relative frequency,
     * boost flag) are bitwise unchanged — the common case of a
     * powerManage epoch confirming last epoch's DVFS decision. Exact:
     * the skip can only trigger on already-summed sockets inside
     * powerManage, whose piecewise sums are rebuilt from scratch
     * before the next read (rebuildScalars), so metrics are
     * bit-identical either way (pinned by the perf-equivalence
     * bank). The knob exists for the differential test.
     */
    bool busySumSkip = true;
    /**
     * Prune redundant powerManage re-decisions: when the DVFS memo
     * already holds this socket's decision for the exact (workload
     * set, boost cap, ambient) inputs AND the applied state (P-state,
     * socket power) bitwise-equals that decision, skip chooseDvfs and
     * setSocketRate entirely — only the progress sync and the
     * completion-time recompute (which depend on `now`) still run.
     * Exact by construction: every field setSocketRate would write is
     * a pure function of inputs that did not move, and the piecewise
     * sums are rebuilt from scratch at the end of the epoch
     * (rebuildScalars). At the exact memo default (dvfsMemoQuantC =
     * 0) the prune only fires at a bitwise thermal fixed point; its
     * payoff is the quantized-memo design-space sweeps, where most
     * epochs confirm the previous decision. Auto-disabled while
     * faults are armed, where chooseDvfs consumes fault RNG draws
     * that must not be skipped.
     * Bit-identical either way (pinned by the perf-equivalence bank);
     * the knob exists for the differential test.
     */
    bool pmDecisionPrune = true;

    /**
     * Fault injection and graceful degradation (src/fault, DESIGN.md
     * Sec. 11), set via the "fault.*" config keys. Disarmed by
     * default; with no fault key set the engine takes no fault branch
     * at all and SimMetrics stay bit-identical to the fault-free
     * build (pinned by tests/fault_test.cc).
     */
    FaultConfig fault{};

    /**
     * Fleet-scale sharded simulation (src/fleet, DESIGN.md Sec. 15),
     * set via the "fleet.*" config keys. Off by default
     * (fleet.chassis = 0); a plain run never constructs a FleetSim.
     */
    FleetConfig fleet{};

    // Crash-safe checkpointing (src/ckpt, DESIGN.md Sec. 16), set via
    // the "ckpt.*" config keys / --checkpoint. Both knobs are
    // excluded from the run digest a checkpoint is validated against:
    // where a snapshot is written — or how often — must not make the
    // snapshot refuse to load.
    /**
     * Checkpoint file path; "" disables checkpointing. The file is
     * replaced atomically (temp + fsync + rename) on every cadence
     * hit and on SIGINT/SIGTERM, so it always holds a complete,
     * loadable snapshot.
     */
    std::string ckptPath;
    /**
     * Checkpoint cadence in *simulated* seconds; 0 means only on
     * signal-triggered shutdown. Cadence points lie on the fixed grid
     * k * ckptEveryS, evaluated at epoch (or fleet-window)
     * boundaries. Checkpointing is read-only: a run with it enabled
     * is bit-identical to the same run without.
     */
    double ckptEveryS = 0.0;

    // Run control.
    std::uint64_t seed = 42;    //!< Drives workload and policy RNG.
    bool warmStart = true;      //!< Analytic steady-state init.

    // Typed views of the raw knobs above. The struct itself stays
    // aggregate-initializable plain doubles (it is filled from JSON by
    // config_io and swept numerically by the benches — the engine's
    // hot-path boundary, DESIGN.md Sec. 9); these accessors are the
    // dimension-checked way into the model layer.
    Celsius tLimit() const { return Celsius(tLimitC); }
    KelvinPerWatt rInt() const { return KelvinPerWatt(rIntCW); }
    Seconds pmEpoch() const { return Seconds(pmEpochS); }
    Seconds simTime() const { return Seconds(simTimeS); }
    Watts fanPower() const { return Watts(fanPowerW); }

    /** Validate ranges; fatal() on nonsense. */
    void validate() const;
};

} // namespace densim

#endif // DENSIM_CORE_SIM_CONFIG_HH
