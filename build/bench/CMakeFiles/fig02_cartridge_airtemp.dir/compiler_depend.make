# Empty compiler generated dependencies file for fig02_cartridge_airtemp.
# This may be replaced when dependencies are built.
