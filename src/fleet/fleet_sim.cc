#include "fleet/fleet_sim.hh"

#include <algorithm>
#include <cmath>

#include "core/invariant.hh"
#include "obs/trace.hh"
#include "sched/factory.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "workload/job_generator.hh"

namespace densim {

FleetSim::FleetSim(const SimConfig &config,
                   const std::string &scheduler)
    : base_(config)
{
    if (!config.fleet.enabled())
        fatal("FleetSim: fleet.chassis is 0 — fleet mode is off "
              "(set fleet.chassis or run DenseServerSim directly)");
    config.fleet.validate(config.pmEpochS);
    fleetSeed_ = config.fleet.effectiveSeed(config.seed);

    shards_.reserve(config.fleet.chassis);
    for (std::size_t shard = 0; shard < config.fleet.chassis;
         ++shard) {
        SimConfig shardConfig = config;
        // Every shard stream descends from domainSeed, never from
        // xor-ing a shard index into the user seed: the engine's
        // internal streams (policy, sensor, fault) are derived from
        // this already-avalanched value, so no shard's stream can
        // alias another shard's or any fault stream.
        shardConfig.seed = domainSeed(fleetSeed_, shard,
                                      fleet_stream::kShardEngine);
        // One obs sink per shard, following the Experiment per-run
        // path convention.
        if (!shardConfig.obsTracePath.empty())
            shardConfig.obsTracePath =
                obs::perRunPath(shardConfig.obsTracePath, shard);
        if (!shardConfig.obsTimelinePath.empty())
            shardConfig.obsTimelinePath =
                obs::perRunPath(shardConfig.obsTimelinePath, shard);
        shards_.push_back(std::make_unique<DenseServerSim>(
            shardConfig, makeScheduler(scheduler)));
    }
    dispatcher_ = makeFleetDispatcher(config.fleet);
}

FleetSim::~FleetSim() = default;

std::size_t
FleetSim::totalSockets() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_)
        total += shard->topology().numSockets();
    return total;
}

std::vector<ShardSummary>
FleetSim::gatherSummaries() const
{
    std::vector<ShardSummary> summaries;
    summaries.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const DenseServerSim &shard = *shards_[s];
        ShardSummary summary;
        summary.shard = s;
        summary.headroomC = shard.thermalHeadroomC();
        summary.powerW = shard.totalPowerW();
        summary.backlog = shard.backlog();
        summary.idleSockets = shard.idleSockets();
        summary.jobsCompleted = shard.jobsCompletedSoFar();
        summaries.push_back(summary);
    }
    return summaries;
}

void
FleetSim::beginRun()
{
    if (fleetOpen_)
        fatal("FleetSim::beginRun: run already open (finishRun?)");
    const std::size_t n = shards_.size();

    // The cluster arrival stream: one Poisson process sized for the
    // whole fleet's sockets, fanned out window by window.
    arrivals_ = std::make_unique<JobGenerator>(
        base_.workload, base_.load, static_cast<int>(totalSockets()),
        domainSeed(fleetSeed_, 0, fleet_stream::kArrivals));

    registry_.resetValues();
    windowsCtr_ = &registry_.counter("fleet/windows");
    dispatchedCtr_ = &registry_.counter("fleet/jobsDispatched");

    metrics_ = FleetMetrics{};
    metrics_.chassis = n;
    metrics_.dispatchedPerShard.assign(n, 0);

    for (auto &shard : shards_)
        shard->beginRun();

    batches_.assign(n, {});
    arrivalsOpen_ = true;
    window_ = 0;
    fleetOpen_ = true;
}

bool
FleetSim::advanceWindow(unsigned threads)
{
    if (!fleetOpen_)
        fatal("FleetSim::advanceWindow: no open run (beginRun?)");
    const std::size_t n = shards_.size();
    const double windowS = base_.fleet.epochS;
    const auto epochsPerWindow = static_cast<std::size_t>(
        std::round(windowS / base_.pmEpochS));

    // --- barrier: serial, shard-id order ------------------------------
    const std::vector<ShardSummary> summaries = gatherSummaries();

    if (arrivalsOpen_) {
        // Windows end at (k+1) * epochS by multiplication, not
        // accumulation, so the fan-out boundaries do not drift
        // from float addition however many windows run.
        const double w1 = static_cast<double>(window_ + 1) * windowS;
        const double horizonS = std::min(w1, base_.simTimeS);
        for (const Job &job : arrivals_->nextWindow(horizonS)) {
            const std::size_t target =
                dispatcher_->pick(job, summaries);
            DENSIM_CHECK(target < n, "dispatcher picked shard ",
                         target, " of ", n);
            batches_[target].push_back(job);
            ++metrics_.dispatchedPerShard[target];
            ++metrics_.jobsArrived;
            ++metrics_.jobsDispatched;
            dispatchedCtr_->inc();
        }
        for (std::size_t s = 0; s < n; ++s) {
            if (!batches_[s].empty()) {
                shards_[s]->submitJobs(batches_[s]);
                batches_[s].clear();
            }
        }
        if (w1 >= base_.simTimeS) {
            arrivalsOpen_ = false;
            for (auto &shard : shards_)
                shard->closeArrivals();
        }
    }

    bool anyPending = false;
    for (const auto &shard : shards_)
        anyPending = anyPending || shard->epochPending();
    if (!anyPending)
        return false;

    // --- parallel section: disjoint shard state only ------------------
    parallelFor(n, threads, [&](std::size_t s) {
        DenseServerSim &shard = *shards_[s];
        for (std::size_t e = 0;
             e < epochsPerWindow && shard.epochPending(); ++e)
            shard.advanceEpoch();
    });
    windowsCtr_->inc();
    ++window_;
    return true;
}

FleetMetrics
FleetSim::finishRun()
{
    if (!fleetOpen_)
        fatal("FleetSim::finishRun: no open run (beginRun?)");
    const std::size_t n = shards_.size();

    // --- finalization: serial, shard-id order -------------------------
    metrics_.perShard.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        metrics_.perShard.push_back(shards_[s]->finishRun());
        registry_.mergePrefixed(shards_[s]->observability(),
                                "shard" + std::to_string(s) + "/");
    }
    rollUpFleetMetrics(metrics_);
    fleetOpen_ = false;
    arrivals_.reset();
    return std::move(metrics_);
}

FleetMetrics
FleetSim::run(unsigned threads)
{
    beginRun();
    while (advanceWindow(threads)) {
    }
    return finishRun();
}

} // namespace densim
