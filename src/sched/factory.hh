/**
 * @file
 * Construction of scheduling policies by their paper names.
 */

#ifndef DENSIM_SCHED_FACTORY_HH
#define DENSIM_SCHED_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hh"

namespace densim {

/**
 * All policy names in the paper's reporting order:
 * CF, HF, Random, MinHR, CN, Balanced, Balanced-L, A-Random,
 * Predictive, CP.
 */
const std::vector<std::string> &allSchedulerNames();

/** Existing-scheme subset (everything but CP). */
const std::vector<std::string> &existingSchedulerNames();

/** Create a policy by name; fails on unknown names. */
std::unique_ptr<Scheduler> makeScheduler(const std::string &name);

} // namespace densim

#endif // DENSIM_SCHED_FACTORY_HH
