#include "server/sut.hh"

namespace densim {

ServerTopology
makeSutTopology()
{
    return ServerTopology(TopologySpec{});
}

ServerTopology
makeTwoSocketCoupled()
{
    TopologySpec spec;
    spec.rows = 1;
    spec.cartridgesPerRow = 1;
    spec.zonesPerCartridge = 2;
    spec.socketsPerZone = 1;
    return ServerTopology(spec);
}

ServerTopology
makeTwoSocketUncoupled()
{
    TopologySpec spec;
    spec.rows = 2;
    spec.cartridgesPerRow = 1;
    spec.zonesPerCartridge = 1;
    // Keep the sink mix identical to the coupled build: one 18-fin,
    // one 30-fin — only the coupling differs between the two designs.
    spec.socketsPerZone = 1;
    spec.alternateSinksByRow = true;
    return ServerTopology(spec);
}

CouplingParams
defaultCouplingParams()
{
    return CouplingParams{};
}

CouplingMap
makeCouplingMap(const ServerTopology &topo, const CouplingParams &params)
{
    return CouplingMap(topo.sites(), params);
}

} // namespace densim
