/**
 * @file
 * First-order thermal transient trackers.
 *
 * Dense-server thermals live on two very different time scales
 * (Table III): the chip responds within ~5 ms while the socket /
 * heatsink / air mass responds over ~30 s. The simulator models each
 * as a first-order lag toward a quasi-static target; FirstOrderTracker
 * performs the exact exponential update so time steps of any size are
 * unconditionally stable and step-size independent.
 */

#ifndef DENSIM_THERMAL_TRANSIENT_HH
#define DENSIM_THERMAL_TRANSIENT_HH

#include <cstddef>

namespace densim {

/**
 * Exact integrator for dx/dt = (target - x) / tau with piecewise-
 * constant target.
 */
class FirstOrderTracker
{
  public:
    /**
     * @param tau_seconds Time constant (> 0).
     * @param initial Initial value.
     */
    explicit FirstOrderTracker(double tau_seconds, double initial = 0.0);

    /** Advance @p dt_seconds toward @p target; returns new value. */
    double step(double target, double dt_seconds);

    /** Current value. */
    double value() const { return value_; }

    /** Force the value (used by warm start). */
    void reset(double value) { value_ = value; }

    /** Time constant in seconds. */
    double tau() const { return tau_; }

  private:
    double tau_;
    double value_;
};

/**
 * Response factor 1 - exp(-dt/tau): the fraction of the gap to the
 * target closed in one step. Exposed so analytic tests can check the
 * tracker against the closed form.
 */
double responseFraction(double dt_seconds, double tau_seconds);

/**
 * Advance a whole bank of first-order trackers that share one time
 * constant: values[i] += (targets[i] - values[i]) * response_fraction.
 *
 * This is the SoA form of FirstOrderTracker::step for the engine's
 * per-socket banks (ambient, chip rise, history), where every tracker
 * in a bank has the same tau and sees the same dt. Computing the
 * response fraction once per bank (instead of one exp() per socket)
 * is bit-identical to stepping each tracker individually because the
 * per-element update is literally the same expression with the same
 * operand values.
 *
 * @param response_fraction responseFraction(dt, tau) for the bank.
 */
void firstOrderStepBatch(double *values, const double *targets,
                         std::size_t n, double response_fraction);

/**
 * Same as firstOrderStepBatch with a single shared target — used for
 * banks relaxing toward one field value (e.g. warm-start settling).
 */
void firstOrderStepBatchUniform(double *values, double target,
                                std::size_t n, double response_fraction);

} // namespace densim

#endif // DENSIM_THERMAL_TRANSIENT_HH
