file(REMOVE_RECURSE
  "CMakeFiles/fig14_scheduler_performance.dir/fig14_scheduler_performance.cc.o"
  "CMakeFiles/fig14_scheduler_performance.dir/fig14_scheduler_performance.cc.o.d"
  "fig14_scheduler_performance"
  "fig14_scheduler_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scheduler_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
