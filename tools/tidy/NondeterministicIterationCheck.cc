#include "NondeterministicIterationCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace densim::tidy {

namespace {

/// Collects writes whose target is declared outside the loop body.
class ExternalWriteVisitor
    : public RecursiveASTVisitor<ExternalWriteVisitor>
{
  public:
    explicit ExternalWriteVisitor(const Stmt *body) : body_(body)
    {
        collectLocals(body);
    }

    bool found() const { return found_; }
    SourceLocation where() const { return where_; }

    bool VisitBinaryOperator(const BinaryOperator *op)
    {
        if (op->isAssignmentOp() || op->isCompoundAssignmentOp())
            noteTarget(op->getLHS(), op->getOperatorLoc());
        return true;
    }

    bool VisitUnaryOperator(const UnaryOperator *op)
    {
        if (op->isIncrementDecrementOp())
            noteTarget(op->getSubExpr(), op->getOperatorLoc());
        return true;
    }

    bool VisitCXXMemberCallExpr(const CXXMemberCallExpr *call)
    {
        const CXXMethodDecl *method = call->getMethodDecl();
        if (method == nullptr || method->isConst())
            return true;
        noteTarget(call->getImplicitObjectArgument(),
                   call->getExprLoc());
        return true;
    }

    bool VisitCXXOperatorCallExpr(const CXXOperatorCallExpr *call)
    {
        if (call->isAssignmentOp() && call->getNumArgs() > 0)
            noteTarget(call->getArg(0), call->getOperatorLoc());
        return true;
    }

  private:
    void collectLocals(const Stmt *stmt)
    {
        if (stmt == nullptr)
            return;
        if (const auto *decl = dyn_cast<DeclStmt>(stmt)) {
            for (const Decl *d : decl->decls())
                if (const auto *var = dyn_cast<VarDecl>(d))
                    locals_.insert(var);
        }
        for (const Stmt *child : stmt->children())
            collectLocals(child);
    }

    void noteTarget(const Expr *target, SourceLocation loc)
    {
        if (found_ || target == nullptr)
            return;
        target = target->IgnoreParenImpCasts();
        if (const auto *member = dyn_cast<MemberExpr>(target)) {
            const Expr *base =
                member->getBase()->IgnoreParenImpCasts();
            if (isa<CXXThisExpr>(base)) {
                found_ = true;
                where_ = loc;
                return;
            }
            noteTarget(base, loc);
            return;
        }
        if (const auto *sub = dyn_cast<ArraySubscriptExpr>(target)) {
            noteTarget(sub->getBase(), loc);
            return;
        }
        if (const auto *ref = dyn_cast<DeclRefExpr>(target)) {
            const auto *var = dyn_cast<VarDecl>(ref->getDecl());
            if (var != nullptr && locals_.count(var) == 0) {
                found_ = true;
                where_ = loc;
            }
        }
    }

    const Stmt *body_;
    llvm::SmallPtrSet<const VarDecl *, 16> locals_;
    bool found_ = false;
    SourceLocation where_;
};

} // namespace

void
NondeterministicIterationCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        cxxForRangeStmt(
            hasRangeInit(expr(hasType(qualType(hasDeclaration(
                namedDecl(hasAnyName("::std::unordered_map",
                                     "::std::unordered_set",
                                     "::std::unordered_multimap",
                                     "::std::unordered_multiset"))))))))
            .bind("loop"),
        this);
}

void
NondeterministicIterationCheck::check(
    const MatchFinder::MatchResult &result)
{
    const auto *loop = result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
    if (loop == nullptr)
        return;
    ExternalWriteVisitor visitor(loop->getBody());
    visitor.TraverseStmt(const_cast<Stmt *>(loop->getBody()));
    if (!visitor.found())
        return;
    diag(loop->getForLoc(),
         "iteration over an unordered container writes sim-visible "
         "state; iteration order is unspecified — iterate a sorted "
         "snapshot or use std::map/std::set");
    diag(visitor.where(), "state escaping the loop is written here",
         DiagnosticIDs::Note);
}

} // namespace densim::tidy
