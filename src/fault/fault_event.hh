/**
 * @file
 * The fault event vocabulary: what can happen to the server, and to
 * which socket, at which simulated time.
 *
 * Timeline kinds (FanDerate .. AbortRun) are produced by the seeded
 * FaultTimeline; response kinds (EmergencyThrottle .. JobRequeue) are
 * recorded by the engine as the escalation ladder reacts. Both flow
 * into the same per-run fault log (fault_log.hh) so the log reads as
 * a complete cause-and-effect record of the degradation.
 */

#ifndef DENSIM_FAULT_FAULT_EVENT_HH
#define DENSIM_FAULT_FAULT_EVENT_HH

#include <cstdint>
#include <limits>

namespace densim {

/** What happened. */
enum class FaultKind : std::uint8_t
{
    // Injected by the timeline.
    FanDerate,     //!< Fan bank capped at a speed fraction (value).
    FanRestore,    //!< Fan bank back to nominal speed.
    SensorStuck,   //!< Sensor freezes at its last reading.
    SensorNoisy,   //!< Sensor gains Gaussian error (sigma = value).
    SensorDropout, //!< Sensor stops reporting.
    SensorRestore, //!< Sensor healthy again.
    SocketFail,    //!< Socket dies; its job is re-queued.
    SocketRecover, //!< Failed socket rejoins the idle pool.
    AbortRun,      //!< Harness fault: the run throws.

    // Recorded by the engine's graceful-degradation response.
    EmergencyThrottle, //!< Sustained over-trip: forced lowest P-state.
    ThrottleRelease,   //!< Chip cooled below the limit again.
    Quarantine,        //!< Throttle failed: socket taken offline.
    QuarantineExit,    //!< Quarantined socket cooled and readmitted.
    JobRequeue,        //!< A displaced job went back to the queue.
};

/** Stable name of a fault kind (log/trace vocabulary). */
const char *faultKindName(FaultKind kind);

/** Socket id meaning "the whole server" (fan/abort events). */
inline constexpr std::uint32_t kFaultNoSocket =
    std::numeric_limits<std::uint32_t>::max();

/** One fault occurrence. */
struct FaultEvent
{
    double timeS = 0.0; //!< Simulated time of the event.
    FaultKind kind = FaultKind::FanDerate;
    std::uint32_t socket = kFaultNoSocket;
    double value = 0.0; //!< Kind-specific payload (speed frac, sigma,
                        //!< chip temperature at an escalation, ...).
};

} // namespace densim

#endif // DENSIM_FAULT_FAULT_EVENT_HH
