/**
 * @file
 * Coolest Neighbors (CN) [54] (Sec. IV-A): a chip-level CF variant
 * that scores each candidate by its own temperature plus the mean
 * temperature of its physical neighbours, accounting for lateral
 * heat transfer. Neighbours of a socket are its same-zone partner(s)
 * and the sockets one zone up/downstream in the same row.
 */

#ifndef DENSIM_SCHED_COOLEST_NEIGHBORS_HH
#define DENSIM_SCHED_COOLEST_NEIGHBORS_HH

#include "sched/scheduler.hh"

namespace densim {

/** Coolest-neighbors policy. */
class CoolestNeighbors : public Scheduler
{
  public:
    const char *name() const override { return "CN"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;
};

} // namespace densim

#endif // DENSIM_SCHED_COOLEST_NEIGHBORS_HH
