#include "HotEffectsCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace densim::tidy {

namespace {

/** Annotation payloads of src/core/effects.hh, if any. */
struct EffectMarks
{
    bool hot = false;
    bool cold = false;
    bool allocates = false;
};

EffectMarks
marksOf(const FunctionDecl *fn)
{
    EffectMarks m;
    if (fn == nullptr)
        return m;
    for (const auto *attr : fn->specific_attrs<AnnotateAttr>()) {
        const StringRef ann = attr->getAnnotation();
        if (ann == "densim::hot")
            m.hot = true;
        else if (ann == "densim::cold")
            m.cold = true;
        else if (ann.starts_with("densim::allocates:"))
            m.allocates = true;
    }
    return m;
}

/** The hot contract applies to a function that is marked hot itself
 *  or overrides a hot virtual (the family-rooting rule), and is not
 *  cut cold. */
bool
underHotContract(const FunctionDecl *fn)
{
    const EffectMarks m = marksOf(fn);
    if (m.cold)
        return false;
    if (m.hot)
        return true;
    if (const auto *method = dyn_cast<CXXMethodDecl>(fn))
        for (const CXXMethodDecl *base : method->overridden_methods())
            if (underHotContract(base))
                return true;
    return false;
}

} // namespace

void
HotEffectsCheck::registerMatchers(MatchFinder *finder)
{
    const auto inHotFn =
        hasAncestor(functionDecl().bind("enclosing"));
    finder->addMatcher(cxxNewExpr(inHotFn).bind("new"), this);
    finder->addMatcher(cxxDeleteExpr(inHotFn).bind("delete"), this);
    finder->addMatcher(cxxThrowExpr(inHotFn).bind("throw"), this);
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::malloc", "::calloc", "::realloc", "::free",
                     "::aligned_alloc", "::strdup",
                     "::std::make_unique", "::std::make_shared",
                     "::std::to_string"))),
                 inHotFn)
            .bind("alloc-call"),
        this);
    finder->addMatcher(
        declRefExpr(to(varDecl(hasAnyName("::std::cout", "::std::cerr",
                                          "::std::clog"))),
                    inHotFn)
            .bind("io"),
        this);
}

void
HotEffectsCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *fn =
        result.Nodes.getNodeAs<FunctionDecl>("enclosing");
    if (fn == nullptr || !underHotContract(fn))
        return;
    const EffectMarks m = marksOf(fn);
    if (const auto *e = result.Nodes.getNodeAs<CXXNewExpr>("new")) {
        if (!m.allocates)
            diag(e->getExprLoc(),
                 "operator new in hot function %0; sanction with "
                 "DENSIM_ALLOCATES(reason) or hoist the allocation")
                << fn;
        return;
    }
    if (const auto *e =
            result.Nodes.getNodeAs<CXXDeleteExpr>("delete")) {
        if (!m.allocates)
            diag(e->getExprLoc(),
                 "operator delete in hot function %0; sanction with "
                 "DENSIM_ALLOCATES(reason) or hoist the free")
                << fn;
        return;
    }
    if (const auto *e =
            result.Nodes.getNodeAs<CXXThrowExpr>("throw")) {
        // A sanction never covers throw: only DENSIM_COLD (checked
        // above) or restructuring removes it from the hot contract.
        diag(e->getThrowLoc(),
             "throw in hot function %0; hot paths report via the "
             "return value or panic(), or the function is DENSIM_COLD")
            << fn;
        return;
    }
    if (const auto *e =
            result.Nodes.getNodeAs<CallExpr>("alloc-call")) {
        if (!m.allocates)
            diag(e->getExprLoc(),
                 "allocating call in hot function %0; sanction with "
                 "DENSIM_ALLOCATES(reason) or hoist the allocation")
                << fn;
        return;
    }
    if (const auto *e = result.Nodes.getNodeAs<DeclRefExpr>("io")) {
        diag(e->getExprLoc(),
             "iostream I/O in hot function %0; route output through "
             "the observability sinks (DESIGN.md Sec. 10)")
            << fn;
    }
}

} // namespace densim::tidy
