/**
 * @file
 * Figure 1 — power per 1U and sockets per 1U for ~400 server designs
 * (2007–2016) plus blades and density-optimized systems.
 *
 * Paper values (Sec. I): 1U 208 W/U & 1.79 sockets/U, 2U 147 & 1.15,
 * Other 114 & 0.78, Blade 421 & 3.47, DensityOpt 588 & ~25 — density-
 * optimized designs show ~50% more power density and ~6x the socket
 * density of blades. densim regenerates the survey from its
 * statistical record synthesizer (records are not published; see
 * DESIGN.md substitution #4).
 */

#include <iostream>

#include "survey/survey.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figure 1: server design survey (synthesized, "
                 "seed 2016) ===\n\n";

    const auto records = synthesizeSurvey(2016);
    const auto summaries = summarize(records);

    TableWriter table({"Class", "Designs", "Power/U (W)",
                       "Sockets/U", "Paper Power/U", "Paper Sockets/U"});
    const std::vector<std::pair<double, double>> paper{
        {208.0, 1.79}, {147.0, 1.15}, {114.0, 0.78},
        {421.0, 3.47}, {588.0, 25.0}};
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const ClassSummary &s = summaries[i];
        table.newRow()
            .cell(serverClassName(s.cls))
            .cell(static_cast<long long>(s.count))
            .cell(s.meanPowerPerU, 1)
            .cell(s.meanSocketsPerU, 2)
            .cell(paper[i].first, 1)
            .cell(paper[i].second, 2);
    }
    table.print(std::cout);

    double blade_p = 1, blade_s = 1, dense_p = 0, dense_s = 0;
    for (const ClassSummary &s : summaries) {
        if (s.cls == ServerClass::Blade) {
            blade_p = s.meanPowerPerU;
            blade_s = s.meanSocketsPerU;
        } else if (s.cls == ServerClass::DensityOpt) {
            dense_p = s.meanPowerPerU;
            dense_s = s.meanSocketsPerU;
        }
    }
    std::cout << "\nDensityOpt vs Blade: " << formatFixed(dense_p / blade_p, 2)
              << "x power density, " << formatFixed(dense_s / blade_s, 1)
              << "x socket density (paper: ~1.4x, ~6-7x)\n";
    return 0;
}
