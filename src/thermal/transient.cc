#include "thermal/transient.hh"

#include <cmath>

#include "util/logging.hh"

namespace densim {

FirstOrderTracker::FirstOrderTracker(double tau_seconds, double initial)
    : tau_(tau_seconds), value_(initial)
{
    if (tau_ <= 0.0)
        fatal("FirstOrderTracker: tau must be positive, got ", tau_);
}

double
FirstOrderTracker::step(double target, double dt_seconds)
{
    value_ += (target - value_) * responseFraction(dt_seconds, tau_);
    return value_;
}

double
responseFraction(double dt_seconds, double tau_seconds)
{
    if (dt_seconds < 0.0)
        panic("negative time step ", dt_seconds);
    return 1.0 - std::exp(-dt_seconds / tau_seconds);
}

void
firstOrderStepBatch(double *values, const double *targets,
                    std::size_t n, double response_fraction)
{
    for (std::size_t i = 0; i < n; ++i)
        values[i] += (targets[i] - values[i]) * response_fraction;
}

void
firstOrderStepBatchUniform(double *values, double target, std::size_t n,
                           double response_fraction)
{
    for (std::size_t i = 0; i < n; ++i)
        values[i] += (target - values[i]) * response_fraction;
}

} // namespace densim
