file(REMOVE_RECURSE
  "CMakeFiles/densim_core.dir/config_io.cc.o"
  "CMakeFiles/densim_core.dir/config_io.cc.o.d"
  "CMakeFiles/densim_core.dir/dense_server_sim.cc.o"
  "CMakeFiles/densim_core.dir/dense_server_sim.cc.o.d"
  "CMakeFiles/densim_core.dir/experiment.cc.o"
  "CMakeFiles/densim_core.dir/experiment.cc.o.d"
  "CMakeFiles/densim_core.dir/metrics.cc.o"
  "CMakeFiles/densim_core.dir/metrics.cc.o.d"
  "CMakeFiles/densim_core.dir/metrics_io.cc.o"
  "CMakeFiles/densim_core.dir/metrics_io.cc.o.d"
  "CMakeFiles/densim_core.dir/sim_config.cc.o"
  "CMakeFiles/densim_core.dir/sim_config.cc.o.d"
  "libdensim_core.a"
  "libdensim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
