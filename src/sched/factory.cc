#include "sched/factory.hh"

#include "sched/adaptive_random.hh"
#include "sched/balanced.hh"
#include "sched/balanced_locations.hh"
#include "sched/coolest_first.hh"
#include "sched/coolest_neighbors.hh"
#include "sched/coupling_predictor.hh"
#include "sched/hottest_first.hh"
#include "sched/min_hr.hh"
#include "sched/predictive.hh"
#include "sched/random_sched.hh"
#include "util/logging.hh"

namespace densim {

const std::vector<std::string> &
allSchedulerNames()
{
    static const std::vector<std::string> names{
        "CF",       "HF",         "Random",     "MinHR",
        "CN",       "Balanced",   "Balanced-L", "A-Random",
        "Predictive", "CP",
    };
    return names;
}

const std::vector<std::string> &
existingSchedulerNames()
{
    static const std::vector<std::string> names{
        "CF",       "HF",         "Random",   "MinHR",    "CN",
        "Balanced", "Balanced-L", "A-Random", "Predictive",
    };
    return names;
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string &scheduler_name)
{
    if (scheduler_name == "CF")
        return std::make_unique<CoolestFirst>();
    if (scheduler_name == "HF")
        return std::make_unique<HottestFirst>();
    if (scheduler_name == "Random")
        return std::make_unique<RandomSched>();
    if (scheduler_name == "MinHR")
        return std::make_unique<MinHr>();
    if (scheduler_name == "CN")
        return std::make_unique<CoolestNeighbors>();
    if (scheduler_name == "Balanced")
        return std::make_unique<Balanced>();
    if (scheduler_name == "Balanced-L")
        return std::make_unique<BalancedLocations>();
    if (scheduler_name == "A-Random")
        return std::make_unique<AdaptiveRandom>();
    if (scheduler_name == "Predictive")
        return std::make_unique<Predictive>();
    if (scheduler_name == "CP")
        return std::make_unique<CouplingPredictor>();
    if (scheduler_name == "CP-nocoupling")
        return std::make_unique<CouplingPredictor>(0.0, false);
    if (scheduler_name == "CP-global")
        return std::make_unique<CouplingPredictor>(1.0, true);
    fatal("unknown scheduler '", scheduler_name, "'");
}

} // namespace densim
