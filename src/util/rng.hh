/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * densim implements its own generator (xoshiro256** seeded through
 * SplitMix64) instead of relying on std::mt19937 + std::*_distribution
 * so that simulation results are bit-identical across standard library
 * implementations. Every stochastic component of the simulator takes an
 * explicit Rng (or seed), never hidden global state.
 */

#ifndef DENSIM_UTIL_RNG_HH
#define DENSIM_UTIL_RNG_HH

#include <cstdint>

namespace densim {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * All distribution draws are implemented on top of nextU64() with
 * portable arithmetic only, so a given seed yields the same stream on
 * every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Marsaglia polar method. */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal value parameterized by the *underlying* normal's mu
     * and sigma: exp(mu + sigma * N(0,1)).
     */
    double lognormal(double mu, double sigma);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Derive an independent generator (for parallel components). */
    Rng split();

    /**
     * Complete generator state, exposed for checkpoint/restore. The
     * Marsaglia spare must round-trip too: normal() draws two values
     * per polar step and banks one, so dropping it would desync every
     * stream that has an odd number of normal() calls behind it.
     */
    struct Snapshot
    {
        std::uint64_t state[4]; //!< xoshiro256** words.
        bool hasSpare;          //!< A banked normal() value is pending.
        double spare;           //!< The banked value (when hasSpare).
    };

    /** Capture the full stream position. */
    Snapshot snapshot() const;

    /** Resume exactly at a previously captured position. */
    void restore(const Snapshot &snap);

  private:
    std::uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Domain-separated stream seed: a SplitMix64 chain over
 * (run_seed, shard_id, stream_tag). Each argument passes through a
 * full avalanche step before the next is folded in, so
 * (seed, shard, tag) triples that differ in any coordinate yield
 * unrelated 64-bit seeds — unlike the engine's historical
 * `seed ^ constant` stream derivation, which two shards could
 * collide by choosing seeds that differ by the constant. Fleet
 * shards derive every per-shard stream through this (stream tags in
 * fleet/fleet_sim.hh), which is what guarantees a shard's workload
 * stream can never alias another shard's — or any shard's fault
 * stream.
 */
std::uint64_t domainSeed(std::uint64_t run_seed, std::uint64_t shard_id,
                         std::uint64_t stream_tag);

} // namespace densim

#endif // DENSIM_UTIL_RNG_HH
