/**
 * @file
 * Ablation of the CouplingPredictor's two design choices (beyond the
 * paper's evaluation; DESIGN.md Sec. 6):
 *
 *  - CP-nocoupling: the downstream-penalty term removed (reduces CP
 *    to a row-restricted Predictive) — isolates how much of CP's
 *    high-load gain comes from coupling awareness;
 *  - CP-global: candidates searched over all idle sockets instead of
 *    one random row — isolates the cost of the paper's cheap
 *    random-row mechanic at low load.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== CP ablation: coupling term and row restriction "
                 "===\n\n";

    std::vector<double> loads;
    if (std::getenv("DENSIM_BENCH_FAST"))
        loads = {0.3, 0.8};
    else
        loads = {0.2, 0.4, 0.6, 0.8, 0.9};

    const std::vector<std::string> variants{
        "CF", "Predictive", "CP", "CP-nocoupling", "CP-global"};
    const auto grid = runAveragedGrid(
        variants, WorkloadSet::Computation, loads, "CF");

    std::vector<std::string> headers{"Variant"};
    for (double load : loads)
        headers.push_back(formatFixed(100 * load, 0) + "%");
    TableWriter table(std::move(headers));
    for (const std::string &variant : variants) {
        table.newRow().cell(variant);
        for (double load : loads)
            table.cell(grid.at(variant).at(load).perfVsBaseline, 3);
    }
    table.print(std::cout);

    std::cout << "\nReading: CP minus CP-nocoupling = value of the "
                 "downstream term;\nCP-global minus CP = cost of the "
                 "random-row restriction.\n";
    return 0;
}
