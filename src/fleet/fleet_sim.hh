/**
 * @file
 * Fleet-scale sharded simulation (DESIGN.md Sec. 15).
 *
 * FleetSim owns N chassis shards — each a full DenseServerSim with
 * its own config, fault timeline and RNG streams — and advances them
 * in lockstep exchange windows on a util/parallel.hh worker pool:
 *
 *   per window:  gather summaries (serial, shard-id order)
 *             -> dispatch the window's cluster arrivals (serial)
 *             -> advance every shard through the window's pm epochs
 *                (parallelFor; each work item touches only its own
 *                shard)
 *
 * Determinism: everything order-sensitive — summary gathering,
 * dispatching, metric roll-up, registry merging — runs serially in
 * shard-id order at the barrier; the parallel section is embarrass-
 * ingly parallel over disjoint shard state. FleetMetrics is
 * therefore bit-identical for any worker-thread count (pinned by
 * tests/fleet_test.cc).
 *
 * RNG domain separation: every fleet stream seed is
 * domainSeed(fleetSeed, shard, tag) with the tags below, so a
 * shard's streams can never collide with another shard's — or with
 * any engine-internal stream, which are derived from the (already
 * avalanched) per-shard seed.
 */

#ifndef DENSIM_FLEET_FLEET_SIM_HH
#define DENSIM_FLEET_FLEET_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dense_server_sim.hh"
#include "core/sim_config.hh"
#include "fleet/fleet_dispatcher.hh"
#include "fleet/fleet_metrics.hh"
#include "obs/registry.hh"

namespace densim {

/** Stream tags for domainSeed() under the fleet seed domain. */
namespace fleet_stream {
/** Per-shard engine seed (shard coordinate = shard id). */
constexpr std::uint64_t kShardEngine = 0x5eed0f5aadULL;
/** Cluster arrival stream (shard coordinate fixed at 0). */
constexpr std::uint64_t kArrivals = 0xa44174a15ULL;
} // namespace fleet_stream

/** A fleet of chassis shards driven in lockstep exchange windows. */
class FleetSim
{
  public:
    /**
     * Build a fleet from @p config (which must have
     * config.fleet.enabled()): one DenseServerSim per chassis, each
     * under its own instance of the scheduling policy named
     * @p scheduler, plus the configured dispatcher.
     */
    FleetSim(const SimConfig &config, const std::string &scheduler);

    ~FleetSim();
    FleetSim(const FleetSim &) = delete;
    FleetSim &operator=(const FleetSim &) = delete;

    /**
     * Run the fleet to completion on up to @p threads workers
     * (0 = hardware concurrency). The result is bit-identical for
     * every value of @p threads. Implemented as
     * beginRun() + advanceWindow() to exhaustion + finishRun(), in
     * the exact operation order of the historical monolithic loop.
     */
    FleetMetrics run(unsigned threads = 1);

    // --- streaming (window-stepped) interface -------------------------
    // Mirrors the engine's beginRun/advanceEpoch/finishRun: each
    // advanceWindow() is one exchange window (barrier -> dispatch ->
    // parallel shard epochs). Between calls every shard sits at an
    // epoch boundary and all cross-shard state is serial — exactly
    // the point where a checkpoint captures the whole fleet.

    /** Reset fleet state and open every shard's streamed run. */
    void beginRun();

    /**
     * Run one exchange window on up to @p threads workers. Returns
     * false — without advancing anything — once no shard has pending
     * work, at which point finishRun() collects the metrics.
     */
    bool advanceWindow(unsigned threads = 1);

    /** Finalize all shards and roll up FleetMetrics. */
    FleetMetrics finishRun();

    /** Exchange windows completed so far in the open run. */
    std::size_t windowsRun() const { return window_; }

    /** Shards in the fleet. */
    std::size_t chassis() const { return shards_.size(); }

    /** The base configuration every shard was derived from. */
    const SimConfig &config() const { return base_; }

    /** Sockets across the whole fleet. */
    std::size_t totalSockets() const;

    /** The dispatcher routing cluster arrivals. */
    const FleetDispatcher &dispatcher() const { return *dispatcher_; }

    /**
     * Fleet-level counters plus every shard's registry merged under
     * "shard<N>/" after run() — one namespace per chassis, no shared
     * instrument storage during the run.
     */
    const obs::Registry &observability() const { return registry_; }

  private:
    /**
     * Checkpoint serializer (src/ckpt): captures the window cursor,
     * arrival-stream position, dispatcher cursor, partial metrics
     * and every shard's engine state at the window barrier.
     */
    friend class CkptAccess;

    std::vector<ShardSummary> gatherSummaries() const;

    SimConfig base_;
    std::uint64_t fleetSeed_ = 0;
    std::vector<std::unique_ptr<DenseServerSim>> shards_;
    std::unique_ptr<FleetDispatcher> dispatcher_;
    obs::Registry registry_;

    // --- streaming-run state (beginRun .. finishRun) ------------------
    std::unique_ptr<JobGenerator> arrivals_; //!< Cluster Poisson stream.
    FleetMetrics metrics_;        //!< Dispatch counts accumulate here.
    std::vector<std::vector<Job>> batches_; //!< Per-shard scratch.
    obs::Counter *windowsCtr_ = nullptr;
    obs::Counter *dispatchedCtr_ = nullptr;
    std::size_t window_ = 0;      //!< Next exchange window to run.
    bool arrivalsOpen_ = true;    //!< Cluster stream still fanning out.
    bool fleetOpen_ = false;      //!< beginRun .. finishRun.
};

} // namespace densim

#endif // DENSIM_FLEET_FLEET_SIM_HH
