/**
 * @file
 * Indexed binary min-heap of (time, id) events — the completion queue
 * of the dense-server simulator.
 *
 * The simulator needs "which busy socket completes first?" at every
 * event boundary. A linear scan over all sockets is O(n) per event;
 * with tens of thousands of job events per simulated second that scan
 * dominates the whole engine (the BigHouse-style event-queue insight).
 * This heap answers top() in O(1) and supports keyed update/erase in
 * O(log n) via a position index, so completion bookkeeping tracks the
 * jobs that actually change rather than the whole server.
 *
 * Ordering is lexicographic on (key, id): equal completion times
 * resolve to the lowest socket id, matching what an ascending linear
 * scan with strict less-than would have picked — this keeps the
 * event-heap engine's event order identical to the historical scan.
 */

#ifndef DENSIM_CORE_EVENT_HEAP_HH
#define DENSIM_CORE_EVENT_HEAP_HH

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/effects.hh"
#include "core/invariant.hh"
#include "util/logging.hh"

namespace densim {

/** Min-heap over ids 0..n-1 with double keys and O(log n) updates. */
class EventHeap
{
  public:
    EventHeap() = default;

    /** Empty heap accepting ids in [0, n). */
    explicit EventHeap(std::size_t n) { reset(n); }

    /** Drop all entries and resize the id space to @p n. */
    void reset(std::size_t n)
    {
        heap_.clear();
        pos_.assign(n, npos);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Whether @p id currently has an entry. */
    bool contains(std::size_t id) const
    {
        return id < pos_.size() && pos_[id] != npos;
    }

    /** Id with the smallest (key, id); heap must be non-empty. */
    std::size_t top() const
    {
        if (heap_.empty())
            panic("EventHeap::top on empty heap");
        return heap_.front().id;
    }

    /** Key of top(); +inf when empty (no pending event). */
    double topKey() const
    {
        return heap_.empty()
                   ? std::numeric_limits<double>::infinity()
                   : heap_.front().key;
    }

    /** Insert @p id with @p key, or re-key it if already present. */
    DENSIM_ALLOCATES(
        "heap vector reaches socket-count capacity during warmup; "
        "upsert then reuses the freed slots in place")
    void upsert(std::size_t id, double key)
    {
        if (id >= pos_.size())
            panic("EventHeap: id ", id, " out of range (",
                  pos_.size(), ")");
        if (pos_[id] == npos) {
            heap_.push_back(Entry{key, id});
            pos_[id] = heap_.size() - 1;
            siftUp(heap_.size() - 1);
        } else {
            const std::size_t i = pos_[id];
            const Entry old = heap_[i];
            heap_[i].key = key;
            if (Entry{key, id} < old)
                siftUp(i);
            else
                siftDown(i);
        }
    }

    /** Remove @p id; no-op if absent. */
    void erase(std::size_t id)
    {
        if (id >= pos_.size() || pos_[id] == npos)
            return;
        const std::size_t i = pos_[id];
        pos_[id] = npos;
        const std::size_t last = heap_.size() - 1;
        if (i != last) {
            heap_[i] = heap_[last];
            pos_[heap_[i].id] = i;
            heap_.pop_back();
            if (i > 0 && heap_[i] < heap_[parent(i)])
                siftUp(i);
            else
                siftDown(i);
        } else {
            heap_.pop_back();
        }
    }

    /**
     * Assert the heap property, the position-index bijection and key
     * finiteness (DENSIM_CHECK; no-op unless checks are compiled in).
     */
    void checkInvariants() const
    {
#if DENSIM_ENABLE_CHECKS
        for (std::size_t i = 1; i < heap_.size(); ++i) {
            DENSIM_CHECK(!(heap_[i] < heap_[parent(i)]),
                         "EventHeap: ordering violated between entry ",
                         i, " and its parent");
        }
        std::size_t present = 0;
        for (std::size_t id = 0; id < pos_.size(); ++id) {
            if (pos_[id] == npos)
                continue;
            ++present;
            DENSIM_CHECK(pos_[id] < heap_.size(),
                         "EventHeap: position of id ", id,
                         " points outside the heap");
            DENSIM_CHECK(heap_[pos_[id]].id == id,
                         "EventHeap: position index desynced for id ",
                         id);
            DENSIM_CHECK(std::isfinite(heap_[pos_[id]].key),
                         "EventHeap: non-finite key for id ", id);
        }
        DENSIM_CHECK(present == heap_.size(),
                     "EventHeap: ", heap_.size(), " entries but ",
                     present, " indexed ids");
#endif
    }

  private:
    struct Entry
    {
        double key;
        std::size_t id;

        bool operator<(const Entry &o) const
        {
            return key < o.key || (key == o.key && id < o.id);
        }
    };

    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    static std::size_t parent(std::size_t i) { return (i - 1) / 2; }

    void siftUp(std::size_t i)
    {
        while (i > 0 && heap_[i] < heap_[parent(i)]) {
            swapEntries(i, parent(i));
            i = parent(i);
        }
    }

    void siftDown(std::size_t i)
    {
        for (;;) {
            std::size_t best = i;
            const std::size_t l = 2 * i + 1;
            const std::size_t r = 2 * i + 2;
            if (l < heap_.size() && heap_[l] < heap_[best])
                best = l;
            if (r < heap_.size() && heap_[r] < heap_[best])
                best = r;
            if (best == i)
                return;
            swapEntries(i, best);
            i = best;
        }
    }

    void swapEntries(std::size_t i, std::size_t j)
    {
        std::swap(heap_[i], heap_[j]);
        pos_[heap_[i].id] = i;
        pos_[heap_[j].id] = j;
    }

    std::vector<Entry> heap_;
    std::vector<std::size_t> pos_; //!< id -> heap index or npos.
};

} // namespace densim

#endif // DENSIM_CORE_EVENT_HEAP_HH
