#include "fault/fault_log.hh"

#include <fstream>

#include "obs/json.hh"
#include "util/fs.hh"
#include "util/logging.hh"

namespace densim {

std::string
faultLogToJsonl(const std::vector<FaultEvent> &events)
{
    std::string out;
    for (const FaultEvent &e : events) {
        out += "{\"tS\":";
        obs::json::appendNumber(out, e.timeS);
        out += ",\"kind\":";
        obs::json::appendString(out, faultKindName(e.kind));
        out += ",\"socket\":";
        if (e.socket == kFaultNoSocket)
            out += "null";
        else
            obs::json::appendNumber(out, static_cast<double>(e.socket));
        out += ",\"value\":";
        obs::json::appendNumber(out, e.value);
        out += "}\n";
    }
    return out;
}

void
writeFaultLogFile(const std::string &path,
                  const std::vector<FaultEvent> &events)
{
    // Atomic replace: postmortem tooling reads this file — it must
    // hold a complete log or the previous one, never a torn write.
    if (!atomicWriteFile(path, faultLogToJsonl(events)))
        fatal("fault log: cannot write '", path, "'");
}

} // namespace densim
