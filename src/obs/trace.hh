/**
 * @file
 * Chrome trace_event sink.
 *
 * Collects complete ("ph":"X"), counter ("ph":"C") and metadata
 * ("ph":"M") events in memory and serializes them as the JSON object
 * format Chrome's chrome://tracing and Perfetto's legacy importer
 * accept: {"traceEvents":[...],"displayTimeUnit":"ms"}. Timestamps
 * and durations are microseconds, the trace_event convention.
 *
 * The sink is runtime-gated: record() calls on a disabled sink return
 * immediately, and the engine only constructs scopes that feed it
 * when the DENSIM_OBS build option is on (see phase_profiler.hh), so
 * a release build carries no tracing code in the hot loop at all.
 *
 * A soft event cap (default 1M events, ~100 MB of JSON) guards
 * against a paper-length run with tracing left on filling memory:
 * past the cap events are dropped and counted, and toJson() reports
 * the drop in trace metadata instead of failing.
 */

#ifndef DENSIM_OBS_TRACE_HH
#define DENSIM_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace densim::obs {
class TraceCkptAccess; // Checkpoint serializer hook, friend below.

/** In-memory Chrome trace_event buffer. */
class TraceSink
{
  public:
    /** Enable or disable recording; disabled record()s are no-ops. */
    void enable(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Override the soft event cap (testing / huge captures). */
    void setEventCap(std::size_t cap) { eventCap_ = cap; }

    /** Name the trace's process row in the viewer. */
    void setProcessName(const std::string &name)
    {
        processName_ = name;
    }

    /** Record a complete event: @p ts_us .. @p ts_us + @p dur_us. */
    void addComplete(const std::string &name, const std::string &cat,
                     double ts_us, double dur_us, int tid = 0);

    /** Record a counter track sample. */
    void addCounter(const std::string &name, double ts_us,
                    double value);

    /** Events recorded (excluding dropped ones). */
    std::size_t size() const { return events_.size(); }

    /** Events discarded after the cap was hit. */
    std::size_t dropped() const { return dropped_; }

    /** Drop all recorded events and the drop count. */
    void clear();

    /** Serialize as a Chrome trace_event JSON object. */
    std::string toJson() const;

    /** toJson() to @p path; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    // Checkpoints serialize events_ + dropped_ so a restored run's
    // trace file equals the uninterrupted run's byte for byte.
    friend class TraceCkptAccess;

    enum class Kind : std::uint8_t { Complete, CounterSample };

    struct Event
    {
        Kind kind;
        int tid;
        double tsUs;
        double durUs;   //!< Complete only.
        double value;   //!< CounterSample only.
        std::string name;
        std::string cat;
    };

    bool admit();

    bool enabled_ = false;
    std::size_t eventCap_ = 1u << 20;
    std::size_t dropped_ = 0;
    std::string processName_ = "densim";
    std::vector<Event> events_;
};

/**
 * Derive a merge-safe per-run output path: "runs/trace.json" with run
 * index 3 becomes "runs/trace-run3.json". Used by Experiment::runAll
 * so parallel runs never write the same trace or timeline file.
 */
std::string perRunPath(const std::string &path, std::size_t run);

} // namespace densim::obs

#endif // DENSIM_OBS_TRACE_HH
