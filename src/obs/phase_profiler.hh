/**
 * @file
 * Phase timers — wall-clock profiling of the engine's per-epoch
 * phases (thermalStep, powerManage, processWindow, migrations).
 *
 * Two layers:
 *
 *  - PhaseProfiler / PhaseScope are ordinary, always-compiled
 *    classes: an RAII scope reads std::chrono::steady_clock on entry
 *    and exit and accumulates inclusive call count + nanoseconds per
 *    phase. Scopes nest (a stack tracks the current depth), and when
 *    a TraceSink is attached every scope additionally emits a Chrome
 *    "X" complete event, giving the per-epoch flame view.
 *
 *  - DENSIM_OBS_PHASE(profiler, phase) is what the engine hot loop
 *    uses. It expands to a PhaseScope only when the DENSIM_OBS build
 *    option defined DENSIM_ENABLE_OBS; otherwise it expands to
 *    nothing at all, so a default build has *zero* instructions — no
 *    clock reads, no branches — at the instrumentation points. This
 *    is the disabled-overhead policy the obs benches pin down
 *    (DESIGN.md Sec. 10): simulation results are bit-identical either
 *    way because wall-clock time never feeds back into the model.
 */

#ifndef DENSIM_OBS_PHASE_PROFILER_HH
#define DENSIM_OBS_PHASE_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>

#include "core/effects.hh"
#include "obs/trace.hh"

namespace densim::obs {

/** The engine phases worth a timer of their own. */
enum class Phase : unsigned {
    ThermalStep,
    PowerManage,
    ProcessWindow,
    Migration,
    Count //!< Sentinel, not a phase.
};

/** Stable display name ("thermalStep", ...). */
const char *phaseName(Phase phase);

/** Inclusive per-phase wall-clock accumulator with nesting support. */
class PhaseProfiler
{
  public:
    struct Totals
    {
        std::uint64_t calls = 0;
        std::uint64_t ns = 0; //!< Inclusive wall time.
    };

    /**
     * Forward every scope to @p sink as a complete event (timestamps
     * are microseconds since the last reset()). Null detaches.
     */
    void setSink(TraceSink *sink) { sink_ = sink; }

    /** Zero totals and restart the trace timestamp origin. */
    void reset();

    Totals totals(Phase phase) const
    {
        return totals_[static_cast<std::size_t>(phase)];
    }

    /** Current scope nesting depth (0 outside any scope). */
    int depth() const { return depth_; }

    /** @name PhaseScope internals */
    ///@{
    void begin(Phase phase);
    /** Cold observability endpoint: timers and the trace sink only
     *  ever observe the simulation, never feed back (DESIGN.md
     *  Sec. 10). */
    DENSIM_COLD void end(Phase phase);
    ///@}

  private:
    using Clock = std::chrono::steady_clock;

    static constexpr int kMaxDepth = 16;

    std::array<Totals, static_cast<std::size_t>(Phase::Count)>
        totals_{};
    std::array<Clock::time_point, kMaxDepth> starts_{};
    int depth_ = 0;
    Clock::time_point origin_ = Clock::now();
    TraceSink *sink_ = nullptr;
};

/** RAII scope timing one phase (see file comment for the macro). */
class PhaseScope
{
  public:
    PhaseScope(PhaseProfiler &profiler, Phase phase)
        : profiler_(profiler), phase_(phase)
    {
        profiler_.begin(phase_);
    }
    ~PhaseScope() { profiler_.end(phase_); }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseProfiler &profiler_;
    Phase phase_;
};

} // namespace densim::obs

// The engine-side hook: a real scope only in DENSIM_OBS builds.
#if DENSIM_ENABLE_OBS
#define DENSIM_OBS_PHASE_CAT2(a, b) a##b
#define DENSIM_OBS_PHASE_CAT(a, b) DENSIM_OBS_PHASE_CAT2(a, b)
#define DENSIM_OBS_PHASE(profiler, phase)                              \
    ::densim::obs::PhaseScope DENSIM_OBS_PHASE_CAT(densim_obs_scope_,  \
                                                   __COUNTER__)(       \
        (profiler), (phase))
#else
#define DENSIM_OBS_PHASE(profiler, phase) static_cast<void>(0)
#endif

#endif // DENSIM_OBS_PHASE_PROFILER_HH
