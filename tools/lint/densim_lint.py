#!/usr/bin/env python3
"""densim custom lint bank.

Two checks, both aimed at keeping the typed-quantity discipline of
src/core/units.hh (DESIGN.md Sec. 9) from eroding:

1. raw-double boundary scan: no *new* raw `double` parameter whose
   name says it is a temperature, power, energy, airflow, time
   constant or thermal resistance may appear in a public header.
   Such parameters must be typed (Celsius, Watts, Cfm, ...). Existing
   deliberate raw-double crossings (hot-path bulk vectors, config
   aggregates, I/O) live in the reviewed allowlist next to this
   script; anything not on the list fails the build.

2. header self-containment: every header in the model layers
   (src/thermal, src/airflow, plus src/core and src/power) must
   compile on its own with only its own #includes — no
   include-order luck. Checked with `g++ -fsyntax-only` when a
   compiler is available.

Usage:
    tools/lint/densim_lint.py [--repo DIR] [--skip-selfcontain]
    tools/lint/densim_lint.py --self-test

Exits non-zero on any finding. `--self-test` seeds a synthetic
regression and verifies the scanner flags it (the lint gate's own
lint).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

# Parameter names that denote a dimensioned physical quantity. A raw
# `double` parameter matching one of these in a header is a finding.
UNIT_NAME_RE = re.compile(
    r"""(?x)
    ^(
        .*(_c|_k|_w|_j|_cfm|_m3s|_kpw|_jpk)$   # unit suffixes
      | .*(celsius|kelvin|watt|joule|cfm)$     # spelled-out units
      | (t|temp|temperature)(_.*)?             # t, temp_*, ...
      | .*(ambient|inlet|entry)(_c)?$          # temperature roles
      | .*(power|leak|heat|energy)(_w|_j)?$    # power/energy roles
      | .*(air)?flow$                          # airflow roles
      | .*(rise|delta_t)$                      # temperature deltas
      | (r_int|r_ext|theta|kappa.*|resistance) # thermal resistances
    )$
    """
)

# Parameter names that merely *sound* physical but are dimensionless
# by design; never flagged.
DIMENSIONLESS = {
    "frac",
    "fraction",
    "scale",
    "slope_per_c",
    "gated_frac_tdp",
    "frac_at_ref",
    "hot_fraction",
    "leakage_frac",
    "quant",
    "quant_c",
}

PARAM_RE = re.compile(r"\bdouble\s+([a-z][a-z0-9_]*)\s*(?:=[^,)]*)?[,)]")

SELFCONTAIN_DIRS = (
    "src/thermal",
    "src/airflow",
    "src/core",
    "src/power",
    "src/obs",
)


def strip_comments(text):
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def scan_header(path, rel, allow):
    """Yield (rel, name) findings for raw unit-named double params."""
    with open(path, encoding="utf-8") as fh:
        text = strip_comments(fh.read())
    for match in PARAM_RE.finditer(text):
        name = match.group(1)
        if name in DIMENSIONLESS:
            continue
        if not UNIT_NAME_RE.match(name):
            continue
        key = "{}:{}".format(rel, name)
        if key in allow:
            continue
        yield rel, name


def load_allowlist(repo):
    allow = set()
    path = os.path.join(repo, "tools", "lint", "raw_double_allowlist.txt")
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.split("#", 1)[0].strip()
            if line:
                allow.add(line)
    return allow


def headers_under(repo, subdir):
    root = os.path.join(repo, subdir)
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".hh"):
                full = os.path.join(dirpath, name)
                yield full, os.path.relpath(full, repo)


def check_raw_doubles(repo):
    allow = load_allowlist(repo)
    findings = []
    for full, rel in headers_under(repo, "src"):
        findings.extend(scan_header(full, rel, allow))
    for rel, name in findings:
        print(
            "densim_lint: {}: raw `double {}` crosses a header API "
            "boundary; use a typed quantity from core/units.hh or add "
            "'{}:{}' to tools/lint/raw_double_allowlist.txt with a "
            "review".format(rel, name, rel, name)
        )
    return len(findings)


def check_self_contained(repo):
    compiler = shutil.which("g++") or shutil.which("c++")
    if compiler is None:
        print("densim_lint: no C++ compiler found — skipping header "
              "self-containment check", file=sys.stderr)
        return 0
    failures = 0
    for subdir in SELFCONTAIN_DIRS:
        for full, rel in headers_under(repo, subdir):
            cmd = [
                compiler,
                "-std=c++20",
                "-fsyntax-only",
                "-x",
                "c++",
                "-I",
                os.path.join(repo, "src"),
                full,
            ]
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=False
            )
            if proc.returncode != 0:
                failures += 1
                print(
                    "densim_lint: {} is not self-contained:\n{}".format(
                        rel, proc.stderr.strip()
                    )
                )
    return failures


SELF_TEST_HEADER = """\
#ifndef DENSIM_LINT_SELF_TEST_HH
#define DENSIM_LINT_SELF_TEST_HH
namespace densim {
// Seeded regression: a raw temperature double at an API boundary.
void setAmbient(double ambient_c);
}
#endif
"""


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "core"))
        seeded = os.path.join(tmp, "src", "core", "seeded.hh")
        with open(seeded, "w", encoding="utf-8") as fh:
            fh.write(SELF_TEST_HEADER)
        found = check_raw_doubles(tmp)
        if found == 0:
            print("densim_lint: SELF-TEST FAILED — seeded raw-double "
                  "regression was not detected")
            return 1
        # And the allowlist must actually suppress it.
        os.makedirs(os.path.join(tmp, "tools", "lint"))
        allowfile = os.path.join(
            tmp, "tools", "lint", "raw_double_allowlist.txt"
        )
        with open(allowfile, "w", encoding="utf-8") as fh:
            fh.write("src/core/seeded.hh:ambient_c\n")
        if check_raw_doubles(tmp) != 0:
            print("densim_lint: SELF-TEST FAILED — allowlist entry did "
                  "not suppress the seeded finding")
            return 1
    print("densim_lint: self-test passed "
          "(seeded regression detected, allowlist honored)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo",
        default=os.path.join(os.path.dirname(__file__), "..", ".."),
        help="repository root (default: two levels up)",
    )
    parser.add_argument(
        "--skip-selfcontain",
        action="store_true",
        help="skip the per-header -fsyntax-only compile check",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the scanner catches a seeded regression",
    )
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    repo = os.path.abspath(args.repo)
    failures = check_raw_doubles(repo)
    if not args.skip_selfcontain:
        failures += check_self_contained(repo)
    if failures:
        print(
            "densim_lint: {} finding(s)".format(failures),
            file=sys.stderr,
        )
        sys.exit(1)
    print("densim_lint: clean")


if __name__ == "__main__":
    main()
