file(REMOVE_RECURSE
  "CMakeFiles/fig06_job_durations.dir/fig06_job_durations.cc.o"
  "CMakeFiles/fig06_job_durations.dir/fig06_job_durations.cc.o.d"
  "fig06_job_durations"
  "fig06_job_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_job_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
