# Empty compiler generated dependencies file for densim_sched.
# This may be replaced when dependencies are built.
