#include "power/power_manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace densim {

PowerManager::PowerManager(const PStateTable &pstate_table,
                           SimplePeakModel peak_model, Celsius t_limit,
                           double gated_frac_tdp)
    : table_(pstate_table), peak_(peak_model),
      tLimitC_(t_limit.value()), gatedFracTdp_(gated_frac_tdp)
{
    if (tLimitC_ <= 0.0)
        fatal("PowerManager: temperature limit must be positive, got ",
              tLimitC_);
    if (gatedFracTdp_ < 0.0 || gatedFracTdp_ > 1.0)
        fatal("PowerManager: gated power fraction ", gatedFracTdp_,
              " outside [0, 1]");
}

void
PowerManager::attachObs(obs::Registry &registry)
{
    searches_ = &registry.counter("power.dvfsSearches");
}

void
PowerManager::checkCurve(const FreqCurve &curve) const
{
    if (curve.totalPowerAt90C.size() != table_.size() ||
        curve.perfRel.size() != table_.size()) {
        panic("FreqCurve has ", curve.totalPowerAt90C.size(), "/",
              curve.perfRel.size(), " entries for ", table_.size(),
              " P-states");
    }
}

Watts
PowerManager::dynamicPower(const FreqCurve &curve,
                           const LeakageModel &leak, std::size_t i) const
{
    checkCurve(curve);
    if (i >= table_.size())
        panic("P-state index ", i, " out of range");
    const double dyn = curve.totalPowerAt90C[i] -
                       leak.at(leak.refTemperature()).value();
    if (dyn < 0.0)
        fatal("FreqCurve power at state ", i, " (",
              curve.totalPowerAt90C[i],
              " W) is below reference leakage (",
              leak.at(leak.refTemperature()).value(), " W)");
    return Watts(dyn);
}

Watts
PowerManager::totalPower(const FreqCurve &curve, const LeakageModel &leak,
                         std::size_t i, Celsius chip) const
{
    return Watts(dynamicPower(curve, leak, i).value() +
                 leak.at(chip).value());
}

DvfsDecision
PowerManager::chooseAtAmbient(const FreqCurve &curve,
                              const LeakageModel &leak, Celsius ambient,
                              const HeatSink &sink) const
{
    return chooseAtAmbientCapped(curve, leak, ambient, sink,
                                 table_.size() - 1);
}

DvfsDecision
PowerManager::searchDownFrom(const FreqCurve &curve,
                             const LeakageModel &leak, Celsius ambient,
                             const HeatSink &sink,
                             std::size_t first) const
{
    DvfsDecision decision{};
    for (std::size_t idx = first + 1; idx-- > 0;) {
        // Two-pass leakage compensation: estimate the peak at the
        // 90 C-characterized power, correct leakage for the estimated
        // temperature, and re-estimate.
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 =
            peak_.peak(ambient, Watts(p90), sink).value();
        const double p2 = dynamicPower(curve, leak, idx).value() +
                          leak.at(Celsius(t1)).value();
        const double t2 =
            peak_.peak(ambient, Watts(p2), sink).value();
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.power = Watts(p2);
            decision.predictedPeak = Celsius(t2);
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseAtAmbientCapped(const FreqCurve &curve,
                                    const LeakageModel &leak,
                                    Celsius ambient,
                                    const HeatSink &sink,
                                    std::size_t max_pstate) const
{
    checkCurve(curve);
    countSearch();
    if (max_pstate >= table_.size())
        panic("chooseAtAmbientCapped: max P-state ", max_pstate,
              " out of range");
    return searchDownFrom(curve, leak, ambient, sink, max_pstate);
}

DvfsDecision
PowerManager::chooseAtAmbientFrom(const FreqCurve &curve,
                                  const LeakageModel &leak,
                                  Celsius ambient, const HeatSink &sink,
                                  std::size_t max_pstate,
                                  std::size_t start_pstate) const
{
    checkCurve(curve);
    countSearch();
    if (max_pstate >= table_.size())
        panic("chooseAtAmbientFrom: max P-state ", max_pstate,
              " out of range");
    return searchDownFrom(curve, leak, ambient, sink,
                          std::min(start_pstate, max_pstate));
}

bool
PowerManager::feasibleAt(const FreqCurve &curve,
                         const LeakageModel &leak, Celsius ambient,
                         const HeatSink &sink, std::size_t pstate) const
{
    const double p90 = curve.totalPowerAt90C[pstate];
    const double t1 = peak_.peak(ambient, Watts(p90), sink).value();
    const double p2 = dynamicPower(curve, leak, pstate).value() +
                      leak.at(Celsius(t1)).value();
    const double t2 = peak_.peak(ambient, Watts(p2), sink).value();
    return t2 <= tLimitC_;
}

DvfsDecision
PowerManager::chooseAtAmbientBounded(const FreqCurve &curve,
                                     const LeakageModel &leak,
                                     Celsius ambient,
                                     const HeatSink &sink,
                                     std::size_t max_pstate,
                                     double *max_feas_c,
                                     double *min_infeas_c) const
{
    checkCurve(curve);
    countSearch();
    if (max_pstate >= table_.size())
        panic("chooseAtAmbientBounded: max P-state ", max_pstate,
              " out of range");
    const double amb_c = ambient.value();
    DvfsDecision decision{};
    for (std::size_t idx = max_pstate + 1; idx-- > 0;) {
        if (idx > 0 && amb_c >= min_infeas_c[idx])
            continue; // Known infeasible at a cooler-or-equal probe.
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 =
            peak_.peak(ambient, Watts(p90), sink).value();
        const double p2 = dynamicPower(curve, leak, idx).value() +
                          leak.at(Celsius(t1)).value();
        const double t2 =
            peak_.peak(ambient, Watts(p2), sink).value();
        const bool ok = t2 <= tLimitC_;
        if (ok) {
            if (amb_c > max_feas_c[idx])
                max_feas_c[idx] = amb_c;
        } else if (amb_c < min_infeas_c[idx]) {
            min_infeas_c[idx] = amb_c;
        }
        if (ok || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.power = Watts(p2);
            decision.predictedPeak = Celsius(t2);
            decision.feasible = ok;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseSteady(const FreqCurve &curve,
                           const LeakageModel &leak, Celsius entry,
                           KelvinPerWatt kappa_local,
                           const HeatSink &sink) const
{
    checkCurve(curve);
    countSearch();
    const double entry_c = entry.value();
    const double kappa = kappa_local.value();
    DvfsDecision decision{};
    for (std::size_t idx = table_.size(); idx-- > 0;) {
        const double p90 = curve.totalPowerAt90C[idx];
        // First pass: ambient from the 90 C-characterized power.
        const double t1 = peak_.peak(Celsius(entry_c + kappa * p90),
                                     Watts(p90), sink)
                              .value();
        // Second pass: leakage-corrected power, self-consistent
        // ambient.
        const double p2 = dynamicPower(curve, leak, idx).value() +
                          leak.at(Celsius(t1)).value();
        const double t2 = peak_.peak(Celsius(entry_c + kappa * p2),
                                     Watts(p2), sink)
                              .value();
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.power = Watts(p2);
            decision.predictedPeak = Celsius(t2);
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseWithSinkState(const FreqCurve &curve,
                                  const LeakageModel &leak,
                                  Celsius ambient, CelsiusDelta sink_rise,
                                  const HeatSink &sink) const
{
    checkCurve(curve);
    countSearch();
    const double base = ambient.value() + sink_rise.value();
    const double r_int = peak_.rInt().value();
    auto instant_peak = [&](double p) {
        return base + p * r_int + sink.theta(Watts(p)).value();
    };
    DvfsDecision decision{};
    for (std::size_t idx = table_.size(); idx-- > 0;) {
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 = instant_peak(p90);
        const double p2 = dynamicPower(curve, leak, idx).value() +
                          leak.at(Celsius(t1)).value();
        const double t2 = instant_peak(p2);
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.power = Watts(p2);
            decision.predictedPeak = Celsius(t2);
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseResponsive(const FreqCurve &curve,
                               const LeakageModel &leak, Celsius entry,
                               KelvinPerWatt kappa_local,
                               CelsiusDelta sink_rise,
                               const HeatSink &sink) const
{
    checkCurve(curve);
    countSearch();
    const double base = entry.value() + sink_rise.value();
    const double kappa = kappa_local.value();
    const double r_int = peak_.rInt().value();
    auto instant_peak = [&](double p) {
        return base + kappa * p + p * r_int +
               sink.theta(Watts(p)).value();
    };
    DvfsDecision decision{};
    for (std::size_t idx = table_.size(); idx-- > 0;) {
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 = instant_peak(p90);
        const double p2 = dynamicPower(curve, leak, idx).value() +
                          leak.at(Celsius(t1)).value();
        const double t2 = instant_peak(p2);
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.power = Watts(p2);
            decision.predictedPeak = Celsius(t2);
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

Watts
PowerManager::gatedPower(const LeakageModel &leak) const
{
    return Watts(gatedFracTdp_ * leak.tdp().value());
}

} // namespace densim
