file(REMOVE_RECURSE
  "CMakeFiles/table2_airflow_requirements.dir/table2_airflow_requirements.cc.o"
  "CMakeFiles/table2_airflow_requirements.dir/table2_airflow_requirements.cc.o.d"
  "table2_airflow_requirements"
  "table2_airflow_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_airflow_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
