file(REMOVE_RECURSE
  "libdensim_server.a"
)
