file(REMOVE_RECURSE
  "libdensim_survey.a"
)
