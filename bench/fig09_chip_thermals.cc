/**
 * @file
 * Figure 9 — per-application chip thermals from the detailed
 * (HotSpot-class) model: (a) temperature difference between the
 * hottest and coolest die spots, (b) maximum chip temperature versus
 * power for both heat sinks.
 *
 * Paper shapes: lateral spreads of 4–7 C on the ~100 mm^2 X2150 die;
 * the 30-fin sink runs ~6–7 C cooler at high power and 3–4 C at low
 * power; peak temperature correlates strongly with total power.
 */

#include <algorithm>
#include <iostream>

#include "thermal/hotspot_model.hh"
#include "util/table.hh"
#include "workload/benchmark.hh"
#include "workload/curves.hh"

using namespace densim;

namespace {

/**
 * Per-application socket power: the set's 1900 MHz power scaled by a
 * deterministic per-app activity factor so the 19 applications span
 * the 8–18 W range of Fig. 9(b).
 */
double
appPower(std::size_t index)
{
    const Benchmark &b = pcmarkCatalog()[index];
    const double base = peakPowerW(b.set);
    const double wiggle =
        0.82 + 0.03 * static_cast<double>(index % 7);
    return base * wiggle;
}

/** Per-application power map: hot block position varies by app. */
PowerMap
appMap(std::size_t index, int grid, double power)
{
    const int block = 4;
    const int row = static_cast<int>(index % 3) * 2;
    const int col = static_cast<int>((index / 3) % 3) * 2;
    return PowerMap::concentrated(grid,
                                  defaultHotFraction(Watts(power)),
                                  HotBlock{block, row, col});
}

} // namespace

int
main()
{
    std::cout << "=== Figure 9: detailed chip thermal model, 19 "
                 "applications, ambient 45 C ===\n\n";

    ChipStackParams params;
    const HotSpotModel m18(params, HeatSink::fin18());
    const HotSpotModel m30(params, HeatSink::fin30());

    TableWriter table({"Application", "Power (W)", "Spread 18f (C)",
                       "Spread 30f (C)", "MaxT 18f (C)",
                       "MaxT 30f (C)"});
    double min_spread = 1e9, max_spread = 0.0;
    for (std::size_t i = 0; i < pcmarkCatalog().size(); ++i) {
        const double power = appPower(i);
        const PowerMap map = appMap(i, params.grid, power);
        const auto f18 = m18.steady(Watts(power), map, Celsius(45.0));
        const auto f30 = m30.steady(Watts(power), map, Celsius(45.0));
        min_spread = std::min({min_spread, f18.spread(), f30.spread()});
        max_spread = std::max({max_spread, f18.spread(), f30.spread()});
        table.newRow()
            .cell(pcmarkCatalog()[i].name)
            .cell(power, 1)
            .cell(f18.spread(), 2)
            .cell(f30.spread(), 2)
            .cell(f18.maxT, 1)
            .cell(f30.maxT, 1);
    }
    table.print(std::cout);

    std::cout << "\nLateral spread range: "
              << formatFixed(min_spread, 1) << " - "
              << formatFixed(max_spread, 1)
              << " C (paper: 4 - 7 C)\n";

    std::cout << "\n(b) Max temperature vs power (uniform sweep):\n";
    TableWriter sweep({"Power (W)", "MaxT 18-fin (C)", "MaxT 30-fin (C)",
                       "Advantage (C)"});
    for (double power = 8.0; power <= 18.0; power += 2.0) {
        const PowerMap map = PowerMap::concentrated(
            params.grid, defaultHotFraction(Watts(power)),
            HotBlock{4, 2, 2});
        const auto f18 = m18.steady(Watts(power), map, Celsius(45.0));
        const auto f30 = m30.steady(Watts(power), map, Celsius(45.0));
        sweep.newRow()
            .cell(power, 0)
            .cell(f18.maxT, 1)
            .cell(f30.maxT, 1)
            .cell(f18.maxT - f30.maxT, 1);
    }
    sweep.print(std::cout);
    std::cout << "\n30-fin advantage grows with power (paper: 3-4 C "
                 "low power, 6-7 C high power)\n";
    return 0;
}
