/**
 * @file
 * Placement prediction services shared by the Predictive and
 * CouplingPredictor policies.
 *
 * Both policies reason about what frequency a job would settle at if
 * placed on a candidate socket. Per Sec. IV-C the prediction uses the
 * simple linear machinery only: entry temperature from the coupling
 * table, Eq. (1) with two-pass leakage compensation (chooseSteady),
 * never the detailed models used to evaluate the research.
 */

#ifndef DENSIM_SCHED_PREDICTION_HH
#define DENSIM_SCHED_PREDICTION_HH

#include "sched/scheduler.hh"

namespace densim {

/**
 * Steady-state DVFS decision predicted for placing a job of @p set on
 * idle socket @p socket, given the other sockets' current powers.
 */
DvfsDecision predictPlacement(const SchedContext &ctx,
                              std::size_t socket, WorkloadSet set);

/**
 * Predicted aggregate frequency loss (MHz) across sockets downstream
 * of @p socket if a job drawing @p job_power were placed there.
 * For each busy downstream socket the job's extra heat raises the
 * ambient by coeff * (P_job - P_current); if the re-predicted
 * frequency drops below the current one, that discrete loss is
 * charged. When the extra heat does not cross a P-state edge *right
 * now*, the expected marginal loss is charged instead:
 * dT * (200 MHz / edge spacing) — the time-average of the discrete
 * loss as the downstream socket's ambient drifts across edges. Idle
 * downstream sockets contribute nothing (nothing to slow down).
 */
double downstreamPenaltyMhz(const SchedContext &ctx, std::size_t socket,
                            Watts job_power);

/**
 * Expected frequency sensitivity of a socket with heat sink @p sink
 * running workload @p set: MHz lost per degree of ambient rise,
 * averaged across the P-state ladder.
 */
double mhzPerCelsius(const SchedContext &ctx, WorkloadSet set,
                     const HeatSink &sink);

} // namespace densim

#endif // DENSIM_SCHED_PREDICTION_HH
