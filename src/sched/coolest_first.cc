#include "sched/coolest_first.hh"

namespace densim {

std::size_t
CoolestFirst::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    return pickMinBy(ctx, ctx.chipTempC, 1e-9, false);
}

} // namespace densim
