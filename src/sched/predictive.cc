#include "sched/predictive.hh"

#include "sched/prediction.hh"

namespace densim {

std::size_t
Predictive::pick(const Job &job, const SchedContext &ctx)
{
    double best_freq = -1.0;
    double best_peak = 1e300;
    std::size_t best = (*ctx.idle)[0];
    std::size_t n_best = 0;
    for (std::size_t s : *ctx.idle) {
        const DvfsDecision d = predictPlacement(ctx, s, job.set);
        // Primary: fastest predicted frequency. Secondary: most
        // thermal headroom. Remaining ties: uniform random (reservoir
        // sampling) so equivalent rows share load.
        const double peak_c = d.predictedPeak.value();
        if (d.freqMhz > best_freq + 1e-9 ||
            (d.freqMhz > best_freq - 1e-9 &&
             peak_c < best_peak - 1e-9)) {
            best_freq = d.freqMhz;
            best_peak = peak_c;
            best = s;
            n_best = 1;
        } else if (d.freqMhz > best_freq - 1e-9 &&
                   peak_c < best_peak + 1e-9) {
            ++n_best;
            if (ctx.rng->nextBounded(n_best) == 0)
                best = s;
        }
    }
    return best;
}

} // namespace densim
