#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace densim::obs::json {

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out += buf;
}

void
appendString(std::string &out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

namespace {

/** Strict recursive-descent RFC 8259 parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    parseDocument(std::string *error)
    {
        error_ = error;
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_ && error_->empty()) {
            *error_ = what;
            *error_ += " at byte " + std::to_string(pos_);
        }
        return false;
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' ||
                          peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseValue()
    {
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        bool ok = false;
        if (eof()) {
            ok = fail("unexpected end of input");
        } else {
            switch (peek()) {
            case '{':
                ok = parseObject();
                break;
            case '[':
                ok = parseArray();
                break;
            case '"':
                ok = parseString();
                break;
            case 't':
                ok = literal("true");
                break;
            case 'f':
                ok = literal("false");
                break;
            case 'n':
                ok = literal("null");
                break;
            default:
                ok = parseNumber();
            }
        }
        --depth_;
        return ok;
    }

    bool
    parseObject()
    {
        ++pos_; // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (eof() || peek() != '"')
                return fail("expected object key string");
            if (!parseString())
                return false;
            skipWs();
            if (eof() || peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (eof())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray()
    {
        ++pos_; // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (eof())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString()
    {
        ++pos_; // opening quote
        while (!eof()) {
            const char c = text_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof())
                    return fail("unterminated escape");
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("invalid \\u escape");
                    }
                    pos_ += 4;
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return fail("invalid escape character");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    digits()
    {
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected digit");
        while (!eof() &&
               std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        return true;
    }

    bool
    parseNumber()
    {
        if (peek() == '-')
            ++pos_;
        if (eof())
            return fail("truncated number");
        if (peek() == '0') {
            ++pos_; // no leading zeros
        } else if (!digits()) {
            return false;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (!digits())
                return false;
        }
        return true;
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string *error_ = nullptr;
};

} // namespace

bool
validate(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text).parseDocument(error);
}

long
validateLines(std::string_view text, std::string *error)
{
    long valid = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string_view::npos)
            end = text.size();
        const std::string_view line = text.substr(start, end - start);
        if (!line.empty()) {
            if (!validate(line, error))
                return -1;
            ++valid;
        }
        if (end == text.size())
            break;
        start = end + 1;
    }
    return valid;
}

} // namespace densim::obs::json
