// Known-good fixture for densim-hot-layout: flat byte flags and
// contiguous arrays, with one reviewed legacy suppression.
#include <cstdint>
#include <vector>

struct HotState
{
    std::vector<std::uint8_t> busy;  // Flat flags: vectorizable.
    std::vector<double> completions; // Contiguous.
};

// NOLINTNEXTLINE(densim-hot-layout)
inline std::vector<bool> legacyMask() { return {}; }
