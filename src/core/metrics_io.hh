/**
 * @file
 * Machine-readable export of simulation results: a JSON object per
 * run and CSV rows for sweeps — what a downstream user pipes into
 * their plotting stack.
 */

#ifndef DENSIM_CORE_METRICS_IO_HH
#define DENSIM_CORE_METRICS_IO_HH

#include <string>

#include "core/metrics.hh"

namespace densim {

namespace obs {
class Registry;
} // namespace obs

/**
 * Serialize @p metrics as a single strict-JSON object (no trailing
 * \n). Non-finite values (e.g. runtimeExpansionMax on a run with zero
 * completed jobs) are emitted as `null` — JSON has no nan/inf tokens.
 */
std::string metricsToJson(const SimMetrics &metrics);

/**
 * Serialize an observability registry snapshot:
 * {"counters":{name:value,...},"gauges":{name:{"value":v,"unit":u}}}.
 */
std::string countersToJson(const obs::Registry &registry);

/**
 * The zone-ambient timeline of @p metrics as JSONL (one strict-JSON
 * object per sample; empty string when sampling was off). Same format
 * obs::writeTimelineJsonlFile writes for SimConfig::obsTimelinePath.
 */
std::string timelineToJsonl(const SimMetrics &metrics);

/** Header row matching metricsToCsvRow(). */
std::string metricsCsvHeader();

/**
 * One CSV row of the headline metrics, prefixed by the given
 * scheduler/workload/load identification columns.
 */
std::string metricsToCsvRow(const std::string &scheduler,
                            const std::string &workload, double load,
                            const SimMetrics &metrics);

} // namespace densim

#endif // DENSIM_CORE_METRICS_IO_HH
