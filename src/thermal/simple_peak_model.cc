#include "thermal/simple_peak_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace densim {

SimplePeakModel::SimplePeakModel(double r_int) : rInt_(r_int)
{
    if (rInt_ <= 0.0)
        fatal("SimplePeakModel: R_int must be positive, got ", rInt_);
}

double
SimplePeakModel::peak(double t_amb, double power_w,
                      const HeatSink &sink) const
{
    if (power_w < 0.0)
        fatal("SimplePeakModel::peak: negative power ", power_w);
    return t_amb + power_w * (rInt_ + sink.rExt) + sink.theta(power_w);
}

double
SimplePeakModel::maxPower(double t_limit, double t_amb,
                          const HeatSink &sink) const
{
    // T_limit = T_amb + P (R_int + R_ext) + c0 + c1 P
    const double slope = rInt_ + sink.rExt + sink.theta.c1;
    if (slope <= 0.0)
        panic("Eq. (1) slope non-positive for sink ", sink.name);
    const double p = (t_limit - t_amb - sink.theta.c0) / slope;
    return std::max(p, 0.0);
}

double
SimplePeakModel::maxAmbient(double t_limit, double power_w,
                            const HeatSink &sink) const
{
    return t_limit - power_w * (rInt_ + sink.rExt) - sink.theta(power_w);
}

} // namespace densim
