/**
 * @file
 * Placement prediction services shared by the Predictive and
 * CouplingPredictor policies.
 *
 * Both policies reason about what frequency a job would settle at if
 * placed on a candidate socket. Per Sec. IV-C the prediction uses the
 * simple linear machinery only: entry temperature from the coupling
 * table, Eq. (1) with two-pass leakage compensation (chooseSteady),
 * never the detailed models used to evaluate the research.
 */

#ifndef DENSIM_SCHED_PREDICTION_HH
#define DENSIM_SCHED_PREDICTION_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "sched/scheduler.hh"

namespace densim {

/**
 * Engine-owned memo for the prediction helpers below. Within one
 * scheduling epoch every input of predictPlacement(s, set) — the
 * candidate's ambient and boost credit plus immutable tables — is
 * constant, and downstreamPenaltyMhz(s, p) is fully determined by
 * (s, p - powerW[s]) plus the busy/frequency/ambient state of s's
 * downstream sockets. The engine therefore:
 *
 *  - bumps `epoch` whenever any input may have moved (thermalStep,
 *    powerManage, a coupling-map rebuild), invalidating everything;
 *  - surgically drops the penalty entries of a changed socket and of
 *    its upstream sockets on job placement/completion/migration/fault
 *    transitions inside an epoch (CouplingMap::upstream gives exactly
 *    the set of candidates whose penalty sums read the changed
 *    socket's state).
 *
 * Cached values are returned verbatim, so the cached path is
 * bit-identical to recomputation — tested by running with the
 * schedPredictionCache knob off (ctx.cache == nullptr) and comparing
 * SimMetrics with EXPECT_EQ.
 *
 * When `exactDvfs` is set (no faults, no DVFS memo quantization) the
 * penalty loop additionally prunes each downstream P-state search to
 * start at the socket's current state via `pstate`
 * (PowerManager::chooseAtAmbientFrom): the current state was chosen
 * this epoch at an ambient no hotter than the perturbed one, so every
 * faster state is already known infeasible.
 */
struct PredictionCache
{
    struct PlaceEntry
    {
        std::uint64_t stamp = 0; //!< Epoch the entry was filled in.
        WorkloadSet set{};
        DvfsDecision decision{};
    };

    struct PenaltyEntry
    {
        std::uint64_t stamp = 0;
        double extra = 0.0; //!< job_power - powerW[socket] key.
        double mhz = 0.0;
    };

    std::uint64_t epoch = 1;
    std::vector<PlaceEntry> place;
    std::vector<PenaltyEntry> penalty;

    /**
     * Per-socket, per-P-state two-sided ambient feasibility ladder:
     * `feasLoC[s * npstates + i]` is the hottest ambient at which
     * P-state i running `feasSet[s]` is *known* feasible on socket
     * s, `feasHiC[...]` the coolest at which it is known infeasible.
     * PowerManager::feasibleAt is monotone in ambient, so a probe at
     * or below the low bound is provably feasible and one at or
     * above the high bound provably infeasible — only probes landing
     * in the (shrinking) gap ever evaluate the thermal model.
     *
     * Unlike the memo entries above, the ladder carries no epoch
     * stamp: feasibility is a time-invariant property of the
     * socket's heat sink, the workload's power curve, the leakage
     * model, and the probed ambient — none of which change within a
     * run (fan derates move the *ambient field*, not the sinks) —
     * so bounds learned in one epoch stay valid in every later
     * epoch. Each socket's row is keyed by workload set and wiped
     * when a different set lands on it.
     */
    std::size_t npstates = 0;
    std::vector<WorkloadSet> feasSet;
    std::vector<std::uint8_t> feasSetValid;
    std::vector<double> feasLoC;
    std::vector<double> feasHiC;
    //! Cached mhzPerCelsius(feasSet[s], sink-of-s); <= 0 = unset.
    std::vector<double> feasMhzPerC;
    //! Frequency of each P-state (copy of the engine's table) so the
    //! ladder walk resolves state -> MHz without a bounds-checked
    //! table lookup per probe.
    std::vector<double> stateFreqMhz;

    /**
     * Engine-maintained per-socket fast path for the penalty loop's
     * common case. `fastFeasC[s]` is the hottest ambient at which
     * socket s's *current* P-state is known feasible (the ladder's
     * low bound at the state chosen by the last setSocketRate), and
     * `fastSlope[s]` the penalty charged per degree of ambient rise
     * there (mhzPerCelsius when below the fastest state, 0 when
     * boosting). A probe at or below `fastFeasC[s]` provably keeps
     * the state, so its penalty is `dt * fastSlope[s]` with no
     * ladder walk at all — the exact value the walk would produce.
     * Idle sockets hold (+inf, 0): any probe passes, charging
     * nothing, which also subsumes the busy check. Sockets whose
     * penalty slope is not learned yet hold -inf, forcing the slow
     * path until a probe computes it. Refreshed on every rate change
     * (setSocketRate) and on job clear; the ladder's low bound can
     * only rise in between, so a stale snapshot is conservative,
     * never wrong.
     */
    std::vector<double> fastFeasC;
    std::vector<double> fastSlope;

    /** Engine's live per-socket P-state array (for pruned searches). */
    const std::size_t *pstate = nullptr;
    /** True when pruned downstream searches are provably exact. */
    bool exactDvfs = false;

    /** Size for @p n sockets / @p n_pstates states; drop everything. */
    void reset(std::size_t n, std::size_t n_pstates)
    {
        epoch = 1;
        place.assign(n, {});
        penalty.assign(n, {});
        npstates = n_pstates;
        feasSet.assign(n, {});
        feasSetValid.assign(n, 0);
        feasLoC.assign(n * n_pstates, 0.0);
        feasHiC.assign(n * n_pstates, 0.0);
        feasMhzPerC.assign(n, 0.0);
        stateFreqMhz.assign(n_pstates, 0.0);
        fastFeasC.assign(
            n, std::numeric_limits<double>::infinity());
        fastSlope.assign(n, 0.0);
    }

    double *ladderLo(std::size_t s) { return &feasLoC[s * npstates]; }
    double *ladderHi(std::size_t s) { return &feasHiC[s * npstates]; }

    /**
     * Point socket @p s's ladder row at workload @p set, wiping the
     * bounds if a different set (or nothing) was keyed there.
     */
    void touchLadder(std::size_t s, WorkloadSet set)
    {
        if (feasSetValid[s] && feasSet[s] == set)
            return;
        feasSet[s] = set;
        feasSetValid[s] = 1;
        feasMhzPerC[s] = 0.0;
        double *lo = ladderLo(s);
        double *hi = ladderHi(s);
        for (std::size_t i = 0; i < npstates; ++i) {
            lo[i] = -std::numeric_limits<double>::infinity();
            hi[i] = std::numeric_limits<double>::infinity();
        }
    }

    /** Drop every entry (epoch-granularity invalidation). */
    void invalidate() { ++epoch; }

    /** Drop one socket's penalty entry (stays valid as a candidate). */
    void invalidatePenalty(std::size_t socket)
    {
        penalty[socket].stamp = 0;
    }
};

/**
 * Steady-state DVFS decision predicted for placing a job of @p set on
 * idle socket @p socket, given the other sockets' current powers.
 */
DvfsDecision predictPlacement(const SchedContext &ctx,
                              std::size_t socket, WorkloadSet set);

/**
 * Predicted aggregate frequency loss (MHz) across sockets downstream
 * of @p socket if a job drawing @p job_power were placed there.
 * For each busy downstream socket the job's extra heat raises the
 * ambient by coeff * (P_job - P_current); if the re-predicted
 * frequency drops below the current one, that discrete loss is
 * charged. When the extra heat does not cross a P-state edge *right
 * now*, the expected marginal loss is charged instead:
 * dT * (200 MHz / edge spacing) — the time-average of the discrete
 * loss as the downstream socket's ambient drifts across edges. Idle
 * downstream sockets contribute nothing (nothing to slow down).
 */
double downstreamPenaltyMhz(const SchedContext &ctx, std::size_t socket,
                            Watts job_power);

/**
 * Expected frequency sensitivity of a socket with heat sink @p sink
 * running workload @p set: MHz lost per degree of ambient rise,
 * averaged across the P-state ladder.
 */
double mhzPerCelsius(const SchedContext &ctx, WorkloadSet set,
                     const HeatSink &sink);

} // namespace densim

#endif // DENSIM_SCHED_PREDICTION_HH
