// Known-good fixture for densim-unjustified-suppression: every
// suppression carries its why — as prose in the same comment, or as a
// comment on the line directly above.
#include <vector>

namespace fixture {

void precedingLineJustified()
{
    // Bit-packed is fine here: this table is cold config state that
    // no SoA kernel ever touches.
    std::vector<bool> flags; // NOLINT(densim-hot-layout)
    (void)flags;
}

void sameCommentJustified()
{
    std::vector<bool> more; // NOLINT(densim-hot-layout): cold config bitmap, reviewed
    (void)more;
}

} // namespace fixture
