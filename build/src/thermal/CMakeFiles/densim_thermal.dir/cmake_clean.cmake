file(REMOVE_RECURSE
  "CMakeFiles/densim_thermal.dir/coupling_map.cc.o"
  "CMakeFiles/densim_thermal.dir/coupling_map.cc.o.d"
  "CMakeFiles/densim_thermal.dir/entry_model.cc.o"
  "CMakeFiles/densim_thermal.dir/entry_model.cc.o.d"
  "CMakeFiles/densim_thermal.dir/heatsink.cc.o"
  "CMakeFiles/densim_thermal.dir/heatsink.cc.o.d"
  "CMakeFiles/densim_thermal.dir/hotspot_model.cc.o"
  "CMakeFiles/densim_thermal.dir/hotspot_model.cc.o.d"
  "CMakeFiles/densim_thermal.dir/rc_network.cc.o"
  "CMakeFiles/densim_thermal.dir/rc_network.cc.o.d"
  "CMakeFiles/densim_thermal.dir/simple_peak_model.cc.o"
  "CMakeFiles/densim_thermal.dir/simple_peak_model.cc.o.d"
  "CMakeFiles/densim_thermal.dir/transient.cc.o"
  "CMakeFiles/densim_thermal.dir/transient.cc.o.d"
  "libdensim_thermal.a"
  "libdensim_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
