// Known-bad fixture for densim-arena-lifo: an early return that
// crosses an outstanding mark, and an out-of-LIFO release order.
#include "util/arena.hh"

int leakyReturn(densim::Arena &arena, bool flag)
{
    const densim::Arena::Marker m = arena.mark();
    int *scratch = arena.alloc<int>(16);
    scratch[0] = 1;
    if (flag)
        return scratch[0]; // BAD: crosses the outstanding mark.
    arena.release(m);
    return 0;
}

void outOfOrder(densim::Arena &arena)
{
    const densim::Arena::Marker a = arena.mark();
    const densim::Arena::Marker b = arena.mark();
    arena.release(a); // BAD: 'b' (marked later) is still outstanding.
    arena.release(b);
}
