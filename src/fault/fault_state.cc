#include "fault/fault_state.hh"

namespace densim {

void
FaultState::configure(const FaultConfig &config, Celsius t_limit)
{
    config_ = config;
    limitC_ = t_limit.value();
    tripC_ = t_limit.value() + config.emergencyMarginC;
}

void
FaultState::reset(std::size_t n)
{
    sensorMode_.assign(n, SensorMode::Healthy);
    stuckAmbientC_.assign(n, 0.0);
    stuckChipC_.assign(n, 0.0);
    noiseSigmaC_.assign(n, 0.0);
    lastGoodAmbientC_.assign(n, 0.0);
    offline_.assign(n, 0);
    offlineCount_ = 0;
    escStage_.assign(n, 0);
    overTripSinceS_.assign(n, -1.0);
    flowFrac_ = 1.0;
}

void
FaultState::stickSensor(std::size_t s, Celsius ambient, Celsius chip)
{
    sensorMode_[s] = SensorMode::Stuck;
    stuckAmbientC_[s] = ambient.value();
    stuckChipC_[s] = chip.value();
}

void
FaultState::noisySensor(std::size_t s, CelsiusDelta sigma)
{
    sensorMode_[s] = SensorMode::Noisy;
    noiseSigmaC_[s] = sigma.value();
}

void
FaultState::dropSensor(std::size_t s, Celsius last_good_ambient)
{
    sensorMode_[s] = SensorMode::Dropout;
    lastGoodAmbientC_[s] = last_good_ambient.value();
}

void
FaultState::restoreSensor(std::size_t s)
{
    sensorMode_[s] = SensorMode::Healthy;
}

double
FaultState::dvfsAmbientC(std::size_t s, Celsius ambient,
                         Rng &rng) const
{
    const double ambient_c = ambient.value();
    switch (sensorMode_[s]) {
    case SensorMode::Healthy:
        return ambient_c;
    case SensorMode::Stuck:
        return stuckAmbientC_[s];
    case SensorMode::Noisy:
        return ambient_c + rng.normal(0.0, noiseSigmaC_[s]);
    case SensorMode::Dropout:
        return config_.dropoutPolicy == DropoutPolicy::Conservative
                   ? config_.fallbackAmbientC
                   : lastGoodAmbientC_[s];
    }
    return ambient_c;
}

double
FaultState::schedSensedC(std::size_t s, Celsius sensed, Celsius held,
                         Rng &rng) const
{
    const double sensed_c = sensed.value();
    const double held_c = held.value();
    switch (sensorMode_[s]) {
    case SensorMode::Healthy:
        return sensed_c;
    case SensorMode::Stuck:
        return stuckChipC_[s];
    case SensorMode::Noisy:
        return sensed_c + rng.normal(0.0, noiseSigmaC_[s]);
    case SensorMode::Dropout:
        // The scheduler keeps seeing the last reported value: a
        // dropped-out sensor register simply stops updating.
        return held_c;
    }
    return sensed_c;
}

void
FaultState::markFailed(std::size_t s)
{
    if (offline_[s] == 0)
        ++offlineCount_;
    offline_[s] = 1;
}

void
FaultState::markQuarantined(std::size_t s)
{
    if (offline_[s] == 0)
        ++offlineCount_;
    offline_[s] = 2;
}

void
FaultState::markOnline(std::size_t s)
{
    if (offline_[s] != 0)
        --offlineCount_;
    offline_[s] = 0;
    escStage_[s] = 0;
    overTripSinceS_[s] = -1.0;
}

EscalationAction
FaultState::escalate(std::size_t s, Celsius chip, Seconds now)
{
    const double chip_c = chip.value();
    const double now_s = now.value();
    if (escStage_[s] == 0) {
        if (chip_c <= tripC_) {
            overTripSinceS_[s] = -1.0;
            return EscalationAction::None;
        }
        if (overTripSinceS_[s] < 0.0)
            overTripSinceS_[s] = now_s;
        if (now_s - overTripSinceS_[s] >= config_.emergencySustainS) {
            escStage_[s] = 1;
            // The quarantine dwell starts fresh once throttled.
            overTripSinceS_[s] = now_s;
            return EscalationAction::Throttle;
        }
        return EscalationAction::None;
    }

    // Throttled. Hysteresis band [limitC_, tripC_]: release below the
    // limit, escalate only on a fresh sustained excursion above trip.
    if (chip_c < limitC_) {
        escStage_[s] = 0;
        overTripSinceS_[s] = -1.0;
        return EscalationAction::Release;
    }
    if (chip_c > tripC_) {
        if (overTripSinceS_[s] < 0.0)
            overTripSinceS_[s] = now_s;
        if (now_s - overTripSinceS_[s] >= config_.quarantineSustainS) {
            escStage_[s] = 0;
            overTripSinceS_[s] = -1.0;
            return EscalationAction::Quarantine;
        }
    } else {
        overTripSinceS_[s] = -1.0;
    }
    return EscalationAction::None;
}

} // namespace densim
