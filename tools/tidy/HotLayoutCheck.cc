#include "HotLayoutCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace densim::tidy {

void
HotLayoutCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        valueDecl(hasType(qualType(hasDeclaration(
                      classTemplateSpecializationDecl(
                          hasName("::std::vector"),
                          hasTemplateArgument(
                              0, refersToType(booleanType())))))))
            .bind("vector-bool"),
        this);
    finder->addMatcher(
        valueDecl(hasType(qualType(hasDeclaration(namedDecl(
                      hasAnyName("::std::list",
                                 "::std::forward_list"))))))
            .bind("node-list"),
        this);
}

void
HotLayoutCheck::check(const MatchFinder::MatchResult &result)
{
    if (const auto *decl =
            result.Nodes.getNodeAs<ValueDecl>("vector-bool")) {
        diag(decl->getLocation(),
             "std::vector<bool> is a bit-packed proxy container (no "
             ".data(), no vectorizable loads); hot-path flags use "
             "std::vector<std::uint8_t>");
        return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<ValueDecl>("node-list")) {
        diag(decl->getLocation(),
             "%0 is a non-contiguous node container; SoA hot-path "
             "state must live in flat arrays")
            << decl->getType();
    }
}

} // namespace densim::tidy
