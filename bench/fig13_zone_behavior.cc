/**
 * @file
 * Figure 13 — average frequency and share of work performed in the
 * front half, back half and even (better-sink) zones of the SUT for
 * each scheme at 30% and 70% load.
 *
 * Paper shapes at 30%: everything except Random/HF/MinHR does most of
 * its work in the front half at high frequency; Predictive does ~80%
 * of its work in the front and ~50% on even zones (i.e. mostly
 * zone 2). At 70% the back half is used heavily by all schemes and
 * its frequency drops; HF/MinHR do more work on even zones.
 */

#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== Figure 13: zone behaviour, Computation ===\n";

    const std::vector<double> loads{0.3, 0.7};
    const auto grid = runAveragedGrid(allSchedulerNames(),
                                      WorkloadSet::Computation, loads,
                                      "CF");

    for (double load : loads) {
        std::cout << "\n(" << (load == 0.3 ? "a" : "b") << ") "
                  << load * 100 << "% load:\n";
        TableWriter table({"Scheme", "FreqFront", "FreqBack",
                           "Work Front%", "Work Back%", "Work Even%",
                           "Boost%"});
        for (const std::string &scheme : allSchedulerNames()) {
            const AveragedCell &cell = grid.at(scheme).at(load);
            table.newRow()
                .cell(scheme)
                .cell(cell.freqFront, 3)
                .cell(cell.freqBack, 3)
                .cell(100 * cell.workFront, 1)
                .cell(100 * (1.0 - cell.workFront), 1)
                .cell(100 * cell.workEven, 1)
                .cell(100 * cell.boostFrac, 1);
        }
        table.print(std::cout);
    }
    return 0;
}
