/**
 * @file
 * Table I — recent density-optimized systems: organization, socket
 * counts, density, TDP and degree of thermal coupling.
 */

#include <iostream>

#include "server/catalog.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Table I: density optimized systems ===\n\n";

    TableWriter table({"Organization", "System", "Details", "Domain",
                       "U", "Layout", "Sockets", "Sockets/U", "TDP(W)",
                       "CPU", "Coupling"});
    for (const SystemRecord &r : densityOptimizedSystems()) {
        table.newRow()
            .cell(r.organization)
            .cell(r.system)
            .cell(r.details)
            .cell(r.domain)
            .cell(static_cast<long long>(r.dimensionsU))
            .cell(r.organization2)
            .cell(static_cast<long long>(r.totalSockets))
            .cell(r.socketsPerU(), 2)
            .cell(r.socketTdpW, 1)
            .cell(r.cpu)
            .cell(static_cast<long long>(r.degreeOfCoupling));
    }
    table.print(std::cout);
    std::cout << "\nDensity spans "
              << formatFixed(densityOptimizedSystems()[2].socketsPerU(), 0)
              << " to 72 sockets/U; coupling degree 1 to "
              << maxCatalogCoupling() << ".\n";
    return 0;
}
