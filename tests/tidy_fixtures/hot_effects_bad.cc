// Known-bad fixture for densim-hot-effects (conservative-resolution
// coverage, ISSUE 8): every hot-reachable effect here is unsanctioned
// and must be flagged —
//   1. an allocation hiding THREE calls deep under a hot root,
//   2. an allocation behind a VIRTUAL override (the DENSIM_HOT mark
//      on the base method roots the whole override family),
//   3. a call through a FUNCTION POINTER, which the analyzer cannot
//      resolve and therefore flags in itself.
// The macros are stand-ins for src/core/effects.hh (fixtures are
// self-contained TUs; the analyzer reads the marker tokens).
#include <cstddef>
#include <vector>

#define DENSIM_HOT
#define DENSIM_COLD
#define DENSIM_ALLOCATES(reason)

namespace fixture {

// --- 1. allocation three calls deep --------------------------------

void leafAllocates(std::vector<double> &v)
{
    v.push_back(1.0); // Flagged: hot-reachable, unsanctioned.
}

void middleB(std::vector<double> &v)
{
    leafAllocates(v);
}

void middleA(std::vector<double> &v)
{
    middleB(v);
}

DENSIM_HOT void hotRoot(std::vector<double> &v)
{
    middleA(v);
}

// --- 2. allocation behind a virtual override ------------------------

class Policy
{
  public:
    virtual ~Policy() = default;
    DENSIM_HOT virtual std::size_t pick(std::size_t n) = 0;
};

class GreedyPolicy : public Policy
{
  public:
    std::size_t pick(std::size_t n) override
    {
        scratch_.resize(n); // Flagged via the override family.
        return scratch_.size();
    }

  private:
    std::vector<std::size_t> scratch_;
};

// --- 3. unresolvable indirect call ----------------------------------

DENSIM_HOT double hotIndirect(double (*fn)(double), double x)
{
    return fn(x); // Flagged: effects of *fn are unknowable here.
}

} // namespace fixture
