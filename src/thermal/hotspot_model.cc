#include "thermal/hotspot_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace densim {

PowerMap::PowerMap(int map_grid, std::vector<double> frac)
    : grid_(map_grid), frac_(std::move(frac))
{
}

PowerMap
PowerMap::uniform(int map_grid)
{
    if (map_grid < 1)
        fatal("PowerMap: grid must be >= 1, got ", map_grid);
    const auto n = static_cast<std::size_t>(map_grid) * map_grid;
    return PowerMap(map_grid,
                    std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

PowerMap
PowerMap::concentrated(int map_grid, double hot_fraction, HotBlock block)
{
    if (map_grid < 1)
        fatal("PowerMap: grid must be >= 1, got ", map_grid);
    if (hot_fraction < 0.0 || hot_fraction > 1.0)
        fatal("PowerMap: hot fraction ", hot_fraction,
              " outside [0, 1]");
    if (block.size < 1 || block.row < 0 || block.col < 0 ||
        block.row + block.size > map_grid ||
        block.col + block.size > map_grid) {
        fatal("PowerMap: hot block [", block.row, ",", block.col, ")+",
              block.size, " does not fit a ", map_grid, "x", map_grid,
              " grid");
    }
    const auto n = static_cast<std::size_t>(map_grid) * map_grid;
    const auto hot_cells = static_cast<std::size_t>(block.size) *
                           block.size;
    if (hot_cells == n)
        return uniform(map_grid);
    std::vector<double> frac(
        n, (1.0 - hot_fraction) / static_cast<double>(n - hot_cells));
    for (int r = block.row; r < block.row + block.size; ++r) {
        for (int c = block.col; c < block.col + block.size; ++c) {
            frac[static_cast<std::size_t>(r) * map_grid + c] =
                hot_fraction / static_cast<double>(hot_cells);
        }
    }
    return PowerMap(map_grid, std::move(frac));
}

double
PowerMap::at(int r, int c) const
{
    if (r < 0 || c < 0 || r >= grid_ || c >= grid_)
        panic("PowerMap::at(", r, ",", c, ") outside grid ", grid_);
    return frac_[static_cast<std::size_t>(r) * grid_ + c];
}

HotSpotModel::HotSpotModel(const ChipStackParams &stack_params,
                           const HeatSink &chip_sink)
    : params_(stack_params), sink_(chip_sink)
{
    const int g = params_.grid;
    if (g < 2)
        fatal("HotSpotModel: grid must be >= 2, got ", g);
    const auto cells = static_cast<std::size_t>(g) * g;
    const double cell_area = params_.dieAreaM2 / static_cast<double>(cells);
    const double cell_cap =
        params_.siliconVolHeat * cell_area * params_.dieThicknessM;

    cellNodes_.reserve(cells);
    for (int r = 0; r < g; ++r) {
        for (int c = 0; c < g; ++c) {
            cellNodes_.push_back(net_.addNode(
                "die[" + std::to_string(r) + "," + std::to_string(c) +
                    "]",
                JoulePerKelvin(cell_cap)));
        }
    }

    const double frac_sum = params_.dieVertFraction +
                            params_.timFraction + params_.baseFraction;
    if (frac_sum < 0.999 || frac_sum > 1.001)
        fatal("HotSpotModel: vertical layer fractions must sum to 1, "
              "got ",
              frac_sum);

    // Sink base plate cells (the package's lateral spreader).
    const double base_cell_cap = params_.baseVolHeat * cell_area *
                                 params_.baseThicknessM *
                                 params_.baseSpreadFactor;
    baseNodes_.reserve(cells);
    for (int r = 0; r < g; ++r) {
        for (int c = 0; c < g; ++c) {
            baseNodes_.push_back(net_.addNode(
                "base[" + std::to_string(r) + "," +
                    std::to_string(c) + "]",
                JoulePerKelvin(base_cell_cap)));
        }
    }

    // Lumped fin/sink node. Its capacitance sets the sink/socket time
    // constant to params_.socketTauS (Table III: 30 s).
    const double sink_cap = params_.socketTauS / sink_.rExt.value();
    sinkNode_ = net_.addNode("sink", JoulePerKelvin(sink_cap));

    // Vertical chain per cell: die -> (bulk Si + TIM) -> base plate
    // cell -> fin node. The per-cell series total is rIntTotal * N,
    // so the parallel combination across all cells equals rIntTotal
    // exactly and a uniform power map yields mean die temperature
    // T_amb + P*(R_int + R_ext).
    const double n_cells = static_cast<double>(cells);
    const double r_die_tim = params_.rIntTotal * n_cells *
                             (params_.dieVertFraction +
                              params_.timFraction);
    const double r_base_vert =
        params_.rIntTotal * n_cells * params_.baseFraction;
    for (std::size_t i = 0; i < cells; ++i) {
        net_.connect(cellNodes_[i], baseNodes_[i],
                     KelvinPerWatt(r_die_tim));
        net_.connect(baseNodes_[i], sinkNode_,
                     KelvinPerWatt(r_base_vert));
    }

    // Lateral conduction between 4-neighbours: silicon sheet in the
    // die layer, aluminum plate in the base layer.
    const double g_lat = params_.siliconK * params_.dieThicknessM *
                         params_.lateralSpreadFactor;
    if (g_lat <= 0.0)
        fatal("HotSpotModel: non-positive lateral conductance");
    const double r_lat = 1.0 / g_lat;
    const double g_base = params_.baseK * params_.baseThicknessM *
                          params_.baseSpreadFactor;
    const double r_base_lat = 1.0 / g_base;
    auto node = [&](int r, int c) {
        return cellNodes_[static_cast<std::size_t>(r) * g + c];
    };
    auto base = [&](int r, int c) {
        return baseNodes_[static_cast<std::size_t>(r) * g + c];
    };
    for (int r = 0; r < g; ++r) {
        for (int c = 0; c < g; ++c) {
            if (c + 1 < g) {
                net_.connect(node(r, c), node(r, c + 1),
                             KelvinPerWatt(r_lat));
                net_.connect(base(r, c), base(r, c + 1),
                             KelvinPerWatt(r_base_lat));
            }
            if (r + 1 < g) {
                net_.connect(node(r, c), node(r + 1, c),
                             KelvinPerWatt(r_lat));
                net_.connect(base(r, c), base(r + 1, c),
                             KelvinPerWatt(r_base_lat));
            }
        }
    }

    net_.connectAmbient(sinkNode_, sink_.rExt);
}

const std::vector<double> &
HotSpotModel::nodePowers(Watts power, const PowerMap &map) const
{
    if (map.grid() != params_.grid)
        fatal("HotSpotModel: power map grid ", map.grid(),
              " does not match model grid ", params_.grid);
    const double power_w = power.value();
    if (power_w < 0.0)
        fatal("HotSpotModel: negative power ", power_w);
    powerScratch_.assign(net_.size(), 0.0);
    for (std::size_t i = 0; i < cellNodes_.size(); ++i)
        powerScratch_[cellNodes_[i]] = power_w * map.fractions()[i];
    return powerScratch_;
}

ChipThermalField
HotSpotModel::steady(Watts power, const PowerMap &map,
                     Celsius t_amb) const
{
    const auto temps =
        net_.steadyState(nodePowers(power, map), t_amb);
    return summarize(temps);
}

void
HotSpotModel::transientStep(std::vector<double> &state, Watts power,
                            const PowerMap &map, Celsius t_amb,
                            Seconds dt) const
{
    net_.transientStep(state, nodePowers(power, map), t_amb,
                       dt);
}

std::vector<double>
HotSpotModel::initialState(Celsius t_amb) const
{
    return std::vector<double>(net_.size(), t_amb.value());
}

ChipThermalField
HotSpotModel::summarize(const std::vector<double> &state) const
{
    if (state.size() != net_.size())
        panic("HotSpotModel::summarize: state size mismatch");
    ChipThermalField field;
    field.dieTemps.reserve(cellNodes_.size());
    double acc = 0.0;
    field.maxT = -1e300;
    field.minT = 1e300;
    for (NodeId cell : cellNodes_) {
        const double t = state[cell];
        field.dieTemps.push_back(t);
        acc += t;
        field.maxT = std::max(field.maxT, t);
        field.minT = std::min(field.minT, t);
    }
    field.avgT = acc / static_cast<double>(cellNodes_.size());
    field.sinkTemp = state[sinkNode_];
    return field;
}

double
defaultHotFraction(Watts power)
{
    // Low-power workloads keep one unit busy (concentrated); high
    // power means the whole die is active (flatter map). Calibrated
    // jointly with ChipStackParams so the residual
    // maxT - (T_amb + P*(R_int+R_ext)) tracks theta(P, sink) of
    // Table III within the 2 C envelope of Fig. 10.
    return std::clamp(0.99 - 0.024 * power.value(), 0.25, 0.95);
}

} // namespace densim
