# Empty dependencies file for fig09_chip_thermals.
# This may be replaced when dependencies are built.
