#include "airflow/first_law.hh"

#include "util/logging.hh"

namespace densim {

double
airTemperatureRise(double watts, double cfm)
{
    if (cfm <= 0.0)
        fatal("airTemperatureRise: airflow must be positive, got ", cfm);
    if (watts < 0.0)
        fatal("airTemperatureRise: negative power ", watts);
    return kCelsiusPerWattPerCfm * watts / cfm;
}

double
requiredAirflow(double watts, double delta_t_celsius)
{
    if (delta_t_celsius <= 0.0)
        fatal("requiredAirflow: temperature rise must be positive, got ",
              delta_t_celsius);
    if (watts < 0.0)
        fatal("requiredAirflow: negative power ", watts);
    return kCelsiusPerWattPerCfm * watts / delta_t_celsius;
}

double
absorbableHeat(double cfm, double delta_t_celsius)
{
    if (cfm <= 0.0)
        fatal("absorbableHeat: airflow must be positive, got ", cfm);
    if (delta_t_celsius < 0.0)
        fatal("absorbableHeat: negative temperature rise ",
              delta_t_celsius);
    return cfm * delta_t_celsius / kCelsiusPerWattPerCfm;
}

} // namespace densim
