#include "server/topology.hh"

#include "util/logging.hh"

namespace densim {

ServerTopology::ServerTopology(TopologySpec topo_spec)
    : spec_(topo_spec)
{
    if (spec_.rows < 1 || spec_.cartridgesPerRow < 1 ||
        spec_.zonesPerCartridge < 1 || spec_.socketsPerZone < 1) {
        fatal("ServerTopology: all structural counts must be >= 1");
    }
    if (spec_.intraZoneSpacingInch <= 0.0 ||
        spec_.interCartridgeGapInch < 0.0) {
        fatal("ServerTopology: invalid spacing");
    }
    if (spec_.perSocketCfm <= 0.0)
        fatal("ServerTopology: per-socket airflow must be positive");
}

int
ServerTopology::zonesPerRow() const
{
    return spec_.cartridgesPerRow * spec_.zonesPerCartridge;
}

int
ServerTopology::socketsPerRow() const
{
    return zonesPerRow() * spec_.socketsPerZone;
}

std::size_t
ServerTopology::numSockets() const
{
    return static_cast<std::size_t>(spec_.rows) * socketsPerRow();
}

void
ServerTopology::checkSocket(std::size_t socket) const
{
    if (socket >= numSockets())
        panic("socket id ", socket, " out of range (", numSockets(),
              ")");
}

int
ServerTopology::rowOf(std::size_t socket) const
{
    checkSocket(socket);
    return static_cast<int>(socket / socketsPerRow());
}

int
ServerTopology::zoneIndexOf(std::size_t socket) const
{
    checkSocket(socket);
    const auto in_row = static_cast<int>(socket % socketsPerRow());
    return in_row / spec_.socketsPerZone;
}

double
ServerTopology::streamPosOf(std::size_t socket) const
{
    const int zone = zoneIndexOf(socket);
    const int cartridge = zone / spec_.zonesPerCartridge;
    const int within = zone % spec_.zonesPerCartridge;
    const double cartridge_pitch =
        (spec_.zonesPerCartridge - 1) * spec_.intraZoneSpacingInch +
        spec_.interCartridgeGapInch;
    return cartridge * cartridge_pitch +
           within * spec_.intraZoneSpacingInch;
}

const HeatSink &
ServerTopology::sinkOf(std::size_t socket) const
{
    checkSocket(socket);
    if (socket < sinkOverride_.size() && sinkOverride_[socket])
        return *sinkOverride_[socket];
    if (spec_.alternateSinksByRow) {
        return rowOf(socket) % 2 == 0 ? HeatSink::fin18()
                                      : HeatSink::fin30();
    }
    // Paper zones are one-based: odd -> 18-fin, even -> 30-fin.
    return zoneIdOf(socket) % 2 == 1 ? HeatSink::fin18()
                                     : HeatSink::fin30();
}

void
ServerTopology::overrideSink(std::size_t socket, const HeatSink &sink)
{
    checkSocket(socket);
    if (sinkOverride_.size() < numSockets())
        sinkOverride_.resize(numSockets(), nullptr);
    sinkOverride_[socket] = &sink;
}

bool
ServerTopology::inFrontHalf(std::size_t socket) const
{
    return zoneIndexOf(socket) < (zonesPerRow() + 1) / 2;
}

bool
ServerTopology::inEvenZone(std::size_t socket) const
{
    return zoneIdOf(socket) % 2 == 0;
}

std::vector<std::size_t>
ServerTopology::socketsInRow(int row) const
{
    if (row < 0 || row >= spec_.rows)
        panic("row ", row, " out of range (", spec_.rows, ")");
    std::vector<std::size_t> sockets;
    sockets.reserve(socketsPerRow());
    const std::size_t base =
        static_cast<std::size_t>(row) * socketsPerRow();
    for (int i = 0; i < socketsPerRow(); ++i)
        sockets.push_back(base + i);
    return sockets;
}

std::vector<std::size_t>
ServerTopology::socketsInZone(int zone_id) const
{
    if (zone_id < 1 || zone_id > zonesPerRow())
        panic("zone id ", zone_id, " out of range (1..", zonesPerRow(),
              ")");
    std::vector<std::size_t> sockets;
    for (std::size_t s = 0; s < numSockets(); ++s) {
        if (zoneIdOf(s) == zone_id)
            sockets.push_back(s);
    }
    return sockets;
}

std::vector<SocketSite>
ServerTopology::sites() const
{
    std::vector<SocketSite> result;
    result.reserve(numSockets());
    for (std::size_t s = 0; s < numSockets(); ++s) {
        result.push_back(SocketSite{
            streamPosOf(s),
            rowOf(s),
            zoneCfm(),
        });
    }
    return result;
}

int
ServerTopology::degreeOfCoupling() const
{
    return zonesPerRow() * spec_.socketsPerZone;
}

Cfm
ServerTopology::zoneCfm() const
{
    return Cfm(spec_.perSocketCfm * spec_.socketsPerZone);
}

} // namespace densim
