#include "sched/balanced.hh"

#include <cmath>
#include <limits>

namespace densim {

Balanced::Balanced(double row_pitch_inch) : rowPitchInch_(row_pitch_inch)
{
}

std::size_t
Balanced::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    const auto &topo = *ctx.topo;
    const double *temp = ctx.chipTempC;

    // Locate the hottest point in the server (busy or not).
    std::size_t hottest = 0;
    for (std::size_t s = 1; s < ctx.nSockets; ++s) {
        if (temp[s] > temp[hottest])
            hottest = s;
    }
    const double hx = topo.streamPosOf(hottest);
    const double hy = topo.rowOf(hottest) * rowPitchInch_;

    double best_dist = -1.0;
    std::size_t best = (*ctx.idle)[0];
    for (std::size_t s : *ctx.idle) {
        const double dx = topo.streamPosOf(s) - hx;
        const double dy = topo.rowOf(s) * rowPitchInch_ - hy;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist > best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    return best;
}

} // namespace densim
