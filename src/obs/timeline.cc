#include "obs/timeline.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hh"
#include "util/fs.hh"
#include "util/logging.hh"

namespace densim::obs {

void
writeTimelineJsonl(std::ostream &os, const std::vector<double> &times,
                   const std::vector<std::vector<double>> &zone_rows)
{
    if (times.size() != zone_rows.size())
        panic("obs: timeline has ", times.size(), " timestamps but ",
              zone_rows.size(), " zone rows");
    std::string line;
    for (std::size_t i = 0; i < times.size(); ++i) {
        line.clear();
        line += "{\"tS\":";
        json::appendNumber(line, times[i]);
        line += ",\"zoneAmbientC\":[";
        for (std::size_t z = 0; z < zone_rows[i].size(); ++z) {
            if (z > 0)
                line += ',';
            json::appendNumber(line, zone_rows[i][z]);
        }
        line += "]}";
        os << line << "\n";
    }
}

void
writeTimelineJsonlFile(const std::string &path,
                       const std::vector<double> &times,
                       const std::vector<std::vector<double>> &zone_rows)
{
    // Atomic replace, so a crash mid-flush leaves the previous
    // timeline (or nothing) rather than a torn JSONL tail.
    std::ostringstream out;
    writeTimelineJsonl(out, times, zone_rows);
    if (!atomicWriteFile(path, out.str()))
        fatal("obs: cannot write timeline file '", path, "'");
}

} // namespace densim::obs
