#include "sched/coupling_predictor.hh"

#include <limits>

#include "sched/prediction.hh"
#include "util/arena.hh"
#include "util/logging.hh"

namespace densim {

CouplingPredictor::CouplingPredictor(double downstream_weight,
                                     bool global_search)
    : downstreamWeight_(downstream_weight), globalSearch_(global_search)
{
    if (downstreamWeight_ < 0.0)
        fatal("CouplingPredictor: downstream weight must be "
              "non-negative, got ",
              downstreamWeight_);
}

std::size_t
CouplingPredictor::pickWithin(const Job &job, const SchedContext &ctx,
                              const std::size_t *candidates,
                              std::size_t count)
{
    double best_score = -std::numeric_limits<double>::infinity();
    double best_peak = std::numeric_limits<double>::infinity();
    std::size_t best = candidates[0];
    std::size_t n_best = 0;
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t s = candidates[k];
        const DvfsDecision d = predictPlacement(ctx, s, job.set);
        const double penalty =
            downstreamWeight_ == 0.0
                ? 0.0
                : downstreamWeight_ *
                      downstreamPenaltyMhz(ctx, s, d.power);
        const double score = d.freqMhz - penalty;
        // Primary: net frequency benefit. Secondary: most thermal
        // headroom (the placement keeps its frequency longest).
        // Remaining ties: uniform random.
        const double peak_c = d.predictedPeak.value();
        if (score > best_score + 1e-9 ||
            (score > best_score - 1e-9 &&
             peak_c < best_peak - 1e-9)) {
            best_score = score;
            best_peak = peak_c;
            best = s;
            n_best = 1;
        } else if (score > best_score - 1e-9 &&
                   peak_c < best_peak + 1e-9) {
            ++n_best;
            if (ctx.rng->nextBounded(n_best) == 0)
                best = s;
        }
    }
    return best;
}

std::size_t
CouplingPredictor::pick(const Job &job, const SchedContext &ctx)
{
    if (globalSearch_)
        return pickWithin(job, ctx, ctx.idle->data(),
                          ctx.idle->size());

    // Paper mechanics: choose a row with idle sockets at random, then
    // evaluate only that row's idle sockets. Idle ids ascend, so each
    // row's sockets are one contiguous span of the idle list: one
    // pass records the span boundaries and the chosen row's
    // candidates are a pointer range into the idle array itself — no
    // copy. The boundary scratch lives in the per-epoch arena (zero
    // heap in steady state); the owned vector is only a fallback for
    // hand-built test contexts with no arena.
    const auto &idle = *ctx.idle;
    Arena *arena = ctx.scratch;
    const Arena::Marker marker =
        arena != nullptr ? arena->mark() : Arena::Marker{};
    std::size_t *starts;
    if (arena != nullptr) {
        starts = arena->alloc<std::size_t>(idle.size() + 1);
    } else {
        startsFallback_.resize(idle.size() + 1);
        starts = startsFallback_.data();
    }

    const int *row_of = ctx.socketRow;
    std::size_t n_rows = 0;
    int last_row = -1;
    for (std::size_t k = 0; k < idle.size(); ++k) {
        const int row = row_of != nullptr
                            ? row_of[idle[k]]
                            : ctx.topo->rowOf(idle[k]);
        if (row != last_row) {
            starts[n_rows++] = k;
            last_row = row;
        }
    }
    starts[n_rows] = idle.size();
    const std::size_t pick_at = ctx.rng->nextBounded(n_rows);
    const std::size_t best =
        pickWithin(job, ctx, idle.data() + starts[pick_at],
                   starts[pick_at + 1] - starts[pick_at]);
    if (arena != nullptr)
        arena->release(marker);
    return best;
}

} // namespace densim
