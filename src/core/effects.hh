/**
 * @file
 * Hot-path effect annotations (DESIGN.md Sec. 14).
 *
 * The per-epoch hot loop must stay heap-free, exception-free and
 * deterministic on *every* path, not just the paths the test matrix
 * happens to execute. The densim-hot-effects analyzer
 * (tools/tidy/run_densim_tidy.py, clang-tidy plugin form in
 * tools/tidy/HotEffectsCheck.cc) proves that statically: it builds an
 * interprocedural call graph, computes a per-function summary over
 * the effect lattice {allocates, throws, does-IO, ambient-entropy,
 * unordered-iteration-with-escape}, and propagates summaries bottom
 * up from leaves into the functions marked DENSIM_HOT below. Any
 * effect reaching a hot root that is not sanctioned by an annotation
 * is a build-gated finding.
 *
 * The three markers:
 *
 *  - DENSIM_HOT — this function is a hot-loop root: every function
 *    reachable from it is analyzed. On a virtual method the mark
 *    covers the whole override family (a call through the base may
 *    land in any of them).
 *
 *  - DENSIM_ALLOCATES("why this is safe") — this function may touch
 *    the heap (or make an indirect call the analyzer cannot resolve)
 *    and a reviewer has signed off on why that is compatible with the
 *    steady-state zero-heap contract; the canonical reasons are
 *    "container pre-reserved in resetState, growth asserted zero
 *    under DENSIM_CHECKS" and "cold fault-transition edge". The
 *    sanction covers this function's *direct* effects only — callees
 *    carry their own annotations, so every allocating site in the hot
 *    tree is a separately reviewed decision.
 *
 *  - DENSIM_COLD — a deliberate cold endpoint: error paths (panic,
 *    fatal) and diagnostics that abort or escape the epoch contract
 *    by design. Propagation stops here; the function's effects never
 *    reach its hot callers' summaries.
 *
 * Under clang the markers expand to [[clang::annotate]] attributes so
 * the clang-tidy plugin sees them in the AST; everywhere else they
 * expand to nothing and cost zero codegen — the portable driver reads
 * the marker tokens straight from the source, so both frontends see
 * the same contract. The dynamic `arena_.stats().growths == 0` check
 * (core/invariant.hh) remains as the runtime backstop of this static
 * proof.
 */

#ifndef DENSIM_CORE_EFFECTS_HH
#define DENSIM_CORE_EFFECTS_HH

#if defined(__clang__)
#define DENSIM_HOT [[clang::annotate("densim::hot")]]
#define DENSIM_COLD [[clang::annotate("densim::cold")]]
#define DENSIM_ALLOCATES(reason)                                       \
    [[clang::annotate("densim::allocates:" reason)]]
#else
#define DENSIM_HOT
#define DENSIM_COLD
#define DENSIM_ALLOCATES(reason)
#endif

#endif // DENSIM_CORE_EFFECTS_HH
