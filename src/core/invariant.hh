/**
 * @file
 * Runtime invariant checker for the incremental engine —
 * compiled out by default, loud when enabled.
 *
 * PR 1 replaced densim's recompute-from-scratch reference paths with
 * incremental machinery (delta-maintained coupling field, indexed
 * event heap, cached LU factorization, DVFS memoization) whose
 * correctness rests entirely on invalidation discipline. This header
 * provides the assertion layer that makes a violated invariant abort
 * the run instead of silently drifting the physics:
 *
 *  - DENSIM_CHECK(cond, msg...): cheap structural/physical
 *    assertions (finite fields, temperatures above absolute zero,
 *    heap/index consistency). Enabled by the CMake option
 *    `DENSIM_CHECKS=ON` (definition DENSIM_ENABLE_CHECKS).
 *  - DENSIM_PARANOID(cond, msg...): expensive cross-validation
 *    against the reference computation (fresh field evaluation vs
 *    the incremental one, nodal heat residual of a cached LU solve,
 *    full heap ordering scans). Enabled by `DENSIM_PARANOID=ON`
 *    (definition DENSIM_ENABLE_PARANOID, which implies the cheap
 *    checks).
 *
 * Both macros expand to `static_cast<void>(0)` when disabled — the
 * condition is NOT evaluated, so hot paths carry zero cost in normal
 * builds. Failure prints the condition, location and message to
 * stderr and aborts (same contract as panic()), which keeps negative
 * tests expressible as gtest death tests.
 *
 * Check sites live at epoch boundaries of the engine
 * (DenseServerSim::checkEpochInvariants), inside
 * RCNetwork::steadyState (cache validity / first-law balance) and
 * EventHeap::checkInvariants (ordering + position index). CI runs
 * the paranoid build on the reduced workloads of
 * tests/perf_equivalence_test.cc (see tools/check.sh).
 */

#ifndef DENSIM_CORE_INVARIANT_HH
#define DENSIM_CORE_INVARIANT_HH

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "util/logging.hh"

#ifndef DENSIM_ENABLE_CHECKS
#define DENSIM_ENABLE_CHECKS 0
#endif
#ifndef DENSIM_ENABLE_PARANOID
#define DENSIM_ENABLE_PARANOID 0
#endif

namespace densim {

/** Whether DENSIM_CHECK assertions are compiled into this build. */
inline constexpr bool kChecksEnabled = DENSIM_ENABLE_CHECKS != 0;

/** Whether DENSIM_PARANOID assertions are compiled into this build. */
inline constexpr bool kParanoidEnabled = DENSIM_ENABLE_PARANOID != 0;

namespace detail {

/** Report a violated invariant and abort. */
[[noreturn]] inline void
invariantFailed(const char *cond, const char *file, int line,
                const std::string &msg)
{
    std::cerr << "invariant violated: " << cond;
    if (!msg.empty())
        std::cerr << " — " << msg;
    std::cerr << " (" << file << ":" << line << ")\n";
    std::abort();
}

} // namespace detail

} // namespace densim

#if DENSIM_ENABLE_CHECKS
#define DENSIM_CHECK(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::densim::detail::invariantFailed(                            \
                #cond, __FILE__, __LINE__,                                \
                ::densim::detail::concat(__VA_ARGS__));                   \
    } while (false)
#else
#define DENSIM_CHECK(cond, ...) static_cast<void>(0)
#endif

#if DENSIM_ENABLE_PARANOID
#define DENSIM_PARANOID(cond, ...) DENSIM_CHECK(cond, __VA_ARGS__)
#else
#define DENSIM_PARANOID(cond, ...) static_cast<void>(0)
#endif

namespace densim {
namespace invariant {

/** Lowest value any Celsius temperature field may contain. */
inline constexpr double kAbsoluteZeroC = -273.15;

/**
 * Assert every entry of a temperature field is finite and above
 * absolute zero. No-op unless checks are compiled in.
 */
inline void
checkTemperatureField(const char *what,
                      const std::vector<double> &temps_c)
{
#if DENSIM_ENABLE_CHECKS
    for (std::size_t i = 0; i < temps_c.size(); ++i) {
        DENSIM_CHECK(std::isfinite(temps_c[i]), what, "[", i,
                     "] is not finite");
        DENSIM_CHECK(temps_c[i] >= kAbsoluteZeroC, what, "[", i,
                     "] = ", temps_c[i], " C is below absolute zero");
    }
#else
    (void)what;
    (void)temps_c;
#endif
}

/**
 * Assert two fields agree entrywise within @p tol — the
 * incremental-vs-reference drift bound. No-op unless checks are
 * compiled in.
 */
inline void
checkFieldsClose(const char *what, const std::vector<double> &got,
                 const std::vector<double> &want, double tol)
{
#if DENSIM_ENABLE_CHECKS
    DENSIM_CHECK(got.size() == want.size(), what, ": ", got.size(),
                 " entries vs ", want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        DENSIM_CHECK(std::fabs(got[i] - want[i]) <= tol, what, "[", i,
                     "]: incremental ", got[i], " vs reference ",
                     want[i], " exceeds drift bound ", tol);
    }
#else
    (void)what;
    (void)got;
    (void)want;
    (void)tol;
#endif
}

} // namespace invariant
} // namespace densim

#endif // DENSIM_CORE_INVARIANT_HH
