file(REMOVE_RECURSE
  "CMakeFiles/vdi_daily_load.dir/vdi_daily_load.cpp.o"
  "CMakeFiles/vdi_daily_load.dir/vdi_daily_load.cpp.o.d"
  "vdi_daily_load"
  "vdi_daily_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdi_daily_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
