/**
 * @file
 * Predictive scheduling [81][43] (Sec. IV-A): for every idle socket,
 * predict the temperature the socket would reach with the job on it,
 * derive the frequency it could sustain under the limit, and place
 * the job where it runs fastest. No awareness of what the placement
 * does to sockets downstream — that blind spot is what
 * CouplingPredictor fixes.
 */

#ifndef DENSIM_SCHED_PREDICTIVE_HH
#define DENSIM_SCHED_PREDICTIVE_HH

#include "sched/scheduler.hh"

namespace densim {

/** Fastest-predicted-socket policy. */
class Predictive : public Scheduler
{
  public:
    const char *name() const override { return "Predictive"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;
};

} // namespace densim

#endif // DENSIM_SCHED_PREDICTIVE_HH
