// Known-bad fixture for densim-nondeterministic-iteration: both
// functions walk an unordered container and fold into state that
// outlives the loop, so the result depends on hash iteration order.
#include <string>
#include <unordered_map>

double totalEnergy(
    const std::unordered_map<std::string, double> &perSocket)
{
    double sum = 0.0;
    for (const auto &kv : perSocket)
        sum += kv.second; // Order-dependent rounding.
    return sum;
}

struct Registry
{
    std::unordered_map<int, double> rates;
    double lastSum = 0.0;

    void accumulate()
    {
        for (auto &kv : rates)
            lastSum += kv.second; // Writes a member: sim-visible.
    }
};
