#include "core/experiment.hh"

#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>

#include "core/config_io.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "sched/factory.hh"
#include "util/digest.hh"
#include "util/fs.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace densim {

namespace {

/** Rewrite a spec's obs sinks to per-run file names (run @p i). */
RunSpec
perRunSpec(const RunSpec &spec, std::size_t i)
{
    RunSpec out = spec;
    if (!out.config.obsTracePath.empty())
        out.config.obsTracePath =
            obs::perRunPath(out.config.obsTracePath, i);
    if (!out.config.obsTimelinePath.empty())
        out.config.obsTimelinePath =
            obs::perRunPath(out.config.obsTimelinePath, i);
    if (!out.config.fault.logPath.empty())
        out.config.fault.logPath =
            obs::perRunPath(out.config.fault.logPath, i);
    return out;
}

/** Digests already completed according to the resume manifest. */
std::set<std::string>
loadResumeManifest(const std::string &path)
{
    std::set<std::string> done;
    std::ifstream in(path);
    // A missing manifest is a fresh sweep, not an error.
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty())
            done.insert(line);
    }
    return done;
}

} // namespace

RunResult
runOne(const RunSpec &spec)
{
    DenseServerSim sim(spec.config, makeScheduler(spec.scheduler));
    RunResult result;
    result.spec = spec;
    result.metrics = sim.run();
    return result;
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned threads)
{
    if (specs.empty())
        return {};
    std::vector<RunResult> results(specs.size());
    const bool per_run = specs.size() > 1;
    parallelFor(specs.size(), threads, [&](std::size_t i) {
        results[i] =
            runOne(per_run ? perRunSpec(specs[i], i) : specs[i]);
    });
    return results;
}

std::string
runDigest(const RunSpec &spec)
{
    std::uint64_t h = fnv1a64(spec.scheduler);
    h = fnv1a64("\n", h);
    h = fnv1a64(saveConfig(spec.config), h);
    return hex64(h);
}

std::vector<RunOutcome>
runAllOutcomes(const std::vector<RunSpec> &specs,
               const SweepOptions &options)
{
    std::vector<RunOutcome> outcomes(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        outcomes[i].spec = specs[i];
        outcomes[i].digest = runDigest(specs[i]);
    }

    if (!options.resumePath.empty()) {
        const std::set<std::string> done =
            loadResumeManifest(options.resumePath);
        for (RunOutcome &outcome : outcomes) {
            if (done.count(outcome.digest) != 0) {
                outcome.skipped = true;
                outcome.ok = true;
            }
        }
    }

    std::ofstream manifest;
    std::mutex manifest_mu;
    if (!options.resumePath.empty()) {
        manifest.open(options.resumePath, std::ios::app);
        if (!manifest) {
            fatal("experiment: cannot open resume manifest '",
                  options.resumePath, "' for append");
        }
    }

    if (!specs.empty()) {
        // In keep-going mode fatal() throws for the duration of the
        // sweep, so one cell's bad configuration becomes a captured
        // outcome instead of exiting the process.
        std::optional<ScopedFatalThrows> guard;
        if (options.keepGoing)
            guard.emplace();
        const bool per_run = specs.size() > 1;
        parallelFor(specs.size(), options.threads, [&](std::size_t i) {
            RunOutcome &outcome = outcomes[i];
            if (outcome.skipped)
                return;
            const RunSpec spec =
                per_run ? perRunSpec(specs[i], i) : specs[i];
            const auto runCell = [&](const RunSpec &s) {
                return options.cellRunner ? options.cellRunner(s)
                                          : runOne(s).metrics;
            };
            if (options.keepGoing) {
                try {
                    outcome.metrics = runCell(spec);
                    outcome.ok = true;
                } catch (const std::exception &e) {
                    outcome.error = e.what();
                }
            } else {
                outcome.metrics = runCell(spec);
                outcome.ok = true;
            }
            if (outcome.ok && manifest.is_open()) {
                const std::lock_guard<std::mutex> lock(manifest_mu);
                manifest << outcome.digest << '\n' << std::flush;
                // An unchecked append (full disk, closed fd) would
                // silently drop the digest and the cell would
                // silently re-run on resume — a durability bug, not
                // a per-cell simulation failure, so it escapes the
                // keep-going containment.
                if (!manifest) {
                    fatal("experiment: cannot append digest ",
                          outcome.digest, " to resume manifest '",
                          options.resumePath, "'");
                }
            }
        });
    }

    if (!options.summaryPath.empty()) {
        // Atomic replace: a sweep killed mid-write must leave the
        // previous summary intact, not a torn JSON document.
        if (!atomicWriteFile(options.summaryPath,
                             sweepSummaryJson(outcomes))) {
            fatal("experiment: cannot write sweep summary '",
                  options.summaryPath, "'");
        }
    }
    return outcomes;
}

std::string
sweepSummaryJson(const std::vector<RunOutcome> &outcomes)
{
    std::size_t completed = 0;
    std::size_t skipped = 0;
    std::size_t failed = 0;
    for (const RunOutcome &o : outcomes) {
        if (o.skipped)
            ++skipped;
        else if (o.ok)
            ++completed;
        else
            ++failed;
    }
    std::string out;
    out += "{\"total\":";
    obs::json::appendNumber(out, static_cast<double>(outcomes.size()));
    out += ",\"completed\":";
    obs::json::appendNumber(out, static_cast<double>(completed));
    out += ",\"skipped\":";
    obs::json::appendNumber(out, static_cast<double>(skipped));
    out += ",\"failed\":";
    obs::json::appendNumber(out, static_cast<double>(failed));
    out += ",\"runs\":[";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &o = outcomes[i];
        if (i != 0)
            out += ',';
        out += "{\"index\":";
        obs::json::appendNumber(out, static_cast<double>(i));
        out += ",\"scheduler\":";
        obs::json::appendString(out, o.spec.scheduler);
        out += ",\"load\":";
        obs::json::appendNumber(out, o.spec.config.load);
        out += ",\"digest\":";
        obs::json::appendString(out, o.digest);
        out += ",\"status\":";
        obs::json::appendString(
            out, o.skipped ? "skipped" : (o.ok ? "ok" : "failed"));
        if (!o.ok) {
            out += ",\"error\":";
            obs::json::appendString(out, o.error);
        }
        out += '}';
    }
    out += "]}\n";
    return out;
}

std::vector<RunSpec>
makeGrid(const std::vector<std::string> &schedulers, WorkloadSet set,
         const std::vector<double> &loads, const SimConfig &base)
{
    std::vector<RunSpec> specs;
    specs.reserve(schedulers.size() * loads.size());
    for (const std::string &scheduler : schedulers) {
        for (double load : loads) {
            RunSpec spec;
            spec.scheduler = scheduler;
            spec.config = base;
            spec.config.workload = set;
            spec.config.load = load;
            specs.push_back(spec);
        }
    }
    return specs;
}

std::map<std::string, std::map<double, SimMetrics>>
indexResults(const std::vector<RunResult> &results)
{
    std::map<std::string, std::map<double, SimMetrics>> index;
    for (const RunResult &r : results)
        index[r.spec.scheduler][r.spec.config.load] = r.metrics;
    return index;
}

} // namespace densim
