/**
 * @file
 * Analytical socket-entry-temperature model of Sec. II-B (Fig. 5).
 *
 * A chain of N thermally coupled sockets (degree of coupling N) sits
 * in series in one airstream. With every socket dissipating P watts
 * into a per-socket airflow of V CFM, the well-mixed first-law rise
 * accumulates: socket k (0-based) sees entry temperature
 * inlet + k * 1.76 * P / V. The paper uses the mean and the
 * coefficient of variation of these entry temperatures to show how
 * socket organization alone drives intra-server temperature
 * heterogeneity.
 */

#ifndef DENSIM_THERMAL_ENTRY_MODEL_HH
#define DENSIM_THERMAL_ENTRY_MODEL_HH

#include <vector>

#include "core/units.hh"

namespace densim {

/** Result of the serial-chain entry-temperature analysis. */
struct EntryChainResult
{
    std::vector<Celsius> entryTemps; //!< Absolute entry temperatures.
    Celsius mean;                    //!< Mean absolute entry temp.
    CelsiusDelta meanRise;           //!< Mean rise above inlet.
    double cov;                      //!< CoV of absolute entry temps.
};

/**
 * Entry temperatures along a serial chain of @p degree_of_coupling
 * sockets, each dissipating @p socket_power into @p per_socket_flow
 * of airflow, with inlet air at @p inlet.
 */
EntryChainResult serialChainEntryTemps(int degree_of_coupling,
                                       Watts socket_power,
                                       Cfm per_socket_flow,
                                       Celsius inlet);

} // namespace densim

#endif // DENSIM_THERMAL_ENTRY_MODEL_HH
