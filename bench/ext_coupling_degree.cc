/**
 * @file
 * Extension bench — the paper's core premise swept as a design
 * variable: how does the *degree of thermal coupling* change what
 * scheduling is worth?
 *
 * The SUT's 180 sockets are re-organized at constant socket count:
 * more cartridges in series per row (deeper coupling, fewer rows)
 * versus shallower rows. Socket hardware, airflow share, total
 * sockets and load stay fixed; only the organization changes — the
 * knob of Table I / Fig. 4. Expectation: with one zone per duct the
 * schemes collapse together (nothing to couple); as the chain
 * deepens, the CF-vs-coupling-aware gap opens.
 */

#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "server/topology.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

namespace {

/** 180-socket organizations with increasing serial depth. */
struct Organization
{
    const char *name;
    int rows;
    int cartridgesPerRow;
};

} // namespace

int
main()
{
    std::cout << "=== Extension: degree of coupling vs scheduling "
                 "value (Computation @ 80%) ===\n\n";

    // All variants: rows x cartridges x 2 zones x 2 sockets = 180.
    const std::vector<Organization> organizations{
        {"45 rows x 1 cartridge", 45, 1},
        {"15 rows x 3 cartridges (SUT)", 15, 3},
        {"9 rows x 5 cartridges", 9, 5},
        {"5 rows x 9 cartridges", 5, 9},
    };
    const std::vector<std::string> schemes{"CF", "HF", "CP"};

    TableWriter table({"Organization", "Coupling deg", "Scheme",
                       "Perf vs CF", "AvgFreq", "FreqBack"});
    for (const Organization &org : organizations) {
        std::vector<RunSpec> specs;
        for (std::uint64_t seed : benchSeeds()) {
            for (const std::string &scheme : schemes) {
                RunSpec spec;
                spec.scheduler = scheme;
                spec.config =
                    sutBenchConfig(0.8, WorkloadSet::Computation);
                spec.config.topo.rows = org.rows;
                spec.config.topo.cartridgesPerRow =
                    org.cartridgesPerRow;
                spec.config.seed = seed;
                specs.push_back(spec);
            }
        }
        const auto results = runAll(specs);
        const ServerTopology topo(specs.front().config.topo);

        const std::size_t block = schemes.size();
        for (std::size_t i = 0; i < block; ++i) {
            double perf = 0, freq = 0, back = 0;
            for (std::size_t k = 0; k < benchSeeds().size(); ++k) {
                const SimMetrics &m = results[k * block + i].metrics;
                const SimMetrics &cf = results[k * block].metrics;
                perf += relativePerformance(m, cf);
                freq += m.avgRelFreq();
                back += m.back.avgRelFreq();
            }
            const double n =
                static_cast<double>(benchSeeds().size());
            table.newRow()
                .cell(org.name)
                .cell(static_cast<long long>(topo.degreeOfCoupling()))
                .cell(schemes[i])
                .cell(perf / n, 3)
                .cell(freq / n, 3)
                .cell(back / n, 3);
        }
    }
    table.print(std::cout);
    std::cout << "\nDeeper serial chains lower everyone's frequency "
                 "and raise the value of coupling-aware placement — "
                 "the paper's socket-density story as a design "
                 "sweep.\n";
    return 0;
}
