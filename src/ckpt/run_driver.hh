/**
 * @file
 * Checkpoint-aware run drivers: the loops that sit between the CLI
 * (or a sweep cell) and the streaming engine/fleet APIs, adding two
 * behaviours the engine itself deliberately knows nothing about
 * (DESIGN.md Sec. 16):
 *
 *  - cadence checkpoints: when config.ckptPath is set and
 *    config.ckptEveryS > 0, a snapshot is written atomically at every
 *    crossing of the fixed grid k * ckptEveryS (evaluated at epoch /
 *    exchange-window boundaries, the only points where a snapshot is
 *    well-defined);
 *
 *  - graceful shutdown: installSignalHandlers() arms SIGINT/SIGTERM
 *    to set a volatile sig_atomic_t flag — the only thing the handler
 *    does, so it is async-signal-safe — and the drive loops poll it
 *    at each boundary, writing a final checkpoint, flushing the obs
 *    sinks and returning instead of finishing.
 *
 * Checkpointing is read-only with respect to the simulation: a run
 * driven here is bit-identical to sim.run() with the same config.
 */

#ifndef DENSIM_CKPT_RUN_DRIVER_HH
#define DENSIM_CKPT_RUN_DRIVER_HH

#include <string>

#include "core/experiment.hh"

namespace densim {
class DenseServerSim;
class FleetSim;
} // namespace densim

namespace densim::ckpt {

/**
 * Arm SIGINT/SIGTERM to request a graceful stop. Idempotent. The
 * handler only sets a flag; all real work (checkpoint write, sink
 * flush) happens on the normal control path at the next boundary.
 */
void installSignalHandlers();

/** True once a stop signal arrived (or requestStop() was called). */
bool stopRequested();

/** Programmatic equivalent of a stop signal (tests, embedders). */
void requestStop();

/** Re-arm after a handled stop (tests, multi-run drivers). */
void clearStopRequest();

/** What a drive loop did. */
struct DriveOutcome
{
    /** The run reached its natural end; finishRun() is next. */
    bool completed = false;
    /** A checkpoint was written on the stop path. */
    bool checkpointed = false;
    /** Simulated seconds reached when the loop returned. */
    double nowS = 0.0;
};

/**
 * beginRun() + the full arrival stream + closeArrivals(), exactly as
 * DenseServerSim::run() would — the fresh-start half of a
 * checkpointable engine run (the resume half is restoreEngine()).
 * With every arrival submitted up front, a checkpoint taken at any
 * epoch carries the complete backlog.
 */
void beginEngineRun(DenseServerSim &sim);

/**
 * Drive an open engine run to completion or to a graceful stop.
 * Expects the run already open (beginEngineRun() or restoreEngine());
 * the caller finishes with sim.finishRun() when .completed.
 */
DriveOutcome driveEngine(DenseServerSim &sim);

/** Fleet counterpart of driveEngine() over advanceWindow(). */
DriveOutcome driveFleet(FleetSim &fleet, unsigned threads = 1);

/**
 * Checkpoint-aware sweep-cell runner for SweepOptions::cellRunner:
 * runs @p spec with its checkpoint at
 * "<ckpt_dir>/<runDigest(spec)>.ckpt", resuming from that file when a
 * previous invocation left one (an unusable file is warned about and
 * ignored — the cell restarts). On completion the checkpoint is
 * deleted and the metrics returned; on a graceful stop a CkptError is
 * thrown so the keep-going harness records the cell as not-done and
 * the next sweep invocation resumes it mid-run.
 */
SimMetrics runCellCheckpointed(const RunSpec &spec,
                               const std::string &ckpt_dir);

} // namespace densim::ckpt

#endif // DENSIM_CKPT_RUN_DRIVER_HH
