// Known-good fixture for densim-nondeterministic-iteration: the
// unordered containers are either snapshot-and-sorted before the
// order-sensitive fold, or only read through body-local state.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

double totalEnergySorted(
    const std::unordered_map<std::string, double> &perSocket)
{
    std::vector<std::pair<std::string, double>> rows(perSocket.begin(),
                                                     perSocket.end());
    std::sort(rows.begin(), rows.end());
    double sum = 0.0;
    for (const auto &kv : rows)
        sum += kv.second; // Deterministic: rows is sorted.
    return sum;
}

bool anyHot(const std::unordered_map<int, double> &tempC)
{
    for (const auto &kv : tempC) {
        const bool hot = kv.second > 90.0;
        if (hot)
            return true; // Order-independent predicate, local state.
    }
    return false;
}

double legacyFold(const std::unordered_map<int, double> &m)
{
    double sum = 0.0;
    // Reviewed suppression keeps the hazard visible at the loop.
    for (const auto &kv : m) // NOLINT(densim-nondeterministic-iteration)
        sum += kv.second;
    return sum;
}
