/**
 * @file
 * Tests for the fault-injection subsystem (DESIGN.md Sec. 11):
 *
 * - the fault timeline is a pure function of (config, sockets, seed) —
 *   deterministic across repeated expansion and across the experiment
 *   pool's thread counts, and seed-sensitive;
 * - the zero-fault contract: a config with no armed fault produces
 *   SimMetrics bit-identical to the default engine (EXPECT_EQ on
 *   every field), and an armed-but-never-firing fault too;
 * - graceful degradation: fan derate heats and slows the server,
 *   socket failure re-queues jobs without losing any, the stuck-cold
 *   sensor drives the emergency ladder, and dropout policies diverge;
 * - FaultConfig validation and the opt-in fatal-throws mode.
 */

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/experiment.hh"
#include "fault/fault_config.hh"
#include "fault/fault_log.hh"
#include "fault/fault_timeline.hh"
#include "obs/json.hh"
#include "sched/factory.hh"
#include "util/logging.hh"

namespace densim {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Small fast server: 2 rows (24 sockets), short scaled horizon. */
SimConfig
baseConfig()
{
    SimConfig config;
    config.topo.rows = 2;
    config.simTimeS = 1.5;
    config.warmupS = 0.0; // Job conservation needs every arrival counted.
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 42;
    return config;
}

SimMetrics
runWith(const SimConfig &config, const std::string &scheduler = "CF")
{
    DenseServerSim sim(config, makeScheduler(scheduler));
    return sim.run();
}

std::uint64_t
counterValue(const DenseServerSim &sim, const std::string &name)
{
    for (const auto &c : sim.observability().counters()) {
        if (c.name == name)
            return c.value;
    }
    ADD_FAILURE() << "counter '" << name << "' not registered";
    return 0;
}

void
expectRegionIdentical(const RegionMetrics &a, const RegionMetrics &b)
{
    EXPECT_EQ(a.busyTimeS, b.busyTimeS);
    EXPECT_EQ(a.freqTime, b.freqTime);
    EXPECT_EQ(a.workDone, b.workDone);
}

/** Bit-exact equality of every metrics field (no tolerances). */
void
expectMetricsIdentical(const SimMetrics &a, const SimMetrics &b)
{
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.jobsUnfinished, b.jobsUnfinished);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.runtimeExpansion.count(), b.runtimeExpansion.count());
    EXPECT_EQ(a.runtimeExpansion.mean(), b.runtimeExpansion.mean());
    EXPECT_EQ(a.serviceExpansion.mean(), b.serviceExpansion.mean());
    EXPECT_EQ(a.queueDelayS.mean(), b.queueDelayS.mean());
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.measuredS, b.measuredS);
    EXPECT_EQ(a.makespanS, b.makespanS);
    EXPECT_EQ(a.totalWork, b.totalWork);
    EXPECT_EQ(a.totalBusyTime, b.totalBusyTime);
    EXPECT_EQ(a.totalFreqTime, b.totalFreqTime);
    EXPECT_EQ(a.maxChipTempC, b.maxChipTempC);
    EXPECT_EQ(a.boostTimeS, b.boostTimeS);
    EXPECT_EQ(a.chipTempC.count(), b.chipTempC.count());
    EXPECT_EQ(a.chipTempC.mean(), b.chipTempC.mean());
    expectRegionIdentical(a.front, b.front);
    expectRegionIdentical(a.back, b.back);
    expectRegionIdentical(a.even, b.even);
    EXPECT_EQ(a.timelineS, b.timelineS);
    EXPECT_EQ(a.zoneAmbientC, b.zoneAmbientC);
}

// ------------------------------------------------- timeline

TEST(FaultTimeline, IsDeterministicForSeedAndConfig)
{
    FaultConfig config;
    config.sensorStuckCount = 3;
    config.sensorStuckAtS = 1.0;
    config.sensorNoisyCount = 2;
    config.sensorNoisyAtS = 0.5;
    config.socketFailCount = 2;
    config.socketFailS = 2.0;
    config.socketRecoverS = 4.0;
    config.fanFailS = 3.0;
    config.fanSpeedFrac = 0.5;

    const FaultTimeline a(config, 180, 7);
    const FaultTimeline b(config, 180, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].timeS, b.events()[i].timeS);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].socket, b.events()[i].socket);
        EXPECT_EQ(a.events()[i].value, b.events()[i].value);
    }
}

TEST(FaultTimeline, IsSortedAndSeedSensitive)
{
    FaultConfig config;
    config.sensorStuckCount = 8;
    config.sensorStuckAtS = 2.0;
    config.socketFailCount = 8;
    config.socketFailS = 1.0;

    const FaultTimeline a(config, 180, 1);
    const FaultTimeline b(config, 180, 2);
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a.events()[i - 1].timeS, a.events()[i].timeS);

    // Different run seeds must pick different socket sets (16 draws
    // from 180 sockets colliding entirely is ~impossible).
    bool any_differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_differs |= a.events()[i].socket != b.events()[i].socket;
    EXPECT_TRUE(any_differs);
}

TEST(FaultTimeline, ExplicitFaultSeedDecouplesFromRunSeed)
{
    FaultConfig config;
    config.seed = 99;
    config.socketFailCount = 4;
    config.socketFailS = 1.0;

    // With an explicit fault seed the run seed is irrelevant.
    const FaultTimeline a(config, 180, 1);
    const FaultTimeline b(config, 180, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.events()[i].socket, b.events()[i].socket);
}

TEST(FaultTimeline, ClampsCountsToSocketCount)
{
    FaultConfig config;
    config.socketFailCount = 500;
    config.socketFailS = 1.0;
    const FaultTimeline t(config, 24, 3);
    EXPECT_EQ(t.size(), 24u);
    for (const FaultEvent &e : t.events())
        EXPECT_LT(e.socket, 24u);
}

// ------------------------------------------------- zero-fault contract

TEST(FaultBitIdentity, DisarmedConfigMatchesDefaultExactly)
{
    const SimConfig config = baseConfig();
    ASSERT_FALSE(config.fault.enabled());
    expectMetricsIdentical(runWith(config), runWith(config));
}

TEST(FaultBitIdentity, ArmedButInertFaultMatchesDefaultExactly)
{
    // The strong form of the contract: arming the subsystem with an
    // event that never fires inside the horizon must not perturb one
    // bit of the metrics — no extra RNG draws, no FP reordering.
    const SimConfig plain = baseConfig();
    SimConfig armed = baseConfig();
    armed.fault.socketFailCount = 1;
    armed.fault.socketFailS = 1e9;
    ASSERT_TRUE(armed.fault.enabled());
    expectMetricsIdentical(runWith(plain), runWith(armed));
}

TEST(FaultBitIdentity, FaultCountersOnlyExistWhenArmed)
{
    DenseServerSim plain(baseConfig(), makeScheduler("CF"));
    for (const auto &c : plain.observability().counters())
        EXPECT_EQ(c.name.rfind("fault.", 0), std::string::npos)
            << "disarmed engine registered " << c.name;

    SimConfig armed = baseConfig();
    armed.fault.socketFailCount = 1;
    armed.fault.socketFailS = 1e9;
    DenseServerSim sim(armed, makeScheduler("CF"));
    (void)sim.run();
    EXPECT_EQ(counterValue(sim, "fault.socketFailures"), 0u);
}

TEST(FaultBitIdentity, RerunAfterFanFaultRestoresPristineCoupling)
{
    // A fan fault rebuilds the coupling map in place; the next run on
    // the same engine must start from the pristine map and reproduce
    // the first run bit for bit.
    SimConfig config = baseConfig();
    config.fault.fanFailS = 0.3;
    config.fault.fanSpeedFrac = 0.3;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics first = sim.run();
    const SimMetrics second = sim.run();
    expectMetricsIdentical(first, second);
}

// ------------------------------------------------- determinism in sweeps

TEST(FaultDeterminism, GridIsBitIdenticalAcrossThreadCounts)
{
    SimConfig config = baseConfig();
    config.simTimeS = 1.0;
    config.fault.fanFailS = 0.3;
    config.fault.fanSpeedFrac = 0.4;
    config.fault.sensorStuckCount = 2;
    config.fault.sensorStuckAtS = 0.2;

    const std::vector<RunSpec> specs = makeGrid(
        {"CF", "CP"}, config.workload, {0.4, 0.7}, config);
    const auto r1 = runAll(specs, 1);
    const auto r4 = runAll(specs, 4);
    const auto r8 = runAll(specs, 8);
    ASSERT_EQ(r1.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        expectMetricsIdentical(r1[i].metrics, r4[i].metrics);
        expectMetricsIdentical(r1[i].metrics, r8[i].metrics);
    }
}

// ------------------------------------------------- graceful degradation

TEST(FaultResponse, FanDerateHeatsAndDegradesTheServer)
{
    const SimConfig plain = baseConfig();
    SimConfig derated = baseConfig();
    derated.fault.fanFailS = 0.3;
    derated.fault.fanSpeedFrac = 0.15;

    const SimMetrics healthy = runWith(plain);
    DenseServerSim sim(derated, makeScheduler("CF"));
    const SimMetrics faulty = sim.run();

    EXPECT_EQ(counterValue(sim, "fault.fanEvents"), 1u);
    EXPECT_GT(faulty.maxChipTempC, healthy.maxChipTempC);
    // Less air, hotter chips, lower sustainable frequency.
    EXPECT_LT(faulty.avgRelFreq(), healthy.avgRelFreq());
}

TEST(FaultResponse, FanRecoveryEmitsARestoreEvent)
{
    SimConfig config = baseConfig();
    config.fault.fanFailS = 0.3;
    config.fault.fanSpeedFrac = 0.3;
    config.fault.fanRecoverS = 0.8;
    DenseServerSim sim(config, makeScheduler("CF"));
    (void)sim.run();
    EXPECT_EQ(counterValue(sim, "fault.fanEvents"), 2u);
}

TEST(FaultResponse, SevereDerateEscalatesToQuarantineAndBack)
{
    SimConfig config = baseConfig();
    config.load = 0.85;
    config.simTimeS = 2.0;
    config.fault.fanFailS = 0.4;
    config.fault.fanSpeedFrac = 0.08;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();

    EXPECT_GT(counterValue(sim, "fault.emergencyThrottles"), 0u);
    EXPECT_GT(counterValue(sim, "fault.quarantines"), 0u);
    EXPECT_GT(counterValue(sim, "fault.jobsRequeued"), 0u);
    // Conservation: every arrival either completed or is still
    // queued/running — quarantine re-queue loses nothing (warmup 0).
    EXPECT_EQ(m.jobsArrived, m.jobsCompleted + m.jobsUnfinished);
}

TEST(FaultResponse, SocketFailureRequeuesWithoutLosingJobs)
{
    SimConfig config = baseConfig();
    config.fault.socketFailCount = 4;
    config.fault.socketFailS = 0.4;
    config.fault.socketRecoverS = 1.0;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();

    EXPECT_EQ(counterValue(sim, "fault.socketFailures"), 4u);
    EXPECT_EQ(counterValue(sim, "fault.socketRecoveries"), 4u);
    EXPECT_EQ(m.jobsArrived, m.jobsCompleted + m.jobsUnfinished);
}

TEST(FaultResponse, StuckColdSensorTripsTheEmergencyLadder)
{
    // DVFS trusts the frozen cool reading and keeps the frequency
    // high; the trip circuit watches the real silicon and must step
    // in. More sensor faults than sockets is clamped, so every DVFS
    // input freezes at the cool warm-start value.
    SimConfig config = baseConfig();
    config.load = 0.9;
    config.simTimeS = 2.0;
    config.fault.sensorStuckCount = 1000;
    config.fault.sensorStuckAtS = 0.05;
    DenseServerSim sim(config, makeScheduler("CF"));
    (void)sim.run();

    EXPECT_EQ(counterValue(sim, "fault.sensorFaults"), 24u);
    EXPECT_GT(counterValue(sim, "fault.emergencyThrottles"), 0u);
}

TEST(FaultResponse, DropoutPoliciesDiverge)
{
    SimConfig last_good = baseConfig();
    last_good.fault.sensorDropoutCount = 12;
    last_good.fault.sensorDropoutAtS = 0.3;
    last_good.fault.dropoutPolicy = DropoutPolicy::LastGood;

    SimConfig conservative = last_good;
    conservative.fault.dropoutPolicy = DropoutPolicy::Conservative;
    conservative.fault.fallbackAmbientC = 80.0;

    DenseServerSim sim_lg(last_good, makeScheduler("CF"));
    const SimMetrics lg = sim_lg.run();
    DenseServerSim sim_co(conservative, makeScheduler("CF"));
    const SimMetrics co = sim_co.run();

    EXPECT_GT(counterValue(sim_lg, "fault.dropoutFallbacks"), 0u);
    // An 80 C assumed ambient forces conservative DVFS choices; the
    // last-good policy keeps running on the stale cool reading.
    EXPECT_LT(co.avgRelFreq(), lg.avgRelFreq());
}

TEST(FaultResponse, AbortRunThrowsARuntimeError)
{
    SimConfig config = baseConfig();
    config.fault.abortRunS = 0.5;
    DenseServerSim sim(config, makeScheduler("CF"));
    EXPECT_THROW((void)sim.run(), std::runtime_error);
}

TEST(FaultResponse, FaultLogIsValidJsonl)
{
    const std::string path =
        testing::TempDir() + "fault_test_log.jsonl";
    SimConfig config = baseConfig();
    config.fault.fanFailS = 0.3;
    config.fault.fanSpeedFrac = 0.2;
    config.fault.logPath = path;
    (void)runWith(config);

    const std::string text = slurp(path);
    std::string error;
    const long lines = obs::json::validateLines(text, &error);
    EXPECT_GT(lines, 0) << error;
    EXPECT_NE(text.find("\"kind\":\"fanDerate\""), std::string::npos);
}

// ------------------------------------------------- config validation

TEST(FaultConfigValidate, RejectsBadValues)
{
    const ScopedFatalThrows guard;
    {
        FaultConfig config;
        config.fanFailS = 1.0;
        config.fanSpeedFrac = 2.0;
        EXPECT_THROW(config.validate(Celsius(95.0)), FatalError);
    }
    {
        FaultConfig config;
        config.fanFailS = 2.0;
        config.fanRecoverS = 1.0; // Recover before the failure.
        EXPECT_THROW(config.validate(Celsius(95.0)), FatalError);
    }
    {
        FaultConfig config;
        config.sensorStuckCount = -1;
        EXPECT_THROW(config.validate(Celsius(95.0)), FatalError);
    }
    {
        FaultConfig config;
        config.quarantineExitC = 200.0; // Above the trip point.
        EXPECT_THROW(config.validate(Celsius(95.0)), FatalError);
    }
}

TEST(FaultConfigValidate, FatalThrowsModeIsScopedAndOffByDefault)
{
    EXPECT_FALSE(fatalThrows());
    {
        const ScopedFatalThrows guard;
        EXPECT_TRUE(fatalThrows());
    }
    EXPECT_FALSE(fatalThrows());
}

} // namespace
} // namespace densim
