/**
 * @file
 * Socket-level power management: DVFS under a temperature limit plus
 * idle power gating.
 *
 * The paper's policy (Table III / Sec. III-D) emphasizes
 * responsiveness: every 1 ms each socket is set to the highest
 * frequency whose predicted peak temperature stays below the 95 C
 * limit, with the two top states being opportunistic boost. Sockets
 * idle for a whole power-management epoch are power gated and still
 * draw 10 % of TDP.
 *
 * Frequency/power behaviour of the running job is supplied as a
 * FreqCurve (per-P-state total power at the 90 C characterization
 * point and relative performance), which the workload library
 * provides per benchmark set (Fig. 7).
 */

#ifndef DENSIM_POWER_POWER_MANAGER_HH
#define DENSIM_POWER_POWER_MANAGER_HH

#include <cstddef>
#include <vector>

#include "core/units.hh"
#include "obs/registry.hh"
#include "power/leakage.hh"
#include "power/pstate.hh"
#include "thermal/heatsink.hh"
#include "thermal/simple_peak_model.hh"

namespace densim {

/**
 * Power and performance versus frequency for one workload class,
 * indexed by P-state (same order as the PStateTable).
 */
struct FreqCurve
{
    std::vector<double> totalPowerAt90C; //!< W at chip temp 90 C.
    std::vector<double> perfRel;         //!< Throughput vs fastest.
};

/** Outcome of a DVFS decision. */
struct DvfsDecision
{
    std::size_t pstate;    //!< Chosen P-state index.
    double freqMhz;        //!< Chosen frequency.
    Watts power;           //!< Predicted total socket power.
    Celsius predictedPeak; //!< Predicted peak chip temperature.
    bool feasible;         //!< False if even the slowest state
                           //!< violates the limit (we still run at
                           //!< the slowest state then).
};

/** DVFS + gating policy engine. */
class PowerManager
{
  public:
    /**
     * @param table P-state table.
     * @param peak Eq. (1) evaluator.
     * @param t_limit Junction temperature limit (Table III: 95 C).
     * @param gated_frac_tdp Power of a gated socket as a fraction of
     *        TDP (paper: 0.10).
     */
    PowerManager(const PStateTable &table, SimplePeakModel peak,
                 Celsius t_limit = Celsius(95.0),
                 double gated_frac_tdp = 0.10);

    /**
     * Pick the highest feasible P-state given the *current* socket
     * ambient temperature, assuming the heatsink has fully soaked
     * (steady P * (R_int + R_ext) rise) — a conservative decision
     * used where no sink-state tracking exists.
     */
    DvfsDecision chooseAtAmbient(const FreqCurve &curve,
                                 const LeakageModel &leak,
                                 Celsius ambient,
                                 const HeatSink &sink) const;

    /**
     * chooseAtAmbient restricted to P-states at or below
     * @p max_pstate — used by the boost-dwell governor: when a
     * socket's boost-residency budget is exhausted the search is
     * capped at the highest sustained state ([36]: a fully loaded
     * X2150 sustains only the highest non-boost frequency).
     */
    DvfsDecision chooseAtAmbientCapped(const FreqCurve &curve,
                                       const LeakageModel &leak,
                                       Celsius ambient,
                                       const HeatSink &sink,
                                       std::size_t max_pstate) const;

    /**
     * chooseAtAmbientCapped with the descending feasibility search
     * started at min(@p start_pstate, @p max_pstate) instead of
     * @p max_pstate. Returns the identical decision *provided* every
     * state above the start point is already known infeasible at this
     * (curve, ambient, sink) — which holds when @p start_pstate is the
     * state a previous capped search chose for the same curve and cap
     * at an ambient no hotter than @p ambient (feasibility regions
     * only shrink as ambient rises). The scheduler's downstream-
     * penalty prediction uses this to prune its per-candidate P-state
     * searches down from each downstream socket's current state.
     */
    DvfsDecision chooseAtAmbientFrom(const FreqCurve &curve,
                                     const LeakageModel &leak,
                                     Celsius ambient,
                                     const HeatSink &sink,
                                     std::size_t max_pstate,
                                     std::size_t start_pstate) const;

    /**
     * Exactly the per-state feasibility test searchDownFrom applies:
     * two-pass leakage-compensated peak at @p ambient for P-state
     * @p pstate, compared against the junction limit. The test is
     * monotone in ambient — Eq. (1) is affine in ambient with unit
     * slope and leakage is non-decreasing in temperature — so a
     * `true` at some ambient implies `true` at every cooler one and
     * a `false` implies `false` at every hotter one. Callers exploit
     * this to memoize feasibility as two per-state ambient bounds
     * (see chooseAtAmbientBounded and PredictionCache).
     */
    bool feasibleAt(const FreqCurve &curve, const LeakageModel &leak,
                    Celsius ambient, const HeatSink &sink,
                    std::size_t pstate) const;

    /**
     * chooseAtAmbientCapped accelerated by learned feasibility
     * bounds. @p max_feas_c / @p min_infeas_c are caller-owned
     * per-state arrays (indexed by P-state, at least table().size()
     * entries) holding the hottest ambient each state is known
     * feasible at and the coolest it is known infeasible at, for
     * this exact (curve, sink) pair; initialize to -inf / +inf.
     * States with ambient >= min_infeas_c[i] are skipped without
     * evaluation (provably infeasible by monotonicity); every state
     * actually evaluated tightens its bounds. The chosen state's
     * decision fields are always computed exactly, so the returned
     * decision is bit-identical to chooseAtAmbientCapped.
     */
    DvfsDecision chooseAtAmbientBounded(const FreqCurve &curve,
                                        const LeakageModel &leak,
                                        Celsius ambient,
                                        const HeatSink &sink,
                                        std::size_t max_pstate,
                                        double *max_feas_c,
                                        double *min_infeas_c) const;

    /**
     * Pick the highest P-state whose *instantaneous* peak stays under
     * the limit given the current ambient and the current heatsink
     * thermal rise @p sink_rise (the slow 30 s state):
     *
     *   T = T_amb + sinkRise + P * R_int + theta(P, sink)
     *
     * This is the responsive per-epoch governor: a cold sink grants
     * boost, and the socket throttles as the sink soaks toward
     * P * R_ext.
     */
    DvfsDecision chooseWithSinkState(const FreqCurve &curve,
                                     const LeakageModel &leak,
                                     Celsius ambient,
                                     CelsiusDelta sink_rise,
                                     const HeatSink &sink) const;

    /**
     * The simulator's per-epoch governor: like chooseWithSinkState,
     * but the ambient is decomposed into the upstream part
     * @p entry plus the self-recirculation kappa * P, which depends
     * on the candidate power and is therefore resolved inside the
     * P-state search:
     *
     *   T(P) = entry + kappa * P + sinkRise + P * R_int + theta(P)
     */
    DvfsDecision chooseResponsive(const FreqCurve &curve,
                                  const LeakageModel &leak,
                                  Celsius entry,
                                  KelvinPerWatt kappa_local,
                                  CelsiusDelta sink_rise,
                                  const HeatSink &sink) const;

    /**
     * Pick the highest feasible P-state for the *steady state* a job
     * would reach on a socket whose air entry temperature is
     * @p entry, accounting for the local-recirculation ambient rise
     * kappa * P. This is the prediction the Predictive and
     * CouplingPredictor schedulers use (Sec. IV-C: estimate
     * temperature, compensate leakage, re-estimate).
     */
    DvfsDecision chooseSteady(const FreqCurve &curve,
                              const LeakageModel &leak, Celsius entry,
                              KelvinPerWatt kappa_local,
                              const HeatSink &sink) const;

    /** Total power at state @p i for chip temperature @p chip. */
    Watts totalPower(const FreqCurve &curve, const LeakageModel &leak,
                     std::size_t i, Celsius chip) const;

    /** Dynamic (leakage-free) power at state @p i. */
    Watts dynamicPower(const FreqCurve &curve,
                       const LeakageModel &leak, std::size_t i) const;

    /** Power drawn by a power-gated idle socket. */
    Watts gatedPower(const LeakageModel &leak) const;

    const PStateTable &pstates() const { return table_; }
    Celsius temperatureLimit() const { return Celsius(tLimitC_); }
    const SimplePeakModel &peakModel() const { return peak_; }

    /**
     * Register this power manager's instruments into @p registry
     * ("power.dvfsSearches": full P-state searches executed). The
     * registry must outlive the manager; without a registry attached
     * the choose* paths skip accounting entirely.
     */
    void attachObs(obs::Registry &registry);

  private:
    void checkCurve(const FreqCurve &curve) const;

    /** Shared descending feasibility scan from state @p first down. */
    DvfsDecision searchDownFrom(const FreqCurve &curve,
                                const LeakageModel &leak,
                                Celsius ambient, const HeatSink &sink,
                                std::size_t first) const;

    /** One per choose* call — a full (possibly capped) state search. */
    void
    countSearch() const
    {
        if (searches_ != nullptr)
            searches_->inc();
    }

    const PStateTable &table_;
    SimplePeakModel peak_;
    double tLimitC_;
    double gatedFracTdp_;
    obs::Counter *searches_ = nullptr; //!< Owned by the registry.
};

} // namespace densim

#endif // DENSIM_POWER_POWER_MANAGER_HH
