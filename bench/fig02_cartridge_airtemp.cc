/**
 * @file
 * Figure 2 — CFD model of the dense server cartridge: air heats up
 * left to right over the sockets.
 *
 * Paper: with all four sockets of the 2x2 M700-class cartridge at
 * 15 W, the measured average air temperature difference between the
 * left (upstream) and right (downstream) sockets is 8 C. densim's
 * advection coupling model replaces the Ansys Icepak CFD (DESIGN.md
 * substitution #1); this bench prints the entry-temperature profile
 * it produces for the same configuration.
 */

#include <iostream>

#include "thermal/coupling_map.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figure 2: cartridge air temperatures, 4 x 15 W, "
                 "18 C inlet ===\n\n";

    // The 2x2 cartridge: two sockets side by side at each of two
    // streamwise stations, sharing a 12.7 CFM duct.
    const std::vector<SocketSite> sites{{0.0, 0, Cfm(12.7)},
                                        {0.0, 0, Cfm(12.7)},
                                        {1.6, 0, Cfm(12.7)},
                                        {1.6, 0, Cfm(12.7)}};
    const CouplingMap map(sites, CouplingParams{});
    const std::vector<double> powers(4, 15.0);

    const auto entry = map.entryTemps(powers, Celsius(18.0));
    const auto ambient = map.ambientTemps(powers, Celsius(18.0));

    TableWriter table({"Socket", "Position", "Entry T (C)",
                       "Ambient T (C)"});
    const char *pos[] = {"upstream-A", "upstream-B", "downstream-A",
                         "downstream-B"};
    for (std::size_t s = 0; s < 4; ++s) {
        table.newRow()
            .cell(static_cast<long long>(s))
            .cell(pos[s])
            .cell(entry[s], 2)
            .cell(ambient[s], 2);
    }
    table.print(std::cout);

    const double diff = entry[2] - entry[0];
    std::cout << "\nLeft->right air temperature difference: "
              << formatFixed(diff, 2) << " C (paper CFD: ~8 C)\n";
    return 0;
}
