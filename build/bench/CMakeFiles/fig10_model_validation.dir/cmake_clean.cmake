file(REMOVE_RECURSE
  "CMakeFiles/fig10_model_validation.dir/fig10_model_validation.cc.o"
  "CMakeFiles/fig10_model_validation.dir/fig10_model_validation.cc.o.d"
  "fig10_model_validation"
  "fig10_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
