#include "fault/fault_timeline.hh"

#include <algorithm>

#include "util/rng.hh"

namespace densim {

namespace {

/**
 * Draw @p count distinct socket ids from [0, n) in ascending order.
 * Rejection sampling off the shared fault stream keeps the draw
 * portable and deterministic; counts are clamped to n.
 */
std::vector<std::uint32_t>
pickDistinctSockets(Rng &rng, std::size_t n, int count)
{
    const std::size_t want =
        std::min<std::size_t>(n, count < 0 ? 0 : count);
    std::vector<std::uint32_t> picked;
    picked.reserve(want);
    while (picked.size() < want) {
        const auto s = static_cast<std::uint32_t>(rng.nextBounded(n));
        if (std::find(picked.begin(), picked.end(), s) == picked.end())
            picked.push_back(s);
    }
    std::sort(picked.begin(), picked.end());
    return picked;
}

} // namespace

FaultTimeline::FaultTimeline(const FaultConfig &config,
                             std::size_t num_sockets,
                             std::uint64_t run_seed)
{
    if (num_sockets == 0)
        return;
    Rng rng(config.effectiveSeed(run_seed));

    // Fixed category order — part of the determinism contract: the
    // draws below consume the stream in this exact sequence.
    const auto stuck =
        pickDistinctSockets(rng, num_sockets, config.sensorStuckCount);
    const auto noisy =
        pickDistinctSockets(rng, num_sockets, config.sensorNoisyCount);
    const auto dropped = pickDistinctSockets(rng, num_sockets,
                                             config.sensorDropoutCount);
    const auto failed =
        pickDistinctSockets(rng, num_sockets, config.socketFailCount);

    if (config.fanFailS >= 0.0) {
        events_.push_back({config.fanFailS, FaultKind::FanDerate,
                           kFaultNoSocket, config.fanSpeedFrac});
        if (config.fanRecoverS >= 0.0) {
            events_.push_back({config.fanRecoverS, FaultKind::FanRestore,
                               kFaultNoSocket, 1.0});
        }
    }
    for (std::uint32_t s : stuck)
        events_.push_back(
            {config.sensorStuckAtS, FaultKind::SensorStuck, s, 0.0});
    for (std::uint32_t s : noisy)
        events_.push_back({config.sensorNoisyAtS, FaultKind::SensorNoisy,
                           s, config.sensorNoiseSigmaC});
    for (std::uint32_t s : dropped) {
        events_.push_back(
            {config.sensorDropoutAtS, FaultKind::SensorDropout, s, 0.0});
        if (config.sensorDropoutDurS >= 0.0) {
            events_.push_back(
                {config.sensorDropoutAtS + config.sensorDropoutDurS,
                 FaultKind::SensorRestore, s, 0.0});
        }
    }
    for (std::uint32_t s : failed) {
        events_.push_back(
            {config.socketFailS, FaultKind::SocketFail, s, 0.0});
        if (config.socketRecoverS >= 0.0) {
            events_.push_back(
                {config.socketRecoverS, FaultKind::SocketRecover, s,
                 0.0});
        }
    }
    if (config.abortRunS >= 0.0) {
        events_.push_back(
            {config.abortRunS, FaultKind::AbortRun, kFaultNoSocket, 0.0});
    }

    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.timeS < b.timeS;
                     });
}

} // namespace densim
