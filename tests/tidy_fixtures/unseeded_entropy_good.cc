// Known-good fixture for densim-unseeded-entropy: randomness comes
// from an explicitly seeded densim::Rng stream, containers key on
// stable ids, and the one wall-clock reader is a reviewed NOLINT.
#include <cstdint>
#include <ctime>
#include <map>

#include "util/rng.hh"

double drawService(densim::Rng &rng)
{
    return rng.exponential(1.0);
}

densim::Rng makeStream(std::uint64_t seed)
{
    return densim::Rng(seed); // Explicit seed: deterministic.
}

std::map<std::uint64_t, double> residualsById; // Stable integer key.

// NOLINTNEXTLINE(densim-unseeded-entropy)
inline long wallClockForLogsOnly() { return std::time(nullptr); }
