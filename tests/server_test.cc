/**
 * @file
 * Unit tests for the server substrate: the SUT topology (Fig. 12
 * zone organization), geometry, sink assignment, the Fig. 3 two-
 * socket builds, and the Table I catalog.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "server/catalog.hh"
#include "server/sut.hh"
#include "server/topology.hh"

namespace densim {
namespace {

TEST(Topology, SutHas180Sockets)
{
    const ServerTopology sut = makeSutTopology();
    EXPECT_EQ(sut.numSockets(), 180u);
    EXPECT_EQ(sut.numRows(), 15);
    EXPECT_EQ(sut.socketsPerRow(), 12);
    EXPECT_EQ(sut.zonesPerRow(), 6);
}

TEST(Topology, SutDegreeOfCouplingMatchesDuctSharing)
{
    // 6 zones in series x 2 sockets per zone share one duct.
    EXPECT_EQ(makeSutTopology().degreeOfCoupling(), 12);
}

TEST(Topology, ZoneIdsSpanOneToSix)
{
    const ServerTopology sut = makeSutTopology();
    int min_zone = 99, max_zone = 0;
    for (std::size_t s = 0; s < sut.numSockets(); ++s) {
        min_zone = std::min(min_zone, sut.zoneIdOf(s));
        max_zone = std::max(max_zone, sut.zoneIdOf(s));
    }
    EXPECT_EQ(min_zone, 1);
    EXPECT_EQ(max_zone, 6);
}

TEST(Topology, EveryZoneHasThirtySockets)
{
    const ServerTopology sut = makeSutTopology();
    for (int zone = 1; zone <= 6; ++zone)
        EXPECT_EQ(sut.socketsInZone(zone).size(), 30u);
}

TEST(Topology, StreamPositionsMatchCartridgeGeometry)
{
    // Zones at 0, 1.6, 4.6, 6.2, 9.2, 10.8 inches: 1.6 in inside a
    // cartridge, 3 in across cartridge boundaries (Sec. IV-B).
    const ServerTopology sut = makeSutTopology();
    const std::vector<double> expected{0.0, 1.6, 4.6, 6.2, 9.2, 10.8};
    for (int zone = 1; zone <= 6; ++zone) {
        const auto sockets = sut.socketsInZone(zone);
        for (std::size_t s : sockets)
            EXPECT_NEAR(sut.streamPosOf(s), expected[zone - 1], 1e-9);
    }
}

TEST(Topology, OddZones18FinEvenZones30Fin)
{
    const ServerTopology sut = makeSutTopology();
    for (std::size_t s = 0; s < sut.numSockets(); ++s) {
        if (sut.zoneIdOf(s) % 2 == 1) {
            EXPECT_EQ(sut.sinkOf(s).finCount, 18);
        }
        else
            EXPECT_EQ(sut.sinkOf(s).finCount, 30);
    }
}

TEST(Topology, FrontHalfIsZonesOneToThree)
{
    const ServerTopology sut = makeSutTopology();
    for (std::size_t s = 0; s < sut.numSockets(); ++s)
        EXPECT_EQ(sut.inFrontHalf(s), sut.zoneIdOf(s) <= 3);
}

TEST(Topology, EvenZonePredicate)
{
    const ServerTopology sut = makeSutTopology();
    std::size_t even = 0;
    for (std::size_t s = 0; s < sut.numSockets(); ++s)
        even += sut.inEvenZone(s);
    EXPECT_EQ(even, 90u);
}

TEST(Topology, RowsPartitionSockets)
{
    const ServerTopology sut = makeSutTopology();
    std::size_t total = 0;
    for (int row = 0; row < sut.numRows(); ++row) {
        const auto sockets = sut.socketsInRow(row);
        total += sockets.size();
        for (std::size_t s : sockets)
            EXPECT_EQ(sut.rowOf(s), row);
    }
    EXPECT_EQ(total, sut.numSockets());
}

TEST(Topology, SocketIdsContiguousPerRow)
{
    // CP's row scan relies on idle ids of one row being contiguous.
    const ServerTopology sut = makeSutTopology();
    for (std::size_t s = 0; s + 1 < sut.numSockets(); ++s)
        EXPECT_LE(sut.rowOf(s), sut.rowOf(s + 1));
}

TEST(Topology, SitesMatchGeometry)
{
    const ServerTopology sut = makeSutTopology();
    const auto sites = sut.sites();
    ASSERT_EQ(sites.size(), sut.numSockets());
    for (std::size_t s = 0; s < sites.size(); ++s) {
        EXPECT_EQ(sites[s].duct, sut.rowOf(s));
        EXPECT_NEAR(sites[s].streamPosInch, sut.streamPosOf(s), 1e-12);
        EXPECT_NEAR(sites[s].ductCfm.value(), 12.70, 1e-9);
    }
}

TEST(Topology, ZoneCfmFromTableIII)
{
    EXPECT_NEAR(makeSutTopology().zoneCfm().value(), 2 * 6.35, 1e-9);
}

TEST(Topology, TwoSocketCoupledIsOneDuct)
{
    const ServerTopology coupled = makeTwoSocketCoupled();
    EXPECT_EQ(coupled.numSockets(), 2u);
    EXPECT_EQ(coupled.rowOf(0), coupled.rowOf(1));
    EXPECT_LT(coupled.streamPosOf(0), coupled.streamPosOf(1));
    EXPECT_EQ(coupled.sinkOf(0).finCount, 18);
    EXPECT_EQ(coupled.sinkOf(1).finCount, 30);
}

TEST(Topology, TwoSocketUncoupledIsTwoDucts)
{
    const ServerTopology uncoupled = makeTwoSocketUncoupled();
    EXPECT_EQ(uncoupled.numSockets(), 2u);
    EXPECT_NE(uncoupled.rowOf(0), uncoupled.rowOf(1));
    // Same sink mix as the coupled build.
    EXPECT_EQ(uncoupled.sinkOf(0).finCount, 18);
    EXPECT_EQ(uncoupled.sinkOf(1).finCount, 30);
}

TEST(Topology, CouplingMapsReflectCoupling)
{
    const CouplingParams params = defaultCouplingParams();
    const CouplingMap coupled =
        makeCouplingMap(makeTwoSocketCoupled(), params);
    const CouplingMap uncoupled =
        makeCouplingMap(makeTwoSocketUncoupled(), params);
    EXPECT_GT(coupled.coeff(0, 1).value(), 0.0);
    EXPECT_DOUBLE_EQ(uncoupled.coeff(0, 1).value(), 0.0);
}

TEST(Topology, SinkOverride)
{
    ServerTopology topo = makeSutTopology();
    EXPECT_EQ(topo.sinkOf(0).finCount, 18);
    topo.overrideSink(0, HeatSink::fin30());
    EXPECT_EQ(topo.sinkOf(0).finCount, 30);
    EXPECT_EQ(topo.sinkOf(1).finCount, 18); // zone-1 partner unchanged
}

TEST(Topology, InvalidSpecIsFatal)
{
    TopologySpec bad_spec;
    bad_spec.rows = 0;
    EXPECT_EXIT({ ServerTopology topo(bad_spec); (void)topo; },
                ::testing::ExitedWithCode(1), "counts");
}

TEST(Catalog, ElevenSystems)
{
    EXPECT_EQ(densityOptimizedSystems().size(), 11u);
}

TEST(Catalog, M700RowMatchesPaper)
{
    const auto &systems = densityOptimizedSystems();
    const auto m700 = std::find_if(
        systems.begin(), systems.end(), [](const SystemRecord &r) {
            return r.details == "ProLiant M700";
        });
    ASSERT_NE(m700, systems.end());
    EXPECT_EQ(m700->totalSockets, 180);
    EXPECT_EQ(m700->dimensionsU, 4);
    EXPECT_NEAR(m700->socketsPerU(), 45.0, 1e-9);
    EXPECT_NEAR(m700->socketTdpW, 22.0, 1e-9);
    EXPECT_EQ(m700->degreeOfCoupling, 5);
    EXPECT_EQ(m700->cpu, "AMD Opteron X2150");
}

TEST(Catalog, DensityRangeMatchesPaper)
{
    // Table I: socket density spans ~4 to 72 sockets per U.
    double min_d = 1e9, max_d = 0.0;
    for (const SystemRecord &r : densityOptimizedSystems()) {
        min_d = std::min(min_d, r.socketsPerU());
        max_d = std::max(max_d, r.socketsPerU());
    }
    EXPECT_NEAR(min_d, 4.0, 0.5);
    EXPECT_NEAR(max_d, 72.0, 0.5);
}

TEST(Catalog, TdpRangeMatchesPaper)
{
    // Socket power from 5 W to 140 W.
    double min_p = 1e9, max_p = 0.0;
    for (const SystemRecord &r : densityOptimizedSystems()) {
        min_p = std::min(min_p, r.socketTdpW);
        max_p = std::max(max_p, r.socketTdpW);
    }
    EXPECT_DOUBLE_EQ(min_p, 5.0);
    EXPECT_DOUBLE_EQ(max_p, 140.0);
}

TEST(Catalog, MaxCouplingIsRedstone11)
{
    EXPECT_EQ(maxCatalogCoupling(), 11);
}

TEST(Catalog, HigherDensityTendsToLowerTdp)
{
    // The paper notes systems with higher socket densities use lower
    // power sockets; check the rank correlation is negative.
    const auto &systems = densityOptimizedSystems();
    double concordant = 0, discordant = 0;
    for (std::size_t i = 0; i < systems.size(); ++i) {
        for (std::size_t j = i + 1; j < systems.size(); ++j) {
            const double dd =
                systems[i].socketsPerU() - systems[j].socketsPerU();
            const double dp =
                systems[i].socketTdpW - systems[j].socketTdpW;
            if (dd * dp < 0)
                ++concordant;
            else if (dd * dp > 0)
                ++discordant;
        }
    }
    EXPECT_GT(concordant, discordant);
}

} // namespace
} // namespace densim
