file(REMOVE_RECURSE
  "CMakeFiles/fig09_chip_thermals.dir/fig09_chip_thermals.cc.o"
  "CMakeFiles/fig09_chip_thermals.dir/fig09_chip_thermals.cc.o.d"
  "fig09_chip_thermals"
  "fig09_chip_thermals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_chip_thermals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
