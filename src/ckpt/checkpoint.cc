#include "ckpt/checkpoint.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "core/config_io.hh"
#include "core/dense_server_sim.hh"
#include "fleet/fleet_sim.hh"
#include "util/fs.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/benchmark.hh"
#include "workload/job_generator.hh"

namespace densim {
namespace {

using ckpt::CkptError;
using ckpt::Reader;
using ckpt::RestoreMode;
using ckpt::SnapshotKind;
using ckpt::Writer;

// Engine section ids; a fleet file holds kSecFleet plus one
// kSecShardBase + s section per shard.
constexpr std::uint32_t kSecCore = 1;
constexpr std::uint32_t kSecRng = 2;
constexpr std::uint32_t kSecMetrics = 3;
constexpr std::uint32_t kSecObs = 4;
constexpr std::uint32_t kSecFault = 5;
constexpr std::uint32_t kSecSched = 6;
constexpr std::uint32_t kSecFleet = 10;
constexpr std::uint32_t kSecShardBase = 100;

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

[[noreturn]] void
badField(const char *what, const std::string &detail)
{
    throw CkptError(std::string("checkpoint: bad ") + what + ": " +
                    detail);
}

// --- primitive field helpers -----------------------------------------

void
writeSnapshot(Writer &w, const Rng::Snapshot &snap)
{
    for (const std::uint64_t word : snap.state)
        w.u64(word);
    w.boolean(snap.hasSpare);
    w.f64(snap.spare);
}

Rng::Snapshot
readSnapshot(Reader &r, const char *what)
{
    Rng::Snapshot snap{};
    std::uint64_t any = 0;
    for (std::uint64_t &word : snap.state) {
        word = r.u64();
        any |= word;
    }
    snap.hasSpare = r.boolean();
    snap.spare = r.f64();
    // The all-zero state is xoshiro's single degenerate orbit — no
    // legitimate save can contain it (satellite audit: RNG positions
    // must be consistent).
    if (any == 0)
        badField(what, "all-zero generator state");
    return snap;
}

void
writeStats(Writer &w, const RunningStats &stats)
{
    const RunningStats::Snapshot snap = stats.snapshot();
    w.size(snap.count);
    w.f64(snap.mean);
    w.f64(snap.m2);
    w.f64(snap.min);
    w.f64(snap.max);
}

void
readStats(Reader &r, RunningStats &stats)
{
    RunningStats::Snapshot snap{};
    snap.count = r.size();
    snap.mean = r.f64();
    snap.m2 = r.f64();
    snap.min = r.f64();
    snap.max = r.f64();
    stats.restore(snap);
}

void
writeJob(Writer &w, const Job &job)
{
    w.u64(job.id);
    w.size(job.benchmark);
    w.u8(static_cast<std::uint8_t>(job.set));
    w.f64(job.arrivalS);
    w.f64(job.nominalS);
}

Job
readJob(Reader &r, const char *what)
{
    Job job{};
    job.id = r.u64();
    job.benchmark = r.size();
    if (job.benchmark >= pcmarkCatalog().size())
        badField(what, "benchmark index " +
                           std::to_string(job.benchmark) +
                           " outside the catalog");
    const std::uint8_t set = r.u8();
    if (set > static_cast<std::uint8_t>(WorkloadSet::GeneralPurpose))
        badField(what, "workload set " + std::to_string(int(set)));
    job.set = static_cast<WorkloadSet>(set);
    job.arrivalS = r.f64();
    job.nominalS = r.f64();
    return job;
}

void
writeDecision(Writer &w, const DvfsDecision &d)
{
    w.size(d.pstate);
    w.f64(d.freqMhz);
    w.f64(d.power.value());
    w.f64(d.predictedPeak.value());
    w.boolean(d.feasible);
}

DvfsDecision
readDecision(Reader &r, std::size_t npstates, const char *what)
{
    const std::size_t pstate = r.size();
    if (pstate >= npstates)
        badField(what, "P-state index " + std::to_string(pstate) +
                           " of " + std::to_string(npstates));
    const double freq = r.f64();
    const Watts power{r.f64()};
    const Celsius peak{r.f64()};
    const bool feasible = r.boolean();
    return DvfsDecision{pstate, freq, power, peak, feasible};
}

void
writeCharVec(Writer &w, const std::vector<char> &v)
{
    w.size(v.size());
    for (const char c : v)
        w.u8(static_cast<std::uint8_t>(c));
}

// --- length/range-validated array readers ----------------------------

std::vector<double>
readF64Array(Reader &r, std::size_t n, const char *what)
{
    std::vector<double> v = r.vecF64();
    if (v.size() != n)
        badField(what, "length " + std::to_string(v.size()) +
                           " != expected " + std::to_string(n));
    return v;
}

std::vector<std::uint8_t>
readU8Array(Reader &r, std::size_t n, std::uint8_t max_value,
            const char *what)
{
    std::vector<std::uint8_t> v = r.vecU8();
    if (v.size() != n)
        badField(what, "length " + std::to_string(v.size()) +
                           " != expected " + std::to_string(n));
    for (const std::uint8_t b : v)
        if (b > max_value)
            badField(what, "value " + std::to_string(int(b)) +
                               " > " + std::to_string(int(max_value)));
    return v;
}

std::vector<char>
readCharVec(Reader &r, std::size_t n, const char *what)
{
    const std::vector<std::uint8_t> raw = readU8Array(r, n, 1, what);
    return std::vector<char>(raw.begin(), raw.end());
}

std::vector<std::size_t>
readSizeArray(Reader &r, std::size_t n, std::size_t bound,
              const char *what)
{
    std::vector<std::size_t> v = r.vecSize();
    if (v.size() != n)
        badField(what, "length " + std::to_string(v.size()) +
                           " != expected " + std::to_string(n));
    for (const std::size_t x : v)
        if (x >= bound)
            badField(what, "index " + std::to_string(x) +
                               " >= bound " + std::to_string(bound));
    return v;
}

int
readCount(Reader &r, std::size_t bound, const char *what)
{
    const std::uint64_t v = r.u64();
    if (v > bound)
        badField(what, "count " + std::to_string(v) + " > " +
                           std::to_string(bound));
    return static_cast<int>(v);
}

double
readFinite(Reader &r, const char *what)
{
    const double v = r.f64();
    if (!std::isfinite(v))
        badField(what, "non-finite value");
    return v;
}

// --- file framing -----------------------------------------------------

std::string
buildFile(SnapshotKind kind, std::uint64_t digest,
          const std::vector<std::pair<std::uint32_t, std::string>>
              &sections)
{
    Writer w;
    w.bytes(ckpt::kMagic, sizeof ckpt::kMagic);
    w.u32(ckpt::kVersion);
    w.u32(static_cast<std::uint32_t>(kind));
    w.u64(digest);
    w.u64(sections.size());
    for (const auto &[id, payload] : sections) {
        w.u32(id);
        w.u64(payload.size());
        w.u64(ckpt::sectionCrc(payload));
        w.bytes(payload.data(), payload.size());
    }
    return w.take();
}

/**
 * Validate the header and every section CRC, returning the section
 * map. Runs to completion before any engine state is touched — the
 * no-partial-mutation half of the hostile-input contract.
 */
std::map<std::uint32_t, std::string>
parseFile(std::string_view image, SnapshotKind expect_kind,
          std::uint64_t expect_digest)
{
    Reader r(image);
    if (r.remaining() < sizeof ckpt::kMagic ||
        std::memcmp(r.raw(sizeof ckpt::kMagic).data(), ckpt::kMagic,
                    sizeof ckpt::kMagic) != 0)
        throw CkptError(
            "checkpoint: not a densim checkpoint (bad magic)");
    const std::uint32_t version = r.u32();
    if (version != ckpt::kVersion)
        throw CkptError(
            "checkpoint: format version " + std::to_string(version) +
            ", this build reads version " +
            std::to_string(ckpt::kVersion) +
            " — re-create the checkpoint with this binary");
    const std::uint32_t kind = r.u32();
    if (kind != static_cast<std::uint32_t>(SnapshotKind::Engine) &&
        kind != static_cast<std::uint32_t>(SnapshotKind::Fleet))
        throw CkptError("checkpoint: unknown snapshot kind " +
                        std::to_string(kind));
    if (kind != static_cast<std::uint32_t>(expect_kind))
        throw CkptError(
            kind == static_cast<std::uint32_t>(SnapshotKind::Fleet)
                ? "checkpoint: file holds a fleet snapshot but an "
                  "engine restore was requested (fleet.chassis unset?)"
                : "checkpoint: file holds an engine snapshot but a "
                  "fleet restore was requested (fleet.chassis set?)");
    const std::uint64_t digest = r.u64();
    if (digest != expect_digest)
        throw CkptError(
            "checkpoint: config/policy digest mismatch (file " +
            hex16(digest) + ", this run " + hex16(expect_digest) +
            ") — the snapshot was written under a different "
            "configuration or scheduler");
    const std::uint64_t count = r.u64();
    // Every section costs at least its 20-byte header.
    if (count > r.remaining() / 20)
        throw CkptError("checkpoint: section count " +
                        std::to_string(count) + " overruns the file");
    std::map<std::uint32_t, std::string> sections;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t id = r.u32();
        const std::uint64_t len = r.u64();
        const std::uint64_t crc = r.u64();
        if (len > r.remaining())
            throw CkptError("checkpoint: section " +
                            std::to_string(id) + " length " +
                            std::to_string(len) +
                            " overruns the file (" +
                            std::to_string(r.remaining()) +
                            " bytes left)");
        const std::string_view payload =
            r.raw(static_cast<std::size_t>(len));
        if (ckpt::sectionCrc(payload) != crc)
            throw CkptError("checkpoint: CRC mismatch in section " +
                            std::to_string(id) +
                            " — the file is corrupted");
        if (!sections.emplace(id, std::string(payload)).second)
            throw CkptError("checkpoint: duplicate section " +
                            std::to_string(id));
    }
    r.expectEnd("checkpoint file");
    return sections;
}

const std::string &
section(const std::map<std::uint32_t, std::string> &sections,
        std::uint32_t id)
{
    const auto it = sections.find(id);
    if (it == sections.end())
        throw CkptError("checkpoint: missing section " +
                        std::to_string(id));
    return it->second;
}

} // namespace

/**
 * The one class befriended by every checkpointed component. All
 * serialization logic lives here, so the engine's streaming interface
 * stays its only behavioral surface.
 */
class CkptAccess
{
  public:
    struct EngineImage
    {
        std::string core, rng, metrics, obs, fault, sched;
    };

    static bool engineOpen(const DenseServerSim &sim)
    {
        return sim.streamOpen_;
    }

    static bool fleetOpen(const FleetSim &fleet)
    {
        return fleet.fleetOpen_;
    }

    static const char *policyName(const DenseServerSim &sim)
    {
        return sim.policy_->name();
    }

    static const char *fleetPolicyName(const FleetSim &fleet)
    {
        return fleet.shards_.front()->policy_->name();
    }

    static const SimConfig &fleetConfig(const FleetSim &fleet)
    {
        return fleet.base_;
    }

    static void flush(DenseServerSim &sim) { sim.writeObsOutputs(); }

    static void flushFleet(FleetSim &fleet)
    {
        for (const auto &shard : fleet.shards_)
            shard->writeObsOutputs();
    }

    static EngineImage captureEngine(const DenseServerSim &sim);
    static void applyEngine(DenseServerSim &sim,
                            const EngineImage &image, RestoreMode mode,
                            std::uint64_t fork_id);

    static std::string saveFleetImage(const FleetSim &fleet);
    static void restoreFleetImage(FleetSim &fleet,
                                  std::string_view image,
                                  RestoreMode mode,
                                  std::uint64_t fork_id);

  private:
    // One writer/reader pair per engine section. Readers validate
    // every length and index before touching the field they fill;
    // cross-section consistency is audited in finalizeRestore.
    static void writeCore(Writer &w, const DenseServerSim &sim);
    static void applyCore(DenseServerSim &sim, Reader r);
    static void writeRng(Writer &w, const DenseServerSim &sim);
    static void applyRng(DenseServerSim &sim, Reader r,
                         RestoreMode mode, std::uint64_t fork_id);
    static void writeMetrics(Writer &w, const DenseServerSim &sim);
    static void applyMetrics(DenseServerSim &sim, Reader r);
    static void writeObs(Writer &w, const DenseServerSim &sim);
    static void applyObs(DenseServerSim &sim, Reader r);
    static void writeFault(Writer &w, const DenseServerSim &sim);
    static void applyFault(DenseServerSim &sim, Reader r);
    static void writeSched(Writer &w, const DenseServerSim &sim);
    static void applySched(DenseServerSim &sim, Reader r);
    static void finalizeRestore(DenseServerSim &sim);

    static void applyRegistry(obs::Registry &registry, Reader &r);
    static void writeRegistry(Writer &w, const obs::Registry &registry);
};

namespace obs {

/** Friend hook into TraceSink's private event buffer. */
class TraceCkptAccess
{
  public:
    static void
    save(ckpt::Writer &w, const TraceSink &trace)
    {
        w.size(trace.dropped_);
        w.size(trace.events_.size());
        for (const TraceSink::Event &e : trace.events_) {
            w.u8(static_cast<std::uint8_t>(e.kind));
            w.u64(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(e.tid)));
            w.f64(e.tsUs);
            w.f64(e.durUs);
            w.f64(e.value);
            w.str(e.name);
            w.str(e.cat);
        }
    }

    static void
    apply(ckpt::Reader &r, TraceSink &trace)
    {
        trace.dropped_ = r.size();
        const std::size_t count = r.size();
        // Minimum wire size of one event: kind + tid + 3 doubles +
        // two empty strings = 49 bytes.
        if (count > r.remaining() / 49)
            throw ckpt::CkptError(
                "checkpoint: oversized trace event count " +
                std::to_string(count));
        trace.events_.clear();
        trace.events_.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint8_t kind = r.u8();
            if (kind > static_cast<std::uint8_t>(
                           TraceSink::Kind::CounterSample))
                throw ckpt::CkptError(
                    "checkpoint: bad trace event kind " +
                    std::to_string(int(kind)));
            TraceSink::Event e;
            e.kind = static_cast<TraceSink::Kind>(kind);
            e.tid = static_cast<int>(
                static_cast<std::int64_t>(r.u64()));
            e.tsUs = r.f64();
            e.durUs = r.f64();
            e.value = r.f64();
            e.name = r.str();
            e.cat = r.str();
            trace.events_.push_back(std::move(e));
        }
    }
};

} // namespace obs

// --- CORE: stream position, backlog, queue, SoA socket banks ----------

void
CkptAccess::writeCore(Writer &w, const DenseServerSim &sim)
{
    const std::size_t n = sim.topo_.numSockets();
    w.size(n);
    w.f64(sim.streamNowS_);
    w.f64(sim.streamHardStopS_);
    w.boolean(sim.arrivalsClosed_);

    // Only the unconsumed backlog tail: the consumed prefix can never
    // be read again, and submitJobs' periodic compaction proves the
    // representation is behavior-free.
    w.size(sim.streamJobs_.size() - sim.streamNext_);
    for (std::size_t i = sim.streamNext_; i < sim.streamJobs_.size();
         ++i)
        writeJob(w, sim.streamJobs_[i]);
    w.size(sim.queue_.size());
    for (const Job &job : sim.queue_)
        writeJob(w, job);

    w.vecF64(sim.powerW_);
    w.vecF64(sim.freqMhz_);
    w.vecF64(sim.chipTempC_);
    w.vecF64(sim.sensedTempC_);
    w.vecF64(sim.histTempC_);
    w.size(sim.runningSet_.size());
    for (const WorkloadSet set : sim.runningSet_)
        w.u8(static_cast<std::uint8_t>(set));
    w.vecU8(sim.busyFlag_);
    w.vecF64(sim.ambientC_);
    w.vecF64(sim.chipRiseC_);
    w.vecF64(sim.boostCreditS_);

    w.vecSize(sim.jobBenchmark_);
    w.vecF64(sim.jobArrivalS_);
    w.vecF64(sim.jobStartS_);
    w.vecF64(sim.jobNominalS_);
    w.vecF64(sim.jobRemainingS_);
    w.vecF64(sim.lastSyncS_);
    w.vecF64(sim.completionS_);
    w.vecSize(sim.pstate_);
    w.vecU8(sim.boostFlag_);

    w.vecSize(sim.idleList_);
    w.vecF64(sim.ambTargets_);
    w.vecF64(sim.targetPowerW_);
    writeCharVec(w, sim.powerDirty_);
    w.vecSize(sim.dirtySockets_);
    w.size(sim.epochsSinceAmbientRefresh_);

    w.vecF64(sim.rateCache_);
    w.vecF64(sim.relFreqCache_);
    writeCharVec(w, sim.inBusySums_);
    w.vecF64(sim.contribRate_);
    w.vecF64(sim.contribRel_);
    writeCharVec(w, sim.contribBoost_);

    w.f64(sim.tCursor_);
    w.f64(sim.totalPowerW_);
    w.f64(sim.workRateTotal_);
    w.f64(sim.workRateFront_);
    w.f64(sim.workRateBack_);
    w.f64(sim.workRateEven_);
    w.f64(sim.relFreqSumTotal_);
    w.f64(sim.relFreqSumFront_);
    w.f64(sim.relFreqSumBack_);
    w.f64(sim.relFreqSumEven_);
    w.u64(static_cast<std::uint64_t>(sim.busyTotal_));
    w.u64(static_cast<std::uint64_t>(sim.busyFront_));
    w.u64(static_cast<std::uint64_t>(sim.busyBack_));
    w.u64(static_cast<std::uint64_t>(sim.busyEven_));
    w.u64(static_cast<std::uint64_t>(sim.busyBoost_));
    w.size(sim.decisions_);
}

void
CkptAccess::applyCore(DenseServerSim &sim, Reader r)
{
    const std::size_t n = sim.topo_.numSockets();
    const std::size_t np = sim.pm_.pstates().size();
    const std::size_t fileN = r.size();
    if (fileN != n)
        throw CkptError("checkpoint: snapshot of " +
                        std::to_string(fileN) +
                        " sockets, this engine has " +
                        std::to_string(n));
    sim.streamNowS_ = readFinite(r, "stream position");
    sim.streamHardStopS_ = readFinite(r, "stream hard stop");
    sim.arrivalsClosed_ = r.boolean();

    const std::size_t backlog =
        static_cast<std::size_t>(readCount(
            r, r.remaining() / 33, "arrival backlog"));
    sim.streamJobs_.clear();
    sim.streamJobs_.reserve(backlog);
    for (std::size_t i = 0; i < backlog; ++i)
        sim.streamJobs_.push_back(readJob(r, "backlog job"));
    sim.streamNext_ = 0;
    const std::size_t queued = static_cast<std::size_t>(
        readCount(r, r.remaining() / 33, "job queue"));
    sim.queue_.clear();
    for (std::size_t i = 0; i < queued; ++i)
        sim.queue_.push_back(readJob(r, "queued job"));

    sim.powerW_ = readF64Array(r, n, "powerW");
    sim.freqMhz_ = readF64Array(r, n, "freqMhz");
    sim.chipTempC_ = readF64Array(r, n, "chipTempC");
    sim.sensedTempC_ = readF64Array(r, n, "sensedTempC");
    sim.histTempC_ = readF64Array(r, n, "histTempC");
    {
        const std::vector<std::uint8_t> sets = readU8Array(
            r, n,
            static_cast<std::uint8_t>(WorkloadSet::GeneralPurpose),
            "runningSet");
        sim.runningSet_.resize(n);
        for (std::size_t s = 0; s < n; ++s)
            sim.runningSet_[s] = static_cast<WorkloadSet>(sets[s]);
    }
    sim.busyFlag_ = readU8Array(r, n, 1, "busyFlag");
    sim.ambientC_ = readF64Array(r, n, "ambientC");
    sim.chipRiseC_ = readF64Array(r, n, "chipRiseC");
    sim.boostCreditS_ = readF64Array(r, n, "boostCreditS");

    sim.jobBenchmark_ =
        readSizeArray(r, n, pcmarkCatalog().size(), "jobBenchmark");
    sim.jobArrivalS_ = readF64Array(r, n, "jobArrivalS");
    sim.jobStartS_ = readF64Array(r, n, "jobStartS");
    sim.jobNominalS_ = readF64Array(r, n, "jobNominalS");
    sim.jobRemainingS_ = readF64Array(r, n, "jobRemainingS");
    sim.lastSyncS_ = readF64Array(r, n, "lastSyncS");
    sim.completionS_ = readF64Array(r, n, "completionS");
    sim.pstate_ = readSizeArray(r, n, np, "pstate");
    sim.boostFlag_ = readU8Array(r, n, 1, "boostFlag");

    {
        std::vector<std::size_t> idle = r.vecSize();
        if (idle.size() > n)
            badField("idleList", "more idle sockets than sockets");
        for (std::size_t i = 0; i < idle.size(); ++i) {
            if (idle[i] >= n)
                badField("idleList", "socket " +
                                         std::to_string(idle[i]) +
                                         " out of range");
            if (i > 0 && idle[i] <= idle[i - 1])
                badField("idleList", "not strictly ascending");
        }
        sim.idleList_ = std::move(idle);
    }
    sim.ambTargets_ = readF64Array(r, n, "ambTargets");
    sim.targetPowerW_ = readF64Array(r, n, "targetPowerW");
    sim.powerDirty_ = readCharVec(r, n, "powerDirty");
    {
        std::vector<std::size_t> dirty = r.vecSize();
        if (dirty.size() > n)
            badField("dirtySockets", "more entries than sockets");
        for (const std::size_t s : dirty)
            if (s >= n)
                badField("dirtySockets", "socket " +
                                             std::to_string(s) +
                                             " out of range");
        sim.dirtySockets_ = std::move(dirty);
    }
    sim.epochsSinceAmbientRefresh_ = r.size();

    sim.rateCache_ = readF64Array(r, n, "rateCache");
    sim.relFreqCache_ = readF64Array(r, n, "relFreqCache");
    sim.inBusySums_ = readCharVec(r, n, "inBusySums");
    sim.contribRate_ = readF64Array(r, n, "contribRate");
    sim.contribRel_ = readF64Array(r, n, "contribRel");
    sim.contribBoost_ = readCharVec(r, n, "contribBoost");

    sim.tCursor_ = readFinite(r, "tCursor");
    sim.totalPowerW_ = r.f64();
    sim.workRateTotal_ = r.f64();
    sim.workRateFront_ = r.f64();
    sim.workRateBack_ = r.f64();
    sim.workRateEven_ = r.f64();
    sim.relFreqSumTotal_ = r.f64();
    sim.relFreqSumFront_ = r.f64();
    sim.relFreqSumBack_ = r.f64();
    sim.relFreqSumEven_ = r.f64();
    sim.busyTotal_ = readCount(r, n, "busyTotal");
    sim.busyFront_ = readCount(r, n, "busyFront");
    sim.busyBack_ = readCount(r, n, "busyBack");
    sim.busyEven_ = readCount(r, n, "busyEven");
    sim.busyBoost_ = readCount(r, n, "busyBoost");
    sim.decisions_ = r.size();
    r.expectEnd("core");
}

// --- RNG: every stochastic stream position ----------------------------

void
CkptAccess::writeRng(Writer &w, const DenseServerSim &sim)
{
    writeSnapshot(w, sim.policyRng_.snapshot());
    writeSnapshot(w, sim.sensorRng_.snapshot());
    writeSnapshot(w, sim.faultRng_.snapshot());
}

void
CkptAccess::applyRng(DenseServerSim &sim, Reader r, RestoreMode mode,
                     std::uint64_t fork_id)
{
    const Rng::Snapshot policy = readSnapshot(r, "policy rng");
    const Rng::Snapshot sensor = readSnapshot(r, "sensor rng");
    const Rng::Snapshot fault = readSnapshot(r, "fault rng");
    r.expectEnd("rng");
    if (mode == RestoreMode::Exact) {
        sim.policyRng_.restore(policy);
        sim.sensorRng_.restore(sensor);
        sim.faultRng_.restore(fault);
        return;
    }
    // Fork: identical state, divergent future — every stream reseeded
    // through the avalanched domain-separation chain.
    sim.policyRng_ = Rng(domainSeed(sim.config_.seed, fork_id,
                                    ckpt::ckpt_stream::kForkPolicy));
    sim.sensorRng_ = Rng(domainSeed(sim.config_.seed, fork_id,
                                    ckpt::ckpt_stream::kForkSensor));
    sim.faultRng_ = Rng(domainSeed(
        sim.config_.fault.effectiveSeed(sim.config_.seed), fork_id,
        ckpt::ckpt_stream::kForkFault));
}

// --- METRICS: every SimMetrics accumulator, raw FP words --------------

void
CkptAccess::writeMetrics(Writer &w, const DenseServerSim &sim)
{
    const SimMetrics &m = sim.metrics_;
    w.size(m.jobsArrived);
    w.size(m.jobsCompleted);
    w.size(m.jobsUnfinished);
    w.size(m.migrations);
    writeStats(w, m.runtimeExpansion);
    writeStats(w, m.serviceExpansion);
    writeStats(w, m.queueDelayS);
    w.f64(m.energyJ);
    w.f64(m.measuredS);
    w.f64(m.makespanS);
    for (const RegionMetrics *region : {&m.front, &m.back, &m.even}) {
        w.f64(region->busyTimeS);
        w.f64(region->freqTime);
        w.f64(region->workDone);
    }
    w.f64(m.totalWork);
    w.f64(m.totalBusyTime);
    w.f64(m.totalFreqTime);
    w.vecF64(m.timelineS);
    w.size(m.zoneAmbientC.size());
    for (const std::vector<double> &row : m.zoneAmbientC)
        w.vecF64(row);
    writeStats(w, m.chipTempC);
    w.f64(m.maxChipTempC);
    w.f64(m.boostTimeS);
}

void
CkptAccess::applyMetrics(DenseServerSim &sim, Reader r)
{
    SimMetrics &m = sim.metrics_;
    m.jobsArrived = r.size();
    m.jobsCompleted = r.size();
    m.jobsUnfinished = r.size();
    m.migrations = r.size();
    readStats(r, m.runtimeExpansion);
    readStats(r, m.serviceExpansion);
    readStats(r, m.queueDelayS);
    m.energyJ = r.f64();
    m.measuredS = r.f64();
    m.makespanS = r.f64();
    for (RegionMetrics *region : {&m.front, &m.back, &m.even}) {
        region->busyTimeS = r.f64();
        region->freqTime = r.f64();
        region->workDone = r.f64();
    }
    m.totalWork = r.f64();
    m.totalBusyTime = r.f64();
    m.totalFreqTime = r.f64();
    m.timelineS = r.vecF64();
    const std::size_t rows = static_cast<std::size_t>(
        readCount(r, r.remaining() / 8, "timeline rows"));
    if (rows != m.timelineS.size())
        badField("timeline", std::to_string(rows) +
                                 " ambient rows for " +
                                 std::to_string(m.timelineS.size()) +
                                 " sample times");
    m.zoneAmbientC.clear();
    m.zoneAmbientC.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i)
        m.zoneAmbientC.push_back(readF64Array(
            r, sim.zoneSockets_.size(), "timeline zone row"));
    readStats(r, m.chipTempC);
    m.maxChipTempC = r.f64();
    m.boostTimeS = r.f64();
    r.expectEnd("metrics");
}

// --- OBS: registry values, timeline cursor, trace buffer --------------

void
CkptAccess::writeRegistry(Writer &w, const obs::Registry &registry)
{
    const std::vector<obs::CounterSample> counters =
        registry.counters();
    w.size(counters.size());
    for (const obs::CounterSample &c : counters) {
        w.str(c.name);
        w.u64(c.value);
    }
    const std::vector<obs::GaugeSample> gauges = registry.gauges();
    w.size(gauges.size());
    for (const obs::GaugeSample &g : gauges) {
        w.str(g.name);
        w.str(g.unit);
        w.f64(g.value);
    }
}

void
CkptAccess::applyRegistry(obs::Registry &registry, Reader &r)
{
    // Registry::counter()/gauge() create on first use; a hostile file
    // must not be able to inject instruments, so every name is
    // validated against the already-registered set (identical across
    // save/restore because construction registers them and the digest
    // pins config + policy).
    std::set<std::string> knownCounters;
    for (const obs::CounterSample &c : registry.counters())
        knownCounters.insert(c.name);
    std::map<std::string, std::string> knownGauges;
    for (const obs::GaugeSample &g : registry.gauges())
        knownGauges.emplace(g.name, g.unit);

    const std::size_t ncounters = static_cast<std::size_t>(
        readCount(r, r.remaining() / 16, "counter table"));
    for (std::size_t i = 0; i < ncounters; ++i) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        if (knownCounters.find(name) == knownCounters.end())
            badField("counter table",
                     "unknown counter '" + name + "'");
        obs::Counter &counter = registry.counter(name);
        counter.reset();
        counter.inc(value);
    }
    const std::size_t ngauges = static_cast<std::size_t>(
        readCount(r, r.remaining() / 24, "gauge table"));
    for (std::size_t i = 0; i < ngauges; ++i) {
        const std::string name = r.str();
        const std::string unit = r.str();
        const double value = r.f64();
        const auto it = knownGauges.find(name);
        if (it == knownGauges.end())
            badField("gauge table", "unknown gauge '" + name + "'");
        if (it->second != unit)
            badField("gauge table", "gauge '" + name + "' unit '" +
                                        unit + "' != registered '" +
                                        it->second + "'");
        registry.gauge(name).set(value);
    }
}

void
CkptAccess::writeObs(Writer &w, const DenseServerSim &sim)
{
    writeRegistry(w, sim.obsRegistry_);
    w.u64(sim.sampler_.nextGridIndex());
    obs::TraceCkptAccess::save(w, sim.trace_);
}

void
CkptAccess::applyObs(DenseServerSim &sim, Reader r)
{
    applyRegistry(sim.obsRegistry_, r);
    sim.sampler_.resumeAt(r.u64());
    obs::TraceCkptAccess::apply(r, sim.trace_);
    r.expectEnd("obs");
}

// --- FAULT: timeline cursor, log, sensor/offline/ladder state ---------

void
CkptAccess::writeFault(Writer &w, const DenseServerSim &sim)
{
    w.boolean(sim.faultsEnabled_);
    w.size(sim.nextFaultEvent_);
    w.size(sim.faultLog_.size());
    for (const FaultEvent &e : sim.faultLog_) {
        w.f64(e.timeS);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u32(e.socket);
        w.f64(e.value);
    }
    w.f64(sim.fanPowerW_);
    w.boolean(sim.couplingDerated_);
    w.u64(sim.couplingEpoch_);

    const FaultState &fs = sim.faultState_;
    w.size(fs.sensorMode_.size());
    for (const SensorMode mode : fs.sensorMode_)
        w.u8(static_cast<std::uint8_t>(mode));
    w.vecF64(fs.stuckAmbientC_);
    w.vecF64(fs.stuckChipC_);
    w.vecF64(fs.noiseSigmaC_);
    w.vecF64(fs.lastGoodAmbientC_);
    w.vecU8(fs.offline_);
    w.size(fs.offlineCount_);
    w.vecU8(fs.escStage_);
    w.vecF64(fs.overTripSinceS_);
    w.f64(fs.flowFrac_);
}

void
CkptAccess::applyFault(DenseServerSim &sim, Reader r)
{
    const std::size_t n = sim.topo_.numSockets();
    const bool enabled = r.boolean();
    if (enabled != sim.faultsEnabled_)
        badField("fault section",
                 "fault arming disagrees with this configuration");
    const std::size_t cursor = r.size();
    if (cursor > sim.faultTimeline_.events().size())
        badField("fault timeline cursor",
                 std::to_string(cursor) + " past the " +
                     std::to_string(sim.faultTimeline_.events().size()) +
                     "-event timeline");
    sim.nextFaultEvent_ = cursor;
    const std::size_t logged = static_cast<std::size_t>(
        readCount(r, r.remaining() / 21, "fault log"));
    sim.faultLog_.clear();
    sim.faultLog_.reserve(logged);
    for (std::size_t i = 0; i < logged; ++i) {
        FaultEvent e{};
        e.timeS = r.f64();
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(FaultKind::JobRequeue))
            badField("fault log", "fault kind " +
                                      std::to_string(int(kind)));
        e.kind = static_cast<FaultKind>(kind);
        e.socket = r.u32();
        e.value = r.f64();
        sim.faultLog_.push_back(e);
    }
    sim.fanPowerW_ = readFinite(r, "fan power");
    sim.couplingDerated_ = r.boolean();
    sim.couplingEpoch_ = r.u64();

    FaultState &fs = sim.faultState_;
    {
        const std::vector<std::uint8_t> modes = readU8Array(
            r, n, static_cast<std::uint8_t>(SensorMode::Dropout),
            "sensorMode");
        fs.sensorMode_.resize(n);
        for (std::size_t s = 0; s < n; ++s)
            fs.sensorMode_[s] = static_cast<SensorMode>(modes[s]);
    }
    fs.stuckAmbientC_ = readF64Array(r, n, "stuckAmbientC");
    fs.stuckChipC_ = readF64Array(r, n, "stuckChipC");
    fs.noiseSigmaC_ = readF64Array(r, n, "noiseSigmaC");
    fs.lastGoodAmbientC_ = readF64Array(r, n, "lastGoodAmbientC");
    fs.offline_ = readU8Array(r, n, 2, "offline");
    const std::size_t offlineCount = r.size();
    std::size_t actual = 0;
    for (const std::uint8_t o : fs.offline_)
        actual += o != 0 ? 1 : 0;
    if (offlineCount != actual)
        badField("offline count",
                 std::to_string(offlineCount) + " recorded, " +
                     std::to_string(actual) + " sockets marked");
    fs.offlineCount_ = offlineCount;
    fs.escStage_ = readU8Array(r, n, 1, "escStage");
    fs.overTripSinceS_ = readF64Array(r, n, "overTripSinceS");
    const double flowFrac = r.f64();
    if (!std::isfinite(flowFrac) || flowFrac <= 0.0 ||
        flowFrac > 1.0)
        badField("fan flow fraction", "outside (0, 1]");
    if (sim.couplingDerated_ != (flowFrac != 1.0))
        badField("fan flow fraction",
                 "disagrees with the coupling-derated flag");
    fs.flowFrac_ = flowFrac;
    r.expectEnd("fault");
}

// --- SCHED: DVFS memo and prediction cache ----------------------------

void
CkptAccess::writeSched(Writer &w, const DenseServerSim &sim)
{
    w.size(sim.dvfsMemo_.entries_.size());
    for (const DvfsMemoTable::Entry &e : sim.dvfsMemo_.entries_) {
        w.boolean(e.valid);
        w.u8(static_cast<std::uint8_t>(e.set));
        w.size(e.cap);
        w.f64(e.ambientC);
        writeDecision(w, e.d);
    }

    const PredictionCache &pc = sim.predCache_;
    w.u64(pc.epoch);
    w.size(pc.place.size());
    for (const PredictionCache::PlaceEntry &e : pc.place) {
        w.u64(e.stamp);
        w.u8(static_cast<std::uint8_t>(e.set));
        writeDecision(w, e.decision);
    }
    w.size(pc.penalty.size());
    for (const PredictionCache::PenaltyEntry &e : pc.penalty) {
        w.u64(e.stamp);
        w.f64(e.extra);
        w.f64(e.mhz);
    }
    w.size(pc.npstates);
    w.size(pc.feasSet.size());
    for (const WorkloadSet set : pc.feasSet)
        w.u8(static_cast<std::uint8_t>(set));
    w.vecU8(pc.feasSetValid);
    w.vecF64(pc.feasLoC);
    w.vecF64(pc.feasHiC);
    w.vecF64(pc.feasMhzPerC);
    w.vecF64(pc.fastFeasC);
    w.vecF64(pc.fastSlope);
}

void
CkptAccess::applySched(DenseServerSim &sim, Reader r)
{
    const std::size_t n = sim.topo_.numSockets();
    const std::size_t np = sim.pm_.pstates().size();
    const auto maxSet =
        static_cast<std::uint8_t>(WorkloadSet::GeneralPurpose);

    if (r.size() != n)
        badField("dvfs memo", "entry count != socket count");
    for (std::size_t s = 0; s < n; ++s) {
        DvfsMemoTable::Entry &e = sim.dvfsMemo_.entries_[s];
        e.valid = r.boolean();
        const std::uint8_t set = r.u8();
        if (set > maxSet)
            badField("dvfs memo", "workload set " +
                                      std::to_string(int(set)));
        e.set = static_cast<WorkloadSet>(set);
        e.cap = r.size();
        if (e.cap >= np)
            badField("dvfs memo", "boost cap " +
                                      std::to_string(e.cap));
        e.ambientC = r.f64();
        e.d = readDecision(r, np, "dvfs memo decision");
    }

    PredictionCache &pc = sim.predCache_;
    pc.epoch = r.u64();
    if (r.size() != n)
        badField("prediction cache", "place entry count");
    for (std::size_t s = 0; s < n; ++s) {
        PredictionCache::PlaceEntry &e = pc.place[s];
        e.stamp = r.u64();
        const std::uint8_t set = r.u8();
        if (set > maxSet)
            badField("prediction cache", "workload set " +
                                             std::to_string(int(set)));
        e.set = static_cast<WorkloadSet>(set);
        e.decision = readDecision(r, np, "placement decision");
    }
    if (r.size() != n)
        badField("prediction cache", "penalty entry count");
    for (std::size_t s = 0; s < n; ++s) {
        PredictionCache::PenaltyEntry &e = pc.penalty[s];
        e.stamp = r.u64();
        e.extra = r.f64();
        e.mhz = r.f64();
    }
    if (r.size() != np)
        badField("prediction cache", "P-state count != table size");
    {
        if (r.size() != n)
            badField("prediction cache", "feasSet length");
        for (std::size_t s = 0; s < n; ++s) {
            const std::uint8_t set = r.u8();
            if (set > maxSet)
                badField("prediction cache",
                         "feasSet value " + std::to_string(int(set)));
            pc.feasSet[s] = static_cast<WorkloadSet>(set);
        }
    }
    pc.feasSetValid = readU8Array(r, n, 1, "feasSetValid");
    pc.feasLoC = readF64Array(r, n * np, "feasLoC");
    pc.feasHiC = readF64Array(r, n * np, "feasHiC");
    pc.feasMhzPerC = readF64Array(r, n, "feasMhzPerC");
    pc.fastFeasC = readF64Array(r, n, "fastFeasC");
    pc.fastSlope = readF64Array(r, n, "fastSlope");
    r.expectEnd("sched");
}

// --- capture / apply --------------------------------------------------

CkptAccess::EngineImage
CkptAccess::captureEngine(const DenseServerSim &sim)
{
    if (!sim.streamOpen_)
        fatal("ckpt: cannot checkpoint a closed run (beginRun?)");
    EngineImage image;
    Writer w;
    writeCore(w, sim);
    image.core = w.take();
    writeRng(w, sim);
    image.rng = w.take();
    writeMetrics(w, sim);
    image.metrics = w.take();
    writeObs(w, sim);
    image.obs = w.take();
    writeFault(w, sim);
    image.fault = w.take();
    writeSched(w, sim);
    image.sched = w.take();
    return image;
}

void
CkptAccess::finalizeRestore(DenseServerSim &sim)
{
    const std::size_t n = sim.topo_.numSockets();

    // The saved run was under a fan derate: rebuild the derated
    // coupling operator exactly as applyFanFlowFraction does, but
    // without retargeting — ambTargets_, couplingEpoch_ and the
    // prediction cache were restored verbatim.
    if (sim.couplingDerated_) {
        const double frac = sim.faultState_.flowFrac();
        std::vector<SocketSite> sites = sim.topo_.sites();
        for (SocketSite &site : sites)
            site.ductCfm = Cfm(site.ductCfm.value() * frac);
        CouplingParams params = sim.config_.coupling;
        params.kappaLocal /= frac;
        sim.coupling_ = CouplingMap(std::move(sites), params);
    }

    // Rebuild the completion heap from the busy flags in ascending-id
    // order. Observably exact: the heap's (key, id) order is total,
    // so top()/topKey()/contains() — all the engine ever reads — are
    // pure functions of the entry set, not of insertion order.
    sim.completionHeap_.reset(n);
    std::size_t busy = 0;
    for (std::size_t s = 0; s < n; ++s) {
        if (sim.busyFlag_[s]) {
            sim.completionHeap_.upsert(s, sim.completionS_[s]);
            ++busy;
        }
    }

    // Post-restore audit (always on, CkptError not assertion — these
    // double as the last line of hostile-input validation).
    if (busy != static_cast<std::size_t>(sim.busyTotal_))
        badField("restored state",
                 std::to_string(busy) + " busy flags vs busyTotal " +
                     std::to_string(sim.busyTotal_));
    const std::size_t offline = sim.faultState_.offlineCount();
    if (sim.idleList_.size() + busy + offline != n)
        badField("restored state",
                 "idle + busy + offline = " +
                     std::to_string(sim.idleList_.size() + busy +
                                    offline) +
                     " != " + std::to_string(n) + " sockets");
    for (const std::size_t s : sim.idleList_)
        if (sim.busyFlag_[s] || sim.faultState_.offline(s))
            badField("restored state",
                     "socket " + std::to_string(s) +
                         " is idle-listed but busy or offline");
    for (std::size_t s = 0; s < n; ++s)
        if (!std::isfinite(sim.chipTempC_[s]) ||
            !std::isfinite(sim.ambientC_[s]))
            badField("restored state",
                     "non-finite temperature on socket " +
                         std::to_string(s));

    // Pointer rebinds: the restored pstate_ vector reallocated.
    sim.predCache_.pstate = sim.pstate_.data();

    // Re-wire the trace sink exactly as beginRun does.
    if (!sim.config_.obsTracePath.empty()) {
        sim.trace_.enable(true);
        sim.trace_.setProcessName(std::string("densim:") +
                                  sim.policy_->name());
#if DENSIM_ENABLE_OBS
        sim.profiler_.setSink(&sim.trace_);
#endif
    }

    sim.streamOpen_ = true;
    // Debug-build invariants on top of the audits above.
    sim.checkEpochInvariants();
    sim.completionHeap_.checkInvariants();
}

void
CkptAccess::applyEngine(DenseServerSim &sim, const EngineImage &image,
                        RestoreMode mode, std::uint64_t fork_id)
{
    // A failed earlier fleet restore can leave a shard open; reset
    // handles either state (restoreEngine/restoreFleet hold the
    // user-facing open-run guards).
    sim.streamOpen_ = false;
    sim.resetState();
    applyCore(sim, Reader(image.core));
    applyRng(sim, Reader(image.rng), mode, fork_id);
    applyMetrics(sim, Reader(image.metrics));
    applyObs(sim, Reader(image.obs));
    applyFault(sim, Reader(image.fault));
    applySched(sim, Reader(image.sched));
    finalizeRestore(sim);
}

// --- fleet ------------------------------------------------------------

std::string
CkptAccess::saveFleetImage(const FleetSim &fleet)
{
    if (!fleet.fleetOpen_)
        fatal("ckpt: cannot checkpoint a closed fleet run "
              "(beginRun?)");
    std::vector<std::pair<std::uint32_t, std::string>> sections;

    Writer w;
    const std::size_t n = fleet.shards_.size();
    w.size(n);
    w.size(fleet.window_);
    w.boolean(fleet.arrivalsOpen_);
    w.u64(fleet.dispatcher_->cursor());
    const JobGenerator &arrivals = *fleet.arrivals_;
    writeSnapshot(w, arrivals.rng_.snapshot());
    w.f64(arrivals.clockS_);
    w.u64(arrivals.nextId_);
    w.boolean(arrivals.hasPending_);
    writeJob(w, arrivals.pending_);
    w.u64(fleet.metrics_.jobsArrived);
    w.u64(fleet.metrics_.jobsDispatched);
    w.size(fleet.metrics_.dispatchedPerShard.size());
    for (const std::uint64_t d : fleet.metrics_.dispatchedPerShard)
        w.u64(d);
    writeRegistry(w, fleet.registry_);
    sections.emplace_back(kSecFleet, w.take());

    for (std::size_t s = 0; s < n; ++s) {
        const EngineImage image = captureEngine(*fleet.shards_[s]);
        Writer shard;
        shard.str(image.core);
        shard.str(image.rng);
        shard.str(image.metrics);
        shard.str(image.obs);
        shard.str(image.fault);
        shard.str(image.sched);
        sections.emplace_back(
            kSecShardBase + static_cast<std::uint32_t>(s),
            shard.take());
    }
    return buildFile(SnapshotKind::Fleet,
                     ckpt::stateDigest(fleetPolicyName(fleet),
                                       fleet.base_),
                     sections);
}

void
CkptAccess::restoreFleetImage(FleetSim &fleet, std::string_view image,
                              RestoreMode mode, std::uint64_t fork_id)
{
    const std::size_t n = fleet.shards_.size();
    const auto sections = parseFile(
        image, SnapshotKind::Fleet,
        ckpt::stateDigest(fleetPolicyName(fleet), fleet.base_));
    if (sections.size() != n + 1)
        throw CkptError("checkpoint: fleet file has " +
                        std::to_string(sections.size()) +
                        " sections, expected " +
                        std::to_string(n + 1));
    const std::string &core = section(sections, kSecFleet);
    for (std::size_t s = 0; s < n; ++s)
        section(sections,
                kSecShardBase + static_cast<std::uint32_t>(s));

    // Baseline mirroring beginRun() — every field overwritten below
    // is first put in the exact state beginRun would leave it in, so
    // a restore that throws leaves a closed, fully reusable fleet.
    fleet.arrivals_ = std::make_unique<JobGenerator>(
        fleet.base_.workload, fleet.base_.load,
        static_cast<int>(fleet.totalSockets()),
        domainSeed(fleet.fleetSeed_, 0, fleet_stream::kArrivals));
    fleet.registry_.resetValues();
    fleet.windowsCtr_ = &fleet.registry_.counter("fleet/windows");
    fleet.dispatchedCtr_ =
        &fleet.registry_.counter("fleet/jobsDispatched");
    fleet.metrics_ = FleetMetrics{};
    fleet.metrics_.chassis = n;
    fleet.metrics_.dispatchedPerShard.assign(n, 0);
    fleet.batches_.assign(n, {});

    Reader r(core);
    if (r.size() != n)
        throw CkptError("checkpoint: fleet snapshot chassis count "
                        "!= this fleet's " +
                        std::to_string(n));
    fleet.window_ = r.size();
    fleet.arrivalsOpen_ = r.boolean();
    fleet.dispatcher_->setCursor(r.u64());
    {
        JobGenerator &arrivals = *fleet.arrivals_;
        const Rng::Snapshot snap = readSnapshot(r, "arrival rng");
        if (mode == RestoreMode::Exact)
            arrivals.rng_.restore(snap);
        else
            arrivals.rng_ =
                Rng(domainSeed(fleet.fleetSeed_, fork_id,
                               ckpt::ckpt_stream::kForkArrivals));
        arrivals.clockS_ = readFinite(r, "arrival clock");
        arrivals.nextId_ = r.u64();
        arrivals.hasPending_ = r.boolean();
        arrivals.pending_ = readJob(r, "arrival lookahead");
    }
    fleet.metrics_.jobsArrived = r.u64();
    fleet.metrics_.jobsDispatched = r.u64();
    {
        const std::size_t count = r.size();
        if (count != n)
            badField("dispatch counts", "length != chassis count");
        for (std::size_t s = 0; s < n; ++s)
            fleet.metrics_.dispatchedPerShard[s] = r.u64();
    }
    applyRegistry(fleet.registry_, r);
    r.expectEnd("fleet");

    for (std::size_t s = 0; s < n; ++s) {
        Reader shard(section(
            sections, kSecShardBase + static_cast<std::uint32_t>(s)));
        EngineImage shard_image;
        shard_image.core = shard.str();
        shard_image.rng = shard.str();
        shard_image.metrics = shard.str();
        shard_image.obs = shard.str();
        shard_image.fault = shard.str();
        shard_image.sched = shard.str();
        shard.expectEnd("shard");
        applyEngine(*fleet.shards_[s], shard_image, mode, fork_id);
    }
    fleet.fleetOpen_ = true;
}

} // namespace densim

// --- public API --------------------------------------------------------

namespace densim::ckpt {

std::uint64_t
stateDigest(const std::string &policy, const SimConfig &config)
{
    SimConfig identity = config;
    identity.ckptPath.clear();
    identity.ckptEveryS = 0.0;
    return fnv1a64(policy + "\n" + saveConfig(identity));
}

std::string
saveEngine(const DenseServerSim &sim)
{
    const CkptAccess::EngineImage image =
        CkptAccess::captureEngine(sim);
    return buildFile(
        SnapshotKind::Engine,
        stateDigest(CkptAccess::policyName(sim), sim.config()),
        {{kSecCore, image.core},
         {kSecRng, image.rng},
         {kSecMetrics, image.metrics},
         {kSecObs, image.obs},
         {kSecFault, image.fault},
         {kSecSched, image.sched}});
}

void
restoreEngine(DenseServerSim &sim, std::string_view image,
              RestoreMode mode, std::uint64_t fork_id)
{
    if (CkptAccess::engineOpen(sim))
        fatal("ckpt: restore into an open run — finishRun() first "
              "(double restore?)");
    const auto sections = parseFile(
        image, SnapshotKind::Engine,
        stateDigest(CkptAccess::policyName(sim), sim.config()));
    if (sections.size() != 6)
        throw CkptError("checkpoint: engine file has " +
                        std::to_string(sections.size()) +
                        " sections, expected 6");
    CkptAccess::EngineImage img;
    img.core = section(sections, kSecCore);
    img.rng = section(sections, kSecRng);
    img.metrics = section(sections, kSecMetrics);
    img.obs = section(sections, kSecObs);
    img.fault = section(sections, kSecFault);
    img.sched = section(sections, kSecSched);
    CkptAccess::applyEngine(sim, img, mode, fork_id);
}

std::string
saveFleet(const FleetSim &fleet)
{
    return CkptAccess::saveFleetImage(fleet);
}

void
restoreFleet(FleetSim &fleet, std::string_view image,
             RestoreMode mode, std::uint64_t fork_id)
{
    if (CkptAccess::fleetOpen(fleet))
        fatal("ckpt: restore into an open fleet run — finishRun() "
              "first (double restore?)");
    CkptAccess::restoreFleetImage(fleet, image, mode, fork_id);
}

void
writeCheckpointFile(const std::string &path, const std::string &image)
{
    if (!atomicWriteFile(path, image))
        fatal("ckpt: cannot write checkpoint '", path, "': ",
              std::strerror(errno));
}

std::string
readCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CkptError("checkpoint: cannot open '" + path + "': " +
                        std::strerror(errno));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        throw CkptError("checkpoint: read error on '" + path + "'");
    return std::move(buffer).str();
}

void
flushSinks(DenseServerSim &sim)
{
    CkptAccess::flush(sim);
}

void
flushSinks(FleetSim &fleet)
{
    CkptAccess::flushFleet(fleet);
}

} // namespace densim::ckpt
