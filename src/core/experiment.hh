/**
 * @file
 * Experiment harness: run (scheduler x workload x load) grids, in
 * parallel, and normalize against the CF baseline — the machinery
 * behind the Fig. 11/13/14/15 benches.
 */

#ifndef DENSIM_CORE_EXPERIMENT_HH
#define DENSIM_CORE_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/dense_server_sim.hh"
#include "core/metrics.hh"
#include "core/sim_config.hh"

namespace densim {

/** One cell of an experiment grid. */
struct RunSpec
{
    std::string scheduler;   //!< Policy name (factory.hh).
    SimConfig config;        //!< Full configuration (load, set, ...).
};

/** Result of one cell. */
struct RunResult
{
    RunSpec spec;
    SimMetrics metrics;
};

/** Run one cell synchronously. */
RunResult runOne(const RunSpec &spec);

/**
 * Run all cells, using up to @p threads worker threads (0 = hardware
 * concurrency). Results are returned in input order; execution order
 * is unspecified but each run is independently seeded and
 * deterministic, so the results are identical for every thread
 * count. An empty @p specs yields an empty result, and the first
 * exception thrown by a worker is rethrown here after the pool
 * drains (util/parallel.hh).
 *
 * Observability sinks are merge-safe: when more than one cell is run
 * and a spec sets obs.tracePath / obs.timelinePath, the path is
 * rewritten to a per-run name ("trace.json" -> "trace-run3.json",
 * obs::perRunPath) so concurrent cells never write the same file.
 */
std::vector<RunResult> runAll(const std::vector<RunSpec> &specs,
                              unsigned threads = 0);

/**
 * Outcome of one cell under the keep-going harness. Exactly one of
 * three states: skipped (resume manifest already had the digest),
 * ok (metrics valid), or failed (error holds the diagnostic).
 */
struct RunOutcome
{
    RunSpec spec;
    SimMetrics metrics;   //!< Valid only when ok and not skipped.
    std::string digest;   //!< runDigest(spec): resume identity.
    bool ok = false;
    bool skipped = false;
    std::string error;    //!< One-line diagnostic when !ok.
};

/** Knobs of runAllOutcomes. */
struct SweepOptions
{
    unsigned threads = 0;    //!< 0 = hardware concurrency.
    bool keepGoing = false;  //!< Capture failures; finish the rest.
    std::string summaryPath; //!< Sweep-summary JSON sink ("" = none).
    std::string resumePath;  //!< Append-as-completed digest manifest.
    /**
     * Optional cell-runner override: invoked instead of runOne() for
     * every non-skipped cell (after per-run sink rewriting).
     * Installed by checkpoint-aware sweeps (ckpt/run_driver.hh,
     * runCellCheckpointed) so an interrupted cell resumes mid-run
     * from its checkpoint instead of restarting; a std::function
     * here rather than a ckpt type keeps core free of an upward
     * dependency. Null = runOne().
     */
    std::function<SimMetrics(const RunSpec &)> cellRunner;
};

/**
 * Stable identity of a cell: FNV-1a 64 over the scheduler name and
 * the full serialized configuration (config_io saveConfig), as 16 hex
 * digits. Any knob that changes the simulation changes the digest, so
 * a resumed sweep re-runs exactly the cells whose meaning changed.
 */
std::string runDigest(const RunSpec &spec);

/**
 * runAll with per-cell fault containment. With keepGoing set, a cell
 * that throws (including fatal() diagnostics, which are converted to
 * exceptions for the workers' duration) is captured as a failed
 * RunOutcome and every other cell still runs; without it the first
 * failure propagates exactly like runAll. When resumePath names a
 * manifest, cells whose digest appears in it are skipped, and every
 * cell that completes is appended, so re-invoking after a crash picks
 * up where the sweep stopped (failed cells are re-attempted). When
 * summaryPath is set the sweepSummaryJson document is written there.
 */
std::vector<RunOutcome>
runAllOutcomes(const std::vector<RunSpec> &specs,
               const SweepOptions &options);

/**
 * The sweep-summary document: totals plus one entry per run with
 * scheduler, load, digest, status ("ok" / "skipped" / "failed") and
 * the error string for failed cells. Strict JSON (obs/json.hh).
 */
std::string sweepSummaryJson(const std::vector<RunOutcome> &outcomes);

/**
 * Build the full grid of @p schedulers x @p loads for one workload
 * set on a base configuration.
 */
std::vector<RunSpec> makeGrid(const std::vector<std::string> &schedulers,
                              WorkloadSet set,
                              const std::vector<double> &loads,
                              const SimConfig &base);

/**
 * Index results as map[scheduler][load] for normalization against a
 * baseline scheme.
 */
std::map<std::string, std::map<double, SimMetrics>>
indexResults(const std::vector<RunResult> &results);

} // namespace densim

#endif // DENSIM_CORE_EXPERIMENT_HH
