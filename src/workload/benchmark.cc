#include "workload/benchmark.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace densim {

const char *
workloadSetName(WorkloadSet set)
{
    switch (set) {
      case WorkloadSet::Computation:
        return "Computation";
      case WorkloadSet::Storage:
        return "Storage";
      case WorkloadSet::GeneralPurpose:
        return "GP";
    }
    panic("unknown workload set");
}

const std::vector<WorkloadSet> &
allWorkloadSets()
{
    static const std::vector<WorkloadSet> sets{
        WorkloadSet::Computation,
        WorkloadSet::GeneralPurpose,
        WorkloadSet::Storage,
    };
    return sets;
}

const std::vector<Benchmark> &
pcmarkCatalog()
{
    // 19 applications; per-set mean durations chosen so each set's
    // across-application CoV lands in the 0.25–0.33 band of Fig. 6b
    // and means are ms-scale per Fig. 6a. sigmaLn ~1.2–1.5 puts
    // per-job maxima about two orders of magnitude above the mean.
    static const std::vector<Benchmark> catalog{
        // Computation-intensive set (6 apps).
        {"video-transcode", WorkloadSet::Computation, 4.0, 1.40},
        {"image-manipulation", WorkloadSet::Computation, 4.8, 1.35},
        {"data-compression", WorkloadSet::Computation, 5.6, 1.40},
        {"encryption", WorkloadSet::Computation, 6.4, 1.30},
        {"physics-simulation", WorkloadSet::Computation, 7.8, 1.45},
        {"video-rendering", WorkloadSet::Computation, 9.0, 1.40},
        // Storage-intensive set (6 apps).
        {"app-loading", WorkloadSet::Storage, 6.0, 1.30},
        {"picture-import", WorkloadSet::Storage, 7.5, 1.35},
        {"video-editing-io", WorkloadSet::Storage, 8.5, 1.40},
        {"defender-scan", WorkloadSet::Storage, 10.0, 1.30},
        {"media-library", WorkloadSet::Storage, 12.0, 1.45},
        {"system-storage", WorkloadSet::Storage, 13.5, 1.40},
        // General-purpose set (7 apps).
        {"web-browsing", WorkloadSet::GeneralPurpose, 2.5, 1.30},
        {"word-processing", WorkloadSet::GeneralPurpose, 3.0, 1.25},
        {"spreadsheet", WorkloadSet::GeneralPurpose, 3.6, 1.35},
        {"photo-viewing", WorkloadSet::GeneralPurpose, 4.2, 1.30},
        {"email", WorkloadSet::GeneralPurpose, 4.9, 1.40},
        {"pdf-rendering", WorkloadSet::GeneralPurpose, 5.8, 1.35},
        {"light-scan", WorkloadSet::GeneralPurpose, 6.6, 1.40},
    };
    return catalog;
}

std::vector<std::size_t>
benchmarksInSet(WorkloadSet set)
{
    std::vector<std::size_t> indices;
    const auto &catalog = pcmarkCatalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        if (catalog[i].set == set)
            indices.push_back(i);
    }
    if (indices.empty())
        panic("no benchmarks in set ", workloadSetName(set));
    return indices;
}

double
setMeanDurationS(WorkloadSet set)
{
    RunningStats stats;
    for (std::size_t i : benchmarksInSet(set))
        stats.add(pcmarkCatalog()[i].meanDurationMs);
    return stats.mean() * 1e-3;
}

} // namespace densim
