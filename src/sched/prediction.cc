#include "sched/prediction.hh"

#include <algorithm>

#include "power/pstate.hh"
#include "workload/curves.hh"

namespace densim {

DvfsDecision
predictPlacement(const SchedContext &ctx, std::size_t socket,
                 WorkloadSet set)
{
    // The prediction horizon is one (millisecond-scale) job while the
    // ambient field moves with the 30 s socket time constant, so the
    // job's future temperature is Eq. (1) evaluated at the *current*
    // ambient — exactly the paper's "estimate an initial chip
    // temperature using equation 1" step. Leakage compensation is the
    // second pass inside chooseAtAmbient.
    const auto &table = ctx.pm->pstates();
    const std::size_t cap = (*ctx.boostCreditS)[socket] > 0.0
                                ? table.size() - 1
                                : table.highestSustainedIndex();
    return ctx.pm->chooseAtAmbientCapped(
        freqCurveFor(set), *ctx.leak, Celsius((*ctx.ambientC)[socket]),
        ctx.topo->sinkOf(socket), cap);
}

double
mhzPerCelsius(const SchedContext &ctx, WorkloadSet set,
              const HeatSink &sink)
{
    // Consecutive P-state feasibility edges in ambient space are
    // separated by dP * (R_int + R_ext); crossing one costs 200 MHz.
    const auto &table = ctx.pm->pstates();
    const auto &curve = freqCurveFor(set);
    const double p_span =
        curve.totalPowerAt90C.back() - curve.totalPowerAt90C.front();
    const double f_span =
        table.fastest().freqMhz - table.slowest().freqMhz;
    const double r_total =
        (ctx.pm->peakModel().rInt() + sink.rExt).value();
    return f_span / (p_span * r_total);
}

double
downstreamPenaltyMhz(const SchedContext &ctx, std::size_t socket,
                     Watts job_power)
{
    const double extra = job_power.value() - (*ctx.powerW)[socket];
    if (extra <= 0.0)
        return 0.0;

    double penalty = 0.0;
    for (std::size_t d : ctx.coupling->downstream(socket)) {
        if (!(*ctx.busy)[d])
            continue;
        // Table lookup (Sec. IV-C): the placement's extra heat will
        // raise the downstream socket's ambient by coeff * dP once
        // the field settles.
        const double dt = ctx.coupling->coeff(socket, d).value() * extra;
        const double amb_new = (*ctx.ambientC)[d] + dt;
        const auto &table = ctx.pm->pstates();
        const std::size_t cap = (*ctx.boostCreditS)[d] > 0.0
                                    ? table.size() - 1
                                    : table.highestSustainedIndex();
        const WorkloadSet set = (*ctx.runningSet)[d];
        const HeatSink &sink = ctx.topo->sinkOf(d);
        const DvfsDecision decision = ctx.pm->chooseAtAmbientCapped(
            freqCurveFor(set), *ctx.leak, Celsius(amb_new), sink, cap);
        const double discrete =
            std::max(0.0, (*ctx.freqMhz)[d] - decision.freqMhz);
        if (discrete > 0.0) {
            penalty += discrete;
        } else if (decision.freqMhz <
                   table.fastest().freqMhz - 1e-9) {
            // No edge crossed right now != no damage: once the
            // downstream socket is off the boost plateau, charge the
            // time-averaged expectation so upstream heat always has
            // a price. Sockets still boosting after the added heat
            // have genuine headroom and cost nothing.
            penalty += dt * mhzPerCelsius(ctx, set, sink);
        }
    }
    return penalty;
}

} // namespace densim
