file(REMOVE_RECURSE
  "CMakeFiles/densim_power.dir/leakage.cc.o"
  "CMakeFiles/densim_power.dir/leakage.cc.o.d"
  "CMakeFiles/densim_power.dir/power_manager.cc.o"
  "CMakeFiles/densim_power.dir/power_manager.cc.o.d"
  "CMakeFiles/densim_power.dir/pstate.cc.o"
  "CMakeFiles/densim_power.dir/pstate.cc.o.d"
  "libdensim_power.a"
  "libdensim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
