# Empty dependencies file for ablation_cp.
# This may be replaced when dependencies are built.
