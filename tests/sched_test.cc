/**
 * @file
 * Unit tests for the scheduling policies. A hand-built SchedContext
 * over the real SUT topology lets each policy's selection rule be
 * checked in isolation, without running the full simulator.
 */

#include <memory>

#include <gtest/gtest.h>

#include "power/leakage.hh"
#include "power/power_manager.hh"
#include "sched/coupling_predictor.hh"
#include "sched/factory.hh"
#include "sched/prediction.hh"
#include "server/sut.hh"
#include "thermal/simple_peak_model.hh"
#include "workload/curves.hh"

namespace densim {
namespace {

/** Fixture providing a fully populated context over the 180-socket SUT. */
class SchedFixture : public ::testing::Test
{
  protected:
    SchedFixture()
        : topo_(makeSutTopology()),
          coupling_(makeCouplingMap(topo_, defaultCouplingParams())),
          pm_(PStateTable::x2150(), SimplePeakModel(), Celsius(95.0),
              0.10),
          rng_(7)
    {
        const std::size_t n = topo_.numSockets();
        chip_.assign(n, 30.0);
        hist_.assign(n, 30.0);
        ambient_.assign(n, 25.0);
        credit_.assign(n, 2.0);
        power_.assign(n, 2.2);
        freq_.assign(n, 0.0);
        set_.assign(n, WorkloadSet::Computation);
        busy_.assign(n, false);
        allIdle();
    }

    /** Mark all sockets idle. */
    void
    allIdle()
    {
        idle_.clear();
        for (std::size_t s = 0; s < topo_.numSockets(); ++s) {
            if (!busy_[s])
                idle_.push_back(s);
        }
    }

    /** Mark a socket busy at a frequency. */
    void
    makeBusy(std::size_t s, double freq_mhz, double power_w)
    {
        busy_[s] = true;
        freq_[s] = freq_mhz;
        power_[s] = power_w;
        allIdle();
    }

    SchedContext
    context()
    {
        SchedContext ctx;
        ctx.topo = &topo_;
        ctx.coupling = &coupling_;
        ctx.pm = &pm_;
        ctx.leak = &LeakageModel::x2150();
        ctx.inletC = 18.0;
        ctx.idle = &idle_;
        ctx.nSockets = topo_.numSockets();
        ctx.chipTempC = chip_.data();
        ctx.histTempC = hist_.data();
        ctx.ambientC = ambient_.data();
        ctx.boostCreditS = credit_.data();
        ctx.powerW = power_.data();
        ctx.freqMhz = freq_.data();
        ctx.runningSet = set_.data();
        ctx.busy = busy_.data();
        ctx.rng = &rng_;
        return ctx;
    }

    Job
    job() const
    {
        Job j;
        j.id = 0;
        j.benchmark = 0;
        j.set = WorkloadSet::Computation;
        j.arrivalS = 0.0;
        j.nominalS = 5e-3;
        return j;
    }

    ServerTopology topo_;
    CouplingMap coupling_;
    PowerManager pm_;
    Rng rng_;
    std::vector<std::size_t> idle_;
    std::vector<double> chip_, hist_, ambient_, credit_, power_, freq_;
    std::vector<WorkloadSet> set_;
    std::vector<std::uint8_t> busy_;
};

TEST_F(SchedFixture, FactoryKnowsAllPaperNames)
{
    for (const std::string &name : allSchedulerNames()) {
        const auto policy = makeScheduler(name);
        EXPECT_EQ(policy->name(), name);
    }
    EXPECT_EQ(allSchedulerNames().size(), 10u);
    EXPECT_EQ(existingSchedulerNames().size(), 9u);
}

TEST_F(SchedFixture, FactoryRejectsUnknown)
{
    EXPECT_EXIT(makeScheduler("Clairvoyant"),
                ::testing::ExitedWithCode(1), "unknown scheduler");
}

TEST_F(SchedFixture, EveryPolicyPicksAnIdleSocket)
{
    for (const std::string &name : allSchedulerNames()) {
        auto policy = makeScheduler(name);
        // Make a scattered busy pattern.
        for (std::size_t s = 0; s < topo_.numSockets(); s += 7)
            makeBusy(s, 1500.0, 13.6);
        auto ctx = context();
        for (int trial = 0; trial < 20; ++trial) {
            const std::size_t pick = policy->pick(job(), ctx);
            EXPECT_FALSE(busy_[pick]) << name;
        }
    }
}

TEST_F(SchedFixture, CoolestFirstPicksColdest)
{
    chip_[42] = 19.0;
    auto policy = makeScheduler("CF");
    auto ctx = context();
    EXPECT_EQ(policy->pick(job(), ctx), 42u);
}

TEST_F(SchedFixture, HottestFirstPicksHottestIdle)
{
    chip_[17] = 80.0;
    chip_[18] = 85.0;
    makeBusy(18, 1900.0, 18.0); // hottest is busy -> not eligible
    auto policy = makeScheduler("HF");
    auto ctx = context();
    EXPECT_EQ(policy->pick(job(), ctx), 17u);
}

TEST_F(SchedFixture, RandomCoversManySockets)
{
    auto policy = makeScheduler("Random");
    auto ctx = context();
    std::vector<bool> seen(topo_.numSockets(), false);
    for (int i = 0; i < 2000; ++i)
        seen[policy->pick(job(), ctx)] = true;
    std::size_t covered = 0;
    for (bool b : seen)
        covered += b;
    EXPECT_GT(covered, topo_.numSockets() / 2);
}

TEST_F(SchedFixture, MinHrPrefersLastZone)
{
    auto policy = makeScheduler("MinHR");
    auto ctx = context();
    const std::size_t pick = policy->pick(job(), ctx);
    EXPECT_EQ(topo_.zoneIdOf(pick), 6);
}

TEST_F(SchedFixture, MinHrRotatesViaCoolestTieBreak)
{
    auto policy = makeScheduler("MinHR");
    // Warm one zone-6 socket; MinHR should pick a cooler zone-6 one.
    const auto zone6 = topo_.socketsInZone(6);
    chip_[zone6[0]] = 90.0;
    auto ctx = context();
    const std::size_t pick = policy->pick(job(), ctx);
    EXPECT_EQ(topo_.zoneIdOf(pick), 6);
    EXPECT_NE(pick, zone6[0]);
}

TEST_F(SchedFixture, BalancedLocationsPicksInletZone)
{
    auto policy = makeScheduler("Balanced-L");
    auto ctx = context();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(topo_.zoneIdOf(policy->pick(job(), ctx)), 1);
}

TEST_F(SchedFixture, BalancedRunsFromHotSpot)
{
    // Hottest point in row 0, zone 1; Balanced should place far away.
    chip_[0] = 94.0;
    auto policy = makeScheduler("Balanced");
    auto ctx = context();
    const std::size_t pick = policy->pick(job(), ctx);
    EXPECT_GE(topo_.rowOf(pick), 10);
    EXPECT_GE(topo_.zoneIdOf(pick), 4);
}

TEST_F(SchedFixture, CoolestNeighborsAvoidsHotNeighbourhood)
{
    // Two equally cool candidates; one has a hot same-cartridge
    // neighbour.
    for (std::size_t s = 0; s < topo_.numSockets(); ++s)
        chip_[s] = 50.0;
    chip_[10] = 20.0; // candidate A (row 0)
    const auto row5 = topo_.socketsInRow(5);
    chip_[row5[0]] = 20.0; // candidate B
    // Heat A's neighbour (same zone partner is id^1 within the pair).
    chip_[11] = 94.0;
    auto policy = makeScheduler("CN");
    auto ctx = context();
    EXPECT_EQ(policy->pick(job(), ctx), row5[0]);
}

TEST_F(SchedFixture, AdaptiveRandomWeedsOutHotHistory)
{
    // Sockets 0 and 1 equally cool now, but socket 0 has a hot
    // history: A-Random must pick 1.
    for (std::size_t s = 0; s < topo_.numSockets(); ++s) {
        chip_[s] = 60.0;
        hist_[s] = 60.0;
    }
    chip_[0] = 20.0;
    chip_[1] = 20.0;
    hist_[0] = 80.0;
    hist_[1] = 25.0;
    auto policy = makeScheduler("A-Random");
    auto ctx = context();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(policy->pick(job(), ctx), 1u);
}

TEST_F(SchedFixture, PredictivePicksFastestPredictedSocket)
{
    // Heat the ambient of every socket except one zone-2 socket: the
    // cool 30-fin location predicts the highest frequency.
    for (std::size_t s = 0; s < topo_.numSockets(); ++s)
        ambient_[s] = 70.0;
    const std::size_t target = topo_.socketsInZone(2)[4];
    ambient_[target] = 20.0;
    auto policy = makeScheduler("Predictive");
    auto ctx = context();
    EXPECT_EQ(policy->pick(job(), ctx), target);
}

TEST_F(SchedFixture, PredictiveTieBreaksByHeadroom)
{
    // All ambients equal: every socket predicts the same frequency,
    // so Predictive should prefer a 30-fin (even zone) socket, whose
    // predicted peak is lower.
    auto policy = makeScheduler("Predictive");
    auto ctx = context();
    const std::size_t pick = policy->pick(job(), ctx);
    EXPECT_TRUE(topo_.inEvenZone(pick));
}

TEST_F(SchedFixture, PredictionRespectsBoostCredit)
{
    auto ctx = context();
    const DvfsDecision with_credit =
        predictPlacement(ctx, 0, WorkloadSet::Computation);
    credit_[0] = 0.0;
    const DvfsDecision no_credit =
        predictPlacement(ctx, 0, WorkloadSet::Computation);
    EXPECT_GT(with_credit.freqMhz, no_credit.freqMhz);
    EXPECT_LE(no_credit.freqMhz, 1500.0);
}

TEST_F(SchedFixture, MhzPerCelsiusMatchesLadderGeometry)
{
    auto ctx = context();
    // Edges in ambient space are (P_hi - P_lo) * (R_int + R_ext)
    // apart per 200 MHz; the slope is their ratio.
    const double slope18 = mhzPerCelsius(
        ctx, WorkloadSet::Computation, HeatSink::fin18());
    EXPECT_NEAR(slope18, 800.0 / ((18.0 - 9.8) * (0.205 + 1.578)),
                1e-9);
    // The better sink packs the edges closer together in ambient
    // space, so each degree costs more MHz.
    const double slope30 = mhzPerCelsius(
        ctx, WorkloadSet::Computation, HeatSink::fin30());
    EXPECT_GT(slope30, slope18);
}

TEST_F(SchedFixture, DownstreamPenaltyIgnoresBoostPlateau)
{
    // A busy downstream socket with plenty of boost headroom costs
    // nothing to heat slightly.
    const auto row0 = topo_.socketsInRow(0);
    makeBusy(row0[10], 1900.0, 18.0);
    ambient_[row0[10]] = 20.0; // deep in the plateau
    auto ctx = context();
    EXPECT_DOUBLE_EQ(downstreamPenaltyMhz(ctx, row0[0], Watts(18.0)), 0.0);
}

TEST_F(SchedFixture, DownstreamPenaltyChargesOffPlateau)
{
    // Same socket without boost credit sits on the sustained ladder:
    // upstream heat now has a continuous expected price.
    const auto row0 = topo_.socketsInRow(0);
    makeBusy(row0[10], 1500.0, 13.6);
    ambient_[row0[10]] = 40.0;
    credit_[row0[10]] = 0.0;
    auto ctx = context();
    EXPECT_GT(downstreamPenaltyMhz(ctx, row0[0], Watts(18.0)), 0.0);
}

TEST_F(SchedFixture, DownstreamPenaltyZeroWhenBackIdle)
{
    auto ctx = context();
    EXPECT_DOUBLE_EQ(downstreamPenaltyMhz(ctx, 0, Watts(18.0)), 0.0);
}

TEST_F(SchedFixture, DownstreamPenaltyAppearsNearThrottlePoint)
{
    // A busy downstream socket sitting just below a P-state edge is
    // pushed over it by upstream heat.
    const auto row0 = topo_.socketsInRow(0);
    const std::size_t down = row0[10]; // zone 6
    makeBusy(down, 1500.0, 13.6);
    // Find the ambient where 1500 MHz is right at the edge.
    const double amb_edge =
        SimplePeakModel()
            .maxAmbient(Celsius(95.0), Watts(13.6),
                        topo_.sinkOf(down))
            .value();
    ambient_[down] = amb_edge - 0.1;
    auto ctx = context();
    const double penalty = downstreamPenaltyMhz(ctx, row0[0], Watts(18.0));
    EXPECT_GE(penalty, 200.0);
}

TEST_F(SchedFixture, DownstreamPenaltyNeverNegative)
{
    const auto row0 = topo_.socketsInRow(0);
    makeBusy(row0[6], 1100.0, 9.8);
    ambient_[row0[6]] = 94.0; // already at the floor
    auto ctx = context();
    EXPECT_GE(downstreamPenaltyMhz(ctx, row0[0], Watts(18.0)), 0.0);
}

TEST_F(SchedFixture, CouplingPredictorAvoidsHarmfulPlacement)
{
    // Row 0: a busy zone-6 socket at a thermal edge. CP must prefer a
    // downstream / harmless placement over the front socket that
    // would throttle it, when both predict the same own frequency.
    const auto row0 = topo_.socketsInRow(0);
    const std::size_t down = row0[10];
    makeBusy(down, 1500.0, 13.6);
    ambient_[down] =
        SimplePeakModel()
            .maxAmbient(Celsius(95.0), Watts(13.6),
                        topo_.sinkOf(down))
            .value() -
        0.1;
    // Make every socket ambient cool enough that own-frequency
    // predictions tie at the cap; disable boost so sinks tie too.
    for (std::size_t s = 0; s < topo_.numSockets(); ++s)
        credit_[s] = 0.0;

    CouplingPredictor cp;
    // Restrict the decision to row 0 by marking all other rows busy.
    for (std::size_t s = 12; s < topo_.numSockets(); ++s)
        busy_[s] = true;
    allIdle();
    auto ctx = context();
    for (int i = 0; i < 10; ++i) {
        const std::size_t pick = cp.pick(job(), ctx);
        // Upstream-of-down sockets (zones 1..5 of row 0) would slow
        // the busy socket; the harmless choice is its zone-6 partner.
        EXPECT_EQ(topo_.zoneIdOf(pick), 6);
    }
}

TEST_F(SchedFixture, CouplingPredictorWithZeroWeightIgnoresDownstream)
{
    const auto row0 = topo_.socketsInRow(0);
    makeBusy(row0[10], 1500.0, 13.6);
    ambient_[row0[10]] = 90.0;
    CouplingPredictor plain(0.0, true);
    CouplingPredictor full(1.0, true);
    auto ctx = context();
    // Both must still pick idle sockets; the zero-weight variant
    // behaves like Predictive (no panic, valid choice).
    const std::size_t a = plain.pick(job(), ctx);
    const std::size_t b = full.pick(job(), ctx);
    EXPECT_FALSE(busy_[a]);
    EXPECT_FALSE(busy_[b]);
}

TEST_F(SchedFixture, CouplingPredictorStaysInOneRow)
{
    // With idle sockets in exactly one row, CP must pick there.
    for (std::size_t s = 0; s < topo_.numSockets(); ++s)
        busy_[s] = topo_.rowOf(s) != 7;
    allIdle();
    CouplingPredictor cp;
    auto ctx = context();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(topo_.rowOf(cp.pick(job(), ctx)), 7);
}

TEST_F(SchedFixture, PickHelpersTieBreakDeterministically)
{
    auto ctx = context();
    std::vector<double> key(topo_.numSockets(), 1.0);
    key[99] = 0.5;
    EXPECT_EQ(pickMinBy(ctx, key.data(), 1e-9, false), 99u);
    key[99] = 2.0;
    EXPECT_EQ(pickMaxBy(ctx, key.data(), 1e-9, false), 99u);
}

TEST_F(SchedFixture, PickHelperRandomTieBreakSpreads)
{
    auto ctx = context();
    const std::vector<double> key(topo_.numSockets(), 1.0);
    std::vector<bool> seen(topo_.numSockets(), false);
    for (int i = 0; i < 1000; ++i)
        seen[pickMinBy(ctx, key.data(), 1e-9, true)] = true;
    std::size_t covered = 0;
    for (bool b : seen)
        covered += b;
    EXPECT_GT(covered, 100u);
}

} // namespace
} // namespace densim
