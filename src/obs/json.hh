/**
 * @file
 * Minimal strict-JSON emission and validation helpers for the
 * observability layer.
 *
 * densim's exporters (metrics_io, the trace sink, the timeline
 * stream) hand-roll their JSON for zero dependencies, which
 * historically produced *invalid* documents: IEEE-754 non-finite
 * values streamed as bare `nan`/`inf`, which no JSON parser accepts.
 * Every number densim emits now goes through appendNumber(), which
 * maps non-finite values to `null` (the convention Chrome's
 * trace_event importer and pandas' read_json both accept), and every
 * string through appendString(), which applies RFC 8259 escaping.
 *
 * validate() is a strict recursive-descent RFC 8259 parser used by
 * the test suite and the `densim obs` smoke checks so "it parses in
 * python" is asserted in-process too, not only in CI.
 */

#ifndef DENSIM_OBS_JSON_HH
#define DENSIM_OBS_JSON_HH

#include <string>
#include <string_view>

namespace densim::obs::json {

/**
 * Append @p v to @p out as a strict-JSON number with round-trip
 * precision (%.10g, matching densim's historical exporters); NaN and
 * +/-infinity become `null`.
 */
void appendNumber(std::string &out, double v);

/** Append @p s to @p out as a quoted, RFC 8259-escaped string. */
void appendString(std::string &out, std::string_view s);

/**
 * Strictly parse @p text as exactly one JSON document (RFC 8259: no
 * trailing garbage, no bare NaN/inf, no trailing commas, no
 * single-quoted strings). Returns true iff valid; on failure @p error
 * (if non-null) receives a one-line description with a byte offset.
 */
bool validate(std::string_view text, std::string *error = nullptr);

/**
 * Validate a JSON-lines stream: every non-empty line must be a valid
 * document. Returns the number of valid lines, or -1 on the first
 * invalid line (with @p error set as in validate()).
 */
long validateLines(std::string_view text, std::string *error = nullptr);

} // namespace densim::obs::json

#endif // DENSIM_OBS_JSON_HH
