/**
 * @file
 * Power and performance versus frequency per benchmark set — the
 * hardware characterization of Fig. 7.
 *
 * Power is total socket power measured at the 90 C characterization
 * temperature (leakage included: 30 % of the 22 W TDP). Performance
 * is job throughput relative to the 1900 MHz maximum. The paper's
 * headline facts are encoded here: Computation draws the most power
 * (18 W at 1900 MHz) and loses ~35 % performance over an 800 MHz
 * drop; Storage draws the least (10.5 W) and is nearly frequency
 * insensitive; GP sits between, with frequency sensitivity close to
 * Computation's at lower power.
 */

#ifndef DENSIM_WORKLOAD_CURVES_HH
#define DENSIM_WORKLOAD_CURVES_HH

#include "power/power_manager.hh"
#include "workload/benchmark.hh"

namespace densim {

/**
 * FreqCurve for @p set, indexed against PStateTable::x2150()
 * (1100/1300/1500/1700/1900 MHz).
 */
const FreqCurve &freqCurveFor(WorkloadSet set);

/** Socket power of @p set at the fastest state (90 C). */
double peakPowerW(WorkloadSet set);

/**
 * Relative performance of @p set at @p freq_mhz (linear interpolation
 * between table frequencies; the Fig. 7b series).
 */
double perfAtFreq(WorkloadSet set, double freq_mhz);

} // namespace densim

#endif // DENSIM_WORKLOAD_CURVES_HH
