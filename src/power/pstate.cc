#include "power/pstate.hh"

#include <cmath>

#include "util/logging.hh"

namespace densim {

PStateTable::PStateTable(std::vector<PState> table_states)
    : states_(std::move(table_states))
{
    if (states_.empty())
        fatal("PStateTable: no states");
    for (std::size_t i = 1; i < states_.size(); ++i) {
        if (states_[i].freqMhz <= states_[i - 1].freqMhz)
            fatal("PStateTable: frequencies must be strictly "
                  "ascending (",
                  states_[i - 1].freqMhz, " then ", states_[i].freqMhz,
                  ")");
        if (states_[i - 1].boost && !states_[i].boost)
            fatal("PStateTable: boost states must be the fastest "
                  "states");
    }
}

const PStateTable &
PStateTable::x2150()
{
    static const PStateTable table(std::vector<PState>{
        {1100.0, false},
        {1300.0, false},
        {1500.0, false},
        {1700.0, true},
        {1900.0, true},
    });
    return table;
}

const PState &
PStateTable::at(std::size_t i) const
{
    if (i >= states_.size())
        panic("PStateTable: index ", i, " out of range (",
              states_.size(), ")");
    return states_[i];
}

std::size_t
PStateTable::highestSustainedIndex() const
{
    std::size_t best = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (!states_[i].boost)
            best = i;
    }
    if (states_[best].boost)
        fatal("PStateTable: all states are boost states");
    return best;
}

std::size_t
PStateTable::indexOf(double freq_mhz) const
{
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (std::fabs(states_[i].freqMhz - freq_mhz) < 1e-9)
            return i;
    }
    fatal("PStateTable: no state at ", freq_mhz, " MHz");
}

double
PStateTable::relativeFreq(std::size_t i) const
{
    return at(i).freqMhz / fastest().freqMhz;
}

} // namespace densim
