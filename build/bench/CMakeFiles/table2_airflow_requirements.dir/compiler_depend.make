# Empty compiler generated dependencies file for table2_airflow_requirements.
# This may be replaced when dependencies are built.
