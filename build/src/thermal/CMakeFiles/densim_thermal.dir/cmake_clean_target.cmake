file(REMOVE_RECURSE
  "libdensim_thermal.a"
)
