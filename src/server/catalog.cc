#include "server/catalog.hh"

#include <algorithm>

namespace densim {

const std::vector<SystemRecord> &
densityOptimizedSystems()
{
    // Table I of the paper, verbatim.
    static const std::vector<SystemRecord> systems{
        {"QCT/Facebook", "Rackgo X", "Open compute server",
         "General purpose", 2, "2 tray x 3 blade x 2 socket", 12, 45.0,
         "Intel Xeon D-1500", 1},
        {"AMD", "AMD SeaMicro", "SM15000e-OP", "Scale-out applications",
         10, "4 row x 16 card x 1 socket", 64, 140.0,
         "AMD Opteron 6300", 1},
        {"Cisco", "UCS M4308", "M2814", "Scale-out applications", 2,
         "2 row x 2 card x 2 socket", 8, 120.0, "Intel Xeon E5", 1},
        {"HP Enterprise", "Moonshot", "ProLiant M710P",
         "Big data analytics", 4, "15 row x 3 cartridge x 1 socket",
         45, 69.0, "Intel Xeon E3", 2},
        {"Dell", "Copper", "Prototype system", "Scale-out applications",
         3, "12 sled x 4 socket", 48, 15.0, "32-bit ARM", 3},
        {"Mitac", "Datun project", "Prototype system",
         "Scale-out applications", 1, "2 row x 4 socket", 8, 50.0,
         "Applied Micro X-Gene", 3},
        {"Seamicro", "SeaMicro", "SM15000-64", "Scale-out applications",
         10, "4 row x 16 card x 4 socket", 256, 8.5,
         "Intel Atom N570", 3},
        {"HP Enterprise", "Moonshot", "ProLiant M350", "Web hosting", 4,
         "15 row x 3 cartridge x 4 socket", 180, 20.0,
         "Intel Atom C2750", 5},
        {"HP Enterprise", "Moonshot", "ProLiant M700",
         "Virtual desktop (VDI)", 4,
         "15 row x 3 cartridge x 4 socket", 180, 22.0,
         "AMD Opteron X2150", 5},
        {"HP Enterprise", "Moonshot", "ProLiant M800",
         "Digital signal processing", 4,
         "15 row x 3 cartridge x 4 socket", 180, 14.0,
         "TI Keystone II", 5},
        {"HP", "Redstone", "Development server",
         "Scale-out applications", 4,
         "4 tray x 6 row x 3 cartridge x 4 socket", 288, 5.0,
         "Calxeda EnergyCore", 11},
    };
    return systems;
}

int
maxCatalogCoupling()
{
    const auto &systems = densityOptimizedSystems();
    return std::max_element(systems.begin(), systems.end(),
                            [](const SystemRecord &a,
                               const SystemRecord &b) {
                                return a.degreeOfCoupling <
                                       b.degreeOfCoupling;
                            })
        ->degreeOfCoupling;
}

} // namespace densim
