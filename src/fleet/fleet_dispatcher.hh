/**
 * @file
 * Cluster-level job routing across chassis shards (DESIGN.md
 * Sec. 15.2).
 *
 * At every exchange-window barrier FleetSim gathers one ShardSummary
 * per shard — thermal headroom, backlog, idle capacity, power draw —
 * and the dispatcher routes each job arriving in the next window to a
 * shard using only those summaries. Dispatchers select by summary
 * *fields keyed on shard id*, never by position in the summary
 * vector, so any permutation of the same summaries yields the same
 * routing (pinned by tests/fleet_test.cc); that is what makes the
 * fleet invariant to shard evaluation order.
 *
 * Policies:
 *  - "roundrobin": shard (k mod N) for the k-th dispatched job; the
 *    locality-free baseline.
 *  - "headroom": the shard with the most thermal headroom among
 *    those with an idle socket (least backlog when none is idle) —
 *    the paper's observation that inlet-coupled chassis should
 *    absorb work where the thermal field is coolest.
 *  - "locality": sticky — keep the previous shard while it has an
 *    idle socket, else fall over to the headroom rule. Models
 *    rack-locality-preserving placement.
 *  - "power": the shard drawing the least power; with a fleet power
 *    budget, shards at or above their fair share (budget / N) are
 *    passed over while any shard remains below it.
 */

#ifndef DENSIM_FLEET_FLEET_DISPATCHER_HH
#define DENSIM_FLEET_FLEET_DISPATCHER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/fleet_config.hh"
#include "workload/job_generator.hh"

namespace densim {

/**
 * One shard's state as seen at an exchange-window barrier. All
 * fields are snapshots from the *previous* window's end — the
 * dispatcher never peeks inside a shard mid-window.
 */
struct ShardSummary
{
    std::size_t shard = 0;           //!< Shard id (stable, 0-based).
    double headroomC = 0.0;          //!< tLimit minus hottest chip.
    double powerW = 0.0;             //!< Total socket power draw.
    std::size_t backlog = 0;         //!< Queued + running jobs.
    std::size_t idleSockets = 0;     //!< Sockets ready for work.
    std::uint64_t jobsCompleted = 0; //!< Completions so far.
};

/** Routing policy interface; see file comment for the contract. */
class FleetDispatcher
{
  public:
    virtual ~FleetDispatcher() = default;

    /** Policy name, as accepted by FleetConfig::dispatcher. */
    virtual const char *name() const = 0;

    /**
     * Route @p job to a shard. @p summaries holds one entry per
     * shard, in unspecified order; implementations must return the
     * same shard id for any permutation of the same entries.
     */
    virtual std::size_t pick(const Job &job,
                             const std::vector<ShardSummary>
                                 &summaries) = 0;

    /**
     * Mutable routing cursor, for checkpoint/restore. Stateful
     * policies (roundrobin's next index, locality's sticky shard)
     * expose their single word of state here; stateless ones keep
     * the defaults. A restored dispatcher with its cursor reloaded
     * must route exactly like the uninterrupted one — this is part
     * of the fleet bit-identity contract (DESIGN.md Sec. 16).
     */
    virtual std::uint64_t cursor() const { return 0; }

    /** Reload a cursor captured by cursor(). */
    virtual void setCursor(std::uint64_t) {}
};

/** Construct the dispatcher named by @p config (validated). */
std::unique_ptr<FleetDispatcher>
makeFleetDispatcher(const FleetConfig &config);

} // namespace densim

#endif // DENSIM_FLEET_FLEET_DISPATCHER_HH
