/**
 * @file
 * Tests for the simulation engine: conservation invariants (every
 * arriving job completes), determinism, trace replay, metric sanity,
 * thermal-limit enforcement, warm start, boost-dwell behaviour, and
 * the event-driven/1 µs-polling equivalence.
 */

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/experiment.hh"
#include "sched/factory.hh"
#include "workload/xperf_trace.hh"

namespace densim {
namespace {

/** A small, fast configuration used by most engine tests. */
SimConfig
smallConfig()
{
    SimConfig config;
    config.topo.rows = 3; // 36 sockets
    config.simTimeS = 2.0;
    config.warmupS = 0.5;
    config.socketTauS = 0.5;
    config.seed = 42;
    return config;
}

TEST(Engine, AllArrivedJobsComplete)
{
    SimConfig config = smallConfig();
    config.load = 0.5;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    EXPECT_GT(m.jobsArrived, 1000u);
    EXPECT_EQ(m.jobsUnfinished, 0u);
}

TEST(Engine, DeterministicAcrossRuns)
{
    for (const char *name : {"CF", "Random", "CP"}) {
        SimConfig config = smallConfig();
        DenseServerSim a(config, makeScheduler(name));
        DenseServerSim b(config, makeScheduler(name));
        const SimMetrics ma = a.run();
        const SimMetrics mb = b.run();
        EXPECT_DOUBLE_EQ(ma.runtimeExpansion.mean(),
                         mb.runtimeExpansion.mean())
            << name;
        EXPECT_DOUBLE_EQ(ma.energyJ, mb.energyJ) << name;
        EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted) << name;
    }
}

TEST(Engine, RerunOnSameInstanceMatches)
{
    SimConfig config = smallConfig();
    DenseServerSim sim(config, makeScheduler("Predictive"));
    const SimMetrics first = sim.run();
    const SimMetrics second = sim.run();
    EXPECT_DOUBLE_EQ(first.runtimeExpansion.mean(),
                     second.runtimeExpansion.mean());
}

TEST(Engine, DifferentSeedsDiffer)
{
    SimConfig a = smallConfig();
    SimConfig b = smallConfig();
    b.seed = 43;
    DenseServerSim sa(a, makeScheduler("CF"));
    DenseServerSim sb(b, makeScheduler("CF"));
    EXPECT_NE(sa.run().runtimeExpansion.mean(),
              sb.run().runtimeExpansion.mean());
}

TEST(Engine, TraceReplayMatchesGeneratedRun)
{
    // Capturing the generator's jobs into a trace and replaying them
    // must give identical results to the internal generation path.
    SimConfig config = smallConfig();
    JobGenerator gen(config.workload, config.load,
                     static_cast<int>(36), config.seed);
    const std::vector<Job> jobs = gen.generateUntil(config.simTimeS);

    DenseServerSim internal(config, makeScheduler("CF"));
    DenseServerSim replay(config, makeScheduler("CF"));
    const SimMetrics a = internal.run();
    const SimMetrics b = replay.run(jobs);
    EXPECT_DOUBLE_EQ(a.runtimeExpansion.mean(),
                     b.runtimeExpansion.mean());
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
}

TEST(Engine, RuntimeExpansionAtLeastServiceFloor)
{
    // Runtime expansion includes queueing, service expansion does
    // not; and boosted jobs can finish faster than nominal (<1).
    SimConfig config = smallConfig();
    config.load = 0.6;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    EXPECT_GE(m.runtimeExpansion.mean(),
              m.serviceExpansion.mean() - 1e-9);
    EXPECT_GT(m.serviceExpansion.mean(), 0.5);
    EXPECT_LT(m.serviceExpansion.mean(), 2.0);
}

TEST(Engine, ChipTemperatureRespectsLimitWhenFeasible)
{
    SimConfig config = smallConfig();
    config.load = 0.4;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    // At modest load nothing should be pinned at an infeasible floor.
    EXPECT_LE(m.maxChipTempC, config.tLimitC + 1.0);
    EXPECT_GT(m.chipTempC.mean(), config.topo.inletC);
}

TEST(Engine, EnergyScalesWithLoad)
{
    SimConfig lo = smallConfig();
    lo.load = 0.2;
    SimConfig hi = smallConfig();
    hi.load = 0.8;
    DenseServerSim a(lo, makeScheduler("CF"));
    DenseServerSim b(hi, makeScheduler("CF"));
    EXPECT_LT(a.run().energyJ, b.run().energyJ);
}

TEST(Engine, IdleServerBurnsGatedPowerOnly)
{
    // With a tiny load, energy approaches gated power * sockets *
    // time.
    SimConfig config = smallConfig();
    config.load = 0.01;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    const double gated_floor = 0.10 * 22.0 * 36 * m.measuredS;
    EXPECT_GE(m.energyJ, gated_floor * 0.99);
    EXPECT_LE(m.energyJ, gated_floor * 1.30);
}

TEST(Engine, FanPowerAddsConstantEnergy)
{
    SimConfig plain = smallConfig();
    SimConfig cooled = smallConfig();
    cooled.fanPowerW = 100.0;
    DenseServerSim a(plain, makeScheduler("CF"));
    DenseServerSim b(cooled, makeScheduler("CF"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    // Same placement stream, so the delta is exactly fan * time.
    EXPECT_NEAR(mb.energyJ - ma.energyJ, 100.0 * ma.measuredS, 1e-6);
    EXPECT_DOUBLE_EQ(ma.runtimeExpansion.mean(),
                     mb.runtimeExpansion.mean());
}

TEST(Engine, WorkFractionsSumToOne)
{
    SimConfig config = smallConfig();
    config.load = 0.5;
    DenseServerSim sim(config, makeScheduler("Random"));
    const SimMetrics m = sim.run();
    EXPECT_NEAR(m.workFraction(m.front) + m.workFraction(m.back), 1.0,
                1e-9);
    EXPECT_GT(m.workFraction(m.even), 0.2);
    EXPECT_LT(m.workFraction(m.even), 0.8);
}

TEST(Engine, RegionFreqTimesConsistent)
{
    SimConfig config = smallConfig();
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    EXPECT_NEAR(m.front.busyTimeS + m.back.busyTimeS, m.totalBusyTime,
                1e-6);
    EXPECT_LE(m.avgRelFreq(), 1.0 + 1e-9);
    EXPECT_GE(m.avgRelFreq(), 1100.0 / 1900.0 - 1e-9);
}

TEST(Engine, SchedulerDecisionsMatchArrivals)
{
    SimConfig config = smallConfig();
    config.load = 0.3;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    // Every arrived job needs exactly one placement decision (no
    // sockets are ever stolen).
    EXPECT_EQ(sim.decisions(), m.jobsArrived);
}

TEST(Engine, WarmStartShortensTransient)
{
    // Cold- and warm-started runs converge to the same behaviour;
    // the warm start must not distort job accounting.
    SimConfig warm = smallConfig();
    warm.warmStart = true;
    SimConfig cold = smallConfig();
    cold.warmStart = false;
    DenseServerSim a(warm, makeScheduler("CF"));
    DenseServerSim b(cold, makeScheduler("CF"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    EXPECT_EQ(ma.jobsUnfinished, 0u);
    EXPECT_EQ(mb.jobsUnfinished, 0u);
}

TEST(Engine, BoostDwellLimitsSustainedBoost)
{
    // With zero refill, boost can only be used for the initial burst.
    SimConfig burst = smallConfig();
    burst.load = 0.9;
    burst.boostRefillRate = 0.0;
    burst.boostBurstS = 0.05;
    DenseServerSim a(burst, makeScheduler("CF"));
    const double frac_limited = a.run().boostFraction();

    SimConfig free = smallConfig();
    free.load = 0.9;
    free.boostRefillRate = 1e6; // effectively unlimited
    DenseServerSim b(free, makeScheduler("CF"));
    const double frac_free = b.run().boostFraction();
    EXPECT_LT(frac_limited, 0.2);
    EXPECT_GT(frac_free, frac_limited + 0.2);
}

TEST(Engine, StorageCoolerThanComputation)
{
    SimConfig comp = smallConfig();
    comp.workload = WorkloadSet::Computation;
    comp.load = 0.8;
    SimConfig storage = comp;
    storage.workload = WorkloadSet::Storage;
    DenseServerSim a(comp, makeScheduler("CF"));
    DenseServerSim b(storage, makeScheduler("CF"));
    EXPECT_GT(a.run().chipTempC.mean(), b.run().chipTempC.mean());
}

TEST(Engine, FinerPollingChangesNothing)
{
    // The engine schedules at event boundaries, equivalent to the
    // paper's 1 us polling. Shrinking the power-management epoch
    // (the only quantized decision) must not change completions.
    SimConfig coarse = smallConfig();
    coarse.simTimeS = 0.5;
    coarse.warmupS = 0.1;
    SimConfig fine = coarse;
    fine.pmEpochS = 0.25e-3;
    DenseServerSim a(coarse, makeScheduler("CF"));
    DenseServerSim b(fine, makeScheduler("CF"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    // Quantized DVFS differs slightly; completions and mean expansion
    // must agree closely.
    EXPECT_NEAR(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean(),
                0.02);
}

TEST(Engine, UnsortedTraceIsFatal)
{
    SimConfig config = smallConfig();
    DenseServerSim sim(config, makeScheduler("CF"));
    Job a{0, 0, WorkloadSet::Computation, 1.0, 1e-3};
    Job b{1, 0, WorkloadSet::Computation, 0.5, 1e-3};
    EXPECT_EXIT(sim.run(std::vector<Job>{a, b}),
                ::testing::ExitedWithCode(1), "sorted");
}

TEST(Engine, MissingPolicyIsFatal)
{
    EXPECT_EXIT(DenseServerSim(smallConfig(), nullptr),
                ::testing::ExitedWithCode(1), "policy");
}

TEST(Engine, InvalidConfigIsFatal)
{
    SimConfig config = smallConfig();
    config.load = 2.0;
    EXPECT_EXIT(DenseServerSim(config, makeScheduler("CF")),
                ::testing::ExitedWithCode(1), "load");
}

TEST(Engine, MigrationOffByDefault)
{
    SimConfig config = smallConfig();
    config.load = 0.8;
    DenseServerSim sim(config, makeScheduler("CP"));
    EXPECT_EQ(sim.run().migrations, 0u);
}

TEST(Engine, MigrationMovesThrottledLongJobs)
{
    // Hot, heavily loaded server: the duration tail produces jobs
    // long enough to be worth moving once their socket throttles.
    SimConfig config = smallConfig();
    config.load = 0.9;
    config.simTimeS = 3.0;
    config.warmupS = 0.5;
    config.migrationEnabled = true;
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m = sim.run();
    EXPECT_GT(m.migrations, 0u);
    EXPECT_EQ(m.jobsUnfinished, 0u);
}

TEST(Engine, MigrationIsDeterministic)
{
    SimConfig config = smallConfig();
    config.load = 0.9;
    config.migrationEnabled = true;
    DenseServerSim a(config, makeScheduler("CP"));
    DenseServerSim b(config, makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.migrations, mb.migrations);
    EXPECT_DOUBLE_EQ(ma.runtimeExpansion.mean(),
                     mb.runtimeExpansion.mean());
}

TEST(Engine, MigrationRespectsMinRemaining)
{
    // With an impossibly large min-remaining threshold nothing ever
    // qualifies.
    SimConfig config = smallConfig();
    config.load = 0.9;
    config.migrationEnabled = true;
    config.migrationMinRemainingS = 1e9;
    DenseServerSim sim(config, makeScheduler("CP"));
    EXPECT_EQ(sim.run().migrations, 0u);
}

TEST(Engine, TimelineSamplingShape)
{
    SimConfig config = smallConfig();
    config.timelineSampleS = 0.25;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    ASSERT_GE(m.timelineS.size(), 8u);
    ASSERT_EQ(m.timelineS.size(), m.zoneAmbientC.size());
    for (const auto &row : m.zoneAmbientC) {
        ASSERT_EQ(row.size(), 6u);
        // The staircase: zone k+1 is never cooler than zone k by
        // more than local-power noise.
        for (double t : row)
            EXPECT_GE(t, config.topo.inletC - 1e-9);
    }
    // Samples are evenly spaced up to the 1 ms epoch quantization.
    for (std::size_t i = 1; i < m.timelineS.size(); ++i)
        EXPECT_NEAR(m.timelineS[i] - m.timelineS[i - 1], 0.25, 2e-3);
}

TEST(Engine, TimelineOffByDefault)
{
    SimConfig config = smallConfig();
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    EXPECT_TRUE(m.timelineS.empty());
    EXPECT_TRUE(m.zoneAmbientC.empty());
}

TEST(Engine, IdealSensorsMatchOracle)
{
    // With sensing ideal (defaults), enabling quantization of 0 or
    // noise of 0 must not change anything.
    SimConfig a = smallConfig();
    SimConfig b = smallConfig();
    b.sensorNoiseC = 0.0;
    b.sensorQuantC = 0.0;
    DenseServerSim sa(a, makeScheduler("CF"));
    DenseServerSim sb(b, makeScheduler("CF"));
    EXPECT_DOUBLE_EQ(sa.run().runtimeExpansion.mean(),
                     sb.run().runtimeExpansion.mean());
}

TEST(Engine, SensorNoisePerturbsButCompletes)
{
    SimConfig noisy = smallConfig();
    noisy.load = 0.7;
    noisy.sensorNoiseC = 2.0;
    noisy.sensorQuantC = 1.0;
    SimConfig clean = smallConfig();
    clean.load = 0.7;
    DenseServerSim a(noisy, makeScheduler("CF"));
    DenseServerSim b(clean, makeScheduler("CF"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.jobsUnfinished, 0u);
    // CF's choices depend on the sensed field, so the runs diverge.
    EXPECT_NE(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean());
    // But not catastrophically: thermal behaviour is governed by the
    // (oracle) power manager either way.
    EXPECT_NEAR(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean(),
                0.15);
}

TEST(Engine, SensorNoiseIsDeterministic)
{
    SimConfig config = smallConfig();
    config.sensorNoiseC = 1.5;
    DenseServerSim a(config, makeScheduler("A-Random"));
    DenseServerSim b(config, makeScheduler("A-Random"));
    EXPECT_DOUBLE_EQ(a.run().runtimeExpansion.mean(),
                     b.run().runtimeExpansion.mean());
}

TEST(Metrics, Ed2Definition)
{
    SimMetrics m;
    m.energyJ = 100.0;
    m.runtimeExpansion.add(2.0);
    EXPECT_DOUBLE_EQ(m.ed2(), 400.0);
}

TEST(Metrics, RelativePerformanceInverts)
{
    SimMetrics fast, slow;
    fast.runtimeExpansion.add(1.0);
    slow.runtimeExpansion.add(1.25);
    EXPECT_DOUBLE_EQ(relativePerformance(fast, slow), 1.25);
    EXPECT_DOUBLE_EQ(relativePerformance(slow, fast), 0.8);
}

TEST(Experiment, GridBuildsAllCells)
{
    SimConfig base = smallConfig();
    const auto specs = makeGrid({"CF", "HF"}, WorkloadSet::Storage,
                                {0.2, 0.5}, base);
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].scheduler, "CF");
    EXPECT_EQ(specs[0].config.workload, WorkloadSet::Storage);
}

TEST(Experiment, ParallelMatchesSerial)
{
    SimConfig base = smallConfig();
    base.simTimeS = 1.0;
    base.warmupS = 0.2;
    const auto specs =
        makeGrid({"CF", "Random"}, WorkloadSet::Computation,
                 {0.3, 0.6}, base);
    const auto serial = runAll(specs, 1);
    const auto parallel = runAll(specs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i].metrics.runtimeExpansion.mean(),
                         parallel[i].metrics.runtimeExpansion.mean());
    }
}

TEST(Experiment, IndexResultsRoundTrip)
{
    SimConfig base = smallConfig();
    base.simTimeS = 1.0;
    base.warmupS = 0.2;
    const auto specs = makeGrid({"CF"}, WorkloadSet::Computation,
                                {0.3}, base);
    const auto results = runAll(specs);
    auto index = indexResults(results);
    EXPECT_EQ(index["CF"][0.3].jobsCompleted,
              results[0].metrics.jobsCompleted);
}

} // namespace
} // namespace densim
