/**
 * @file
 * Calibration sweep tool for the coupling-model parameters
 * (kappaLocal, wakeFactor).
 *
 * Runs the scheduler suite at low and high load for a given parameter
 * pair and prints performance relative to CF, so the operating point
 * can be matched against the paper's qualitative targets:
 *
 *   @30% load:  Predictive >= CF, HF and MinHR several % worse
 *   @70% load:  HF and MinHR better than CF, Predictive ~ CF
 *   CP at or near the best scheme at every load
 *
 * Usage: calibrate <kappa> <wake> <decayInch> <boostRefill> [load ...]
 */

#include <cstdlib>
#include <iostream>

#include "core/experiment.hh"
#include "util/table.hh"

using namespace densim;

int
main(int argc, char **argv)
{
    const double kappa = argc > 1 ? std::atof(argv[1]) : 2.5;
    const double wake = argc > 2 ? std::atof(argv[2]) : 1.6;
    const double decay = argc > 3 ? std::atof(argv[3]) : 40.0;
    const double refill = argc > 4 ? std::atof(argv[4]) : 0.5;
    const double vleak = argc > 5 ? std::atof(argv[5]) : 0.45;
    std::vector<double> loads;
    for (int i = 6; i < argc; ++i)
        loads.push_back(std::atof(argv[i]));
    if (loads.empty())
        loads = {0.3, 0.7};

    SimConfig base;
    base.coupling.kappaLocal = kappa;
    base.coupling.wakeFactor = wake;
    base.coupling.decayLengthInch = decay;
    base.boostRefillRate = refill;
    base.coupling.verticalLeak = vleak;
    base.socketTauS = 3.0;
    base.simTimeS = 15.0;
    base.warmupS = 7.0;

    const std::vector<std::string> schemes{
        "CF", "HF", "Random", "MinHR", "Predictive", "CP",
        "CP-nocoupling", "CP-global"};

    std::cout << "kappa=" << kappa << " wake=" << wake << " decay="
              << decay << " refill=" << refill << " vleak=" << vleak
              << "\n";

    // Average relative performance across seeds: high loads sit near
    // queue saturation, so single runs are noisy.
    const std::vector<std::uint64_t> seeds{11, 42, 1234};
    std::vector<RunSpec> specs;
    for (std::uint64_t seed : seeds) {
        SimConfig cfg = base;
        cfg.seed = seed;
        auto grid =
            makeGrid(schemes, WorkloadSet::Computation, loads, cfg);
        specs.insert(specs.end(), grid.begin(), grid.end());
    }
    // makeGrid keeps base.seed; re-stamp per block.
    for (std::size_t i = 0; i < specs.size(); ++i)
        specs[i].config.seed = seeds[i / (schemes.size() * loads.size())];
    auto results = runAll(specs);

    TableWriter table({"Scheme", "Load", "PerfVsCF", "AvgFreq",
                       "Boost%", "MaxT", "Front%", "Even%", "FreqF",
                       "FreqB"});
    const std::size_t block = schemes.size() * loads.size();
    for (std::size_t g = 0; g < block; ++g) {
        const std::string &scheme = specs[g].scheduler;
        const double load = specs[g].config.load;
        double perf = 0, freq = 0, boost = 0, maxt = 0;
        double frontw = 0, evenw = 0, freqf = 0, freqb = 0;
        for (std::size_t k = 0; k < seeds.size(); ++k) {
            const SimMetrics &m = results[g + k * block].metrics;
            // CF for this load within the same seed block.
            const SimMetrics *cf = nullptr;
            for (std::size_t j = 0; j < block; ++j) {
                if (specs[j].scheduler == "CF" &&
                    specs[j].config.load == load)
                    cf = &results[j + k * block].metrics;
            }
            perf += relativePerformance(m, *cf);
            freq += m.avgRelFreq();
            boost += 100 * m.boostFraction();
            maxt += m.maxChipTempC;
            frontw += 100 * m.workFraction(m.front);
            evenw += 100 * m.workFraction(m.even);
            freqf += m.front.avgRelFreq();
            freqb += m.back.avgRelFreq();
        }
        const double n = static_cast<double>(seeds.size());
        table.newRow()
            .cell(scheme)
            .cell(load, 2)
            .cell(perf / n, 4)
            .cell(freq / n, 3)
            .cell(boost / n, 1)
            .cell(maxt / n, 1)
            .cell(frontw / n, 1)
            .cell(evenw / n, 1)
            .cell(freqf / n, 3)
            .cell(freqb / n, 3);
    }
    table.print(std::cout);
    return 0;
}
