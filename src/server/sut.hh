/**
 * @file
 * Factories for the systems the paper evaluates.
 *
 * - makeSutTopology(): the 180-socket HPE Moonshot ProLiant
 *   M700-class system under test (15 rows x 3 cartridges x 4 sockets,
 *   Fig. 12), with Table III airflow.
 * - makeTwoSocketCoupled()/makeTwoSocketUncoupled(): the 2-socket
 *   motivation systems of Fig. 3 — one with the sockets in series in
 *   one airstream (cartridge-style), one with each socket in its own
 *   airstream (traditional 1U-style). Both mix an 18-fin and a 30-fin
 *   sink, so only the coupling differs.
 * - defaultCouplingParams(): the calibrated coupling physics
 *   (DESIGN.md Sec. 3.1).
 */

#ifndef DENSIM_SERVER_SUT_HH
#define DENSIM_SERVER_SUT_HH

#include "server/topology.hh"
#include "thermal/coupling_map.hh"

namespace densim {

/** The M700-class 180-socket SUT. */
ServerTopology makeSutTopology();

/** Two sockets in series in one duct (coupled, Fig. 3a right). */
ServerTopology makeTwoSocketCoupled();

/** Two sockets in parallel ducts (uncoupled, Fig. 3a left). */
ServerTopology makeTwoSocketUncoupled();

/** Calibrated coupling parameters for M700-class cartridges. */
CouplingParams defaultCouplingParams();

/** Build the coupling map for a topology with given parameters. */
CouplingMap makeCouplingMap(const ServerTopology &topo,
                            const CouplingParams &params);

} // namespace densim

#endif // DENSIM_SERVER_SUT_HH
