#include "fleet/fleet_metrics.hh"

#include <algorithm>
#include <sstream>

#include "obs/json.hh"

namespace densim {

namespace {

void
appendStats(std::ostringstream &out, const char *label,
            const RunningStats &stats)
{
    out << label << ":n=" << stats.count() << ",mean=" << stats.mean()
        << ",var=" << stats.variance() << ",min=" << stats.min()
        << ",max=" << stats.max() << '\n';
}

void
appendStatsJson(std::string &out, const char *label,
                const RunningStats &stats)
{
    using obs::json::appendNumber;
    using obs::json::appendString;
    appendString(out, label);
    out += ":{\"count\":";
    out += std::to_string(stats.count());
    out += ",\"mean\":";
    appendNumber(out, stats.mean());
    out += ",\"stddev\":";
    appendNumber(out, stats.stddev());
    out += '}';
}

} // namespace

void
rollUpFleetMetrics(FleetMetrics &metrics)
{
    metrics.jobsCompleted = 0;
    metrics.jobsUnfinished = 0;
    metrics.migrations = 0;
    metrics.runtimeExpansion = RunningStats();
    metrics.serviceExpansion = RunningStats();
    metrics.queueDelayS = RunningStats();
    metrics.energyJ = 0.0;
    metrics.makespanS = 0.0;
    metrics.maxChipTempC = 0.0;
    for (const SimMetrics &shard : metrics.perShard) {
        metrics.jobsCompleted += shard.jobsCompleted;
        metrics.jobsUnfinished += shard.jobsUnfinished;
        metrics.migrations += shard.migrations;
        metrics.runtimeExpansion.merge(shard.runtimeExpansion);
        metrics.serviceExpansion.merge(shard.serviceExpansion);
        metrics.queueDelayS.merge(shard.queueDelayS);
        metrics.energyJ += shard.energyJ;
        metrics.makespanS =
            std::max(metrics.makespanS, shard.makespanS);
        metrics.maxChipTempC =
            std::max(metrics.maxChipTempC, shard.maxChipTempC);
    }
}

std::string
serializeFleetMetrics(const FleetMetrics &metrics)
{
    std::ostringstream out;
    out << std::hexfloat;
    out << "chassis=" << metrics.chassis << '\n'
        << "jobsArrived=" << metrics.jobsArrived << '\n'
        << "jobsDispatched=" << metrics.jobsDispatched << '\n'
        << "jobsCompleted=" << metrics.jobsCompleted << '\n'
        << "jobsUnfinished=" << metrics.jobsUnfinished << '\n'
        << "migrations=" << metrics.migrations << '\n'
        << "energyJ=" << metrics.energyJ << '\n'
        << "makespanS=" << metrics.makespanS << '\n'
        << "maxChipTempC=" << metrics.maxChipTempC << '\n';
    appendStats(out, "runtimeExpansion", metrics.runtimeExpansion);
    appendStats(out, "serviceExpansion", metrics.serviceExpansion);
    appendStats(out, "queueDelayS", metrics.queueDelayS);
    for (std::size_t s = 0; s < metrics.perShard.size(); ++s) {
        const SimMetrics &shard = metrics.perShard[s];
        out << "shard" << s << ":dispatched="
            << (s < metrics.dispatchedPerShard.size()
                    ? metrics.dispatchedPerShard[s]
                    : 0)
            << ",arrived=" << shard.jobsArrived << ",completed="
            << shard.jobsCompleted << ",unfinished="
            << shard.jobsUnfinished << ",migrations="
            << shard.migrations << ",energyJ=" << shard.energyJ
            << ",measuredS=" << shard.measuredS << ",makespanS="
            << shard.makespanS << ",maxChipTempC="
            << shard.maxChipTempC << ",boostTimeS="
            << shard.boostTimeS << ",totalWork=" << shard.totalWork
            << ",totalBusyTime=" << shard.totalBusyTime << '\n';
        appendStats(out, "  runtimeExpansion",
                    shard.runtimeExpansion);
        appendStats(out, "  serviceExpansion",
                    shard.serviceExpansion);
        appendStats(out, "  queueDelayS", shard.queueDelayS);
        appendStats(out, "  chipTempC", shard.chipTempC);
    }
    return out.str();
}

std::string
fleetMetricsToJson(const FleetMetrics &metrics)
{
    using obs::json::appendNumber;
    std::string out = "{\"chassis\":";
    out += std::to_string(metrics.chassis);
    out += ",\"jobsArrived\":";
    out += std::to_string(metrics.jobsArrived);
    out += ",\"jobsDispatched\":";
    out += std::to_string(metrics.jobsDispatched);
    out += ",\"jobsCompleted\":";
    out += std::to_string(metrics.jobsCompleted);
    out += ",\"jobsUnfinished\":";
    out += std::to_string(metrics.jobsUnfinished);
    out += ",\"migrations\":";
    out += std::to_string(metrics.migrations);
    out += ",\"energyJ\":";
    appendNumber(out, metrics.energyJ);
    out += ",\"makespanS\":";
    appendNumber(out, metrics.makespanS);
    out += ",\"maxChipTempC\":";
    appendNumber(out, metrics.maxChipTempC);
    out += ',';
    appendStatsJson(out, "runtimeExpansion", metrics.runtimeExpansion);
    out += ',';
    appendStatsJson(out, "serviceExpansion", metrics.serviceExpansion);
    out += ',';
    appendStatsJson(out, "queueDelayS", metrics.queueDelayS);
    out += ",\"dispatchedPerShard\":[";
    for (std::size_t s = 0; s < metrics.dispatchedPerShard.size();
         ++s) {
        if (s > 0)
            out += ',';
        out += std::to_string(metrics.dispatchedPerShard[s]);
    }
    out += "],\"completedPerShard\":[";
    for (std::size_t s = 0; s < metrics.perShard.size(); ++s) {
        if (s > 0)
            out += ',';
        out += std::to_string(metrics.perShard[s].jobsCompleted);
    }
    out += "]}";
    return out;
}

} // namespace densim
