#include "core/dense_server_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "power/leakage.hh"
#include "power/pstate.hh"
#include "util/logging.hh"
#include "workload/curves.hh"

namespace densim {

DenseServerSim::DenseServerSim(const SimConfig &sim_config,
                               std::unique_ptr<Scheduler> sim_policy)
    : config_(sim_config), topo_(sim_config.topo),
      coupling_(topo_.sites(), sim_config.coupling),
      peak_(sim_config.rIntCW),
      pm_(PStateTable::x2150(), peak_, sim_config.tLimitC,
          sim_config.gatedFracTdp),
      leak_(LeakageModel::x2150()), policy_(std::move(sim_policy)),
      policyRng_(sim_config.seed ^ 0xdeadbeefcafef00dULL),
      sensorRng_(sim_config.seed ^ 0x5ca1ab1e0ddba11ULL)
{
    config_.validate();
    if (!policy_)
        fatal("DenseServerSim: no scheduling policy supplied");

    const std::size_t n = topo_.numSockets();
    isFront_.resize(n);
    isEven_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        isFront_[s] = topo_.inFrontHalf(s);
        isEven_[s] = topo_.inEvenZone(s);
    }
    zoneSockets_.resize(topo_.zonesPerRow());
    for (std::size_t s = 0; s < n; ++s)
        zoneSockets_[topo_.zoneIndexOf(s)].push_back(s);
}

DenseServerSim::~DenseServerSim() = default;

double
DenseServerSim::rateOf(std::size_t socket) const
{
    // Progress is measured in nominal (highest-sustained-frequency)
    // seconds: boost states advance a job faster than 1x. This is the
    // design point of the SUT — 100% load is exactly sustainable at
    // 1500 MHz (Sec. III-D).
    const SocketState &st = sockets_[socket];
    const auto &curve = freqCurveFor(st.set);
    const std::size_t sustained =
        PStateTable::x2150().highestSustainedIndex();
    return curve.perfRel[st.pstate] / curve.perfRel[sustained];
}

double
DenseServerSim::relFreqOf(std::size_t socket) const
{
    return PStateTable::x2150().relativeFreq(sockets_[socket].pstate);
}

void
DenseServerSim::resetState()
{
    const std::size_t n = topo_.numSockets();
    sockets_.assign(n, SocketState{});
    powerW_.assign(n, pm_.gatedPower(leak_));
    freqMhz_.assign(n, 0.0);
    chipTempC_.assign(n, config_.topo.inletC);
    sensedTempC_.assign(n, config_.topo.inletC);
    histTempC_.assign(n, config_.topo.inletC);
    runningSet_.assign(n, config_.workload);
    busyFlag_.assign(n, false);

    ambTracker_.clear();
    chipRise_.clear();
    histTracker_.clear();
    ambTracker_.reserve(n);
    chipRise_.reserve(n);
    histTracker_.reserve(n);
    const double gated = pm_.gatedPower(leak_);
    const std::vector<double> amb0 =
        coupling_.ambientTemps(powerW_, config_.topo.inletC);
    ambientC_ = amb0;
    for (std::size_t s = 0; s < n; ++s) {
        const HeatSink &sink = topo_.sinkOf(s);
        ambTracker_.emplace_back(config_.socketTauS, amb0[s]);
        chipRise_.emplace_back(config_.chipTauS,
                               gated * (peak_.rInt() + sink.rExt) +
                                   sink.theta(gated));
        chipTempC_[s] = ambientC_[s] + chipRise_[s].value();
        histTracker_.emplace_back(config_.histTauS, chipTempC_[s]);
        histTempC_[s] = chipTempC_[s];
    }

    boostCreditS_.assign(n, config_.boostBurstS);

    queue_.clear();
    metrics_ = SimMetrics{};
    decisions_ = 0;
    tCursor_ = 0.0;
    nextSampleS_ = 0.0;
    policy_->reset();
    policyRng_ = Rng(config_.seed ^ 0xdeadbeefcafef00dULL);
    sensorRng_ = Rng(config_.seed ^ 0x5ca1ab1e0ddba11ULL);
    rebuildScalars();
}

void
DenseServerSim::warmStart()
{
    // Expected average socket power at the configured load: busy at
    // the highest sustained frequency a fraction `load` of the time,
    // gated otherwise. The slow (30 s) ambient field is set to the
    // coupling-map steady state of that power field so short runs
    // start in a representative thermal regime.
    const auto &curve = freqCurveFor(config_.workload);
    const std::size_t sustained =
        PStateTable::x2150().highestSustainedIndex();
    const double busy_power = curve.totalPowerAt90C[sustained];
    const double gated = pm_.gatedPower(leak_);
    const double expected =
        config_.load * busy_power + (1.0 - config_.load) * gated;

    const std::size_t n = topo_.numSockets();
    const std::vector<double> amb = coupling_.ambientTemps(
        std::vector<double>(n, expected), config_.topo.inletC);
    for (std::size_t s = 0; s < n; ++s) {
        ambTracker_[s].reset(amb[s]);
        ambientC_[s] = amb[s];
        const double chip = ambientC_[s] + chipRise_[s].value();
        histTracker_[s].reset(chip);
        chipTempC_[s] = chip;
        histTempC_[s] = chip;
    }
}

SimMetrics
DenseServerSim::run()
{
    JobGenerator gen(config_.workload, config_.load,
                     static_cast<int>(topo_.numSockets()), config_.seed);
    return runJobs(gen.generateUntil(config_.simTimeS));
}

SimMetrics
DenseServerSim::run(const std::vector<Job> &jobs)
{
    for (std::size_t i = 1; i < jobs.size(); ++i) {
        if (jobs[i].arrivalS < jobs[i - 1].arrivalS)
            fatal("DenseServerSim: job arrivals must be sorted");
    }
    return runJobs(jobs);
}

SimMetrics
DenseServerSim::runJobs(const std::vector<Job> &jobs)
{
    resetState();
    if (config_.warmStart)
        warmStart();

    const double epoch = config_.pmEpochS;
    const double hard_stop = config_.simTimeS * config_.drainFactor;
    std::size_t next_job = 0;

    double t0 = 0.0;
    while (t0 < hard_stop) {
        const bool arrivals_left = next_job < jobs.size();
        if (!arrivals_left && queue_.empty() && busyTotal_ == 0)
            break;

        thermalStep(epoch);
        if (config_.timelineSampleS > 0.0 && t0 >= nextSampleS_) {
            metrics_.timelineS.push_back(t0);
            std::vector<double> zones;
            zones.reserve(zoneSockets_.size());
            for (const auto &members : zoneSockets_) {
                double acc = 0.0;
                for (std::size_t s : members)
                    acc += ambientC_[s];
                zones.push_back(acc /
                                static_cast<double>(members.size()));
            }
            metrics_.zoneAmbientC.push_back(std::move(zones));
            nextSampleS_ += config_.timelineSampleS;
        }
        powerManage(t0);
        if (config_.migrationEnabled) {
            const auto stride = static_cast<std::size_t>(
                config_.migrationIntervalS / epoch);
            const auto tick =
                static_cast<std::size_t>(t0 / epoch + 0.5);
            if (stride <= 1 || tick % stride == 0)
                attemptMigrations(t0);
        }
        processWindow(jobs, next_job, t0, t0 + epoch);
        t0 += epoch;
    }
    accumulate(t0);

    metrics_.measuredS = std::max(t0 - config_.warmupS, 0.0);
    metrics_.jobsUnfinished = queue_.size() + busyTotal_;
    return metrics_;
}

void
DenseServerSim::thermalStep(double dt)
{
    // The ambient field lags the power field with the 30 s socket
    // time constant; the chip's own Eq. (1) rise follows with the
    // 5 ms chip time constant.
    const std::vector<double> targets =
        coupling_.ambientTemps(powerW_, config_.topo.inletC);
    const std::size_t n = topo_.numSockets();
    const bool measure = tCursor_ >= config_.warmupS;
    for (std::size_t s = 0; s < n; ++s) {
        // Boost-dwell accounting: drain while boosting, refill
        // otherwise (busy-sustained or idle).
        if (busyFlag_[s] && sockets_[s].boost) {
            boostCreditS_[s] = std::max(0.0, boostCreditS_[s] - dt);
        } else {
            boostCreditS_[s] =
                std::min(config_.boostBurstS,
                         boostCreditS_[s] +
                             config_.boostRefillRate * dt);
        }
        const HeatSink &sink = topo_.sinkOf(s);
        const double p = powerW_[s];
        ambientC_[s] = ambTracker_[s].step(targets[s], dt);
        chipRise_[s].step(
            p * (peak_.rInt() + sink.rExt) + sink.theta(p), dt);
        chipTempC_[s] = ambientC_[s] + chipRise_[s].value();
        // What the scheduler's sensor reports: noisy, quantized.
        double sensed = chipTempC_[s];
        if (config_.sensorNoiseC > 0.0)
            sensed += sensorRng_.normal(0.0, config_.sensorNoiseC);
        if (config_.sensorQuantC > 0.0) {
            sensed = config_.sensorQuantC *
                     std::floor(sensed / config_.sensorQuantC + 0.5);
        }
        sensedTempC_[s] = sensed;
        histTempC_[s] = histTracker_[s].step(sensed, dt);
        if (measure && busyFlag_[s]) {
            metrics_.chipTempC.add(chipTempC_[s]);
            metrics_.maxChipTempC =
                std::max(metrics_.maxChipTempC, chipTempC_[s]);
        }
    }
}

void
DenseServerSim::powerManage(double now)
{
    const std::size_t n = topo_.numSockets();
    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
        if (!busyFlag_[s])
            continue;
        syncProgress(s, now);
        const std::size_t cap =
            boostCreditS_[s] > 0.0
                ? PStateTable::x2150().size() - 1
                : PStateTable::x2150().highestSustainedIndex();
        const DvfsDecision d = pm_.chooseAtAmbientCapped(
            freqCurveFor(sockets_[s].set), leak_, ambientC_[s],
            topo_.sinkOf(s), cap);
        setSocketRate(s, d.pstate, d.powerW, now);
        changed = true;
    }
    if (changed)
        rebuildScalars();
}

void
DenseServerSim::processWindow(const std::vector<Job> &jobs,
                              std::size_t &next_job, double t0, double t1)
{
    (void)t0;
    const double inf = std::numeric_limits<double>::infinity();
    for (;;) {
        const double next_arrival =
            next_job < jobs.size() ? jobs[next_job].arrivalS : inf;

        double next_completion = inf;
        std::size_t completing = 0;
        for (std::size_t s = 0; s < topo_.numSockets(); ++s) {
            if (busyFlag_[s] &&
                sockets_[s].completionS < next_completion) {
                next_completion = sockets_[s].completionS;
                completing = s;
            }
        }

        const double t_event = std::min(next_arrival, next_completion);
        if (t_event >= t1) {
            accumulate(t1);
            return;
        }
        accumulate(std::max(t_event, tCursor_));

        if (next_completion <= next_arrival) {
            completeJob(completing, next_completion);
        } else {
            ++metrics_.jobsArrived;
            queue_.push_back(jobs[next_job]);
            ++next_job;
            tryScheduleQueue(next_arrival);
        }
    }
}

void
DenseServerSim::syncProgress(std::size_t socket, double now)
{
    SocketState &st = sockets_[socket];
    if (!st.busy)
        return;
    const double dt = now - st.lastSyncS;
    if (dt > 0.0) {
        st.remainingS =
            std::max(0.0, st.remainingS - dt * rateOf(socket));
        st.lastSyncS = now;
    }
}

void
DenseServerSim::setSocketRate(std::size_t socket, std::size_t new_pstate,
                              double power_w, double now)
{
    SocketState &st = sockets_[socket];
    st.pstate = new_pstate;
    st.boost = PStateTable::x2150().at(new_pstate).boost;
    freqMhz_[socket] = PStateTable::x2150().at(new_pstate).freqMhz;
    powerW_[socket] = power_w;
    const double rate = rateOf(socket);
    if (rate <= 0.0)
        panic("socket ", socket, " has non-positive progress rate");
    st.completionS = now + st.remainingS / rate;
}

void
DenseServerSim::setIdlePower(std::size_t socket)
{
    powerW_[socket] = pm_.gatedPower(leak_);
    freqMhz_[socket] = 0.0;
}

void
DenseServerSim::tryScheduleQueue(double now)
{
    bool placed = false;
    while (!queue_.empty()) {
        std::vector<std::size_t> idle;
        idle.reserve(topo_.numSockets() - busyTotal_);
        for (std::size_t s = 0; s < topo_.numSockets(); ++s) {
            if (!busyFlag_[s])
                idle.push_back(s);
        }
        if (idle.empty())
            break;

        SchedContext ctx;
        ctx.topo = &topo_;
        ctx.coupling = &coupling_;
        ctx.pm = &pm_;
        ctx.leak = &leak_;
        ctx.inletC = config_.topo.inletC;
        ctx.idle = &idle;
        ctx.chipTempC = &sensedTempC_;
        ctx.histTempC = &histTempC_;
        ctx.ambientC = &ambientC_;
        ctx.boostCreditS = &boostCreditS_;
        ctx.powerW = &powerW_;
        ctx.freqMhz = &freqMhz_;
        ctx.runningSet = &runningSet_;
        ctx.busy = &busyFlag_;
        ctx.rng = &policyRng_;

        const Job &job = queue_.front();
        const std::size_t pick = policy_->pick(job, ctx);
        ++decisions_;
        if (pick >= topo_.numSockets() || busyFlag_[pick])
            panic("policy '", policy_->name(),
                  "' picked an invalid socket ", pick);
        placeJob(pick, job, now);
        queue_.pop_front();
        placed = true;
    }
    if (placed)
        rebuildScalars();
}

void
DenseServerSim::placeJob(std::size_t socket, const Job &job, double now)
{
    SocketState &st = sockets_[socket];
    st.busy = true;
    st.set = job.set;
    st.benchmark = job.benchmark;
    st.arrivalS = job.arrivalS;
    st.startS = now;
    st.nominalS = job.nominalS;
    st.remainingS = job.nominalS;
    st.lastSyncS = now;
    busyFlag_[socket] = true;
    runningSet_[socket] = job.set;

    // A freshly placed job gets its frequency immediately (the power
    // manager would confirm it within at most one epoch anyway).
    const std::size_t cap =
        boostCreditS_[socket] > 0.0
            ? PStateTable::x2150().size() - 1
            : PStateTable::x2150().highestSustainedIndex();
    const DvfsDecision d = pm_.chooseAtAmbientCapped(
        freqCurveFor(job.set), leak_, ambientC_[socket],
        topo_.sinkOf(socket), cap);
    setSocketRate(socket, d.pstate, d.powerW, now);

    if (job.arrivalS >= config_.warmupS)
        metrics_.queueDelayS.add(now - job.arrivalS);
}

void
DenseServerSim::completeJob(std::size_t socket, double now)
{
    SocketState &st = sockets_[socket];
    syncProgress(socket, now);
    if (st.arrivalS >= config_.warmupS) {
        ++metrics_.jobsCompleted;
        metrics_.runtimeExpansion.add((now - st.arrivalS) /
                                      st.nominalS);
        metrics_.serviceExpansion.add((now - st.startS) / st.nominalS);
    }
    metrics_.makespanS = now;

    st.busy = false;
    busyFlag_[socket] = false;
    setIdlePower(socket);
    rebuildScalars();
    tryScheduleQueue(now);
}

void
DenseServerSim::migrateJob(std::size_t from, std::size_t to, double now)
{
    SocketState &src = sockets_[from];
    SocketState &dst = sockets_[to];

    dst = src;
    dst.lastSyncS = now;
    // The move costs work: checkpoint/transfer/warm-up, expressed in
    // nominal seconds.
    dst.remainingS += config_.migrationCostS;
    busyFlag_[to] = true;
    runningSet_[to] = dst.set;

    src = SocketState{};
    busyFlag_[from] = false;
    setIdlePower(from);

    const std::size_t cap =
        boostCreditS_[to] > 0.0
            ? PStateTable::x2150().size() - 1
            : PStateTable::x2150().highestSustainedIndex();
    const DvfsDecision d = pm_.chooseAtAmbientCapped(
        freqCurveFor(dst.set), leak_, ambientC_[to], topo_.sinkOf(to),
        cap);
    setSocketRate(to, d.pstate, d.powerW, now);
    ++metrics_.migrations;
}

void
DenseServerSim::attemptMigrations(double now)
{
    // Move long-running, throttled jobs to sockets where the active
    // policy would place them now — if that destination actually runs
    // faster. This is the paper's Sec. VI suggestion of reusing the
    // placement policy for migration decisions.
    const std::size_t sustained =
        PStateTable::x2150().highestSustainedIndex();
    int moved = 0;
    bool changed = false;
    for (std::size_t s = 0;
         s < topo_.numSockets() && moved < config_.migrationMaxPerPass;
         ++s) {
        if (!busyFlag_[s] || sockets_[s].pstate >= sustained)
            continue;
        syncProgress(s, now);
        if (sockets_[s].remainingS < config_.migrationMinRemainingS)
            continue;

        std::vector<std::size_t> idle;
        for (std::size_t i = 0; i < topo_.numSockets(); ++i) {
            if (!busyFlag_[i])
                idle.push_back(i);
        }
        if (idle.empty())
            break;

        SchedContext ctx;
        ctx.topo = &topo_;
        ctx.coupling = &coupling_;
        ctx.pm = &pm_;
        ctx.leak = &leak_;
        ctx.inletC = config_.topo.inletC;
        ctx.idle = &idle;
        ctx.chipTempC = &sensedTempC_;
        ctx.histTempC = &histTempC_;
        ctx.ambientC = &ambientC_;
        ctx.boostCreditS = &boostCreditS_;
        ctx.powerW = &powerW_;
        ctx.freqMhz = &freqMhz_;
        ctx.runningSet = &runningSet_;
        ctx.busy = &busyFlag_;
        ctx.rng = &policyRng_;

        Job remainder;
        remainder.id = 0;
        remainder.benchmark = sockets_[s].benchmark;
        remainder.set = sockets_[s].set;
        remainder.arrivalS = sockets_[s].arrivalS;
        remainder.nominalS = sockets_[s].remainingS;
        const std::size_t dest = policy_->pick(remainder, ctx);
        if (dest >= topo_.numSockets() || busyFlag_[dest])
            panic("policy '", policy_->name(),
                  "' picked an invalid migration target ", dest);

        const std::size_t cap =
            boostCreditS_[dest] > 0.0
                ? PStateTable::x2150().size() - 1
                : sustained;
        const DvfsDecision d = pm_.chooseAtAmbientCapped(
            freqCurveFor(sockets_[s].set), leak_, ambientC_[dest],
            topo_.sinkOf(dest), cap);
        if (d.pstate <= sockets_[s].pstate)
            continue; // Not actually faster there.

        migrateJob(s, dest, now);
        ++moved;
        changed = true;
    }
    if (changed)
        rebuildScalars();
}

void
DenseServerSim::rebuildScalars()
{
    totalPowerW_ = 0.0;
    workRateTotal_ = workRateFront_ = workRateBack_ = workRateEven_ =
        0.0;
    relFreqSumTotal_ = relFreqSumFront_ = relFreqSumBack_ =
        relFreqSumEven_ = 0.0;
    busyTotal_ = busyFront_ = busyBack_ = busyEven_ = busyBoost_ = 0;

    for (std::size_t s = 0; s < topo_.numSockets(); ++s) {
        totalPowerW_ += powerW_[s];
        if (!busyFlag_[s])
            continue;
        const double rate = rateOf(s);
        const double rel = relFreqOf(s);
        ++busyTotal_;
        workRateTotal_ += rate;
        relFreqSumTotal_ += rel;
        if (sockets_[s].boost)
            ++busyBoost_;
        if (isFront_[s]) {
            ++busyFront_;
            workRateFront_ += rate;
            relFreqSumFront_ += rel;
        } else {
            ++busyBack_;
            workRateBack_ += rate;
            relFreqSumBack_ += rel;
        }
        if (isEven_[s]) {
            ++busyEven_;
            workRateEven_ += rate;
            relFreqSumEven_ += rel;
        }
    }
}

void
DenseServerSim::accumulate(double to)
{
    // Split any interval straddling the warmup boundary so only the
    // post-warmup part is measured.
    if (tCursor_ < config_.warmupS)
        tCursor_ = std::min(to, config_.warmupS);
    const double dt = to - tCursor_;
    if (dt <= 0.0)
        return;
    {
        metrics_.energyJ += (totalPowerW_ + config_.fanPowerW) * dt;
        metrics_.totalBusyTime += busyTotal_ * dt;
        metrics_.totalFreqTime += relFreqSumTotal_ * dt;
        metrics_.totalWork += workRateTotal_ * dt;
        metrics_.boostTimeS += busyBoost_ * dt;

        metrics_.front.busyTimeS += busyFront_ * dt;
        metrics_.front.freqTime += relFreqSumFront_ * dt;
        metrics_.front.workDone += workRateFront_ * dt;

        metrics_.back.busyTimeS += busyBack_ * dt;
        metrics_.back.freqTime += relFreqSumBack_ * dt;
        metrics_.back.workDone += workRateBack_ * dt;

        metrics_.even.busyTimeS += busyEven_ * dt;
        metrics_.even.freqTime += relFreqSumEven_ * dt;
        metrics_.even.workDone += workRateEven_ * dt;
    }
    tCursor_ = to;
}

} // namespace densim
