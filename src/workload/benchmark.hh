/**
 * @file
 * The VDI benchmark catalog.
 *
 * The paper characterizes 19 PCMark 7 applications relevant to
 * enterprise VDI, grouped into three sets — Computation intensive,
 * Storage intensive, and General Purpose (Sec. III-A). We cannot run
 * PCMark, so each application is modeled by the statistics the paper
 * reports: millisecond-scale mean job durations whose spread across
 * the applications of a set has a coefficient of variation between
 * 0.25 and 0.33 (Fig. 6b), individual-job durations following a
 * heavy-tailed lognormal whose maxima run ~2 orders of magnitude
 * above the mean (Fig. 6a and [39]).
 */

#ifndef DENSIM_WORKLOAD_BENCHMARK_HH
#define DENSIM_WORKLOAD_BENCHMARK_HH

#include <string>
#include <vector>

namespace densim {

/** The paper's three benchmark sets. */
enum class WorkloadSet { Computation, Storage, GeneralPurpose };

/** Printable name of a workload set. */
const char *workloadSetName(WorkloadSet set);

/** All three sets, in the paper's reporting order. */
const std::vector<WorkloadSet> &allWorkloadSets();

/** One modeled PCMark-7-class application. */
struct Benchmark
{
    std::string name;       //!< Application name.
    WorkloadSet set;        //!< Which set it belongs to.
    double meanDurationMs;  //!< Mean duration at the highest
                            //!< sustained frequency (1500 MHz).
    double sigmaLn;         //!< Lognormal shape of per-job durations.
};

/**
 * The 19-application catalog. Indices into this vector are the
 * canonical benchmark ids used by jobs and traces.
 */
const std::vector<Benchmark> &pcmarkCatalog();

/** Indices of catalog entries belonging to @p set. */
std::vector<std::size_t> benchmarksInSet(WorkloadSet set);

/**
 * Mean job duration (seconds, at max frequency) across the
 * applications of @p set, weighting applications equally — the mean
 * the arrival process is parameterized with.
 */
double setMeanDurationS(WorkloadSet set);

} // namespace densim

#endif // DENSIM_WORKLOAD_BENCHMARK_HH
