#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace densim {

std::string
formatFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("TableWriter requires at least one column");
}

TableWriter &
TableWriter::newRow()
{
    if (!rows_.empty() && rows_.back().size() != headers_.size())
        panic("TableWriter row has ", rows_.back().size(),
              " cells, expected ", headers_.size());
    rows_.emplace_back();
    return *this;
}

TableWriter &
TableWriter::cell(const std::string &value)
{
    if (rows_.empty())
        newRow();
    if (rows_.back().size() >= headers_.size())
        panic("TableWriter row overflow: more cells than headers");
    rows_.back().push_back(value);
    return *this;
}

TableWriter &
TableWriter::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

TableWriter &
TableWriter::cell(long long value)
{
    return cell(std::to_string(value));
}

std::string
TableWriter::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &val = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << val;
            os << (c + 1 == headers_.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-')
           << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
TableWriter::toCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << quote(row[c]) << (c + 1 == row.size() ? "" : ",");
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TableWriter::print(std::ostream &os) const
{
    os << toText();
}

} // namespace densim
