file(REMOVE_RECURSE
  "CMakeFiles/fig05_entry_temperature.dir/fig05_entry_temperature.cc.o"
  "CMakeFiles/fig05_entry_temperature.dir/fig05_entry_temperature.cc.o.d"
  "fig05_entry_temperature"
  "fig05_entry_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_entry_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
