/**
 * @file
 * Tests for the Fig. 1 survey synthesizer: record counts, per-class
 * means matching the paper, density ordering, and determinism.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "survey/survey.hh"

namespace densim {
namespace {

TEST(Survey, FourHundredPlusTenRecords)
{
    const auto records = synthesizeSurvey(1);
    std::size_t rack = 0, dense = 0;
    for (const SurveyRecord &r : records)
        (r.cls == ServerClass::DensityOpt ? dense : rack) += 1;
    EXPECT_EQ(rack, 400u);
    EXPECT_EQ(dense, 10u);
}

TEST(Survey, DeterministicGivenSeed)
{
    const auto a = synthesizeSurvey(9);
    const auto b = synthesizeSurvey(9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].powerPerU, b[i].powerPerU);
        EXPECT_DOUBLE_EQ(a[i].socketsPerU, b[i].socketsPerU);
    }
}

TEST(Survey, YearsInStudyWindow)
{
    for (const SurveyRecord &r : synthesizeSurvey(2)) {
        EXPECT_GE(r.year, 2007);
        EXPECT_LE(r.year, 2016);
    }
}

TEST(Survey, ClassMeansMatchPaperFigures)
{
    const auto summaries = summarize(synthesizeSurvey(42));
    ASSERT_EQ(summaries.size(), 5u);
    for (const ClassSummary &s : summaries) {
        double expected_power = 0.0, expected_sockets = 0.0;
        for (const ClassModel &m : fig1ClassModels()) {
            if (m.cls == s.cls) {
                expected_power = m.meanPowerPerU;
                expected_sockets = m.meanSocketsPerU;
            }
        }
        EXPECT_NEAR(s.meanPowerPerU, expected_power,
                    0.12 * expected_power)
            << serverClassName(s.cls);
        EXPECT_NEAR(s.meanSocketsPerU, expected_sockets,
                    0.15 * expected_sockets)
            << serverClassName(s.cls);
    }
}

TEST(Survey, DensityOrderingMatchesPaper)
{
    // Other < 2U < 1U < Blade < DensityOpt in both power and socket
    // density (Fig. 1 narrative).
    const auto summaries = summarize(synthesizeSurvey(7));
    auto find = [&](ServerClass cls) {
        for (const ClassSummary &s : summaries)
            if (s.cls == cls)
                return s;
        ADD_FAILURE() << "class missing";
        return summaries.front();
    };
    const auto other = find(ServerClass::Other);
    const auto u2 = find(ServerClass::U2);
    const auto u1 = find(ServerClass::U1);
    const auto blade = find(ServerClass::Blade);
    const auto dense = find(ServerClass::DensityOpt);
    EXPECT_LT(other.meanPowerPerU, u2.meanPowerPerU);
    EXPECT_LT(u2.meanPowerPerU, u1.meanPowerPerU);
    EXPECT_LT(u1.meanPowerPerU, blade.meanPowerPerU);
    EXPECT_LT(blade.meanPowerPerU, dense.meanPowerPerU);
    EXPECT_LT(blade.meanSocketsPerU, dense.meanSocketsPerU);
}

TEST(Survey, DensityOptAboutSixTimesBladeSockets)
{
    // Sec. I: ~6x the socket density and ~50% more power density
    // than blades.
    const auto summaries = summarize(synthesizeSurvey(11));
    double blade_s = 0, dense_s = 0, blade_p = 0, dense_p = 0;
    for (const ClassSummary &s : summaries) {
        if (s.cls == ServerClass::Blade) {
            blade_s = s.meanSocketsPerU;
            blade_p = s.meanPowerPerU;
        }
        if (s.cls == ServerClass::DensityOpt) {
            dense_s = s.meanSocketsPerU;
            dense_p = s.meanPowerPerU;
        }
    }
    EXPECT_NEAR(dense_s / blade_s, 7.2, 2.5);
    EXPECT_NEAR(dense_p / blade_p, 1.4, 0.35);
}

TEST(Survey, AllValuesPositive)
{
    for (const SurveyRecord &r : synthesizeSurvey(3)) {
        EXPECT_GT(r.powerPerU, 0.0);
        EXPECT_GT(r.socketsPerU, 0.0);
    }
}

TEST(Survey, PowerSocketCorrelationPositive)
{
    // Denser designs draw more power (the synthesizer's rho = 0.7).
    const auto records = synthesizeSurvey(5);
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    int n = 0;
    for (const SurveyRecord &r : records) {
        if (r.cls != ServerClass::U1)
            continue;
        const double x = std::log(r.powerPerU);
        const double y = std::log(r.socketsPerU);
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
        ++n;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    const double rho = cov / std::sqrt(vx * vy);
    EXPECT_GT(rho, 0.4);
}

TEST(Survey, CfmColumnConsistentWithTableII)
{
    const auto summaries = summarize(synthesizeSurvey(42));
    for (const ClassSummary &s : summaries) {
        // CFM/U = 1.76 * W/U / 20.
        EXPECT_NEAR(s.cfmPerU20C, 1.76 * s.meanPowerPerU / 20.0,
                    0.02 * s.cfmPerU20C);
    }
}

TEST(Survey, ClassNamesPrintable)
{
    for (ServerClass cls : allServerClasses())
        EXPECT_GT(std::string(serverClassName(cls)).size(), 0u);
}

} // namespace
} // namespace densim
