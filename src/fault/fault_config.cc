#include "fault/fault_config.hh"

#include "util/logging.hh"

namespace densim {

bool
FaultConfig::enabled() const
{
    return fanFailS >= 0.0 || sensorStuckCount > 0 ||
           sensorNoisyCount > 0 || sensorDropoutCount > 0 ||
           socketFailCount > 0 || abortRunS >= 0.0;
}

std::uint64_t
FaultConfig::effectiveSeed(std::uint64_t run_seed) const
{
    return seed != 0 ? seed : (run_seed ^ 0xfa017d11e5c0ffeeULL);
}

void
FaultConfig::validate(Celsius t_limit) const
{
    const double t_limit_c = t_limit.value();
    if (fanSpeedFrac < 0.0 || fanSpeedFrac > 1.0)
        fatal("FaultConfig: fault.fanSpeedFrac ", fanSpeedFrac,
              " outside [0, 1]");
    if (fanCount < 1)
        fatal("FaultConfig: fault.fanCount must be >= 1");
    if (fanFailS >= 0.0 && fanRecoverS >= 0.0 &&
        fanRecoverS <= fanFailS) {
        fatal("FaultConfig: fault.fanRecoverS ", fanRecoverS,
              " must come after fault.fanFailS ", fanFailS);
    }
    if (sensorStuckCount < 0 || sensorNoisyCount < 0 ||
        sensorDropoutCount < 0 || socketFailCount < 0) {
        fatal("FaultConfig: fault counts must be non-negative");
    }
    if (sensorStuckAtS < 0.0 || sensorNoisyAtS < 0.0 ||
        sensorDropoutAtS < 0.0 || socketFailS < 0.0) {
        fatal("FaultConfig: fault onset times must be non-negative");
    }
    if (sensorNoiseSigmaC < 0.0)
        fatal("FaultConfig: fault.sensorNoiseSigmaC must be "
              "non-negative");
    if (fallbackAmbientC <= -273.15)
        fatal("FaultConfig: fault.fallbackAmbientC ", fallbackAmbientC,
              " C is below absolute zero");
    if (socketFailCount > 0 && socketRecoverS >= 0.0 &&
        socketRecoverS <= socketFailS) {
        fatal("FaultConfig: fault.socketRecoverS ", socketRecoverS,
              " must come after fault.socketFailS ", socketFailS);
    }
    if (emergencyMarginC < 0.0)
        fatal("FaultConfig: fault.emergencyMarginC must be "
              "non-negative");
    if (emergencySustainS <= 0.0 || quarantineSustainS <= 0.0)
        fatal("FaultConfig: escalation dwell times must be positive");
    if (quarantineExitC >= t_limit_c + emergencyMarginC) {
        fatal("FaultConfig: fault.quarantineExitC ", quarantineExitC,
              " must lie below the emergency trip point ",
              t_limit_c + emergencyMarginC);
    }
}

DropoutPolicy
parseDropoutPolicy(const std::string &name)
{
    if (name == "lastGood")
        return DropoutPolicy::LastGood;
    if (name == "conservative")
        return DropoutPolicy::Conservative;
    fatal("FaultConfig: fault.dropoutPolicy must be 'lastGood' or "
          "'conservative', got '",
          name, "'");
}

const char *
dropoutPolicyName(DropoutPolicy policy)
{
    switch (policy) {
    case DropoutPolicy::LastGood:
        return "lastGood";
    case DropoutPolicy::Conservative:
        return "conservative";
    }
    return "lastGood";
}

} // namespace densim
