/**
 * @file
 * densim-hot-layout: flag std::vector<bool> (bit-packed proxy
 * references, no .data(), no vectorizable loads) and non-contiguous
 * node containers (std::list / std::forward_list) in SoA hot-path
 * code. Hot-path flags are std::vector<std::uint8_t> and state lives
 * in flat arrays (DESIGN.md Sec. 12).
 */

#ifndef DENSIM_TOOLS_TIDY_HOT_LAYOUT_CHECK_HH
#define DENSIM_TOOLS_TIDY_HOT_LAYOUT_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace densim::tidy {

class HotLayoutCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder)
        override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult
                   &result) override;
};

} // namespace densim::tidy

#endif // DENSIM_TOOLS_TIDY_HOT_LAYOUT_CHECK_HH
