/**
 * @file
 * The paper's simplified peak-temperature model — Eq. (1):
 *
 *   T_peak = T_amb + P * (R_int + R_ext) + theta(P, sink)
 *
 * where R_int is the chip-internal (junction-to-case) resistance,
 * R_ext the sink resistance, and theta an empirically derived linear
 * correction per sink. The paper shows this tracks a validated
 * HotSpot-class model within 2 C (Fig. 10); our tests reproduce that
 * against densim's HotSpotModel.
 */

#ifndef DENSIM_THERMAL_SIMPLE_PEAK_MODEL_HH
#define DENSIM_THERMAL_SIMPLE_PEAK_MODEL_HH

#include "core/units.hh"
#include "thermal/heatsink.hh"

namespace densim {

/**
 * Eq. (1) evaluator for one socket/sink pair. Stateless and cheap —
 * this is the model the scheduler itself is allowed to use.
 */
class SimplePeakModel
{
  public:
    /**
     * @param r_int Chip internal thermal resistance (Table III:
     *              0.205 C/W for the X2150).
     */
    explicit SimplePeakModel(KelvinPerWatt r_int = KelvinPerWatt(0.205));

    /** Peak chip temperature for @p power at ambient @p t_amb. */
    Celsius peak(Celsius t_amb, Watts power, const HeatSink &sink) const;

    /**
     * Largest power whose predicted peak stays at or below
     * @p t_limit for ambient @p t_amb; clamped at 0 when even idle
     * power would exceed the limit.
     */
    Watts maxPower(Celsius t_limit, Celsius t_amb,
                   const HeatSink &sink) const;

    /**
     * Ambient temperature at which @p power exactly reaches
     * @p t_limit — the headroom question inverted.
     */
    Celsius maxAmbient(Celsius t_limit, Watts power,
                       const HeatSink &sink) const;

    KelvinPerWatt rInt() const { return rInt_; }

  private:
    KelvinPerWatt rInt_;
};

} // namespace densim

#endif // DENSIM_THERMAL_SIMPLE_PEAK_MODEL_HH
