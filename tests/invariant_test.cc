/**
 * @file
 * Tests for the runtime invariant layer (core/invariant.hh): the
 * reduced-workload engine run with every check enabled, the physics
 * envelope of the coupling field, and the negative tests proving a
 * deliberately corrupted cache or unphysical field actually trips
 * DENSIM_CHECK. The negative tests are death tests and only run in
 * builds with the corresponding checks compiled in (DENSIM_CHECKS /
 * DENSIM_PARANOID CMake options); elsewhere they are skipped.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/event_heap.hh"
#include "core/invariant.hh"
#include "sched/factory.hh"
#include "thermal/rc_network.hh"

namespace densim {
namespace {

/** The reduced workload of the differential suite: every engine path
 *  (boost, gating, coupling, completion heap) on a 36-socket server
 *  in a couple of simulated seconds. */
SimConfig
reducedConfig()
{
    SimConfig config;
    config.topo.rows = 3;
    config.simTimeS = 2.0;
    config.warmupS = 0.5;
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 42;
    return config;
}

TEST(Invariant, BuildFlagsAreConsistent)
{
    // Paranoid mode implies the cheap checks (CMake enforces this for
    // its options; the definitions must agree too).
    if (kParanoidEnabled) {
        EXPECT_TRUE(kChecksEnabled);
    }
}

TEST(Invariant, ReducedWorkloadRunsWithChecksEnabled)
{
    // The standing gate: a full engine run at epoch-boundary check
    // cadence. In a DENSIM_PARANOID build every epoch cross-validates
    // the incremental field, scalars and heap against the reference
    // computation; in default builds this is simply a smoke run.
    for (const char *name : {"CF", "CP"}) {
        DenseServerSim sim(reducedConfig(), makeScheduler(name));
        const SimMetrics m = sim.run();
        EXPECT_GT(m.jobsCompleted, 0u) << name;
    }
}

TEST(Invariant, ChecksRunWithMigrationAndQuantizedMemo)
{
    SimConfig config = reducedConfig();
    config.migrationEnabled = true;
    config.dvfsMemoQuantC = 0.25;
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m = sim.run();
    EXPECT_GT(m.jobsCompleted, 0u);
}

TEST(Invariant, TemperatureFieldAcceptsPhysicalValues)
{
    invariant::checkTemperatureField("ok", {18.0, 95.0, -40.0});
    invariant::checkFieldsClose("ok", {1.0, 2.0}, {1.0, 2.0 + 1e-9},
                                1e-6);
}

TEST(InvariantDeath, NonFiniteTemperatureTrips)
{
    if (!kChecksEnabled)
        GTEST_SKIP() << "DENSIM_CHECKS not compiled in";
    const std::vector<double> bad{
        20.0, std::numeric_limits<double>::quiet_NaN()};
    EXPECT_DEATH(invariant::checkTemperatureField("field", bad),
                 "invariant violated");
}

TEST(InvariantDeath, SubAbsoluteZeroTrips)
{
    if (!kChecksEnabled)
        GTEST_SKIP() << "DENSIM_CHECKS not compiled in";
    EXPECT_DEATH(
        invariant::checkTemperatureField("field", {20.0, -300.0}),
        "absolute zero");
}

TEST(InvariantDeath, FieldDriftBeyondBoundTrips)
{
    if (!kChecksEnabled)
        GTEST_SKIP() << "DENSIM_CHECKS not compiled in";
    EXPECT_DEATH(invariant::checkFieldsClose("field", {1.0}, {1.1},
                                             1e-6),
                 "drift bound");
}

// ------------------------------------------------ coupling envelope

CouplingMap
smallMap()
{
    std::vector<SocketSite> sites;
    for (int i = 0; i < 4; ++i)
        sites.push_back(SocketSite{1.6 * i, 0, Cfm(6.35)});
    return CouplingMap(sites, CouplingParams{});
}

TEST(Invariant, CouplingFieldEnvelopeAcceptsTrueField)
{
    const CouplingMap map = smallMap();
    const std::vector<double> powers{20.0, 15.0, 10.0, 5.0};
    const std::vector<double> field =
        map.ambientTemps(powers, Celsius(18.0));
    map.checkAmbientFieldPhysics(powers, Celsius(18.0), field);
}

TEST(InvariantDeath, CouplingFieldBelowInletTrips)
{
    if (!kChecksEnabled)
        GTEST_SKIP() << "DENSIM_CHECKS not compiled in";
    const CouplingMap map = smallMap();
    const std::vector<double> powers{20.0, 15.0, 10.0, 5.0};
    std::vector<double> field =
        map.ambientTemps(powers, Celsius(18.0));
    field[2] = 17.0; // Cooler than the inlet: unphysical.
    EXPECT_DEATH(map.checkAmbientFieldPhysics(powers, Celsius(18.0),
                                              field),
                 "heated air cannot cool");
}

TEST(InvariantDeath, CouplingFieldAboveEnvelopeTrips)
{
    if (!kChecksEnabled)
        GTEST_SKIP() << "DENSIM_CHECKS not compiled in";
    const CouplingMap map = smallMap();
    const std::vector<double> powers{20.0, 15.0, 10.0, 5.0};
    std::vector<double> field =
        map.ambientTemps(powers, Celsius(18.0));
    field[3] += 1000.0; // More enthalpy than the whole server emits.
    EXPECT_DEATH(map.checkAmbientFieldPhysics(powers, Celsius(18.0),
                                              field),
                 "first-law envelope");
}

// ------------------------------------------------- RC cache validity

RCNetwork
smallNetwork()
{
    RCNetwork net;
    const NodeId a = net.addNode("die", JoulePerKelvin(10.0));
    const NodeId b = net.addNode("sink", JoulePerKelvin(200.0));
    net.connect(a, b, KelvinPerWatt(0.2));
    net.connectAmbient(b, KelvinPerWatt(0.5));
    return net;
}

TEST(Invariant, CachedSolveSurvivesParanoidValidation)
{
    // With DENSIM_PARANOID compiled in every steadyState() call
    // checks its own nodal heat residual and first-law balance
    // against the live network; repeated cached solves must pass.
    RCNetwork net = smallNetwork();
    for (double p = 5.0; p <= 25.0; p += 5.0) {
        const std::vector<double> temps =
            net.steadyState({p, 0.0}, Celsius(20.0));
        EXPECT_NEAR(net.ambientHeatFlow(temps, Celsius(20.0)).value(),
                    p, 1e-9 * p);
    }
}

TEST(InvariantDeath, CorruptedFactorizationCacheTrips)
{
    if (!kParanoidEnabled)
        GTEST_SKIP() << "DENSIM_PARANOID not compiled in";
    RCNetwork net = smallNetwork();
    (void)net.steadyState({10.0, 0.0}, Celsius(20.0)); // Fill cache.
    net.debugCorruptFactorization();
    EXPECT_DEATH((void)net.steadyState({10.0, 0.0}, Celsius(20.0)),
                 "cached factorization is stale");
}

// ------------------------------------------------------- event heap

TEST(Invariant, EventHeapValidatesAfterRandomOperations)
{
    EventHeap heap;
    heap.reset(24);
    std::uint64_t lcg = 7;
    auto next_u = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    for (int step = 0; step < 500; ++step) {
        const auto id = static_cast<std::size_t>(next_u() % 24);
        if (next_u() % 4 == 0)
            heap.erase(id);
        else
            heap.upsert(id,
                        static_cast<double>(next_u() % 1000) * 0.5);
        heap.checkInvariants();
    }
}

} // namespace
} // namespace densim
