file(REMOVE_RECURSE
  "CMakeFiles/densim_sched.dir/adaptive_random.cc.o"
  "CMakeFiles/densim_sched.dir/adaptive_random.cc.o.d"
  "CMakeFiles/densim_sched.dir/balanced.cc.o"
  "CMakeFiles/densim_sched.dir/balanced.cc.o.d"
  "CMakeFiles/densim_sched.dir/balanced_locations.cc.o"
  "CMakeFiles/densim_sched.dir/balanced_locations.cc.o.d"
  "CMakeFiles/densim_sched.dir/coolest_first.cc.o"
  "CMakeFiles/densim_sched.dir/coolest_first.cc.o.d"
  "CMakeFiles/densim_sched.dir/coolest_neighbors.cc.o"
  "CMakeFiles/densim_sched.dir/coolest_neighbors.cc.o.d"
  "CMakeFiles/densim_sched.dir/coupling_predictor.cc.o"
  "CMakeFiles/densim_sched.dir/coupling_predictor.cc.o.d"
  "CMakeFiles/densim_sched.dir/factory.cc.o"
  "CMakeFiles/densim_sched.dir/factory.cc.o.d"
  "CMakeFiles/densim_sched.dir/hottest_first.cc.o"
  "CMakeFiles/densim_sched.dir/hottest_first.cc.o.d"
  "CMakeFiles/densim_sched.dir/min_hr.cc.o"
  "CMakeFiles/densim_sched.dir/min_hr.cc.o.d"
  "CMakeFiles/densim_sched.dir/prediction.cc.o"
  "CMakeFiles/densim_sched.dir/prediction.cc.o.d"
  "CMakeFiles/densim_sched.dir/predictive.cc.o"
  "CMakeFiles/densim_sched.dir/predictive.cc.o.d"
  "CMakeFiles/densim_sched.dir/random_sched.cc.o"
  "CMakeFiles/densim_sched.dir/random_sched.cc.o.d"
  "CMakeFiles/densim_sched.dir/scheduler.cc.o"
  "CMakeFiles/densim_sched.dir/scheduler.cc.o.d"
  "libdensim_sched.a"
  "libdensim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
