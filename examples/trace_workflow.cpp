/**
 * @file
 * Reproducible trace workflow: capture an Xperf-style job trace from
 * the probabilistic workload model, save it to disk, reload it, and
 * replay the identical job stream through two schedulers — the
 * methodology the paper uses to compare schemes on equal terms
 * (Sec. III-A).
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/trace_workflow [trace-file]
 */

#include <iostream>
#include <string>

#include "core/dense_server_sim.hh"
#include "sched/factory.hh"
#include "util/table.hh"
#include "workload/xperf_trace.hh"

using namespace densim;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/densim_vdi.trace";

    SimConfig config;
    config.workload = WorkloadSet::Computation;
    config.load = 0.75;
    config.socketTauS = 3.0;
    config.simTimeS = 5.0;
    config.warmupS = 2.0;

    // 1. Capture: generate the arrival stream once and persist it.
    JobGenerator gen(config.workload, config.load, 180, /*seed=*/2019);
    XperfTrace captured = XperfTrace::capture(gen, 120000);
    captured.saveFile(path);
    std::cout << "Captured " << captured.jobs().size()
              << " jobs to " << path << "\n";

    // 2. Reload: a different process/session would start here.
    const XperfTrace trace = XperfTrace::loadFile(path);
    std::vector<Job> jobs;
    for (const Job &job : trace.jobs()) {
        if (job.arrivalS < config.simTimeS)
            jobs.push_back(job);
    }
    std::cout << "Replaying " << jobs.size() << " jobs ("
              << config.simTimeS << " s window) through two "
              << "schedulers...\n\n";

    // 3. Replay the identical stream under both policies.
    TableWriter table({"Scheme", "Completed", "RuntimeExp", "AvgFreq",
                       "Energy (kJ)", "MaxChipT (C)"});
    double cf_expansion = 0.0;
    for (const char *scheme : {"CF", "CP"}) {
        DenseServerSim sim(config, makeScheduler(scheme));
        const SimMetrics m = sim.run(jobs);
        if (std::string(scheme) == "CF")
            cf_expansion = m.runtimeExpansion.mean();
        table.newRow()
            .cell(scheme)
            .cell(static_cast<long long>(m.jobsCompleted))
            .cell(m.runtimeExpansion.mean(), 3)
            .cell(m.avgRelFreq(), 3)
            .cell(m.energyJ / 1e3, 1)
            .cell(m.maxChipTempC, 1);
    }
    table.print(std::cout);
    std::cout << "\nSame jobs, same arrivals — only the placement "
                 "policy differs.\n";
    (void)cf_expansion;
    return 0;
}
