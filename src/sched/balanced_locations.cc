#include "sched/balanced_locations.hh"

namespace densim {

std::size_t
BalancedLocations::pick(const Job &job, const SchedContext &ctx)
{
    (void)job;
    if (cachedFor_ != ctx.topo) {
        pos_.resize(ctx.topo->numSockets());
        for (std::size_t s = 0; s < pos_.size(); ++s)
            pos_[s] = ctx.topo->streamPosOf(s);
        cachedFor_ = ctx.topo;
    }
    return pickMinBy(ctx, pos_.data(), 1e-9, true);
}

} // namespace densim
