// Ill-formed: scaling a temperature point is meaningless (2 x 20 C is
// not 40 C in any physical sense); only deltas scale.
#include "core/units.hh"

int
main()
{
    const densim::Celsius t(20.0);
    return (t * 2.0).value() > 0.0 ? 0 : 1;
}
