/**
 * @file
 * Crash-safe checkpoint/restore of a running simulation
 * (DESIGN.md Sec. 16).
 *
 * A checkpoint captures the complete mutable state of an open run at
 * an epoch (or fleet exchange-window) boundary — SoA socket banks,
 * job backlog and queue, event-heap membership, every RNG stream
 * position, fault timeline cursor and escalation ladder, DVFS memo
 * and prediction cache, obs counters/gauges/trace/timeline cursor,
 * and (for a fleet) the arrival lookahead, dispatcher cursor and
 * every shard — such that resuming reproduces the uninterrupted run
 * *bit for bit*: hex-float-equal SimMetrics/FleetMetrics and
 * byte-identical JSONL sinks (pinned by tests/ckpt_test.cc).
 *
 * File format, little-endian throughout:
 *
 *   magic   8 bytes  "DSIMCKPT"
 *   u32     version  (kVersion; older/newer files are refused)
 *   u32     kind     (1 = engine snapshot, 2 = fleet snapshot)
 *   u64     digest   stateDigest(): FNV-1a 64 over the policy name
 *                    and the full serialized config with the ckpt.*
 *                    knobs cleared — a snapshot must refuse to load
 *                    into a differently-configured engine, but moving
 *                    or re-cadencing the checkpoint itself must not
 *                    invalidate it
 *   u64     section count
 *   then per section: u32 id, u64 payload length, u64 FNV-1a CRC,
 *   payload bytes.
 *
 * Loaders validate the header, every section length and every CRC
 * into an in-memory section map *before* mutating any engine state,
 * and every apply-time range check throws ckpt::CkptError — so a
 * truncated, corrupted or hostile file yields a one-line actionable
 * error, never UB and never a partially-restored engine (the engine
 * stays closed; beginRun() fully re-initializes it).
 *
 * What is serialized vs. rebuilt: every mutable floating-point
 * accumulator and per-socket array is stored as raw IEEE-754 bits;
 * everything construction-derived (topology, coupling LU cache,
 * P-state tables, fault timeline, sink caches) is rebuilt from
 * SimConfig, and the completion heap is re-populated from the busy
 * flags in ascending-id order — observably exact, because the heap's
 * (key, id) order is total and only top()/contains() are read.
 */

#ifndef DENSIM_CKPT_CHECKPOINT_HH
#define DENSIM_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "ckpt/serial.hh"

namespace densim {
class DenseServerSim;
class FleetSim;
struct SimConfig;
} // namespace densim

namespace densim::ckpt {

/** First 8 bytes of every densim checkpoint. */
inline constexpr char kMagic[8] = {'D', 'S', 'I', 'M',
                                   'C', 'K', 'P', 'T'};

/** Format version; bumped on any wire-format change. */
inline constexpr std::uint32_t kVersion = 1;

/** What a checkpoint file holds. */
enum class SnapshotKind : std::uint32_t
{
    Engine = 1, //!< One DenseServerSim mid-run.
    Fleet = 2,  //!< A FleetSim: fleet core + every shard.
};

/** How restore treats the serialized RNG streams. */
enum class RestoreMode
{
    /** Resume the exact streams — the bit-identical continuation. */
    Exact,
    /**
     * Reseed every stochastic stream via domainSeed(seed, forkId,
     * tag): the restored state is identical but the future diverges,
     * turning one checkpoint into an ensemble of what-if branches.
     */
    Fork,
};

/** Stream tags for domainSeed() under RestoreMode::Fork. */
namespace ckpt_stream {
constexpr std::uint64_t kForkPolicy = 0xf04bb01a1c7ULL;
constexpr std::uint64_t kForkSensor = 0xf04b5e45027ULL;
constexpr std::uint64_t kForkFault = 0xf04bfa0172fULL;
constexpr std::uint64_t kForkArrivals = 0xf04ba2217a1ULL;
} // namespace ckpt_stream

/**
 * Config/policy identity a snapshot is validated against: FNV-1a 64
 * over the policy name and saveConfig() of @p config with ckptPath /
 * ckptEveryS cleared (where a snapshot lives must never decide
 * whether it loads).
 */
std::uint64_t stateDigest(const std::string &policy,
                          const SimConfig &config);

/** Serialize the open run of @p sim; fatal() if no run is open. */
std::string saveEngine(const DenseServerSim &sim);

/**
 * Restore @p sim from a saveEngine() image. The engine must be
 * closed (fatal() otherwise — restoring over an open run, including
 * a previous restore, is API misuse); the image must carry the same
 * stateDigest() as @p sim's config and policy. Throws CkptError on
 * any structural defect, leaving the engine closed and fully
 * reusable via beginRun(). On success the run is open at the saved
 * epoch boundary: advanceEpoch()/finishRun() continue it.
 */
void restoreEngine(DenseServerSim &sim, std::string_view image,
                   RestoreMode mode = RestoreMode::Exact,
                   std::uint64_t fork_id = 0);

/** Serialize the open run of @p fleet; fatal() if none is open. */
std::string saveFleet(const FleetSim &fleet);

/** Fleet counterpart of restoreEngine(), same contract per shard. */
void restoreFleet(FleetSim &fleet, std::string_view image,
                  RestoreMode mode = RestoreMode::Exact,
                  std::uint64_t fork_id = 0);

/**
 * Write @p image to @p path atomically (temp + fsync + rename, so a
 * crash mid-write leaves the previous checkpoint intact); fatal() on
 * I/O failure.
 */
void writeCheckpointFile(const std::string &path,
                         const std::string &image);

/** Slurp @p path; throws CkptError when unreadable. */
std::string readCheckpointFile(const std::string &path);

/**
 * Flush the configured obs sinks (trace / timeline / fault log) of a
 * mid-run engine or fleet — the graceful-shutdown path, so a killed
 * run still leaves its diagnostics on disk.
 */
void flushSinks(DenseServerSim &sim);
void flushSinks(FleetSim &fleet);

} // namespace densim::ckpt

#endif // DENSIM_CKPT_CHECKPOINT_HH
