/**
 * @file
 * Temperature-dependent leakage power.
 *
 * The paper's methodology (Sec. III-A) estimates leakage as 30 % of
 * TDP at the 90 C characterization temperature and compensates power
 * for chip temperature elsewhere. We model leakage as linear in
 * temperature around that reference — adequate over the 50–95 C range
 * the simulator operates in — with a floor at a small fraction of the
 * reference value.
 */

#ifndef DENSIM_POWER_LEAKAGE_HH
#define DENSIM_POWER_LEAKAGE_HH

#include "core/units.hh"

namespace densim {

/** Leakage model anchored at a reference temperature. */
class LeakageModel
{
  public:
    /**
     * @param tdp Socket TDP (X2150: 22 W).
     * @param frac_at_ref Leakage as a fraction of TDP at the
     *        reference temperature (paper: 0.30).
     * @param ref Reference temperature (paper: 90 C).
     * @param slope_per_c Relative leakage growth per Celsius
     *        (typical planar bulk: ~1.2 %/C).
     */
    explicit LeakageModel(Watts tdp, double frac_at_ref = 0.30,
                          Celsius ref = Celsius(90.0),
                          double slope_per_c = 0.012);

    /** X2150 leakage: 30 % of 22 W TDP at 90 C. */
    static const LeakageModel &x2150();

    /** Leakage power at chip temperature @p t. */
    Watts at(Celsius t) const;

    /** Leakage at the reference temperature. */
    Watts atRef() const { return Watts(refLeakW_); }

    Watts tdp() const { return Watts(tdpW_); }
    Celsius refTemperature() const { return Celsius(refC_); }

  private:
    double tdpW_;
    double refLeakW_;
    double refC_;
    double slopePerC_;
};

} // namespace densim

#endif // DENSIM_POWER_LEAKAGE_HH
