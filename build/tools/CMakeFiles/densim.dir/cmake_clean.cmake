file(REMOVE_RECURSE
  "CMakeFiles/densim.dir/densim_cli.cc.o"
  "CMakeFiles/densim.dir/densim_cli.cc.o.d"
  "densim"
  "densim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
