/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (a densim bug), fatal() for unusable user input (bad
 * configuration), warn()/inform() for non-fatal notices.
 */

#ifndef DENSIM_UTIL_LOGGING_HH
#define DENSIM_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace densim {

/** Verbosity levels for runtime messages. */
enum class LogLevel { Silent, Warning, Info };

/** Get the process-wide log level (default: Warning). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** What fatal() throws when the throwing mode is enabled. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * When enabled, fatal() throws FatalError instead of printing and
 * calling std::exit(1). Default off — the CLI's historical contract
 * (and the death tests pinning it) keep working. The keep-going
 * experiment harness enables it around worker runs so one cell's bad
 * configuration becomes a captured RunOutcome instead of taking the
 * whole sweep down. Process-global and sequentially consistent:
 * workers started while the mode is on observe it.
 */
bool fatalThrows();
void setFatalThrows(bool on);

/** RAII guard enabling the fatal-throws mode for a scope. */
class ScopedFatalThrows
{
  public:
    ScopedFatalThrows() : prev_(fatalThrows()) { setFatalThrows(true); }
    ~ScopedFatalThrows() { setFatalThrows(prev_); }
    ScopedFatalThrows(const ScopedFatalThrows &) = delete;
    ScopedFatalThrows &operator=(const ScopedFatalThrows &) = delete;

  private:
    bool prev_;
};

namespace detail {

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Abort with a message; use for conditions that indicate a bug in
 * densim itself regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...),
                      __FILE__, __LINE__);
}

/**
 * Exit with an error message; use for conditions caused by invalid
 * user-supplied configuration or input.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr (if log level permits). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message to stderr (if log level permits). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace densim

#endif // DENSIM_UTIL_LOGGING_HH
