/**
 * @file
 * Unit tests for the power substrate: P-state table, leakage model,
 * and the DVFS decisions of the power manager (steady, responsive,
 * capped/boost-dwell variants).
 */

#include <gtest/gtest.h>

#include "power/leakage.hh"
#include "power/power_manager.hh"
#include "power/pstate.hh"
#include "workload/curves.hh"

namespace densim {
namespace {

TEST(PState, X2150TableMatchesDatasheet)
{
    const auto &table = PStateTable::x2150();
    ASSERT_EQ(table.size(), 5u);
    EXPECT_DOUBLE_EQ(table.slowest().freqMhz, 1100.0);
    EXPECT_DOUBLE_EQ(table.fastest().freqMhz, 1900.0);
    EXPECT_FALSE(table.slowest().boost);
    EXPECT_TRUE(table.fastest().boost);
}

TEST(PState, StepsAre200Mhz)
{
    const auto &table = PStateTable::x2150();
    for (std::size_t i = 1; i < table.size(); ++i)
        EXPECT_DOUBLE_EQ(table.at(i).freqMhz - table.at(i - 1).freqMhz,
                         200.0);
}

TEST(PState, HighestSustainedIs1500)
{
    const auto &table = PStateTable::x2150();
    const std::size_t idx = table.highestSustainedIndex();
    EXPECT_DOUBLE_EQ(table.at(idx).freqMhz, 1500.0);
    EXPECT_FALSE(table.at(idx).boost);
    EXPECT_TRUE(table.at(idx + 1).boost);
}

TEST(PState, IndexOfFindsStates)
{
    const auto &table = PStateTable::x2150();
    EXPECT_EQ(table.indexOf(1100.0), 0u);
    EXPECT_EQ(table.indexOf(1900.0), 4u);
}

TEST(PState, IndexOfUnknownIsFatal)
{
    EXPECT_EXIT(PStateTable::x2150().indexOf(1234.0),
                ::testing::ExitedWithCode(1), "no state");
}

TEST(PState, RelativeFrequency)
{
    const auto &table = PStateTable::x2150();
    EXPECT_DOUBLE_EQ(table.relativeFreq(4), 1.0);
    EXPECT_NEAR(table.relativeFreq(0), 1100.0 / 1900.0, 1e-12);
}

TEST(PState, NonAscendingIsFatal)
{
    EXPECT_EXIT(PStateTable(std::vector<PState>{{1500.0, false},
                                                {1300.0, false}}),
                ::testing::ExitedWithCode(1), "ascending");
}

TEST(PState, BoostBelowSustainedIsFatal)
{
    EXPECT_EXIT(PStateTable(std::vector<PState>{{1300.0, true},
                                                {1500.0, false}}),
                ::testing::ExitedWithCode(1), "boost");
}

TEST(Leakage, ThirtyPercentOfTdpAtReference)
{
    const LeakageModel &leak = LeakageModel::x2150();
    EXPECT_NEAR(leak.at(Celsius(90.0)).value(), 0.30 * 22.0, 1e-9);
    EXPECT_DOUBLE_EQ(leak.atRef().value(), 6.6);
}

TEST(Leakage, GrowsWithTemperature)
{
    const LeakageModel &leak = LeakageModel::x2150();
    EXPECT_GT(leak.at(Celsius(95.0)).value(), leak.at(Celsius(90.0)).value());
    EXPECT_LT(leak.at(Celsius(60.0)).value(), leak.at(Celsius(90.0)).value());
}

TEST(Leakage, LinearSlopeAroundReference)
{
    const LeakageModel &leak = LeakageModel::x2150();
    const double slope = (leak.at(Celsius(91.0)).value() - leak.at(Celsius(89.0)).value()) / 2.0;
    EXPECT_NEAR(slope, 6.6 * 0.012, 1e-9);
}

TEST(Leakage, FloorsAtColdTemperatures)
{
    const LeakageModel &leak = LeakageModel::x2150();
    EXPECT_NEAR(leak.at(Celsius(-100.0)).value(), 0.2 * 6.6, 1e-9);
}

class PowerManagerTest : public ::testing::Test
{
  protected:
    PowerManagerTest()
        : pm_(PStateTable::x2150(), SimplePeakModel(), Celsius(95.0),
              0.10)
    {
    }

    PowerManager pm_;
    const LeakageModel &leak_ = LeakageModel::x2150();
    const FreqCurve &comp_ = freqCurveFor(WorkloadSet::Computation);
};

TEST_F(PowerManagerTest, CoolAmbientAllowsBoost)
{
    const DvfsDecision d =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(20.0), HeatSink::fin18());
    EXPECT_DOUBLE_EQ(d.freqMhz, 1900.0);
    EXPECT_TRUE(d.feasible);
}

TEST_F(PowerManagerTest, HotAmbientThrottles)
{
    const DvfsDecision cool =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(30.0), HeatSink::fin18());
    const DvfsDecision hot =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(65.0), HeatSink::fin18());
    EXPECT_LT(hot.freqMhz, cool.freqMhz);
}

TEST_F(PowerManagerTest, FrequencyMonotoneInAmbient)
{
    double last = 1e9;
    for (double amb = 20.0; amb <= 90.0; amb += 2.5) {
        const DvfsDecision d =
            pm_.chooseAtAmbient(comp_, leak_, Celsius(amb), HeatSink::fin18());
        EXPECT_LE(d.freqMhz, last);
        last = d.freqMhz;
    }
}

TEST_F(PowerManagerTest, InfeasibleFallsToSlowestState)
{
    const DvfsDecision d =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(94.0), HeatSink::fin18());
    EXPECT_DOUBLE_EQ(d.freqMhz, 1100.0);
    EXPECT_FALSE(d.feasible);
}

TEST_F(PowerManagerTest, FeasibleDecisionRespectsLimit)
{
    for (double amb = 20.0; amb <= 80.0; amb += 5.0) {
        const DvfsDecision d =
            pm_.chooseAtAmbient(comp_, leak_, Celsius(amb), HeatSink::fin30());
        if (d.feasible) {
            EXPECT_LE(d.predictedPeak.value(), 95.0 + 1e-9);
        }
    }
}

TEST_F(PowerManagerTest, BetterSinkSustainsHigherFrequency)
{
    // At an ambient where the 18-fin sink throttles, the 30-fin sink
    // should hold a higher state — the Sec. II design rationale.
    const double amb = 62.0;
    const DvfsDecision d18 =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(amb), HeatSink::fin18());
    const DvfsDecision d30 =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(amb), HeatSink::fin30());
    EXPECT_GT(d30.freqMhz, d18.freqMhz);
}

TEST_F(PowerManagerTest, CappedSearchNeverBoosts)
{
    const std::size_t sustained =
        PStateTable::x2150().highestSustainedIndex();
    for (double amb = 20.0; amb <= 80.0; amb += 10.0) {
        const DvfsDecision d = pm_.chooseAtAmbientCapped(
            comp_, leak_, Celsius(amb), HeatSink::fin18(), sustained);
        EXPECT_LE(d.freqMhz, 1500.0);
    }
}

TEST_F(PowerManagerTest, CappedEqualsUncappedWhenFullRange)
{
    for (double amb = 20.0; amb <= 80.0; amb += 7.0) {
        const DvfsDecision a =
            pm_.chooseAtAmbient(comp_, leak_, Celsius(amb), HeatSink::fin30());
        const DvfsDecision b = pm_.chooseAtAmbientCapped(
            comp_, leak_, Celsius(amb), HeatSink::fin30(), 4);
        EXPECT_EQ(a.pstate, b.pstate);
    }
}

TEST_F(PowerManagerTest, LeakageCompensationSecondPass)
{
    // The decision's power must reflect leakage at the *predicted*
    // temperature, not the 90 C characterization point.
    const DvfsDecision d =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(20.0), HeatSink::fin30());
    const double dyn =
        pm_.dynamicPower(comp_, leak_, d.pstate).value();
    // powerW carries leakage at the first-pass temperature estimate;
    // the second-pass temperature is slightly cooler, so allow the
    // one-iteration gap.
    EXPECT_NEAR(d.power.value(),
                dyn + leak_.at(d.predictedPeak).value(), 0.5);
    // Predicted peak is well below 90 C here, so power is below the
    // 90 C characterization value.
    EXPECT_LT(d.power.value(), comp_.totalPowerAt90C[d.pstate]);
}

TEST_F(PowerManagerTest, DynamicPowerPositiveAndIncreasing)
{
    double last = 0.0;
    for (std::size_t i = 0; i < PStateTable::x2150().size(); ++i) {
        const double dyn =
            pm_.dynamicPower(comp_, leak_, i).value();
        EXPECT_GT(dyn, 0.0);
        EXPECT_GT(dyn, last);
        last = dyn;
    }
}

TEST_F(PowerManagerTest, GatedPowerIsTenPercentTdp)
{
    EXPECT_NEAR(pm_.gatedPower(leak_).value(), 2.2, 1e-9);
}

TEST_F(PowerManagerTest, SteadyIncludesSelfHeating)
{
    // chooseSteady accounts for kappa * P self ambient rise, so it
    // must throttle earlier than chooseAtAmbient at the same entry.
    const double entry = 40.0;
    const DvfsDecision plain =
        pm_.chooseAtAmbient(comp_, leak_, Celsius(entry), HeatSink::fin18());
    const DvfsDecision steady =
        pm_.chooseSteady(comp_, leak_, Celsius(entry),
                         KelvinPerWatt(1.5), HeatSink::fin18());
    EXPECT_LE(steady.freqMhz, plain.freqMhz);
}

TEST_F(PowerManagerTest, ResponsiveUsesSinkState)
{
    // With a cold sink, the responsive governor grants more than the
    // steady one; with a fully soaked sink they agree.
    const double entry = 30.0;
    const KelvinPerWatt kappa(1.5);
    const DvfsDecision cold = pm_.chooseResponsive(
        comp_, leak_, Celsius(entry), kappa, CelsiusDelta(0.0),
        HeatSink::fin18());
    const DvfsDecision steady = pm_.chooseSteady(
        comp_, leak_, Celsius(entry), kappa, HeatSink::fin18());
    EXPECT_GE(cold.freqMhz, steady.freqMhz);

    const CelsiusDelta soaked_rise =
        steady.power * HeatSink::fin18().rExt;
    const DvfsDecision soaked = pm_.chooseResponsive(
        comp_, leak_, Celsius(entry), kappa, soaked_rise,
        HeatSink::fin18());
    EXPECT_NEAR(soaked.freqMhz, steady.freqMhz, 200.0 + 1e-9);
}

TEST_F(PowerManagerTest, StorageNeverThrottlesAtModerateAmbient)
{
    // Storage draws 10.5 W at most — it holds boost at ambients that
    // throttle Computation (the Sec. V "muted Storage behaviour").
    const auto &storage = freqCurveFor(WorkloadSet::Storage);
    const DvfsDecision d =
        pm_.chooseAtAmbient(storage, leak_, Celsius(60.0), HeatSink::fin18());
    EXPECT_DOUBLE_EQ(d.freqMhz, 1900.0);
}

TEST_F(PowerManagerTest, WrongCurveSizePanics)
{
    FreqCurve bad;
    bad.totalPowerAt90C = {10.0, 11.0};
    bad.perfRel = {0.9, 1.0};
    EXPECT_DEATH(pm_.chooseAtAmbient(bad, leak_, Celsius(30.0),
                                     HeatSink::fin18()),
                 "P-states");
}

} // namespace
} // namespace densim
