/**
 * @file
 * FNV-1a 64-bit hashing for stable run digests.
 *
 * The keep-going experiment harness identifies a grid cell by a
 * digest of (scheduler name, serialized configuration) so a resumed
 * sweep can skip cells that already completed. FNV-1a is portable,
 * dependency-free and stable across platforms — exactly the
 * properties a resume manifest needs (it is *not* cryptographic, and
 * does not need to be).
 */

#ifndef DENSIM_UTIL_DIGEST_HH
#define DENSIM_UTIL_DIGEST_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace densim {

inline constexpr std::uint64_t kFnv1a64Offset =
    1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ULL;

/** Fold @p data into a running FNV-1a 64 hash @p h. */
inline std::uint64_t
fnv1a64(std::string_view data, std::uint64_t h = kFnv1a64Offset)
{
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnv1a64Prime;
    }
    return h;
}

/** @p h as 16 lowercase hex digits. */
inline std::string
hex64(std::uint64_t h)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

} // namespace densim

#endif // DENSIM_UTIL_DIGEST_HH
