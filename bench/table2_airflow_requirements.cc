/**
 * @file
 * Table II — airflow requirements per 1U for a 20 C inlet-to-outlet
 * rise across server classes, from the first law of thermodynamics.
 *
 * Paper values: 1U 18.30 CFM, 2U 12.94, Other 10.03, Blade 37.05,
 * DensityOpt 51.74.
 */

#include <iostream>

#include "airflow/first_law.hh"
#include "survey/survey.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Table II: airflow requirements (DeltaT = 20 C) "
                 "===\n\n";

    TableWriter table({"Server Size", "Power per 1U (W)",
                       "Airflow (CFM) per 1U", "Paper CFM"});
    const std::vector<double> paper{18.30, 12.94, 10.03, 37.05, 51.74};
    std::size_t i = 0;
    for (const ClassModel &m : fig1ClassModels()) {
        table.newRow()
            .cell(serverClassName(m.cls))
            .cell(m.meanPowerPerU, 0)
            .cell(requiredAirflow(Watts(m.meanPowerPerU),
                                  CelsiusDelta(20.0))
                      .value(),
                  2)
            .cell(paper[i++], 2);
    }
    table.print(std::cout);
    std::cout << "\nFirst-law constant: "
              << formatFixed(kCelsiusPerWattPerCfm, 3)
              << " C*CFM/W (industry ~1.76)\n";
    return 0;
}
