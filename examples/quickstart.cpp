/**
 * @file
 * Quickstart: simulate the 180-socket SUT at one load under three
 * scheduling policies and compare performance.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart [load] [workload]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;

int
main(int argc, char **argv)
{
    double load = argc > 1 ? std::atof(argv[1]) : 0.7;
    std::string set_name = argc > 2 ? argv[2] : "Computation";

    WorkloadSet set = WorkloadSet::Computation;
    for (WorkloadSet candidate : allWorkloadSets()) {
        if (set_name == workloadSetName(candidate))
            set = candidate;
    }

    SimConfig base;
    base.workload = set;
    base.load = load;
    // The steady thermal field is independent of the socket time
    // constant; scaling tau 30 s -> 3 s lets a seconds-long run
    // measure the same steady behaviour a paper-length (30 min) run
    // would.
    base.socketTauS = 3.0;
    base.simTimeS = 6.0;
    base.warmupS = 3.0;

    std::cout << "densim quickstart: 180-socket M700-class SUT, "
              << workloadSetName(set) << " workload at "
              << load * 100 << "% load\n\n";

    const std::vector<std::string> schemes{"CF", "HF", "Predictive",
                                           "CP"};
    std::vector<RunSpec> specs =
        makeGrid(schemes, set, {load}, base);
    std::vector<RunResult> results = runAll(specs);

    const SimMetrics &cf = results[0].metrics;
    TableWriter table({"Scheme", "Jobs", "RuntimeExp", "Perf vs CF",
                       "AvgFreq", "Boost%", "ED2 vs CF",
                       "MaxChipT(C)"});
    for (const RunResult &r : results) {
        table.newRow()
            .cell(r.spec.scheduler)
            .cell(static_cast<long long>(r.metrics.jobsCompleted))
            .cell(r.metrics.runtimeExpansion.mean(), 3)
            .cell(relativePerformance(r.metrics, cf), 3)
            .cell(r.metrics.avgRelFreq(), 3)
            .cell(100.0 * r.metrics.boostFraction(), 1)
            .cell(relativeEd2(r.metrics, cf), 3)
            .cell(r.metrics.maxChipTempC, 1);
    }
    table.print(std::cout);
    return 0;
}
