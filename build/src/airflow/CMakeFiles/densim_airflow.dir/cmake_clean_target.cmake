file(REMOVE_RECURSE
  "libdensim_airflow.a"
)
