/**
 * @file
 * Deterministic expansion of a FaultConfig into a time-ordered event
 * sequence.
 *
 * The timeline is a pure function of (FaultConfig, socket count, run
 * seed): no wall-clock, no global state, no dependence on how many
 * worker threads an experiment sweep uses — each simulation owns its
 * engine, and the engine owns its timeline, so the same seed always
 * reproduces the same events (the determinism contract of DESIGN.md
 * Sec. 11, pinned by tests/fault_test.cc across --threads 1/4/8).
 *
 * Affected sockets are drawn without replacement from the fault RNG
 * stream in a fixed category order (stuck, noisy, dropout, socket
 * failure), then all events are stably sorted by time, so equal-time
 * events keep that category order.
 */

#ifndef DENSIM_FAULT_FAULT_TIMELINE_HH
#define DENSIM_FAULT_FAULT_TIMELINE_HH

#include <cstddef>
#include <vector>

#include "fault/fault_config.hh"
#include "fault/fault_event.hh"

namespace densim {

/** The ordered fault events of one run. */
class FaultTimeline
{
  public:
    FaultTimeline() = default;

    /**
     * Expand @p config for a @p num_sockets server. Per-category
     * counts are clamped to the socket count; categories may overlap
     * (one socket can be both noisy and later fail outright).
     */
    FaultTimeline(const FaultConfig &config, std::size_t num_sockets,
                  std::uint64_t run_seed);

    /** Events sorted ascending by time (stable within a time). */
    const std::vector<FaultEvent> &events() const { return events_; }

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

  private:
    std::vector<FaultEvent> events_;
};

} // namespace densim

#endif // DENSIM_FAULT_FAULT_TIMELINE_HH
