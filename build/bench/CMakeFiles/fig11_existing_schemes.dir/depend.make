# Empty dependencies file for fig11_existing_schemes.
# This may be replaced when dependencies are built.
