#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace densim {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::cov() const
{
    const double m = mean();
    return m == 0.0 ? 0.0 : stddev() / m;
}

double
RunningStats::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::infinity();
}

double
RunningStats::max() const
{
    return count_ ? max_ : -std::numeric_limits<double>::infinity();
}

double
mean(const std::vector<double> &xs)
{
    RunningStats s;
    for (double x : xs)
        s.add(x);
    return s.mean();
}

double
stddev(const std::vector<double> &xs)
{
    RunningStats s;
    for (double x : xs)
        s.add(x);
    return s.stddev();
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    RunningStats s;
    for (double x : xs)
        s.add(x);
    return s.cov();
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        panic("percentile of empty sample");
    return *tryPercentile(std::move(xs), p);
}

std::optional<double>
tryPercentile(std::vector<double> xs, double p)
{
    if (p < 0.0 || p > 100.0)
        panic("percentile ", p, " outside [0, 100]");
    if (xs.empty())
        return std::nullopt;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(hi > lo) || bins == 0)
        panic("Histogram requires hi > lo and bins > 0");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<long>(std::floor((x - lo_) / width));
    idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    return counts_.at(i);
}

double
Histogram::binLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

} // namespace densim
