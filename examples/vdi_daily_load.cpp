/**
 * @file
 * VDI daily-load scenario: the SUT hosts virtual desktops whose
 * demand follows an office day — quiet overnight, a morning logon
 * ramp, sustained mid-day load with a lunch dip, and an evening
 * tail. The example sweeps that profile and compares the CF baseline
 * against the paper's CouplingPredictor at each phase, showing where
 * in the day coupling-aware placement pays off (the heavily loaded
 * hours).
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/vdi_daily_load
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "util/table.hh"

using namespace densim;

namespace {

struct Phase
{
    const char *name;
    double load;
    WorkloadSet mix;
};

} // namespace

int
main()
{
    // A compressed office day on the 180-socket VDI server.
    const std::vector<Phase> day{
        {"overnight", 0.10, WorkloadSet::Storage},
        {"logon ramp", 0.60, WorkloadSet::GeneralPurpose},
        {"morning peak", 0.75, WorkloadSet::Computation},
        {"lunch dip", 0.40, WorkloadSet::GeneralPurpose},
        {"afternoon peak", 0.80, WorkloadSet::Computation},
        {"evening tail", 0.30, WorkloadSet::GeneralPurpose},
    };

    std::cout << "VDI day on the M700-class SUT: CF vs "
                 "CouplingPredictor\n\n";

    std::vector<RunSpec> specs;
    for (const Phase &phase : day) {
        for (const char *scheme : {"CF", "CP"}) {
            RunSpec spec;
            spec.scheduler = scheme;
            spec.config.workload = phase.mix;
            spec.config.load = phase.load;
            spec.config.socketTauS = 3.0;
            spec.config.simTimeS = 6.0;
            spec.config.warmupS = 3.0;
            specs.push_back(spec);
        }
    }
    const auto results = runAll(specs);

    TableWriter table({"Phase", "Load", "Mix", "CF expansion",
                       "CP expansion", "CP gain", "CP energy (kJ)"});
    double worst_gain = 1e9, best_gain = 0.0;
    for (std::size_t i = 0; i < day.size(); ++i) {
        const SimMetrics &cf = results[2 * i].metrics;
        const SimMetrics &cp = results[2 * i + 1].metrics;
        const double gain = relativePerformance(cp, cf);
        worst_gain = std::min(worst_gain, gain);
        best_gain = std::max(best_gain, gain);
        table.newRow()
            .cell(day[i].name)
            .cell(day[i].load, 2)
            .cell(workloadSetName(day[i].mix))
            .cell(cf.runtimeExpansion.mean(), 3)
            .cell(cp.runtimeExpansion.mean(), 3)
            .cell(formatFixed(100 * (gain - 1), 1) + "%")
            .cell(cp.energyJ / 1e3, 1);
    }
    table.print(std::cout);

    std::cout << "\nCP tracks CF at light load and wins "
              << formatFixed(100 * (best_gain - 1), 1)
              << "% at the day's peaks — the robustness across load "
                 "the paper argues for.\n";
    return 0;
}
