// Ill-formed: Celsius and Kelvin points differ by scale; convert with
// toKelvin()/toCelsius() instead of subtracting across scales.
#include "core/units.hh"

int
main()
{
    const densim::Celsius c(45.0);
    const densim::Kelvin k(318.15);
    return (c - k).value() > 0.0 ? 0 : 1;
}
