/**
 * @file
 * Tiny filesystem probes for fail-fast output-path validation.
 *
 * densim writes its observability and fault sinks at the *end* of a
 * run; a typo'd directory used to surface as a fatal() minutes into a
 * sweep. SimConfig::validate() uses these helpers to reject an
 * unwritable sink directory before the first epoch executes.
 */

#ifndef DENSIM_UTIL_FS_HH
#define DENSIM_UTIL_FS_HH

#include <string>

namespace densim {

/**
 * Directory component of @p path ("." when the path has no
 * separator; "/" for root-level paths).
 */
std::string parentDir(const std::string &path);

/** Does @p dir exist, is it a directory, and is it writable? */
bool dirWritable(const std::string &dir);

/**
 * Would creating/overwriting @p path succeed? True iff its parent
 * directory exists and is writable. Does not touch the file.
 */
bool pathWritable(const std::string &path);

/**
 * Crash-safe whole-file write: @p contents goes to a temp file in
 * the same directory, is fsync'd, and is rename(2)'d over @p path.
 * Readers therefore see either the old file or the complete new one,
 * never a torn half-write. Returns false (and leaves no temp file
 * behind) on any I/O failure. Every durable densim artifact —
 * checkpoints, sweep summaries, report JSON — goes through this.
 */
bool atomicWriteFile(const std::string &path, const std::string &contents);

} // namespace densim

#endif // DENSIM_UTIL_FS_HH
