#include "obs/phase_profiler.hh"

#include "util/logging.hh"

namespace densim::obs {

const char *
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::ThermalStep:
        return "thermalStep";
    case Phase::PowerManage:
        return "powerManage";
    case Phase::ProcessWindow:
        return "processWindow";
    case Phase::Migration:
        return "migrations";
    case Phase::Count:
        break;
    }
    return "unknown";
}

void
PhaseProfiler::reset()
{
    totals_.fill(Totals{});
    depth_ = 0;
    origin_ = Clock::now();
}

void
PhaseProfiler::begin(Phase phase)
{
    static_cast<void>(phase);
    if (depth_ >= kMaxDepth)
        panic("obs: phase scopes nested deeper than ", kMaxDepth);
    starts_[depth_] = Clock::now();
    ++depth_;
}

void
PhaseProfiler::end(Phase phase)
{
    if (depth_ <= 0)
        panic("obs: phase scope end without a matching begin");
    --depth_;
    const Clock::time_point start = starts_[depth_];
    const Clock::time_point stop = Clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                             start)
            .count());
    Totals &t = totals_[static_cast<std::size_t>(phase)];
    ++t.calls;
    t.ns += ns;
    if (sink_ != nullptr && sink_->enabled()) {
        const auto since_origin =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                start - origin_)
                .count();
        sink_->addComplete(phaseName(phase), "engine",
                           static_cast<double>(since_origin) * 1e-3,
                           static_cast<double>(ns) * 1e-3, depth_);
    }
}

} // namespace densim::obs
