file(REMOVE_RECURSE
  "libdensim_workload.a"
)
