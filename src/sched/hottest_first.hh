/**
 * @file
 * Hottest First (HF) — the deliberate inverse of CF (Sec. IV-A):
 * place the job on the *hottest* idle socket. Counter-intuitively
 * competitive in thermally coupled servers because it concentrates
 * work downwind, leaving upstream sockets cool (Fig. 3).
 */

#ifndef DENSIM_SCHED_HOTTEST_FIRST_HH
#define DENSIM_SCHED_HOTTEST_FIRST_HH

#include "sched/scheduler.hh"

namespace densim {

/** Hottest First policy. */
class HottestFirst : public Scheduler
{
  public:
    const char *name() const override { return "HF"; }
    std::size_t pick(const Job &job, const SchedContext &ctx) override;
};

} // namespace densim

#endif // DENSIM_SCHED_HOTTEST_FIRST_HH
