#include "core/metrics_io.hh"

#include <iomanip>
#include <sstream>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/timeline.hh"

namespace densim {

namespace {

/**
 * Strict-JSON object writer. Tracks first-field placement itself so
 * every field goes through one path — the historical overload pair
 * disagreed about who writes the separating comma, which produced
 * objects like {,"a":1} whenever the first field was an integer. All
 * numbers go through obs::json::appendNumber, which emits `null` for
 * non-finite values instead of the bare `nan`/`inf` tokens no JSON
 * parser accepts (e.g. runtimeExpansionMax is -inf on a run that
 * completed zero jobs).
 */
class ObjectWriter
{
  public:
    void
    field(const char *name, double value)
    {
        key(name);
        obs::json::appendNumber(out_, value);
    }

    void
    field(const char *name, std::size_t value)
    {
        key(name);
        out_ += std::to_string(value);
    }

    std::string
    finish()
    {
        out_ += "}";
        return std::move(out_);
    }

  private:
    void
    key(const char *name)
    {
        out_ += first_ ? "\"" : ",\"";
        first_ = false;
        out_ += name;
        out_ += "\":";
    }

    std::string out_ = "{";
    bool first_ = true;
};

} // namespace

std::string
metricsToJson(const SimMetrics &m)
{
    ObjectWriter w;
    w.field("jobsArrived", m.jobsArrived);
    w.field("jobsCompleted", m.jobsCompleted);
    w.field("jobsUnfinished", m.jobsUnfinished);
    w.field("migrations", m.migrations);
    w.field("runtimeExpansionMean", m.runtimeExpansion.mean());
    w.field("runtimeExpansionMax", m.runtimeExpansion.max());
    w.field("serviceExpansionMean", m.serviceExpansion.mean());
    w.field("queueDelayMeanS", m.queueDelayS.mean());
    w.field("energyJ", m.energyJ);
    w.field("ed2", m.ed2());
    w.field("measuredS", m.measuredS);
    w.field("makespanS", m.makespanS);
    w.field("avgRelFreq", m.avgRelFreq());
    w.field("boostFraction", m.boostFraction());
    w.field("workFront", m.workFraction(m.front));
    w.field("workBack", m.workFraction(m.back));
    w.field("workEven", m.workFraction(m.even));
    w.field("freqFront", m.front.avgRelFreq());
    w.field("freqBack", m.back.avgRelFreq());
    w.field("chipTempMeanC", m.chipTempC.mean());
    w.field("maxChipTempC", m.maxChipTempC);
    return w.finish();
}

std::string
countersToJson(const obs::Registry &registry)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &c : registry.counters()) {
        if (!first)
            out += ",";
        first = false;
        obs::json::appendString(out, c.name);
        out += ":";
        out += std::to_string(c.value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &g : registry.gauges()) {
        if (!first)
            out += ",";
        first = false;
        obs::json::appendString(out, g.name);
        out += ":{\"value\":";
        obs::json::appendNumber(out, g.value);
        out += ",\"unit\":";
        obs::json::appendString(out, g.unit);
        out += "}";
    }
    out += "}}";
    return out;
}

std::string
timelineToJsonl(const SimMetrics &m)
{
    std::ostringstream os;
    obs::writeTimelineJsonl(os, m.timelineS, m.zoneAmbientC);
    return os.str();
}

std::string
metricsCsvHeader()
{
    return "scheduler,workload,load,jobsCompleted,runtimeExpansion,"
           "serviceExpansion,energyJ,ed2,avgRelFreq,boostFraction,"
           "workFront,workEven,freqFront,freqBack,maxChipTempC,"
           "migrations";
}

std::string
metricsToCsvRow(const std::string &scheduler,
                const std::string &workload, double load,
                const SimMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(10) << scheduler << "," << workload << ","
       << load << "," << m.jobsCompleted << ","
       << m.runtimeExpansion.mean() << "," << m.serviceExpansion.mean()
       << "," << m.energyJ << "," << m.ed2() << "," << m.avgRelFreq()
       << "," << m.boostFraction() << "," << m.workFraction(m.front)
       << "," << m.workFraction(m.even) << "," << m.front.avgRelFreq()
       << "," << m.back.avgRelFreq() << "," << m.maxChipTempC << ","
       << m.migrations;
    return os.str();
}

} // namespace densim
