/**
 * @file
 * Figure 8 / Figure 12 — the modeled cartridge geometry and the zone
 * organization of the SUT: 15 rows x 3 cartridges x 2 zones x 2
 * sockets, zones 1-6 along the airflow, 18-fin sinks on odd zones and
 * 30-fin on even, 1.6 in intra-cartridge and 3 in inter-cartridge
 * spacing.
 */

#include <iostream>

#include "server/sut.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figures 8 & 12: SUT geometry and zones ===\n\n";

    const ServerTopology sut = makeSutTopology();
    std::cout << "Sockets: " << sut.numSockets() << " ("
              << sut.numRows() << " rows x " << sut.socketsPerRow()
              << ")\nDegree of coupling (sockets per duct): "
              << sut.degreeOfCoupling() << "\nPer-socket airflow: "
              << formatFixed(sut.spec().perSocketCfm, 2)
              << " CFM, duct "
              << formatFixed(sut.zoneCfm().value(), 2)
              << " CFM\n\n";

    TableWriter table({"Zone", "Cartridge", "Stream pos (in)",
                       "Heat sink", "Half", "Sockets"});
    for (int zone = 1; zone <= sut.zonesPerRow(); ++zone) {
        const auto sockets = sut.socketsInZone(zone);
        const std::size_t probe = sockets.front();
        table.newRow()
            .cell(static_cast<long long>(zone))
            .cell(static_cast<long long>((zone - 1) / 2 + 1))
            .cell(sut.streamPosOf(probe), 1)
            .cell(sut.sinkOf(probe).name)
            .cell(sut.inFrontHalf(probe) ? "front" : "back")
            .cell(static_cast<long long>(sockets.size()));
    }
    table.print(std::cout);

    std::cout << "\nSide view of one row (airflow left to right):\n  "
                 "inlet -> ";
    for (int zone = 1; zone <= sut.zonesPerRow(); ++zone) {
        std::cout << "[z" << zone
                  << (zone % 2 == 1 ? ":18fin" : ":30fin") << "] ";
        if (zone % 2 == 0 && zone < sut.zonesPerRow())
            std::cout << "|gap| ";
    }
    std::cout << "-> outlet\n";
    return 0;
}
