file(REMOVE_RECURSE
  "CMakeFiles/densim_workload.dir/benchmark.cc.o"
  "CMakeFiles/densim_workload.dir/benchmark.cc.o.d"
  "CMakeFiles/densim_workload.dir/curves.cc.o"
  "CMakeFiles/densim_workload.dir/curves.cc.o.d"
  "CMakeFiles/densim_workload.dir/job_generator.cc.o"
  "CMakeFiles/densim_workload.dir/job_generator.cc.o.d"
  "CMakeFiles/densim_workload.dir/xperf_trace.cc.o"
  "CMakeFiles/densim_workload.dir/xperf_trace.cc.o.d"
  "libdensim_workload.a"
  "libdensim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/densim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
