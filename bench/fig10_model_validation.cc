/**
 * @file
 * Figure 10 — validation of the simplified peak-temperature model,
 * Eq. (1), against the detailed (HotSpot-class) model.
 *
 * Paper shape: the simplified model estimates peak temperature within
 * 2 C of the validated model across workloads, for both heat sinks.
 */

#include <cmath>
#include <algorithm>
#include <iostream>

#include "thermal/hotspot_model.hh"
#include "thermal/simple_peak_model.hh"
#include "util/table.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figure 10: Eq. (1) vs detailed model (ambient "
                 "45 C) ===\n\n";

    ChipStackParams params;
    const SimplePeakModel simple;

    TableWriter table({"Power (W)", "Sink", "Detailed MaxT (C)",
                       "Eq.(1) (C)", "Error (C)"});
    double worst = 0.0;
    for (const HeatSink *sink :
         {&HeatSink::fin18(), &HeatSink::fin30()}) {
        const HotSpotModel detailed(params, *sink);
        for (double power = 8.0; power <= 18.0; power += 1.0) {
            const PowerMap map = PowerMap::concentrated(
                params.grid, defaultHotFraction(Watts(power)),
                HotBlock{4, 2, 2});
            const auto field =
                detailed.steady(Watts(power), map, Celsius(45.0));
            const double predicted =
                simple.peak(Celsius(45.0), Watts(power), *sink)
                    .value();
            const double err = predicted - field.maxT;
            worst = std::max(worst, std::fabs(err));
            table.newRow()
                .cell(power, 0)
                .cell(sink->name)
                .cell(field.maxT, 2)
                .cell(predicted, 2)
                .cell(err, 2);
        }
    }
    table.print(std::cout);
    std::cout << "\nWorst absolute error: " << formatFixed(worst, 2)
              << " C (paper: within 2 C)\n";
    return 0;
}
