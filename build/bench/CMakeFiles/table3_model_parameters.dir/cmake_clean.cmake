file(REMOVE_RECURSE
  "CMakeFiles/table3_model_parameters.dir/table3_model_parameters.cc.o"
  "CMakeFiles/table3_model_parameters.dir/table3_model_parameters.cc.o.d"
  "table3_model_parameters"
  "table3_model_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_model_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
