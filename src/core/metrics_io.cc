#include "core/metrics_io.hh"

#include <iomanip>
#include <sstream>

namespace densim {

namespace {

void
field(std::ostringstream &os, const char *name, double value,
      bool first = false)
{
    if (!first)
        os << ",";
    os << "\"" << name << "\":" << value;
}

void
field(std::ostringstream &os, const char *name, std::size_t value)
{
    os << ",\"" << name << "\":" << value;
}

} // namespace

std::string
metricsToJson(const SimMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(10) << "{";
    field(os, "jobsArrived", static_cast<double>(m.jobsArrived), true);
    field(os, "jobsCompleted", m.jobsCompleted);
    field(os, "jobsUnfinished", m.jobsUnfinished);
    field(os, "migrations", m.migrations);
    field(os, "runtimeExpansionMean", m.runtimeExpansion.mean());
    field(os, "runtimeExpansionMax", m.runtimeExpansion.max());
    field(os, "serviceExpansionMean", m.serviceExpansion.mean());
    field(os, "queueDelayMeanS", m.queueDelayS.mean());
    field(os, "energyJ", m.energyJ);
    field(os, "ed2", m.ed2());
    field(os, "measuredS", m.measuredS);
    field(os, "makespanS", m.makespanS);
    field(os, "avgRelFreq", m.avgRelFreq());
    field(os, "boostFraction", m.boostFraction());
    field(os, "workFront", m.workFraction(m.front));
    field(os, "workBack", m.workFraction(m.back));
    field(os, "workEven", m.workFraction(m.even));
    field(os, "freqFront", m.front.avgRelFreq());
    field(os, "freqBack", m.back.avgRelFreq());
    field(os, "chipTempMeanC", m.chipTempC.mean());
    field(os, "maxChipTempC", m.maxChipTempC);
    os << "}";
    return os.str();
}

std::string
metricsCsvHeader()
{
    return "scheduler,workload,load,jobsCompleted,runtimeExpansion,"
           "serviceExpansion,energyJ,ed2,avgRelFreq,boostFraction,"
           "workFront,workEven,freqFront,freqBack,maxChipTempC,"
           "migrations";
}

std::string
metricsToCsvRow(const std::string &scheduler,
                const std::string &workload, double load,
                const SimMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(10) << scheduler << "," << workload << ","
       << load << "," << m.jobsCompleted << ","
       << m.runtimeExpansion.mean() << "," << m.serviceExpansion.mean()
       << "," << m.energyJ << "," << m.ed2() << "," << m.avgRelFreq()
       << "," << m.boostFraction() << "," << m.workFraction(m.front)
       << "," << m.workFraction(m.even) << "," << m.front.avgRelFreq()
       << "," << m.back.avgRelFreq() << "," << m.maxChipTempC << ","
       << m.migrations;
    return os.str();
}

} // namespace densim
