#include "thermal/entry_model.hh"

#include "airflow/first_law.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace densim {

EntryChainResult
serialChainEntryTemps(int degree_of_coupling, Watts socket_power,
                      Cfm per_socket_flow, Celsius inlet)
{
    if (degree_of_coupling < 1)
        fatal("serialChainEntryTemps: degree of coupling must be >= 1, "
              "got ",
              degree_of_coupling);
    const CelsiusDelta step =
        airTemperatureRise(socket_power, per_socket_flow);

    EntryChainResult result;
    result.entryTemps.reserve(degree_of_coupling);
    RunningStats stats;
    for (int k = 0; k < degree_of_coupling; ++k) {
        const Celsius t = inlet + step * static_cast<double>(k);
        result.entryTemps.push_back(t);
        stats.add(t.value());
    }
    result.mean = Celsius(stats.mean());
    result.meanRise = result.mean - inlet;
    result.cov = stats.cov();
    return result;
}

} // namespace densim
