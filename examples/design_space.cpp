/**
 * @file
 * Dense-server design-space exploration: how does the *organization*
 * of sockets change intra-server thermals before any scheduling is
 * applied?
 *
 * The example walks the Table I catalog, rebuilds each system's
 * serial airflow chain with the analytical entry-temperature model,
 * and then uses the full coupling map + Eq. (1) to answer the
 * designer's question for a custom build: at which degree of coupling
 * does the last socket in the chain stop sustaining its highest
 * non-boost frequency?
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/design_space
 */

#include <iostream>

#include "power/leakage.hh"
#include "power/power_manager.hh"
#include "server/catalog.hh"
#include "server/topology.hh"
#include "thermal/entry_model.hh"
#include "thermal/simple_peak_model.hh"
#include "util/table.hh"
#include "workload/curves.hh"

using namespace densim;

int
main()
{
    std::cout << "Part 1: Table I systems through the analytical "
                 "entry model (all sockets at TDP, 6.35 CFM each)\n\n";

    TableWriter catalog({"System", "TDP (W)", "Coupling", "Mean entry "
                         "rise (C)", "Last-socket rise (C)"});
    for (const SystemRecord &r : densityOptimizedSystems()) {
        const auto chain = serialChainEntryTemps(
            r.degreeOfCoupling, Watts(r.socketTdpW), Cfm(6.35),
            Celsius(18.0));
        catalog.newRow()
            .cell(r.details)
            .cell(r.socketTdpW, 1)
            .cell(static_cast<long long>(r.degreeOfCoupling))
            .cell(chain.meanRise.value(), 1)
            .cell(chain.entryTemps.back().value() - 18.0, 1);
    }
    catalog.print(std::cout);

    std::cout << "\nPart 2: custom M700-style builds — zones in "
                 "series vs sustained frequency of the last zone "
                 "(Computation at TDP on every socket)\n\n";

    const SimplePeakModel peak;
    const PowerManager pm(PStateTable::x2150(), peak, Celsius(95.0),
                          0.10);
    const LeakageModel &leak = LeakageModel::x2150();
    const auto &curve = freqCurveFor(WorkloadSet::Computation);

    TableWriter build({"Zones/row", "Coupling deg", "Last entry (C)",
                       "Last ambient (C)", "Sustained freq (MHz)"});
    for (int zones = 1; zones <= 10; ++zones) {
        TopologySpec spec;
        spec.rows = 1;
        spec.cartridgesPerRow = zones;
        spec.zonesPerCartridge = 1;
        spec.socketsPerZone = 2;
        const ServerTopology topo(spec);
        const CouplingMap map(topo.sites(), CouplingParams{});

        // Everyone runs Computation at the sustained state's power.
        const std::size_t sustained =
            PStateTable::x2150().highestSustainedIndex();
        std::vector<double> powers(topo.numSockets(),
                                   curve.totalPowerAt90C[sustained]);
        const std::size_t last = topo.numSockets() - 1;
        const double entry =
            map.entryTemp(last, powers, Celsius(18.0)).value();
        const double ambient =
            map.ambientTemp(last, powers, Celsius(18.0)).value();
        const DvfsDecision d = pm.chooseAtAmbientCapped(
            curve, leak, Celsius(ambient), topo.sinkOf(last),
            sustained);
        build.newRow()
            .cell(static_cast<long long>(zones))
            .cell(static_cast<long long>(topo.degreeOfCoupling()))
            .cell(entry, 1)
            .cell(ambient, 1)
            .cell(d.freqMhz, 0);
    }
    build.print(std::cout);

    std::cout << "\nThe knee in the last column is the densest build "
                 "whose tail socket still sustains 1500 MHz — the "
                 "designer's coupling budget.\n";
    return 0;
}
