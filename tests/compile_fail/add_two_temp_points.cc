// Ill-formed: temperature points are affine; 45 C + 45 C is not 90 C.
#include "core/units.hh"

int
main()
{
    const densim::Celsius a(45.0);
    const densim::Celsius b(45.0);
    return (a + b).value() > 0.0 ? 0 : 1;
}
