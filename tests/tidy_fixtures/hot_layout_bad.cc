// Known-bad fixture for densim-hot-layout: bit-packed vector<bool>
// and a node-based list in what stands in for SoA hot-path state.
#include <list>
#include <vector>

struct HotState
{
    std::vector<bool> busy;        // BAD: proxy references, no .data().
    std::list<double> completions; // BAD: non-contiguous nodes.
};
