// Known-good twin of hot_effects_bad.cc: the same three shapes pass
// once each effect is sanctioned by DENSIM_ALLOCATES(reason) on the
// function that owns it, or cut by DENSIM_COLD. A sanction covers the
// function's OWN effects only — that is why the deep-allocation case
// annotates the leaf, not the root.
#include <cstddef>
#include <vector>

#define DENSIM_HOT
#define DENSIM_COLD
#define DENSIM_ALLOCATES(reason)

namespace fixture {

DENSIM_ALLOCATES("fixture: scratch pre-reserved by every caller")
void leafAllocates(std::vector<double> &v)
{
    v.push_back(1.0);
}

void middleB(std::vector<double> &v)
{
    leafAllocates(v);
}

void middleA(std::vector<double> &v)
{
    middleB(v);
}

DENSIM_HOT void hotRoot(std::vector<double> &v)
{
    middleA(v);
}

class Policy
{
  public:
    virtual ~Policy() = default;
    DENSIM_HOT virtual std::size_t pick(std::size_t n) = 0;
};

class GreedyPolicy : public Policy
{
  public:
    DENSIM_ALLOCATES("fixture: resized once to the socket count")
    std::size_t pick(std::size_t n) override
    {
        scratch_.resize(n);
        return scratch_.size();
    }

  private:
    std::vector<std::size_t> scratch_;
};

DENSIM_HOT DENSIM_ALLOCATES("fixture: reviewed fixed callback table")
double hotIndirect(double (*fn)(double), double x)
{
    return fn(x);
}

// A DENSIM_COLD endpoint stops propagation: its effects never reach
// the hot caller's summary.
DENSIM_COLD void coldDiagnostic()
{
    std::vector<double> dump;
    dump.push_back(42.0);
}

DENSIM_HOT void hotCallsCold()
{
    coldDiagnostic();
}

} // namespace fixture
