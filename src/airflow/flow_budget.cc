#include "airflow/flow_budget.hh"

#include "util/logging.hh"

namespace densim {

FlowBudget::FlowBudget(Cfm total_flow, int ducts, int sockets_per_zone,
                       double leakage_frac)
    : totalCfm_(total_flow), ducts_(ducts),
      socketsPerZone_(sockets_per_zone), leakageFrac_(leakage_frac)
{
    if (totalCfm_.value() <= 0.0)
        fatal("FlowBudget: total airflow must be positive, got ",
              totalCfm_.value());
    if (ducts_ < 1)
        fatal("FlowBudget: need at least one duct, got ", ducts_);
    if (socketsPerZone_ < 1)
        fatal("FlowBudget: need at least one socket per zone, got ",
              socketsPerZone_);
    if (leakageFrac_ < 0.0 || leakageFrac_ >= 1.0)
        fatal("FlowBudget: leakage fraction ", leakageFrac_,
              " outside [0, 1)");
}

Cfm
FlowBudget::ductCfm() const
{
    return Cfm(totalCfm_.value() * (1.0 - leakageFrac_) / ducts_);
}

Cfm
FlowBudget::perSocketCfm() const
{
    return Cfm(ductCfm().value() / socketsPerZone_);
}

FlowBudget
FlowBudget::sutBudget()
{
    // Table III: 400 CFM total and 6.35 CFM at each socket. The naive
    // split (400 / 15 rows / 2-wide = 13.3 CFM) ignores bypass around
    // cartridges; the Icepak-derived per-socket figure implies ~52 %
    // of chassis flow bypasses the heatsinks. We bake that in as the
    // leakage fraction so both Table III numbers hold simultaneously.
    return FlowBudget(Cfm(400.0), 15, 2, 1.0 - (6.35 * 2 * 15) / 400.0);
}

} // namespace densim
