/**
 * @file
 * Figure 6 — (a) average job duration and (b) coefficient of variance
 * of job durations within each benchmark set.
 *
 * Paper shapes: ms-scale averages, maxima ~2 orders of magnitude
 * higher, and across-application CoV between 0.25 and 0.33 for every
 * set — justifying studying benchmarks grouped into sets.
 */

#include <iostream>

#include "util/stats.hh"
#include "util/table.hh"
#include "workload/benchmark.hh"
#include "workload/job_generator.hh"

using namespace densim;

int
main()
{
    std::cout << "=== Figure 6: job duration statistics ===\n\n";

    TableWriter table({"Set", "Apps", "Avg duration (ms)",
                       "CoV across apps", "Sampled max/mean"});
    for (WorkloadSet set : allWorkloadSets()) {
        std::vector<double> means;
        for (std::size_t i : benchmarksInSet(set))
            means.push_back(pcmarkCatalog()[i].meanDurationMs);

        // Sample per-job durations to expose the heavy tail.
        JobGenerator gen(set, 0.5, 180, 99);
        RunningStats jobs;
        for (int i = 0; i < 200000; ++i)
            jobs.add(gen.next().nominalS);

        table.newRow()
            .cell(workloadSetName(set))
            .cell(static_cast<long long>(means.size()))
            .cell(mean(means), 2)
            .cell(coefficientOfVariation(means), 3)
            .cell(jobs.max() / jobs.mean(), 0);
    }
    table.print(std::cout);
    std::cout << "\nPer-application catalog:\n";

    TableWriter apps({"Application", "Set", "Mean (ms)", "sigma_ln"});
    for (const Benchmark &b : pcmarkCatalog()) {
        apps.newRow()
            .cell(b.name)
            .cell(workloadSetName(b.set))
            .cell(b.meanDurationMs, 1)
            .cell(b.sigmaLn, 2);
    }
    apps.print(std::cout);
    return 0;
}
