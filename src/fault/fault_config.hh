/**
 * @file
 * Configuration of the fault-injection subsystem (DESIGN.md Sec. 11).
 *
 * Density-optimized servers concentrate many sockets behind shared
 * cooling, so one fan failure or one stuck temperature sensor touches
 * dozens of coupled sockets at once (PAPER.md Sec. III). FaultConfig
 * describes *which* faults to inject and *when*; the seeded
 * FaultTimeline expands it into a deterministic event sequence, and
 * the engine applies the events at power-management epoch boundaries.
 *
 * Every knob maps to a "fault.*" config key (core/config_io.cc). All
 * defaults leave the subsystem disarmed: with no fault key set the
 * engine takes no fault branch and SimMetrics stay bit-identical to a
 * build without the subsystem (pinned by tests/fault_test.cc).
 */

#ifndef DENSIM_FAULT_FAULT_CONFIG_HH
#define DENSIM_FAULT_FAULT_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/units.hh"

namespace densim {

/** Which reading a dropped-out sensor is replaced with. */
enum class DropoutPolicy : std::uint8_t
{
    LastGood,     //!< Hold the last reading seen before the dropout.
    Conservative, //!< Assume a configured pessimistic ambient.
};

/** Full description of the faults injected into one run. */
struct FaultConfig
{
    /**
     * Seed of the fault RNG stream (socket selection, sensor noise).
     * 0 (default) derives the stream from the run seed, so fault
     * placement co-varies with the workload seed; any other value
     * pins the fault pattern independently of the run seed.
     */
    std::uint64_t seed = 0;

    // --- fan bank (airflow/fan.hh affinity laws) ---------------------
    /** Time of the fan event, seconds; < 0 disables it. */
    double fanFailS = -1.0;
    /** Fan recovery time, seconds; < 0 means it never recovers. */
    double fanRecoverS = -1.0;
    /**
     * Speed-fraction cap the failed bank is stuck at, in [0, 1].
     * 0 models a dead bank (airflow falls to the natural-convection
     * floor), intermediate values model a controller/bearing derate.
     */
    double fanSpeedFrac = 0.0;
    /** Identical fans in the bank serving the server. */
    int fanCount = 5;

    // --- temperature sensors (DVFS + scheduler inputs) ---------------
    /** Sensors that freeze at their last reading. */
    int sensorStuckCount = 0;
    /** When the stuck-at fault strikes, seconds. */
    double sensorStuckAtS = 0.0;

    /** Sensors that go noisy (additive Gaussian error). */
    int sensorNoisyCount = 0;
    /** Sigma of the injected Gaussian error, C. */
    double sensorNoiseSigmaC = 2.0;
    /** When the noise fault strikes, seconds. */
    double sensorNoisyAtS = 0.0;

    /** Sensors that stop reporting entirely. */
    int sensorDropoutCount = 0;
    /** When the dropout strikes, seconds. */
    double sensorDropoutAtS = 0.0;
    /** Dropout duration, seconds; < 0 lasts for the rest of the run. */
    double sensorDropoutDurS = -1.0;
    /** Fallback reading policy during a dropout. */
    DropoutPolicy dropoutPolicy = DropoutPolicy::LastGood;
    /** Assumed ambient (C) under DropoutPolicy::Conservative. */
    double fallbackAmbientC = 55.0;

    // --- whole-socket failures ---------------------------------------
    /** Sockets that fail outright (chosen by the fault RNG). */
    int socketFailCount = 0;
    /** When the sockets fail, seconds. */
    double socketFailS = 0.0;
    /** When they come back, seconds; < 0 means never. */
    double socketRecoverS = -1.0;

    // --- emergency thermal response (escalation ladder) --------------
    /** Trip margin above tLimitC before the ladder engages, C. */
    double emergencyMarginC = 3.0;
    /** Over-trip dwell before the emergency throttle, seconds. */
    double emergencySustainS = 0.02;
    /** Throttled-but-still-over-trip dwell before quarantine, s. */
    double quarantineSustainS = 0.1;
    /** Chip temperature below which a quarantined socket readmits, C. */
    double quarantineExitC = 70.0;

    // --- harness fault -----------------------------------------------
    /**
     * Throw a std::runtime_error when the simulated clock reaches this
     * time; < 0 disables. The deliberate mid-run failure the
     * keep-going experiment harness is tested against.
     */
    double abortRunS = -1.0;

    /**
     * JSONL log of every applied fault and escalation event; ""
     * disables. Experiment::runAll rewrites it per run like the obs
     * sinks.
     */
    std::string logPath;

    /**
     * Is any fault armed? The engine gates every fault branch on this,
     * which is what keeps the zero-fault hot path untouched.
     */
    bool enabled() const;

    /** Fault RNG stream seed for a run seeded with @p run_seed. */
    std::uint64_t effectiveSeed(std::uint64_t run_seed) const;

    /** Validate ranges; fatal() on nonsense. @p t_limit for exits. */
    void validate(Celsius t_limit) const;
};

/** Parse "lastGood" / "conservative"; fatal() on anything else. */
DropoutPolicy parseDropoutPolicy(const std::string &name);

/** Inverse of parseDropoutPolicy. */
const char *dropoutPolicyName(DropoutPolicy policy);

} // namespace densim

#endif // DENSIM_FAULT_FAULT_CONFIG_HH
